// tdbg-trace — inspect and convert trace files.
//
// Usage:
//   tdbg_trace info <file>                 file metadata + per-kind counts
//   tdbg_trace dump <file>                 print events as text
//   tdbg_trace stats <file>                summary + traffic report
//   tdbg_trace profile <file>              time per construct / per rank
//   tdbg_trace critpath <file>             critical path through the run
//   tdbg_trace convert <in> <out> [text|v1|v2|v3]   (default v2)
//   tdbg_trace svg <file> <out.svg>        render the time-space diagram
//   tdbg_trace html <file> <out.html>      interactive view (zoom/pan)
//   tdbg_trace graph <file> <out.dot>      dynamic call graph (DOT)
//   tdbg_trace merge <out> <in1> <in2...>  merge per-rank trace files
//
// Any mode also accepts --stats: on exit, the tool's own metrics
// (analysis wall times, collector counters) are dumped to stderr.
// Any trace-opening mode also accepts --chrome-trace <out.json>: the
// trace (plus any telemetry self-spans this tool produced) is exported
// as Chrome trace_event JSON for chrome://tracing / Perfetto.
// --threads N sizes the analysis pool (default: hardware concurrency,
// capped; 1 = serial). TDBG_THREADS in the environment works too.
//
// Traces are produced by attaching a TraceWriter to a run's collector
// (see README "Writing traces to disk") or via trace::write_trace.

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/session.hpp"
#include "analysis/traffic.hpp"
#include "graph/call_graph.hpp"
#include "graph/export.hpp"
#include "obs/metrics.hpp"
#include "support/executor.hpp"
#include "telemetry/span.hpp"
#include "trace/merge.hpp"
#include "trace/trace_io.hpp"
#include "viz/chrome.hpp"
#include "viz/html_view.hpp"
#include "viz/profile.hpp"
#include "viz/timeline.hpp"

namespace {

int dump(const tdbg::trace::Trace& trace) {
  using namespace tdbg;
  std::printf("# %d ranks, %zu events\n", trace.num_ranks(), trace.size());
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    std::printf("%-8s rank=%d marker=%llu t=[%lld..%lld]",
                std::string(trace::event_kind_name(e.kind)).c_str(), e.rank,
                static_cast<unsigned long long>(e.marker),
                static_cast<long long>(e.t_start),
                static_cast<long long>(e.t_end));
    if (e.construct != trace::kNoConstruct) {
      std::printf(" %s", trace.constructs().info(e.construct).name.c_str());
    }
    if (e.is_message()) {
      std::printf(" peer=%d tag=%d bytes=%llu%s", e.peer, e.tag,
                  static_cast<unsigned long long>(e.bytes),
                  e.wildcard ? " (ANY_SOURCE)" : "");
    }
    std::printf("\n");
  });
  return 0;
}

// `info` reads the header and (for v2) the footer directory for the
// metadata block, then one streaming pass over the events for the
// per-kind census (the census is the only part that touches payload).
int info(const std::filesystem::path& path) {
  using namespace tdbg;
  const auto fi = trace::inspect_trace(path);
  std::printf("file        : %s\n", path.string().c_str());
  std::printf("format      : %s\n", fi.format.c_str());
  std::printf("file bytes  : %llu\n",
              static_cast<unsigned long long>(fi.file_bytes));
  if (fi.event_count > 0) {
    std::printf("bytes/event : %.2f (v2 rows are %llu)\n",
                static_cast<double>(fi.file_bytes) /
                    static_cast<double>(fi.event_count),
                static_cast<unsigned long long>(trace::wire::kEventRecordBytes));
  }
  std::printf("ranks       : %d\n", fi.num_ranks);
  std::printf("events      : %llu\n",
              static_cast<unsigned long long>(fi.event_count));
  std::printf("constructs  : %llu\n",
              static_cast<unsigned long long>(fi.construct_count));
  std::printf("footer      : %s\n", fi.has_footer ? "yes" : "no");
  if (fi.has_footer) {
    std::printf("segments    : %llu (x%u events)\n",
                static_cast<unsigned long long>(fi.segment_count),
                fi.segment_events);
    std::printf("sorted      : %s\n", fi.display_sorted ? "yes" : "no");
    std::printf("monotone    : %s\n",
                fi.rank_markers_monotone ? "yes" : "no");
    // The segment directory itself: this is exactly what the lazy
    // store's window/eviction decisions key on, so surface it.  The
    // per-segment ratio compares the on-disk block against the same
    // events as fixed v2 rows (1.00x for a v2 file, by construction).
    if (const auto tf = trace::try_read_footer(path)) {
      for (std::size_t s = 0; s < tf->footer.segments.size(); ++s) {
        const auto& seg = tf->footer.segments[s];
        const double row_bytes =
            static_cast<double>(seg.count) *
            static_cast<double>(trace::wire::kEventRecordBytes);
        std::printf("  seg %-4zu : %8llu events  t=[%lld .. %lld] ns  "
                    "%llu B @ %llu  (%.2fx of v2 rows)\n",
                    s, static_cast<unsigned long long>(seg.count),
                    static_cast<long long>(seg.t_min),
                    static_cast<long long>(seg.t_max),
                    static_cast<unsigned long long>(seg.byte_len),
                    static_cast<unsigned long long>(seg.offset),
                    row_bytes > 0
                        ? static_cast<double>(seg.byte_len) / row_bytes
                        : 0.0);
      }
      // v3 only: how each column is actually stored, aggregated over
      // all segments (encoding counts are segments-using-it).
      const auto columns = trace::inspect_columns(path, *tf);
      if (!columns.empty()) {
        std::printf("columns (payload bytes across segments):\n");
        for (const auto& c : columns) {
          std::printf("  %-11s: %10llu B ", c.name.c_str(),
                      static_cast<unsigned long long>(c.bytes));
          for (const auto& [enc, nseg] : c.encodings) {
            std::printf(" %s x%zu", enc.c_str(), nseg);
          }
          std::printf("\n");
        }
      }
    }
  }
  if (fi.has_time_span) {
    std::printf("time span   : [%lld .. %lld] ns\n",
                static_cast<long long>(fi.t_min),
                static_cast<long long>(fi.t_max));
  }
  const auto trace = trace::open_trace(path);
  std::array<std::uint64_t, 8> by_kind{};
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    const auto k = static_cast<std::size_t>(e.kind);
    if (k < by_kind.size()) ++by_kind[k];
  });
  std::printf("events by kind:\n");
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("  %-14s: %llu\n",
                std::string(trace::event_kind_name(
                                static_cast<trace::EventKind>(k)))
                    .c_str(),
                static_cast<unsigned long long>(by_kind[k]));
  }
  return 0;
}

int stats(tdbg::analysis::Session& session) {
  using namespace tdbg;
  const auto& trace = session.trace();
  std::printf("ranks   : %d\n", trace.num_ranks());
  std::printf("events  : %zu\n", trace.size());
  std::printf("threads : %zu (analysis pool)\n",
              exec::Executor::global().threads());
  std::printf("span    : %lld ns\n",
              static_cast<long long>(trace.t_max() - trace.t_min()));
  const auto& report = session.match_report();
  std::printf("messages: %zu matched, %zu unmatched sends, %zu orphan "
              "recvs\n",
              report.matches.size(), report.unmatched_sends.size(),
              report.unmatched_recvs.size());
  std::printf("%s", session.traffic().to_string().c_str());
  return 0;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  using namespace tdbg;
  // Strip the global --stats / --chrome-trace / --threads flags before
  // positional parsing.
  bool want_stats = false;
  std::string chrome_path;
  std::vector<char*> args;
  for (int i = 0; i < raw_argc; ++i) {
    if (std::string_view(raw_argv[i]) == "--stats") {
      want_stats = true;
    } else if (std::string_view(raw_argv[i]) == "--chrome-trace" &&
               i + 1 < raw_argc) {
      chrome_path = raw_argv[++i];
    } else if (std::string_view(raw_argv[i]) == "--threads" &&
               i + 1 < raw_argc) {
      const long n = std::strtol(raw_argv[++i], nullptr, 10);
      if (n < 1) {
        std::cerr << "--threads wants a positive count\n";
        return 2;
      }
      exec::Executor::set_default_threads(static_cast<std::size_t>(n));
    } else {
      args.push_back(raw_argv[i]);
    }
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  struct StatsDump {
    bool enabled;
    ~StatsDump() {
      if (!enabled) return;
      const auto text = obs::MetricsRegistry::global().snapshot().to_text();
      if (!text.empty()) std::cerr << "--- stats ---\n" << text;
    }
  } stats_dump{want_stats};
  if (argc < 3) {
    std::cerr << "usage: tdbg_trace {info|dump|stats|convert|svg|graph} "
                 "<file> [args] [--stats] [--threads N]\n";
    return 2;
  }
  const std::string mode = argv[1];
  try {
    if (mode == "info") return info(argv[2]);
    if (mode == "merge") {
      if (argc < 4) {
        std::cerr << "merge needs an output and at least one input\n";
        return 2;
      }
      std::vector<std::filesystem::path> inputs;
      for (int i = 3; i < argc; ++i) inputs.emplace_back(argv[i]);
      trace::write_trace(argv[2], trace::read_merged(inputs));
      std::cout << "wrote " << argv[2] << "\n";
      return 0;
    }
    // open_trace is lazy for indexed v2 files: whole-trace modes below
    // still work, but windowed/point access never faults in more than
    // the touched segments.
    const auto trace = trace::open_trace(argv[2]);
    // Deferred --chrome-trace export: fires on scope exit, after
    // whichever mode ran (so analysis self-spans, if any, are
    // included).
    struct ChromeDump {
      const trace::Trace* trace;
      std::string path;
      ~ChromeDump() {
        if (path.empty()) return;
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot write " << path << "\n";
          return;
        }
        viz::write_chrome_trace(
            out, *trace, telemetry::SpanCollector::global().snapshot());
        std::cerr << "wrote chrome trace " << path << "\n";
      }
    } chrome_dump{&trace, chrome_path};
    // One shared-artifact analysis session serves every mode below:
    // matching, traffic, the rank index, and the graphs are each
    // computed at most once however many of them a mode touches.
    analysis::Session session(trace);
    if (mode == "dump") return dump(trace);
    if (mode == "stats") return stats(session);
    if (mode == "profile") {
      std::cout << viz::profile_trace(trace).to_string(trace.constructs());
      return 0;
    }
    if (mode == "critpath") {
      std::cout << session.critical_path().to_string(trace);
      return 0;
    }
    if (mode == "html") {
      if (argc < 4) {
        std::cerr << "html needs an output path\n";
        return 2;
      }
      viz::HtmlOptions html_options;
      html_options.diagram.matches = &session.match_report();
      std::ofstream(argv[3]) << viz::to_html(trace, html_options);
      std::cout << "wrote " << argv[3] << "\n";
      return 0;
    }
    if (mode == "convert") {
      if (argc < 4) {
        std::cerr << "convert needs an output path\n";
        return 2;
      }
      auto format = trace::TraceFormat::kBinary;
      if (argc > 4) {
        const std::string name = argv[4];
        if (name == "text") {
          format = trace::TraceFormat::kText;
        } else if (name == "v1" || name == "binary-v1") {
          format = trace::TraceFormat::kBinaryV1;
        } else if (name == "v2" || name == "binary" || name == "binary-v2") {
          format = trace::TraceFormat::kBinary;
        } else if (name == "v3" || name == "binary-v3") {
          format = trace::TraceFormat::kBinaryV3;
        } else {
          std::cerr << "unknown format " << name
                    << " (expected text|v1|v2|v3)\n";
          return 2;
        }
      }
      trace::write_trace(argv[3], trace, format);
      std::cout << "wrote " << argv[3] << "\n";
      return 0;
    }
    if (mode == "svg") {
      if (argc < 4) {
        std::cerr << "svg needs an output path\n";
        return 2;
      }
      viz::DiagramOptions svg_options;
      svg_options.matches = &session.match_report();
      std::ofstream(argv[3])
          << viz::TimeSpaceDiagram(trace, svg_options).to_svg();
      std::cout << "wrote " << argv[3] << "\n";
      return 0;
    }
    if (mode == "graph") {
      if (argc < 4) {
        std::cerr << "graph needs an output path\n";
        return 2;
      }
      const auto& cg = session.call_graph(std::nullopt);
      std::ofstream(argv[3])
          << graph::to_dot(cg.to_export(trace.constructs()));
      std::cout << "wrote " << argv[3] << "\n";
      return 0;
    }
    std::cerr << "unknown mode " << mode << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tdbg_trace: " << e.what() << "\n";
    return 1;
  }
}
