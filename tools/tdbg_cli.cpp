// tdbg-cli — interactive trace-driven debugging of the bundled target
// programs (the p2d2 console analog).
//
// Usage:
//   tdbg_cli <target> [--script <file>] [--auto-record] [--stats]
//            [--fault-plan <name>] [--fault-seed <n>]
//            [--chrome-trace <out.json>] [--threads <n>]
//
// --stats dumps the final metrics report (per-rank sends/recvs/bytes/
// recv-block time, collector flush stats, analysis timings, analysis
// pool task/steal counts) on exit.
//
// --threads sizes the analysis thread pool (default: hardware
// concurrency, capped; 1 = fully serial analysis).  The TDBG_THREADS
// environment variable does the same without a flag.
//
// --chrome-trace writes the whole session as Chrome trace_event JSON
// on exit — the application's message events (pid "app", one thread
// row per rank) next to the debugger's own phases (pid "tdbg":
// record/replay/analysis spans, mpi match/park waits, trace flushes,
// fault injections).  Load it in chrome://tracing or Perfetto.
//
// --fault-plan arms a named fault-injection plan (see
// `tdbg::fault::FaultPlan::names()`) for the recorded run; --fault-seed
// sets the plan's RNG seed so the faulted execution is reproducible:
//
//   tdbg_cli ring4 --fault-seed 42 --fault-plan deadlock_ring --auto-record
//
// If the faulted run hangs or crashes, a partial trace is flushed to
// `tdbg_fault_partial.trc` with a structured hang diagnosis on stderr,
// and the flight recorder's tail (whose last records name the injected
// fault) is dumped to `tdbg_flight.log`.
//
// Targets:
//   ring4            4-rank token ring
//   strassen8        distributed Strassen, 8 ranks, correct
//   strassen8-buggy  the paper's Fig. 5-7 bug (deadlocks)
//   taskfarm5        self-scheduling farm (wildcard races)
//   lu8              NPB-LU-style wavefront on a 4x2 grid
//   halo4            BSP halo-exchange relaxation
//
// With --script, commands come from the file (one per line, '#'
// comments) instead of stdin — which is also how the test-suite
// exercises this binary's command set.
//
// Service mode:
//   tdbg_cli serve [--socket <path>] [--port <n>] [--max-sessions <n>]
//                  [--max-pending <n>] [--threads <n>] [--stats]
//
// runs the trace-analysis daemon (`tdbg::server::Server`) instead of a
// debugging session: clients (`tdbg_client`, `tdbg::server::Client`)
// query recorded traces over a Unix or TCP socket and share one
// analysis session per trace.  Stops on SIGINT/SIGTERM or a client's
// `shutdown` request, draining admitted work first.

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "apps/halo.hpp"
#include "apps/lu.hpp"
#include "apps/ring.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "debugger/commands.hpp"
#include "fault/hang.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"
#include "viz/chrome.hpp"

namespace {

struct Target {
  int ranks = 0;
  tdbg::mpi::RankBody body;
};

Target make_target(const std::string& name) {
  using namespace tdbg::apps;
  if (name == "ring4") {
    return {4, [](tdbg::mpi::Comm& comm) {
              ring::Options opts;
              opts.laps = 3;
              ring::rank_body(comm, opts);
            }};
  }
  if (name == "strassen8" || name == "strassen8-buggy") {
    strassen::Options opts;
    opts.n = 64;
    opts.cutoff = 16;
    opts.buggy = name == "strassen8-buggy";
    return {8, [opts](tdbg::mpi::Comm& comm) { strassen::rank_body(comm, opts); }};
  }
  if (name == "taskfarm5") {
    taskfarm::Options opts;
    opts.num_tasks = 30;
    return {5, [opts](tdbg::mpi::Comm& comm) { taskfarm::rank_body(comm, opts); }};
  }
  if (name == "lu8") {
    lu::Options opts;
    opts.px = 4;
    opts.py = 2;
    opts.nx = 12;
    opts.ny = 12;
    opts.iterations = 2;
    return {8, [opts](tdbg::mpi::Comm& comm) { lu::rank_body(comm, opts); }};
  }
  if (name == "halo4") {
    halo::Options opts;
    opts.cells = 64;
    opts.max_steps = 40;
    return {4, [opts](tdbg::mpi::Comm& comm) {
              halo::HaloApp app(opts);
              app.init(comm);
              for (std::uint64_t s = 0; app.step(comm, s); ++s) {
              }
            }};
  }
  return {};
}

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// `tdbg_cli serve`: run the analysis service until a client sends
/// `shutdown` or the process receives SIGINT/SIGTERM.
int run_server(const tdbg::server::ServerOptions& options, bool stats) {
  tdbg::server::Server server(options);
  try {
    server.start();
  } catch (const tdbg::Error& e) {
    std::cerr << "tdbg serve: " << e.what() << "\n";
    return 2;
  }
  std::cout << "tdbg server listening on";
  if (!options.unix_path.empty()) std::cout << " unix:" << options.unix_path;
  if (server.tcp_port() >= 0) std::cout << " tcp:127.0.0.1:" << server.tcp_port();
  std::cout << "\n" << std::flush;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!server.finished()) {
    if (g_stop.load(std::memory_order_relaxed)) server.shutdown();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.wait();
  const auto cache = server.cache_stats();
  std::cout << "tdbg server drained (" << cache.hits << " cache hit(s), "
            << cache.misses << " load(s), " << cache.evictions
            << " eviction(s))\n";
  if (stats) {
    std::cout << "--- stats ---\n"
              << tdbg::obs::MetricsRegistry::global().snapshot().to_text();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target_name;
  std::string script_path;
  std::string fault_plan_name;
  std::string chrome_path;
  std::uint64_t fault_seed = 0;
  bool auto_record = false;
  bool stats = false;
  tdbg::server::ServerOptions serve_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--script" && i + 1 < argc) {
      script_path = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      serve_options.unix_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      serve_options.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      serve_options.max_sessions = std::stoull(argv[++i]);
    } else if (arg == "--max-pending" && i + 1 < argc) {
      serve_options.max_pending = std::stoull(argv[++i]);
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan_name = argv[++i];
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      fault_seed = std::stoull(argv[++i]);
    } else if (arg == "--chrome-trace" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const unsigned long long n = std::stoull(argv[++i]);
      if (n < 1) {
        std::cerr << "--threads wants a positive count\n";
        return 2;
      }
      tdbg::exec::Executor::set_default_threads(static_cast<std::size_t>(n));
    } else if (arg == "--auto-record") {
      auto_record = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tdbg_cli <ring4|strassen8|strassen8-buggy|"
                   "taskfarm5|lu8> [--script file] [--auto-record] "
                   "[--stats] [--fault-plan name] [--fault-seed n] "
                   "[--chrome-trace out.json] [--threads n]\n"
                   "       tdbg_cli serve [--socket path] [--port n] "
                   "[--max-sessions n] [--max-pending n] [--threads n] "
                   "[--stats]\n";
      return 0;
    } else {
      target_name = arg;
    }
  }
  if (target_name == "serve") {
    if (serve_options.unix_path.empty() && serve_options.tcp_port < 0) {
      std::cerr << "serve wants --socket <path> and/or --port <n>\n";
      return 2;
    }
    return run_server(serve_options, stats);
  }
  auto target = make_target(target_name);
  if (target.ranks == 0) {
    std::cerr << "unknown target '" << target_name << "' (try --help)\n";
    return 2;
  }

  tdbg::dbg::Debugger debugger(target.ranks, target.body);
  if (!fault_plan_name.empty()) {
    try {
      debugger.set_fault_plan(
          tdbg::fault::FaultPlan::named(fault_plan_name, fault_seed));
    } catch (const tdbg::UsageError& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  tdbg::dbg::CommandInterpreter interpreter(debugger);

  std::ifstream script;
  std::istream* in = &std::cin;
  const bool interactive = script_path.empty();
  if (!interactive) {
    script.open(script_path);
    if (!script) {
      std::cerr << "cannot open script " << script_path << "\n";
      return 2;
    }
    in = &script;
  }

  if (auto_record) {
    std::cout << interpreter.execute("record").output;
  }
  if (interactive) {
    std::cout << "tdbg: trace-driven debugger — target " << target_name
              << " (" << target.ranks << " ranks). `help` for commands.\n";
  }

  std::string line;
  int failures = 0;
  while (true) {
    if (interactive) std::cout << "(tdbg) " << std::flush;
    if (!std::getline(*in, line)) break;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (!interactive && !line.empty()) std::cout << "(tdbg) " << line << "\n";
    const auto result = interpreter.execute(line);
    std::cout << result.output;
    if (!result.ok) ++failures;
    if (result.quit) break;
  }
  if (debugger.fault_engine() != nullptr && !debugger.run_result().completed) {
    // The faulted run hung or crashed: flush the partial trace for
    // post-mortem work, print the structured diagnosis, and drop the
    // flight recorder's tail next to it — its last records name the
    // injected fault that explains the hang.
    const auto diagnosis = tdbg::fault::diagnose_hang(
        debugger.run_result(), debugger.trace(), "tdbg_fault_partial.trc");
    std::cerr << diagnosis.describe();
    std::ofstream flight("tdbg_flight.log");
    if (flight) {
      flight << tdbg::telemetry::FlightRecorder::global().dump_text();
      std::cerr << "  flight log written to tdbg_flight.log\n";
    }
  }
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::cerr << "cannot write " << chrome_path << "\n";
      return 2;
    }
    const bool recorded = debugger.recorded();
    const auto n = tdbg::viz::write_chrome_trace(
        out, recorded ? debugger.trace() : tdbg::trace::Trace{},
        tdbg::telemetry::SpanCollector::global().snapshot());
    std::cout << "wrote " << n << " event(s) to " << chrome_path << "\n";
  }
  if (stats) {
    std::cout << "--- stats ---\n"
              << tdbg::obs::MetricsRegistry::global().snapshot().to_text();
  }
  return failures == 0 ? 0 : 1;
}
