// uinst — insert UserMonitor instrumentation into C++ sources.
//
// Usage:
//   uinst [--check] [--no-include] [--stdout] <file.cpp> [more files...]
//
// Default mode rewrites each file in place (the paper's pipeline
// rewrote the .s file in place between two compiler steps).
// --check   print per-file insertion counts, change nothing
// --stdout  write the rewritten first file to stdout
// --no-include  do not prepend the instrument/api.hpp include

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rewriter.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool to_stdout = false;
  tdbg::uinst::RewriteOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--stdout") {
      to_stdout = true;
    } else if (arg == "--no-include") {
      options.add_include = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: uinst [--check] [--stdout] [--no-include] "
                   "<file.cpp>...\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "uinst: no input files (try --help)\n";
    return 2;
  }

  int status = 0;
  for (const auto& file : files) {
    try {
      const auto source = read_file(file);
      const auto result = tdbg::uinst::rewrite(source, options);
      if (check) {
        std::cout << file << ": " << result.insertions
                  << " insertion(s)\n";
      } else if (to_stdout) {
        std::cout << result.text;
      } else {
        write_file(file, result.text);
        std::cout << file << ": instrumented " << result.insertions
                  << " function(s)\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "uinst: " << e.what() << "\n";
      status = 1;
    }
  }
  return status;
}
