#include "rewriter.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace tdbg::uinst {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Keywords that are followed by a parenthesized expression and a
/// brace but are not function definitions.
bool is_control_keyword(const std::string& ident) {
  static const std::array<const char*, 8> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof"};
  return std::any_of(kKeywords.begin(), kKeywords.end(),
                     [&](const char* k) { return ident == k; });
}

/// The identifier ending at `pos` (exclusive), skipping trailing
/// whitespace first.  Empty when the preceding token is not an
/// identifier.
std::string ident_before(const std::string& s, std::size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  std::size_t end = pos;
  while (pos > 0 && is_ident_char(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

}  // namespace

std::vector<std::size_t> insertion_points(const std::string& source) {
  std::vector<std::size_t> points;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;

  int paren_depth = 0;
  // Candidate tracking: we saw a top-level `(...)` whose opening paren
  // was preceded by a plausible function name; qualifiers or a ctor
  // initializer list may follow before the body '{'.
  bool candidate = false;
  bool in_init_list = false;

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';

    switch (state) {
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        continue;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        continue;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        continue;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        continue;
      case State::kRawString:
        if (c == ')' && i + 1 + raw_delim.size() < source.size() &&
            source.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            source[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          state = State::kCode;
        }
        continue;
      case State::kCode:
        break;
    }

    if (c == '/' && next == '/') {
      state = State::kLineComment;
      ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      state = State::kBlockComment;
      ++i;
      continue;
    }
    if (c == 'R' && next == '"' &&
        (i == 0 || !is_ident_char(source[i - 1]))) {
      const auto open = source.find('(', i + 2);
      if (open != std::string::npos) {
        raw_delim = source.substr(i + 2, open - i - 2);
        state = State::kRawString;
        i = open;
        continue;
      }
    }
    if (c == '"') {
      state = State::kString;
      continue;
    }
    if (c == '\'') {
      // Heuristic: treat as char literal only when not a digit
      // separator (1'000).
      if (i == 0 || !std::isdigit(static_cast<unsigned char>(source[i - 1]))) {
        state = State::kChar;
      }
      continue;
    }

    if (c == '(') {
      if (paren_depth == 0 && !in_init_list) {
        const auto ident = ident_before(source, i);
        // A function definition's '(' follows its name; an operator
        // or conversion also ends in an identifier-ish token.  Reject
        // control keywords and non-identifiers (lambdas: ']').
        candidate = !ident.empty() && !is_control_keyword(ident);
      }
      ++paren_depth;
      continue;
    }
    if (c == ')') {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    if (paren_depth > 0) continue;

    if (candidate) {
      if (c == '{') {
        points.push_back(i + 1);
        candidate = false;
        in_init_list = false;
      } else if (c == ';' || c == '=' || c == ',') {
        // Declaration, `= default/delete`, or parameter pack in a
        // wider list (unless we are in a ctor initializer list, where
        // commas are expected).
        if (!(in_init_list && c == ',')) {
          candidate = false;
          in_init_list = false;
        }
      } else if (c == ':') {
        if (next == ':') {
          ++i;  // scope operator inside a trailing return type
        } else {
          in_init_list = true;  // ctor initializer list
        }
      }
      continue;
    }

    if (c == '{' || c == '}' || c == ';') {
      in_init_list = false;
    }
  }
  return points;
}

RewriteResult rewrite(const std::string& source,
                      const RewriteOptions& options) {
  RewriteResult result;
  const auto points = insertion_points(source);

  std::string out;
  out.reserve(source.size() + points.size() * 24);
  std::size_t prev = 0;
  for (const auto point : points) {
    out.append(source, prev, point - prev);
    // Skip bodies that already start with the statement (idempotence).
    auto rest = source.substr(point, 160);
    if (rest.find("TDBG_FUNCTION") == std::string::npos ||
        rest.find('{') < rest.find("TDBG_FUNCTION")) {
      out += " " + options.statement;
      ++result.insertions;
    }
    prev = point;
  }
  out.append(source, prev, source.size() - prev);

  if (options.add_include && result.insertions > 0 &&
      out.find("instrument/api.hpp") == std::string::npos) {
    out.insert(0, "#include \"instrument/api.hpp\"\n");
    result.added_include = true;
  }
  result.text = std::move(out);
  return result;
}

}  // namespace tdbg::uinst
