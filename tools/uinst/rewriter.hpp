#pragma once

#include <string>
#include <vector>

/// \file rewriter.hpp
/// The `uinst` rewriter (paper §2.2).
///
/// The paper's `uinst` scans compiler-generated assembler and replaces
/// the `mcount` profiling call (inserted by `gcc -p`) in every
/// function prologue with a call to `UserMonitor`.  This port works at
/// the C++ source level: it scans a translation unit and inserts a
/// `TDBG_FUNCTION();` statement at the top of every function body, so
/// the build pipeline
///
///     gcc -p -g -S file.c && uinst file.s && gcc -c file.s
///
/// becomes
///
///     uinst file.cpp && c++ -c file.cpp
///
/// The scanner is a lexer-level heuristic (it tracks strings,
/// comments, parens, and braces — it does not parse C++), which is
/// the same engineering trade the original made by pattern-matching
/// assembler.  Lambdas and functions already instrumented are left
/// alone; control-flow statements (`if`, `for`, ...) never match.

namespace tdbg::uinst {

/// Result of rewriting one source text.
struct RewriteResult {
  std::string text;          ///< rewritten source
  int insertions = 0;        ///< TDBG_FUNCTION() statements added
  bool added_include = false;  ///< instrument/api.hpp include prepended
};

/// Options for the rewriter.
struct RewriteOptions {
  /// Insert `#include "instrument/api.hpp"` after the last existing
  /// include if the file does not already include it.
  bool add_include = true;

  /// The statement inserted at each function entry.
  std::string statement = "TDBG_FUNCTION();";
};

/// Rewrites one source text, inserting the instrumentation statement
/// at the top of every detected function body.
RewriteResult rewrite(const std::string& source,
                      const RewriteOptions& options = {});

/// Byte offsets (just after each function body's '{') where the
/// rewriter would insert.  Exposed for tests and --check mode.
std::vector<std::size_t> insertion_points(const std::string& source);

}  // namespace tdbg::uinst
