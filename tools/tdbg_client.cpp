// tdbg_client — command-line client for the tdbg trace-analysis
// service (`tdbg_cli serve` / `tdbg::server::Server`).
//
// Usage:
//   tdbg_client <endpoint> <command> [args] [--deadline <ms>]
//
//   endpoint:  unix:<path> | tcp:<host>:<port> | tcp:<port>
//   commands:
//     ping
//     open     <trace>          session identity + trace shape
//     match    <trace>          send/receive matching summary
//     traffic  <trace>          per-channel and per-rank traffic
//     races    <trace>          wildcard-receive race report
//     deadlock <trace>          terminal-stall explanation
//     window   <trace> <t0> <t1>  events intersecting [t0, t1] ns
//     graph    <trace> comm|call  DOT text on stdout
//     stats    <trace>          session + cache observability
//     shutdown                  graceful drain-then-stop
//
// --deadline bounds the request's queue wait; an overloaded server
// answers `overloaded` and an expired wait answers `timeout` — both
// exit nonzero with the status on stderr, never hang.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "support/error.hpp"

namespace {

using namespace tdbg;
using namespace tdbg::server;

int usage() {
  std::cerr
      << "usage: tdbg_client <unix:PATH|tcp:HOST:PORT> <command> [args]\n"
         "                   [--deadline ms]\n"
         "commands: ping | open T | match T | traffic T | races T |\n"
         "          deadlock T | window T T0 T1 | graph T comm|call |\n"
         "          stats T | shutdown    (T = trace file path)\n";
  return 2;
}

int run(int argc, char** argv) {
  std::vector<std::string> positional;
  std::uint32_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) return usage();
  const std::string& endpoint = positional[0];
  const std::string& command = positional[1];

  Client client(endpoint);
  client.set_deadline_ms(deadline_ms);

  if (command == "ping") {
    client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (command == "shutdown") {
    client.shutdown_server();
    std::cout << "server draining\n";
    return 0;
  }
  if (positional.size() < 3) return usage();
  const std::string& path = positional[2];

  if (command == "open") {
    const auto info = client.open_trace(path);
    std::cout << "fingerprint : " << info.fingerprint << "\n"
              << "ranks       : " << info.num_ranks << "\n"
              << "events      : " << info.events << "\n"
              << "segments    : " << info.segments << "\n"
              << "time span   : [" << info.t_min << ", " << info.t_max
              << "] ns\n";
    return 0;
  }
  if (command == "match") {
    const auto report = client.match_report(path);
    std::cout << "matches          : " << report.matches.size() << "\n"
              << "unmatched sends  : " << report.unmatched_sends.size() << "\n"
              << "unmatched recvs  : " << report.unmatched_recvs.size()
              << "\n";
    return 0;
  }
  if (command == "traffic") {
    const auto report = client.traffic(path);
    std::cout << "channels:\n";
    for (const auto& c : report.channels) {
      std::cout << "  " << c.src << " -> " << c.dst << "  " << c.messages
                << " msg, " << c.bytes << " B, latency [" << c.min_latency
                << ", " << c.max_latency << "] ns\n";
    }
    std::cout << "ranks:\n";
    for (const auto& t : report.ranks) {
      std::cout << "  rank " << t.rank << ": " << t.sends << " sends / "
                << t.recvs << " recvs, " << t.bytes_out << " B out / "
                << t.bytes_in << " B in\n";
    }
    for (const auto& irr : report.irregularities) {
      std::cout << "irregularity: " << irr.description << "\n";
    }
    return 0;
  }
  if (command == "races") {
    const auto report = client.races(path);
    std::cout << report.races.size() << " wildcard race(s)\n";
    for (const auto& race : report.races) {
      std::cout << "  recv #" << race.recv_index << " matched send #"
                << race.matched_send << ", " << race.candidates.size()
                << " candidate(s)\n";
    }
    return 0;
  }
  if (command == "deadlock") {
    const auto info = client.deadlock(path);
    std::cout << (info.stalled ? "STALLED\n" : "clean\n") << info.description;
    return info.stalled ? 3 : 0;
  }
  if (command == "window") {
    if (positional.size() < 5) return usage();
    const auto events = client.window(path, std::stoll(positional[3]),
                                      std::stoll(positional[4]));
    std::cout << events.size() << " event(s) in window\n";
    return 0;
  }
  if (command == "graph") {
    if (positional.size() < 4) return usage();
    const auto kind = positional[3] == "call" ? GraphKind::kCall
                                              : GraphKind::kComm;
    std::cout << client.graph_dot(path, kind);
    return 0;
  }
  if (command == "stats") {
    const auto stats = client.session_stats(path);
    std::cout << "fingerprint     : " << stats.fingerprint << "\n"
              << "events          : " << stats.events << "\n"
              << "watermark       : " << stats.watermark << "\n"
              << "cache hits      : " << stats.cache_hits << "\n"
              << "cache misses    : " << stats.cache_misses << "\n"
              << "cache evictions : " << stats.cache_evictions << "\n"
              << "resident        : " << stats.resident_sessions << "\n"
              << stats.passes_text;
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tdbg::Error& e) {
    std::cerr << "tdbg_client: " << e.what() << "\n";
    return 1;
  }
}
