#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"
#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"

namespace tdbg::analysis {
namespace {

using trace::Event;
using trace::EventKind;

Event ev(EventKind kind, mpi::Rank rank, std::uint64_t marker,
         support::TimeNs t0, support::TimeNs t1,
         mpi::Rank peer = mpi::kAnySource, mpi::ChannelSeq seq = 0) {
  Event e;
  e.kind = kind;
  e.rank = rank;
  e.marker = marker;
  e.t_start = t0;
  e.t_end = t1;
  e.peer = peer;
  e.tag = 0;
  e.channel_seq = seq;
  return e;
}

TEST(CriticalPathTest, FollowsMessageChain) {
  // Rank 0: long compute (10) then send; rank 1: recv then compute (20).
  // The path must cross the message: 10 + send + recv + 20.
  std::vector<Event> events;
  events.push_back(ev(EventKind::kCompute, 0, 1, 0, 10));
  events.push_back(ev(EventKind::kSend, 0, 2, 10, 11, 1));
  events.push_back(ev(EventKind::kRecv, 1, 1, 11, 12, 0, 0));
  events.push_back(ev(EventKind::kCompute, 1, 2, 12, 32));
  trace::Trace trace(2, std::move(events), nullptr);

  Session session(trace);
  const auto& path = session.critical_path();
  EXPECT_EQ(path.total, 10 + 1 + 1 + 20);
  ASSERT_EQ(path.events.size(), 4u);
  EXPECT_EQ(path.rank_switches, 1u);
  EXPECT_EQ(path.per_rank[0], 11);
  EXPECT_EQ(path.per_rank[1], 21);
}

TEST(CriticalPathTest, PrefersHeavierBranch) {
  // Two independent ranks; rank 1 does more work: the path stays on
  // rank 1.
  std::vector<Event> events;
  events.push_back(ev(EventKind::kCompute, 0, 1, 0, 5));
  events.push_back(ev(EventKind::kCompute, 1, 1, 0, 50));
  trace::Trace trace(2, std::move(events), nullptr);
  Session session(trace);
  const auto& path = session.critical_path();
  EXPECT_EQ(path.total, 50);
  ASSERT_EQ(path.events.size(), 1u);
  EXPECT_EQ(trace.event(path.events[0]).rank, 1);
}

TEST(CriticalPathTest, PathIsCausallyOrdered) {
  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 8;
  const auto rec = replay::record(
      4, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  Session session(rec.trace);
  const auto& path = session.critical_path();
  EXPECT_FALSE(path.events.empty());
  EXPECT_GT(path.total, 0);

  const auto& order = session.causal_order();
  for (std::size_t i = 1; i < path.events.size(); ++i) {
    EXPECT_TRUE(order.happens_before(path.events[i - 1], path.events[i]))
        << "path step " << i << " not causally ordered";
  }
  // No rank_switches assertion here: on a single-CPU host the ranks
  // serialize, so the master's wall-clock self time can legitimately
  // dominate every worker chain and the costliest path stays on one
  // rank.  FollowsMessageChain pins the cross-rank property on a
  // deterministic trace instead.
  // It cannot be longer than the run itself by more than the per-event
  // bookkeeping (durations nest within the run span).
  const auto span = rec.trace.t_max() - rec.trace.t_min();
  EXPECT_LE(path.per_rank[0], span);

  const auto text = path.to_string(rec.trace);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("per-rank share"), std::string::npos);
}

TEST(CriticalPathTest, EmptyTrace) {
  trace::Trace trace(2, {}, nullptr);
  Session session(trace);
  const auto& path = session.critical_path();
  EXPECT_TRUE(path.events.empty());
  EXPECT_EQ(path.total, 0);
}

}  // namespace
}  // namespace tdbg::analysis
