#include <gtest/gtest.h>

#include "analysis/deadlock.hpp"
#include "analysis/races.hpp"
#include "analysis/session.hpp"
#include "analysis/supervision.hpp"
#include "analysis/traffic.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "mpi/runtime.hpp"
#include "replay/record.hpp"

namespace tdbg::analysis {
namespace {

mpi::WaitInfo wait(mpi::Rank rank, mpi::WaitKind kind,
                   mpi::Rank peer = mpi::kAnySource,
                   mpi::Tag tag = mpi::kAnyTag) {
  return mpi::WaitInfo{rank, kind, peer, tag};
}

TEST(DeadlockTest, TwoRankCycle) {
  const std::vector<mpi::WaitInfo> waits = {
      wait(0, mpi::WaitKind::kRecv, 1),
      wait(1, mpi::WaitKind::kRecv, 0),
  };
  const auto report = explain_deadlock(waits);
  EXPECT_TRUE(report.deadlocked);
  ASSERT_EQ(report.cycle.size(), 2u);
  EXPECT_NE(report.description.find("circular wait"), std::string::npos);
}

TEST(DeadlockTest, ThreeRankRing) {
  const std::vector<mpi::WaitInfo> waits = {
      wait(0, mpi::WaitKind::kRecv, 2),
      wait(1, mpi::WaitKind::kRecv, 0),
      wait(2, mpi::WaitKind::kRecv, 1),
  };
  const auto report = explain_deadlock(waits);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_EQ(report.cycle.size(), 3u);
}

TEST(DeadlockTest, StarvationOnFinishedRank) {
  const std::vector<mpi::WaitInfo> waits = {
      wait(0, mpi::WaitKind::kRecv, 1),
      wait(1, mpi::WaitKind::kFinished),
  };
  const auto report = explain_deadlock(waits);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_TRUE(report.cycle.empty());
  ASSERT_EQ(report.starved.size(), 1u);
  EXPECT_EQ(report.starved[0], 0);
}

TEST(DeadlockTest, NoDeadlockWhenSomeoneRuns) {
  const std::vector<mpi::WaitInfo> waits = {
      wait(0, mpi::WaitKind::kRecv, 1),
      wait(1, mpi::WaitKind::kNone),
  };
  const auto report = explain_deadlock(waits);
  EXPECT_FALSE(report.deadlocked);
}

TEST(DeadlockTest, SsendCycleDetected) {
  const std::vector<mpi::WaitInfo> waits = {
      wait(0, mpi::WaitKind::kSsend, 1),
      wait(1, mpi::WaitKind::kSsend, 0),
  };
  const auto report = explain_deadlock(waits);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_EQ(report.cycle.size(), 2u);
}

TEST(DeadlockTest, BuggyStrassenExplained) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto result = mpi::run(
      8, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(result.deadlocked);
  const auto report = explain_deadlock(result.final_waits);
  EXPECT_TRUE(report.deadlocked);
  // The 0 <-> 7 circular wait of Figure 5.
  ASSERT_EQ(report.cycle.size(), 2u);
  const bool zero_seven =
      (report.cycle[0] == 0 && report.cycle[1] == 7) ||
      (report.cycle[0] == 7 && report.cycle[1] == 0);
  EXPECT_TRUE(zero_seven) << report.description;
}

TEST(SupervisionTest, TracksOutstandingSendsLive) {
  LiveSupervisor supervisor(2);
  mpi::RunOptions options;
  options.hooks = &supervisor;
  const auto result = mpi::run(2, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 1);  // will be received
      comm.send_value<int>(2, 1, 9);  // never received
      // While rank 1 sleeps, both sends are outstanding.
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      EXPECT_GE(supervisor.outstanding().size(), 1u);
      comm.recv_value<int>(0, 1);
    }
  }, options);
  ASSERT_TRUE(result.completed);
  const auto leftovers = supervisor.outstanding();
  ASSERT_EQ(leftovers.size(), 1u);
  EXPECT_EQ(leftovers[0].tag, 9);
  EXPECT_EQ(supervisor.total_sends(), 2u);
  EXPECT_EQ(supervisor.total_recvs(), 1u);
  EXPECT_EQ(supervisor.orphan_recvs(), 0u);
}

TEST(RaceTest, DeterministicProgramHasNoRaces) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      4, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.races();
  EXPECT_FALSE(report.racy());
}

TEST(RaceTest, ConcurrentSendersToWildcardAreRacy) {
  // Two senders race to one ANY_SOURCE receive.
  const auto rec = replay::record(3, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.recv_value<int>(mpi::kAnySource, 1);
      comm.recv_value<int>(mpi::kAnySource, 1);
    } else {
      comm.send_value<int>(comm.rank(), 0, 1);
    }
  });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.races();
  ASSERT_TRUE(report.racy());
  // Both receives race (each had the other sender as a candidate).
  EXPECT_GE(report.races.size(), 1u);
  for (const auto& race : report.races) {
    EXPECT_FALSE(race.candidates.empty());
  }
}

TEST(RaceTest, CausallyOrderedWildcardIsNotRacy) {
  // The second send only happens after the first is received and
  // acknowledged: no race despite ANY_SOURCE.
  const auto rec = replay::record(3, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      mpi::Status st;
      comm.recv_value<int>(mpi::kAnySource, 1, &st);
      comm.send_value<int>(0, 2, 2);  // ack triggers rank 2's send
      comm.recv_value<int>(mpi::kAnySource, 1);
    } else if (comm.rank() == 1) {
      comm.send_value<int>(1, 0, 1);
    } else {
      comm.recv_value<int>(0, 2);  // wait for ack
      comm.send_value<int>(2, 0, 1);
    }
  });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.races();
  EXPECT_FALSE(report.racy());
}

TEST(RaceTest, TaskFarmIsRacyWithManyWorkers) {
  apps::taskfarm::Options opts;
  opts.num_tasks = 12;
  const auto rec = replay::record(
      4, [&](mpi::Comm& comm) { apps::taskfarm::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  EXPECT_TRUE(session.races().racy());
}

TEST(TrafficTest, CountsChannelsAndBytes) {
  const auto rec = replay::record(3, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<double>(1.0, 1, 1);
      comm.send_value<double>(2.0, 2, 1);
      comm.send_value<double>(3.0, 2, 1);
    } else {
      const int n = comm.rank() == 1 ? 1 : 2;
      for (int i = 0; i < n; ++i) comm.recv_value<double>(0, 1);
    }
  });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.traffic();
  ASSERT_EQ(report.channels.size(), 2u);
  EXPECT_EQ(report.ranks[0].sends, 3u);
  EXPECT_EQ(report.ranks[0].bytes_out, 3 * sizeof(double));
  EXPECT_EQ(report.ranks[2].recvs, 2u);
  for (const auto& ch : report.channels) {
    EXPECT_GT(ch.mean_latency, 0.0);
    EXPECT_LE(ch.min_latency, ch.max_latency);
  }
}

TEST(TrafficTest, BuggyStrassenIrregularities) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto rec = replay::record(
      8, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.deadlocked);
  analysis::Session session(rec.trace);
  const auto& report = session.traffic();

  bool missed = false;
  bool outlier7 = false;
  for (const auto& irr : report.irregularities) {
    if (irr.kind == Irregularity::Kind::kUnmatchedSend) missed = true;
    if (irr.kind == Irregularity::Kind::kRecvCountOutlier && irr.rank == 7) {
      outlier7 = true;
    }
  }
  // Fig. 6's two observations: the missed message, and rank 7
  // receiving fewer messages than its peers.
  EXPECT_TRUE(missed);
  EXPECT_TRUE(outlier7);
  EXPECT_NE(report.to_string().find("missed message"), std::string::npos);
}

TEST(TrafficTest, CleanRunHasNoIrregularities) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      8, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.traffic();
  EXPECT_TRUE(report.irregularities.empty())
      << report.to_string();
}

}  // namespace
}  // namespace tdbg::analysis
