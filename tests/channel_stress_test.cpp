#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "mpi/runtime.hpp"
#include "replay/record.hpp"

/// Randomized stress tests for the per-(source,dest) channel mailbox:
/// heavy contended traffic at 8+ ranks must preserve exactly the MPI
/// matching semantics the old single-mutex mailbox gave us — FIFO per
/// channel (non-overtaking), wildcard receives that see messages from
/// every channel, and record→replay match-log equivalence.  Each test
/// derives its traffic from a fixed seed so a failure reproduces.

namespace tdbg {
namespace {

using replay::MatchRecorder;
using replay::ReplayController;
using replay::record;

/// Payload exchanged by the stress bodies: enough to identify the
/// sender, the per-(src,dst) sequence number, and to vary the size
/// across the small-buffer / pooled-payload boundary.
struct StressMsg {
  std::int32_t src = -1;
  std::uint32_t seq = 0;      ///< per-(src,dst) send index
  std::uint32_t fill = 0;     ///< payload size knob, echoed for checks
};

/// All-to-all storm: every rank sends `msgs_per_pair` messages to every
/// other rank (random tag out of a small set, random payload size,
/// every 4th one a synchronous send), while receiving its own expected
/// share with wildcard source+tag.  Asserts, per source: channel_seq
/// strictly increasing (FIFO through the ring *and* the overflow
/// deque, even when matched by wildcard) and per-(src,dst) payload
/// sequence numbers increasing.
void storm_body(mpi::Comm& comm, int msgs_per_pair, unsigned seed) {
  const int rank = comm.rank();
  const int size = comm.size();
  std::mt19937 rng(seed + static_cast<unsigned>(rank) * 7919u);
  std::uniform_int_distribution<int> tag_dist(1, 3);
  std::uniform_int_distribution<std::uint32_t> fill_dist(0, 4096);

  // Interleave sending and receiving so rings actually fill and spill
  // into the overflow deque (receivers lag behind senders).
  const int total_recvs = (size - 1) * msgs_per_pair;
  std::vector<std::uint32_t> next_seq(static_cast<std::size_t>(size), 0);
  std::vector<std::uint64_t> last_channel_seq(static_cast<std::size_t>(size));
  std::vector<bool> seen_any(static_cast<std::size_t>(size), false);

  int sent_rounds = 0;
  int received = 0;
  std::vector<StressMsg> scratch;
  while (sent_rounds < msgs_per_pair || received < total_recvs) {
    if (sent_rounds < msgs_per_pair) {
      for (int dest = 0; dest < size; ++dest) {
        if (dest == rank) continue;
        StressMsg m;
        m.src = rank;
        m.seq = static_cast<std::uint32_t>(sent_rounds);
        m.fill = fill_dist(rng);
        // Vary payload size: header plus m.fill % 128 copies, so some
        // messages stay in the small-buffer optimization and some go
        // through the payload pool.
        scratch.assign(1 + m.fill % 128, m);
        const int tag = tag_dist(rng);
        // Synchronous sends only towards higher ranks: the blocked-on
        // relation stays acyclic, so mutual-ssend deadlock (both ends
        // blocked in ssend, neither receiving) cannot form.
        if (dest > rank && (sent_rounds + dest) % 4 == 0) {
          comm.ssend(std::as_bytes(std::span<const StressMsg>(scratch)),
                     dest, tag);
        } else {
          comm.send_span(std::span<const StressMsg>(scratch), dest, tag);
        }
      }
      ++sent_rounds;
    }
    // Drain a few receives per send round; finish the tail after all
    // sends are out.
    const int batch = sent_rounds < msgs_per_pair ? size - 1 : total_recvs;
    for (int i = 0; i < batch && received < total_recvs; ++i) {
      mpi::Status st;
      std::vector<StressMsg> got;
      comm.recv_into<StressMsg>(got, mpi::kAnySource, mpi::kAnyTag, &st);
      ASSERT_FALSE(got.empty());
      const StressMsg& m = got[0];
      ASSERT_EQ(m.src, st.source);
      ASSERT_EQ(got.size(), 1 + m.fill % 128);
      const auto s = static_cast<std::size_t>(st.source);
      // Per-(src,dst) FIFO: same-source messages arrive in send order
      // regardless of tag (all tags share the channel here — the
      // channel sequence is the per-channel total order).
      EXPECT_EQ(m.seq, next_seq[s]) << "from rank " << st.source;
      ++next_seq[s];
      if (seen_any[s]) {
        EXPECT_GT(st.channel_seq, last_channel_seq[s])
            << "channel_seq went backwards for source " << st.source;
      }
      seen_any[s] = true;
      last_channel_seq[s] = st.channel_seq;
      ++received;
    }
  }
  // Every source delivered its full quota.
  for (int src = 0; src < size; ++src) {
    if (src == rank) continue;
    EXPECT_EQ(next_seq[static_cast<std::size_t>(src)],
              static_cast<std::uint32_t>(msgs_per_pair));
  }
}

TEST(ChannelStress, AllToAllFifoPerChannel8Ranks) {
  for (unsigned seed : {1u, 42u, 20260805u}) {
    const auto result = mpi::run(
        8, [&](mpi::Comm& comm) { storm_body(comm, 40, seed); });
    ASSERT_TRUE(result.completed) << "seed " << seed << ": "
                                  << result.abort_detail;
  }
}

TEST(ChannelStress, AllToAllFifoTenRanksSmall) {
  const auto result =
      mpi::run(10, [&](mpi::Comm& comm) { storm_body(comm, 12, 7u); });
  ASSERT_TRUE(result.completed) << result.abort_detail;
}

// Wildcard receives must find messages across channels as they become
// matchable.  The happens-before chain (each send is acknowledged
// before the next sender goes) makes the expected match unique at
// every step, so this is deterministic — no scheduling luck involved.
TEST(ChannelStress, WildcardMatchesAcrossChannelsInCausalOrder) {
  constexpr int kRanks = 6;
  const auto result = mpi::run(kRanks, [](mpi::Comm& comm) {
    constexpr mpi::Tag kData = 7;
    constexpr mpi::Tag kGo = 8;
    if (comm.rank() == 0) {
      // Senders fire one at a time, highest rank first (so a scan that
      // preferred low channel indices over actual availability would
      // still have to wait for the only message in flight).
      for (int sender = kRanks - 1; sender >= 1; --sender) {
        comm.send_value<int>(1, sender, kGo);
        mpi::Status st;
        const int payload = comm.recv_value<int>(mpi::kAnySource, kData, &st);
        EXPECT_EQ(st.source, sender);
        EXPECT_EQ(payload, sender * 11);
      }
    } else {
      comm.recv_value<int>(0, kGo);
      comm.send_value<int>(comm.rank() * 11, 0, kData);
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_detail;
}

/// Nondeterministic wildcard sink: rank 0 absorbs a storm from every
/// other rank with any-source receives — the match order is real
/// nondeterminism that the match log must capture and replay exactly.
void sink_body(mpi::Comm& comm, int msgs_per_sender) {
  const int rank = comm.rank();
  const int size = comm.size();
  if (rank == 0) {
    std::vector<std::uint32_t> next_seq(static_cast<std::size_t>(size), 0);
    for (int i = 0; i < (size - 1) * msgs_per_sender; ++i) {
      mpi::Status st;
      const auto seq = comm.recv_value<std::uint32_t>(mpi::kAnySource, 1, &st);
      EXPECT_EQ(seq, next_seq[static_cast<std::size_t>(st.source)]++);
    }
  } else {
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(msgs_per_sender); ++i) {
      if (i % 5 == 3) {
        comm.ssend(std::as_bytes(std::span<const std::uint32_t>(&i, 1)), 0, 1);
      } else {
        comm.send_value<std::uint32_t>(i, 0, 1);
      }
    }
  }
}

TEST(ChannelStress, RecordReplayMatchLogEquivalence8Ranks) {
  constexpr int kRanks = 8;
  const auto body = [](mpi::Comm& comm) { sink_body(comm, 25); };
  const auto rec = record(kRanks, body);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  ASSERT_GT(rec.log.total_receives(), 0u);

  for (int trial = 0; trial < 3; ++trial) {
    MatchRecorder second(kRanks);
    ReplayController controller(rec.log);
    mpi::RunOptions options;
    options.hooks = &second;
    options.controller = &controller;
    const auto replayed = mpi::run(kRanks, body, options);
    ASSERT_TRUE(replayed.completed) << replayed.abort_detail;
    EXPECT_EQ(second.log(), rec.log) << "trial " << trial;
  }
}

TEST(ChannelStress, RecordReplayStormEquivalence) {
  // The full all-to-all storm, recorded and replayed: wildcard source
  // *and* tag on every receive, payload sizes crossing the pool
  // boundary, ssends mixed in.
  constexpr int kRanks = 8;
  const auto body = [](mpi::Comm& comm) { storm_body(comm, 10, 99u); };
  const auto rec = record(kRanks, body);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;

  MatchRecorder second(kRanks);
  ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  const auto replayed = mpi::run(kRanks, body, options);
  ASSERT_TRUE(replayed.completed) << replayed.abort_detail;
  EXPECT_EQ(second.log(), rec.log);
}

}  // namespace
}  // namespace tdbg
