#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "apps/lu.hpp"
#include "apps/strassen.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"

namespace tdbg::causality {
namespace {

using trace::Event;
using trace::EventKind;

Event ev(EventKind kind, mpi::Rank rank, std::uint64_t marker,
         support::TimeNs t0, support::TimeNs t1,
         mpi::Rank peer = mpi::kAnySource, mpi::Tag tag = 0,
         mpi::ChannelSeq seq = 0) {
  Event e;
  e.kind = kind;
  e.rank = rank;
  e.marker = marker;
  e.t_start = t0;
  e.t_end = t1;
  e.peer = peer;
  e.tag = tag;
  e.channel_seq = seq;
  return e;
}

/// Three ranks: 0 sends to 1, 1 sends to 2.  A transitive chain.
trace::Trace chain_trace() {
  std::vector<Event> events;
  events.push_back(ev(EventKind::kMark, 0, 1, 0, 1));          // a0
  events.push_back(ev(EventKind::kSend, 0, 2, 2, 3, 1));       // s01
  events.push_back(ev(EventKind::kMark, 0, 3, 4, 5));          // a1
  events.push_back(ev(EventKind::kRecv, 1, 1, 6, 7, 0, 0, 0)); // r01
  events.push_back(ev(EventKind::kSend, 1, 2, 8, 9, 2));       // s12
  events.push_back(ev(EventKind::kRecv, 2, 1, 10, 11, 1, 0, 0));  // r12
  events.push_back(ev(EventKind::kMark, 2, 2, 12, 13));        // b1
  return trace::Trace(3, std::move(events), nullptr);
}

std::size_t index_of(const trace::Trace& t, mpi::Rank rank,
                     std::uint64_t marker) {
  const auto i = t.find_marker(rank, marker);
  EXPECT_TRUE(i.has_value());
  return *i;
}

TEST(CausalOrderTest, ProgramOrderIsHappensBefore) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto a0 = index_of(trace, 0, 1);
  const auto s01 = index_of(trace, 0, 2);
  EXPECT_TRUE(order.happens_before(a0, s01));
  EXPECT_FALSE(order.happens_before(s01, a0));
  EXPECT_FALSE(order.happens_before(a0, a0));
}

TEST(CausalOrderTest, MessageEdgeAndTransitivity) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto s01 = index_of(trace, 0, 2);
  const auto r01 = index_of(trace, 1, 1);
  const auto r12 = index_of(trace, 2, 1);
  const auto b1 = index_of(trace, 2, 2);
  EXPECT_TRUE(order.happens_before(s01, r01));
  EXPECT_TRUE(order.happens_before(s01, r12));  // transitive via rank 1
  EXPECT_TRUE(order.happens_before(s01, b1));
}

TEST(CausalOrderTest, ConcurrencyAcrossRanks) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto a0 = index_of(trace, 0, 1);
  const auto a1 = index_of(trace, 0, 3);
  const auto r12 = index_of(trace, 2, 1);
  // a1 (after the send on rank 0) is concurrent with rank 2's recv.
  EXPECT_TRUE(order.concurrent(a1, r12));
  // a0 precedes the send, so it happens before everything downstream.
  EXPECT_TRUE(order.happens_before(a0, r12));
}

TEST(CausalOrderTest, PastFrontierPicksLatestPredecessors) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto b1 = index_of(trace, 2, 2);
  const auto frontier = order.past_frontier(b1);
  ASSERT_EQ(frontier.size(), 3u);
  // Rank 0: the send (marker 2) is the last event affecting b1 —
  // marker 3 is concurrent.
  ASSERT_TRUE(frontier[0].has_value());
  EXPECT_EQ(trace.event(*frontier[0]).marker, 2u);
  // Rank 1: its send (marker 2).
  ASSERT_TRUE(frontier[1].has_value());
  EXPECT_EQ(trace.event(*frontier[1]).marker, 2u);
  // Own rank: predecessor.
  ASSERT_TRUE(frontier[2].has_value());
  EXPECT_EQ(trace.event(*frontier[2]).marker, 1u);
}

TEST(CausalOrderTest, FutureFrontierPicksEarliestSuccessors) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto s01 = index_of(trace, 0, 2);
  const auto frontier = order.future_frontier(s01);
  // Rank 1: the receive (marker 1) is the first affected event.
  ASSERT_TRUE(frontier[1].has_value());
  EXPECT_EQ(trace.event(*frontier[1]).marker, 1u);
  // Rank 2: its receive.
  ASSERT_TRUE(frontier[2].has_value());
  EXPECT_EQ(trace.event(*frontier[2]).marker, 1u);
  // Own rank: successor (marker 3).
  ASSERT_TRUE(frontier[0].has_value());
  EXPECT_EQ(trace.event(*frontier[0]).marker, 3u);
}

TEST(CausalOrderTest, PastAndFutureSetsPartitionWithConcurrency) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  for (std::size_t e = 0; e < trace.size(); ++e) {
    const auto past = order.causal_past(e);
    const auto future = order.causal_future(e);
    const auto region = order.concurrency_region(e);
    EXPECT_EQ(past.size() + future.size() + region.size() + 1, trace.size())
        << "event " << e;
    for (auto p : past) EXPECT_TRUE(order.happens_before(p, e));
    for (auto f : future) EXPECT_TRUE(order.happens_before(e, f));
    for (auto c : region) EXPECT_TRUE(order.concurrent(e, c));
  }
}

TEST(CausalOrderTest, FrontierCutsAreConsistent) {
  const auto trace = chain_trace();
  analysis::Session session(trace);
  const auto& order = session.causal_order();
  const auto& report = session.match_report();
  const auto& index = session.rank_index();
  for (std::size_t e = 0; e < trace.size(); ++e) {
    EXPECT_TRUE(is_consistent(trace, report, index, order.past_frontier_cut(e)))
        << "past cut of " << e;
    EXPECT_TRUE(
        is_consistent(trace, report, index, order.future_frontier_cut(e)))
        << "future cut of " << e;
  }
}

TEST(CausalOrderTest, InconsistentCutDetected) {
  const auto trace = chain_trace();
  // Include rank 1's receive but exclude rank 0's send.
  analysis::Session session(trace);
  const auto& report = session.match_report();
  const auto& index = session.rank_index();
  Cut cut;
  cut.prefix_len = {1, 1, 0};  // rank 0: only marker 1; rank 1: the recv
  EXPECT_FALSE(is_consistent(trace, report, index, cut));
  auto fixed = cut;
  const auto dropped = restrict_to_consistent(trace, report, index, fixed);
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(is_consistent(trace, report, index, fixed));
}

// --- Property-style sweeps over real application traces -----------------

class FrontierPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FrontierPropertyTest, LuFrontiersAreSoundAndTight) {
  apps::lu::Options opts;
  opts.px = 4;
  opts.py = 2;
  opts.nx = 4;
  opts.ny = 4;
  opts.iterations = 2;
  const auto rec = replay::record(
      8, [&](mpi::Comm& comm) { apps::lu::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();

  // Probe a pseudo-random selection of events determined by the param.
  const auto step = std::max<std::size_t>(1, rec.trace.size() / 13);
  for (std::size_t e = static_cast<std::size_t>(GetParam()); e < rec.trace.size();
       e += step) {
    const auto past = order.past_frontier(e);
    const auto future = order.future_frontier(e);
    for (mpi::Rank r = 0; r < 8; ++r) {
      const auto& seq = rec.trace.rank_events(r);
      const auto& pf = past[static_cast<std::size_t>(r)];
      const auto& ff = future[static_cast<std::size_t>(r)];
      // Soundness: frontier events are ordered with e.
      if (pf) {
        EXPECT_TRUE(order.happens_before(*pf, e) || *pf == e);
      }
      if (ff) {
        EXPECT_TRUE(order.happens_before(e, *ff));
      }
      // Tightness: the event after the past frontier is NOT in the
      // past; the event before the future frontier is NOT in the
      // future.
      if (pf && *pf != e) {
        const auto pos = order.position(*pf);
        if (pos + 1 < seq.size() && seq[pos + 1] != e) {
          EXPECT_FALSE(order.happens_before(seq[pos + 1], e));
        }
      }
      if (ff) {
        const auto pos = order.position(*ff);
        if (pos > 0 && seq[pos - 1] != e) {
          EXPECT_FALSE(order.happens_before(e, seq[pos - 1]));
        }
      }
    }
    // Frontier cuts of real traces are consistent.
    EXPECT_TRUE(is_consistent(rec.trace, session.match_report(),
                              session.rank_index(),
                              order.past_frontier_cut(e)));
    EXPECT_TRUE(is_consistent(rec.trace, session.match_report(),
                              session.rank_index(),
                              order.future_frontier_cut(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, FrontierPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7));

TEST(CausalOrderTest, StrassenEveryVerticalCutConsistentAfterRestriction) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      4, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& report = session.match_report();
  const auto& index = session.rank_index();
  for (int i = 0; i <= 50; ++i) {
    const auto t =
        rec.trace.t_min() + (rec.trace.t_max() - rec.trace.t_min()) * i / 50;
    auto cut = cut_at_time(rec.trace, t);
    restrict_to_consistent(rec.trace, report, index, cut);
    EXPECT_TRUE(is_consistent(rec.trace, report, index, cut)) << "i=" << i;
  }
}

}  // namespace
}  // namespace tdbg::causality
