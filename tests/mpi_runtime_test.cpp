#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"

namespace tdbg::mpi {
namespace {

TEST(Runtime, SingleRankRunsBody) {
  bool ran = false;
  const auto result = run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ran = true;
  });
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(ran);
}

TEST(Runtime, ThisRankIsBoundInsideBody) {
  EXPECT_EQ(this_rank(), -1);
  const auto result = run(3, [](Comm& comm) {
    EXPECT_EQ(this_rank(), comm.rank());
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(this_rank(), -1);
}

TEST(Runtime, PingPong) {
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(42, 1, 7);
      const int back = comm.recv_value<int>(1, 8);
      EXPECT_EQ(back, 43);
    } else {
      const int got = comm.recv_value<int>(0, 7);
      EXPECT_EQ(got, 42);
      comm.send_value<int>(got + 1, 0, 8);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, NonOvertakingSameTag) {
  // Two messages with the same tag from the same source must be
  // received in send order (MPI non-overtaking).
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send_value<int>(i, 1, 5);
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 5), i);
      }
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, TagSelectionSkipsEarlierNonMatching) {
  // A receive for tag B must match even when a tag-A message was sent
  // first and is still queued.
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, /*tag=*/10);
      comm.send_value<int>(2, 1, /*tag=*/20);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, AnySourceReceivesFromEveryone) {
  constexpr int kRanks = 6;
  const auto result = run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(kRanks, false);
      for (int i = 1; i < kRanks; ++i) {
        Status st;
        const int payload = comm.recv_value<int>(kAnySource, 3, &st);
        EXPECT_EQ(payload, st.source * 100);
        EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
    } else {
      comm.send_value<int>(comm.rank() * 100, 0, 3);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, AnyTagReceivesActualTag) {
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(5, 1, 17);
    } else {
      Status st;
      const int got = comm.recv_value<int>(0, kAnyTag, &st);
      EXPECT_EQ(got, 5);
      EXPECT_EQ(st.tag, 17);
      EXPECT_EQ(st.source, 0);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, StatusCarriesChannelSeq) {
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 4);
      comm.send_value<int>(2, 1, 4);
    } else {
      Status st;
      comm.recv_value<int>(0, 4, &st);
      EXPECT_EQ(st.channel_seq, 0u);
      comm.recv_value<int>(0, 4, &st);
      EXPECT_EQ(st.channel_seq, 1u);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, SsendBlocksUntilMatched) {
  std::atomic<bool> receiver_ready{false};
  const auto result = run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.ssend(std::span<const std::byte>(), 1, 9);
      // When ssend returns, the receive must have happened.
      EXPECT_TRUE(receiver_ready.load());
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      receiver_ready.store(true);
      std::vector<std::byte> buf;
      comm.recv(buf, 0, 9);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, ProbeReportsWithoutConsuming) {
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<double>(2.5, 1, 11);
    } else {
      const Status st = comm.probe(0, 11);
      EXPECT_EQ(st.bytes, sizeof(double));
      EXPECT_EQ(comm.recv_value<double>(0, 11), 2.5);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, DeadlockIsDetectedAndUnwound) {
  // Ranks 0 and 1 both receive first: circular wait, no messages.
  const auto result = run(2, [](Comm& comm) {
    std::vector<std::byte> buf;
    comm.recv(buf, 1 - comm.rank(), 0);
    comm.send(std::span<const std::byte>(), 1 - comm.rank(), 0);
  });
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked);
  ASSERT_EQ(result.final_waits.size(), 2u);
  EXPECT_EQ(result.final_waits[0].kind, WaitKind::kRecv);
  EXPECT_EQ(result.final_waits[0].peer, 1);
  EXPECT_EQ(result.final_waits[1].kind, WaitKind::kRecv);
  EXPECT_EQ(result.final_waits[1].peer, 0);
  EXPECT_NE(result.abort_detail.find("deadlock"), std::string::npos);
}

TEST(Runtime, RankFailurePropagates) {
  const auto result = run(2, [](Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("boom");
    // Rank 0 blocks forever; the abort from rank 1 must unwind it.
    std::vector<std::byte> buf;
    comm.recv(buf, 1, 0);
  });
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.deadlocked);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].rank, 1);
  EXPECT_NE(result.failures[0].what.find("boom"), std::string::npos);
}

TEST(Collectives, BarrierSynchronizes) {
  constexpr int kRanks = 5;
  std::atomic<int> before{0};
  const auto result = run(kRanks, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), kRanks);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, BcastFromEveryRoot) {
  constexpr int kRanks = 7;
  for (int root = 0; root < kRanks; ++root) {
    const auto result = run(kRanks, [root](Comm& comm) {
      std::vector<std::byte> data;
      if (comm.rank() == root) {
        data.resize(16, std::byte{static_cast<unsigned char>(root + 1)});
      }
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 16u);
      for (auto b : data) {
        EXPECT_EQ(b, std::byte{static_cast<unsigned char>(root + 1)});
      }
    });
    EXPECT_TRUE(result.completed) << "root=" << root;
  }
}

TEST(Collectives, ReduceSumsToRoot) {
  constexpr int kRanks = 6;
  for (int root = 0; root < kRanks; ++root) {
    const auto result = run(kRanks, [root](Comm& comm) {
      std::vector<std::byte> data(sizeof(int));
      int mine = comm.rank() + 1;
      std::memcpy(data.data(), &mine, sizeof mine);
      comm.reduce(data, root,
                  [](std::span<std::byte> acc, std::span<const std::byte> in) {
                    int a, b;
                    std::memcpy(&a, acc.data(), sizeof a);
                    std::memcpy(&b, in.data(), sizeof b);
                    a += b;
                    std::memcpy(acc.data(), &a, sizeof a);
                  });
      if (comm.rank() == root) {
        int total;
        std::memcpy(&total, data.data(), sizeof total);
        EXPECT_EQ(total, kRanks * (kRanks + 1) / 2);
      }
    });
    EXPECT_TRUE(result.completed) << "root=" << root;
  }
}

TEST(Collectives, AllreduceMax) {
  constexpr int kRanks = 8;
  const auto result = run(kRanks, [](Comm& comm) {
    const int maxed = comm.allreduce_value<int>(
        comm.rank() * 3, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(maxed, (kRanks - 1) * 3);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, GatherOrdersByRank) {
  constexpr int kRanks = 5;
  const auto result = run(kRanks, [](Comm& comm) {
    const int mine = comm.rank() * 7;
    auto parts = comm.gather(
        std::as_bytes(std::span<const int>(&mine, 1)), /*root=*/2);
    if (comm.rank() == 2) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(kRanks));
      for (int r = 0; r < kRanks; ++r) {
        int value;
        ASSERT_EQ(parts[static_cast<std::size_t>(r)].size(), sizeof value);
        std::memcpy(&value, parts[static_cast<std::size_t>(r)].data(),
                    sizeof value);
        EXPECT_EQ(value, r * 7);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Collectives, ScatterDeliversPerRankParts) {
  constexpr int kRanks = 4;
  const auto result = run(kRanks, [](Comm& comm) {
    std::vector<std::vector<std::byte>> parts;
    if (comm.rank() == 0) {
      for (int r = 0; r < kRanks; ++r) {
        parts.push_back(std::vector<std::byte>(
            static_cast<std::size_t>(r + 1),
            std::byte{static_cast<unsigned char>(r)}));
      }
    }
    const auto mine = comm.scatter(parts, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(comm.rank() + 1));
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, ManyToOneWildcardStress) {
  constexpr int kRanks = 8;
  constexpr int kPerRank = 200;
  const auto result = run(kRanks, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> totals(kRanks, 0);
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        Status st;
        const int v = comm.recv_value<int>(kAnySource, 1, &st);
        EXPECT_EQ(v, totals[static_cast<std::size_t>(st.source)]);
        ++totals[static_cast<std::size_t>(st.source)];
      }
      for (int r = 1; r < kRanks; ++r) {
        EXPECT_EQ(totals[static_cast<std::size_t>(r)], kPerRank);
      }
    } else {
      for (int i = 0; i < kPerRank; ++i) comm.send_value<int>(i, 0, 1);
    }
  });
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace tdbg::mpi
