#include <gtest/gtest.h>

#include <cmath>

#include "apps/fib.hpp"
#include "apps/lu.hpp"
#include "apps/matrix.hpp"
#include "apps/ring.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "mpi/runtime.hpp"

namespace tdbg::apps {
namespace {

TEST(Matrix, StandardMultiplyIdentity) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  Matrix b(3, 3);
  b.fill_pattern(42);
  EXPECT_EQ(multiply_standard(a, b), b);
}

TEST(Matrix, AddSubRoundTrip) {
  Matrix a(4, 6), b(4, 6);
  a.fill_pattern(1);
  b.fill_pattern(2);
  EXPECT_LT(max_abs_diff(sub(add(a, b), b), a), 1e-12);
}

TEST(Matrix, SplitCombineRoundTrip) {
  Matrix m(8, 10);
  m.fill_pattern(9);
  EXPECT_EQ(combine(split(m)), m);
}

TEST(Matrix, StrassenMatchesStandard) {
  for (std::size_t n : {4u, 8u, 16u, 64u}) {
    Matrix a(n, n), b(n, n);
    a.fill_pattern(n);
    b.fill_pattern(n + 1);
    const Matrix expect = multiply_standard(a, b);
    const Matrix got = strassen_local(a, b, /*cutoff=*/4);
    EXPECT_LT(max_abs_diff(got, expect), 1e-6) << "n=" << n;
  }
}

TEST(Matrix, StrassenRectangular) {
  Matrix a(12, 16), b(16, 8);
  a.fill_pattern(3);
  b.fill_pattern(4);
  EXPECT_LT(max_abs_diff(strassen_local(a, b, 2), multiply_standard(a, b)),
            1e-6);
}

TEST(Matrix, StrassenOddFallsBackToStandard) {
  Matrix a(7, 7), b(7, 7);
  a.fill_pattern(5);
  b.fill_pattern(6);
  EXPECT_LT(max_abs_diff(strassen_local(a, b, 2), multiply_standard(a, b)),
            1e-9);
}

TEST(Fib, InstrumentedEqualsPlain) {
  for (unsigned n : {0u, 1u, 2u, 10u, 20u}) {
    EXPECT_EQ(fib_instrumented(n), fib_plain(n)) << "n=" << n;
  }
  EXPECT_EQ(fib_plain(20), 6765u);
}

TEST(Fib, CallCountFormula) {
  // calls(n) = 1 + calls(n-1) + calls(n-2), calls(0) = calls(1) = 1.
  std::vector<std::uint64_t> calls = {1, 1};
  for (unsigned n = 2; n <= 25; ++n) {
    calls.push_back(1 + calls[n - 1] + calls[n - 2]);
  }
  for (unsigned n = 0; n <= 25; ++n) {
    EXPECT_EQ(fib_call_count(n), calls[n]) << "n=" << n;
  }
}

TEST(Strassen, DistributedMatchesReferenceOn8Ranks) {
  strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 8;
  const auto result = mpi::run(
      8, [&](mpi::Comm& comm) { strassen::rank_body(comm, opts); });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(Strassen, DistributedWorksWithFewerWorkers) {
  for (int ranks : {2, 3, 4, 5}) {
    strassen::Options opts;
    opts.n = 32;
    opts.cutoff = 8;
    const auto result = mpi::run(
        ranks, [&](mpi::Comm& comm) { strassen::rank_body(comm, opts); });
    EXPECT_TRUE(result.completed) << "ranks=" << ranks << ": "
                                  << result.abort_detail;
  }
}

TEST(Strassen, BuggyVariantDeadlocksZeroAndSeven) {
  strassen::Options opts;
  opts.n = 32;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto result = mpi::run(
      8, [&](mpi::Comm& comm) { strassen::rank_body(comm, opts); });
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked) << result.abort_detail;

  // The paper's Figure 5: processes 0 and 7 are blocked in receives
  // waiting for data from each other.
  ASSERT_EQ(result.final_waits.size(), 8u);
  EXPECT_EQ(result.final_waits[0].kind, mpi::WaitKind::kRecv);
  EXPECT_EQ(result.final_waits[0].peer, 7);
  EXPECT_EQ(result.final_waits[7].kind, mpi::WaitKind::kRecv);
  EXPECT_EQ(result.final_waits[7].peer, 0);
  for (int r = 1; r <= 6; ++r) {
    EXPECT_EQ(result.final_waits[static_cast<std::size_t>(r)].kind,
              mpi::WaitKind::kFinished)
        << "rank " << r;
  }
}

TEST(Strassen, WorkerAssignmentRoundRobin) {
  EXPECT_EQ(strassen::worker_for_product(0, 8), 1);
  EXPECT_EQ(strassen::worker_for_product(6, 8), 7);
  EXPECT_EQ(strassen::worker_for_product(0, 4), 1);
  EXPECT_EQ(strassen::worker_for_product(3, 4), 1);
  EXPECT_EQ(strassen::worker_for_product(6, 4), 1);
}

TEST(Strassen, ProductCombinationIsStrassen) {
  Matrix a(16, 16), b(16, 16);
  a.fill_pattern(11);
  b.fill_pattern(12);
  auto ops = strassen::product_operands(a, b);
  ASSERT_EQ(ops.size(), 7u);
  std::vector<Matrix> products;
  for (const auto& [l, r] : ops) products.push_back(multiply_standard(l, r));
  EXPECT_LT(max_abs_diff(strassen::combine_products(products),
                         multiply_standard(a, b)),
            1e-6);
}

TEST(Lu, RunsOnGridAndIsDeterministic) {
  lu::Options opts;
  opts.px = 4;
  opts.py = 2;
  opts.nx = 8;
  opts.ny = 8;
  opts.iterations = 2;
  double first = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    double checksum = 0.0;
    const auto result = mpi::run(8, [&](mpi::Comm& comm) {
      const double v = lu::rank_body(comm, opts);
      if (comm.rank() == 0) checksum = v;
    });
    ASSERT_TRUE(result.completed) << result.abort_detail;
    if (trial == 0) {
      first = checksum;
      EXPECT_TRUE(std::isfinite(checksum));
    } else {
      EXPECT_EQ(checksum, first) << "trial " << trial;
    }
  }
}

TEST(Lu, SingleColumnGrid) {
  lu::Options opts;
  opts.px = 1;
  opts.py = 4;
  opts.nx = 6;
  opts.ny = 6;
  opts.iterations = 1;
  const auto result =
      mpi::run(4, [&](mpi::Comm& comm) { lu::rank_body(comm, opts); });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(Ring, TokenAccumulatesAcrossLaps) {
  for (int ranks : {1, 2, 4, 8}) {
    ring::Options opts;
    opts.laps = 3;
    std::uint64_t final_token = 0;
    const auto result = mpi::run(ranks, [&](mpi::Comm& comm) {
      const auto v = ring::rank_body(comm, opts);
      if (comm.rank() == 0) final_token = v;
    });
    EXPECT_TRUE(result.completed) << "ranks=" << ranks;
    EXPECT_EQ(final_token, static_cast<std::uint64_t>(3 * ranks));
  }
}

TEST(TaskFarm, TotalsVerifyAcrossWorkerCounts) {
  for (int ranks : {2, 3, 5, 8}) {
    taskfarm::Options opts;
    opts.num_tasks = 23;
    const auto result = mpi::run(
        ranks, [&](mpi::Comm& comm) { taskfarm::rank_body(comm, opts); });
    EXPECT_TRUE(result.completed) << "ranks=" << ranks << ": "
                                  << result.abort_detail;
  }
}

TEST(TaskFarm, FewerTasksThanWorkers) {
  taskfarm::Options opts;
  opts.num_tasks = 2;
  const auto result = mpi::run(
      6, [&](mpi::Comm& comm) { taskfarm::rank_body(comm, opts); });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

}  // namespace
}  // namespace tdbg::apps
