#include <gtest/gtest.h>

#include "apps/ring.hpp"
#include "apps/strassen.hpp"
#include "debugger/debugger.hpp"
#include "instrument/api.hpp"

namespace tdbg::dbg {
namespace {

apps::strassen::Options strassen_opts(bool buggy) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = buggy;
  return opts;
}

mpi::RankBody strassen_body(bool buggy) {
  return [opts = strassen_opts(buggy)](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  };
}

TEST(DebuggerTest, RecordsAndExposesHistory) {
  Debugger dbg(8, strassen_body(false));
  const auto& result = dbg.record();
  ASSERT_TRUE(result.completed) << result.abort_detail;
  EXPECT_GT(dbg.trace().size(), 0u);
  EXPECT_FALSE(dbg.deadlock_report().deadlocked);
  EXPECT_TRUE(dbg.traffic().irregularities.empty());
  EXPECT_FALSE(dbg.races().racy());

  // The communication picture of Fig. 3: 7 x 2 operand sends + 7
  // results = 21 matched messages.
  const auto cg = dbg.comm_graph();
  EXPECT_EQ(cg.nodes().size(), 21u);
  EXPECT_TRUE(cg.unmatched_sends().empty());
}

TEST(DebuggerTest, BuggyRunDiagnosis) {
  Debugger dbg(8, strassen_body(true));
  const auto& result = dbg.record();
  ASSERT_TRUE(result.deadlocked);

  const auto deadlock = dbg.deadlock_report();
  EXPECT_TRUE(deadlock.deadlocked);
  ASSERT_EQ(deadlock.cycle.size(), 2u);

  const auto traffic = dbg.traffic();
  EXPECT_FALSE(traffic.irregularities.empty());
}

TEST(DebuggerTest, ReplayToVerticalStoplineAndInspect) {
  Debugger dbg(8, strassen_body(false));
  ASSERT_TRUE(dbg.record().completed);

  const auto t_mid = (dbg.trace().t_min() + dbg.trace().t_max()) / 2;
  const auto line = dbg.stopline_at(t_mid);
  const auto stops = dbg.replay_to(line);
  EXPECT_FALSE(stops.empty());
  for (const auto& stop : stops) {
    const auto& expect = line.thresholds[static_cast<std::size_t>(stop.rank)];
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(stop.marker, *expect);
  }
  const auto result = dbg.end_replay();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
}

TEST(DebuggerTest, Figure7WorkflowFindsWrongSendDestination) {
  // The paper's §4.1 walkthrough: the buggy Strassen deadlocks; the
  // user sets a stopline before the distribution loop, replays, and
  // steps rank 0 through the MatrSend calls until the incorrect
  // destination shows up.
  Debugger dbg(8, strassen_body(true));
  ASSERT_TRUE(dbg.record().deadlocked);

  // Find rank 0's first MatrSend activation and stop right at it
  // ("set a stopline somewhere before the first send in the group").
  const auto& trace = dbg.trace();
  std::optional<std::size_t> first_send;
  for (std::size_t i : trace.rank_events(0)) {
    const auto& e = trace.event(i);
    if (e.kind == trace::EventKind::kEnter &&
        trace.constructs().info(e.construct).name == "MatrSend") {
      first_send = i;
      break;
    }
  }
  ASSERT_TRUE(first_send.has_value());

  replay::Stopline line;
  line.thresholds.assign(8, std::nullopt);
  line.thresholds[0] = trace.event(*first_send).marker;
  const auto stops = dbg.replay_to(line);
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_EQ(stops[0].rank, 0);

  // Step rank 0 through the distribution loop, watching the
  // UserMonitor records of MatrSend (TDBG_FUNCTION_ARGS logs the
  // destination as arg1).  With the bug, the tag-B operand of product
  // jres goes to rank jres instead of jres+1.
  std::vector<std::uint64_t> observed_dests;
  const auto observe = [&](const replay::StopInfo& stop) {
    if (stop.kind != trace::EventKind::kEnter) return;
    if (trace.constructs().info(stop.construct).name != "MatrSend") return;
    const auto* session = dbg.replay_session();
    ASSERT_NE(session, nullptr);
    observed_dests.push_back(session->last_record(0).arg1);
  };
  observe(stops[0]);  // the stopline stop is itself the first MatrSend
  for (int guard = 0; guard < 600 && observed_dests.size() < 14; ++guard) {
    const auto stop = dbg.step(0);
    if (!stop.has_value()) break;
    observe(*stop);
  }
  ASSERT_GE(observed_dests.size(), 4u);
  // Sends alternate operand A (correct dest jres+1) and operand B
  // (buggy dest jres): 1,0, 2,1, 3,2, ...
  EXPECT_EQ(observed_dests[0], 1u);
  EXPECT_EQ(observed_dests[1], 0u);  // the bug: should be 1
  EXPECT_EQ(observed_dests[2], 2u);
  EXPECT_EQ(observed_dests[3], 1u);  // should be 2

  const auto result = dbg.end_replay();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->deadlocked);  // replaying the bug deadlocks again
}

TEST(DebuggerTest, UndoReturnsToPreviousStop) {
  Debugger dbg(2, [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 10;
    apps::ring::rank_body(comm, opts);
  });
  ASSERT_TRUE(dbg.record().completed);

  replay::Stopline first;
  first.thresholds = {std::uint64_t{3}, std::uint64_t{3}};
  auto stops = dbg.replay_to(first);
  ASSERT_EQ(stops.size(), 2u);

  replay::Stopline second;
  second.thresholds = {std::uint64_t{8}, std::uint64_t{8}};
  stops = dbg.replay_to(second);  // resumption: records markers for undo
  ASSERT_EQ(stops.size(), 2u);
  EXPECT_EQ(stops[0].marker, 8u);
  ASSERT_EQ(dbg.undo_depth(), 1u);

  // Undo: back to the state before the second resumption.
  const auto undone = dbg.undo();
  ASSERT_TRUE(undone.has_value());
  ASSERT_EQ(undone->size(), 2u);
  for (const auto& stop : *undone) {
    EXPECT_EQ(stop.marker, 3u) << "rank " << stop.rank;
  }
  EXPECT_EQ(dbg.undo_depth(), 0u);
  EXPECT_FALSE(dbg.undo().has_value());

  const auto result = dbg.end_replay();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
}

TEST(DebuggerTest, UndoAfterStepsRestoresMarker) {
  Debugger dbg(2, [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 10;
    apps::ring::rank_body(comm, opts);
  });
  ASSERT_TRUE(dbg.record().completed);

  replay::Stopline line;
  line.thresholds = {std::uint64_t{5}, std::nullopt};
  auto stops = dbg.replay_to(line);
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_EQ(stops[0].marker, 5u);

  // Step twice, then undo twice: back at marker 5... undo replays to
  // the recorded marker, which parks right where the rank stood.
  ASSERT_TRUE(dbg.step(0).has_value());   // marker 6
  ASSERT_TRUE(dbg.step(0).has_value());   // marker 7
  auto undone = dbg.undo();               // back to 6
  ASSERT_TRUE(undone.has_value());
  ASSERT_EQ(undone->size(), 1u);
  EXPECT_EQ((*undone)[0].marker, 6u);
  undone = dbg.undo();                    // back to 5
  ASSERT_TRUE(undone.has_value());
  EXPECT_EQ((*undone)[0].marker, 5u);

  dbg.end_replay();
}

TEST(DebuggerTest, StoplinesFromFrontiers) {
  Debugger dbg(8, strassen_body(false));
  ASSERT_TRUE(dbg.record().completed);
  // Pick a mid-trace receive on rank 0.
  const auto& trace = dbg.trace();
  std::optional<std::size_t> target;
  for (std::size_t i : trace.rank_events(0)) {
    if (trace.event(i).kind == trace::EventKind::kRecv) target = i;
  }
  ASSERT_TRUE(target.has_value());
  const auto past = dbg.stopline_past_frontier(*target);
  const auto future = dbg.stopline_future_frontier(*target);
  ASSERT_EQ(past.thresholds.size(), 8u);
  ASSERT_EQ(future.thresholds.size(), 8u);
  // Frontier stoplines are replayable.
  const auto stops = dbg.replay_to(past);
  EXPECT_FALSE(stops.empty());
  const auto result = dbg.end_replay();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
}

TEST(DebuggerTest, LiveLaunchStopsFirstExecution) {
  // p2d2's primary mode: breakpoints on the FIRST run, no prior
  // recording.
  Debugger dbg(2, [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 6;
    apps::ring::rank_body(comm, opts);
  });
  replay::Stopline line;
  line.thresholds = {std::uint64_t{4}, std::uint64_t{4}};
  const auto stops = dbg.launch(line);
  EXPECT_TRUE(dbg.live());
  ASSERT_EQ(stops.size(), 2u);
  EXPECT_EQ(stops[0].marker, 4u);

  // Stepping works on the live run.
  const auto next = dbg.step(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->marker, 5u);

  // Undo on a live run: replay the partially-recorded log back to the
  // pre-step markers.
  const auto undone = dbg.undo();
  ASSERT_TRUE(undone.has_value());
  bool rank0_at_4 = false;
  for (const auto& s : *undone) {
    if (s.rank == 0) rank0_at_4 = s.marker == 4;
  }
  EXPECT_TRUE(rank0_at_4);

  // Ending the live run captures its history...
  const auto result = dbg.end_replay();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->completed);
  EXPECT_FALSE(dbg.live());
  EXPECT_GT(dbg.trace().size(), 0u);

  // ...which is then replayable like any recorded run.
  const auto again = dbg.replay_to(line);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].marker, 4u);
  dbg.end_replay();
}

TEST(DebuggerTest, LiveLaunchCapturesWildcardLogForExactReplay) {
  // A racy target launched live: after the live run ends, the captured
  // match log must drive an exact replay.
  const auto body = [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 6; ++i) {
        comm.recv_value<int>(mpi::kAnySource, 1);
      }
    } else {
      for (int i = 0; i < 3; ++i) comm.send_value<int>(i, 0, 1);
    }
  };
  Debugger dbg(3, body);
  replay::Stopline line;
  line.thresholds.assign(3, std::nullopt);
  line.thresholds[0] = std::uint64_t{2};
  dbg.launch(line);
  const auto result = dbg.end_replay();
  ASSERT_TRUE(result && result->completed);

  // Replay to the end and compare the wildcard match order via the
  // trace: the replayed receives must name the same sources in the
  // same order.
  std::vector<mpi::Rank> recorded_sources;
  for (std::size_t i : dbg.trace().rank_events(0)) {
    const auto& e = dbg.trace().event(i);
    if (e.kind == trace::EventKind::kRecv) recorded_sources.push_back(e.peer);
  }
  ASSERT_EQ(recorded_sources.size(), 6u);

  replay::Stopline open;
  open.thresholds.assign(3, std::nullopt);
  dbg.replay_to(open);
  const auto replay_result = dbg.end_replay();
  EXPECT_TRUE(replay_result && replay_result->completed);
}

TEST(DebuggerTest, RecordAfterLaunchRejected) {
  Debugger dbg(2, [](mpi::Comm&) {});
  replay::Stopline line;
  line.thresholds.assign(2, std::nullopt);
  dbg.launch(line);
  EXPECT_THROW(dbg.record(), Error);
  dbg.end_replay();
}

TEST(DebuggerTest, PostMortemSessionAnalyzesWithoutReplay) {
  // Record with one debugger, hand the trace to a post-mortem session
  // (the "trace file arrived from somewhere" workflow).
  Debugger live(8, strassen_body(false));
  ASSERT_TRUE(live.record().completed);

  auto post = Debugger::from_trace(live.trace());
  EXPECT_FALSE(post.can_replay());
  EXPECT_EQ(post.trace().size(), live.trace().size());
  EXPECT_EQ(post.comm_graph().nodes().size(), 21u);
  EXPECT_FALSE(post.races().racy());
  EXPECT_FALSE(post.diagram().to_svg().empty());
  // Frontier stoplines can still be *computed* (they are pure history
  // analysis); only re-execution is unavailable.
  const auto& seq = post.trace().rank_events(0);
  const auto line = post.stopline_past_frontier(seq[seq.size() / 2]);
  EXPECT_EQ(line.thresholds.size(), 8u);
  EXPECT_THROW(post.replay_to(line), Error);
}

TEST(DebuggerTest, ActionGraphCompressesDistributionLoop) {
  Debugger dbg(8, strassen_body(false));
  ASSERT_TRUE(dbg.record().completed);
  const auto ag = dbg.action_graph();
  // The action view is strictly coarser than the event stream.
  EXPECT_LT(ag.total_actions(), dbg.trace().size());
  EXPECT_GT(ag.total_actions(), 0u);
}

TEST(DebuggerTest, StepOverSkipsNestedCalls) {
  Debugger dbg(1, [](mpi::Comm&) {
    const auto leaf = [] { TDBG_FUNCTION(); };
    const auto mid = [&] {
      TDBG_FUNCTION();
      leaf();
      leaf();
    };
    TDBG_FUNCTION();
    mid();
    mid();
  });
  ASSERT_TRUE(dbg.record().completed);

  replay::Stopline line;
  line.thresholds = {std::uint64_t{2}};  // stopped entering first mid()
  auto stops = dbg.replay_to(line);
  ASSERT_EQ(stops.size(), 1u);
  const int depth = stops[0].depth;

  // step_over runs the nested leaf() calls without stopping in them.
  const auto next = dbg.step_over(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_LE(next->depth, depth);
  EXPECT_GT(next->marker, stops[0].marker + 1);
  dbg.end_replay();
}

}  // namespace
}  // namespace tdbg::dbg
