// TDBGTRC3 columnar trace store tests (ctest label `trace`):
//
//   * v3 round-trips (eager and lazy readers) on synthetic, extreme,
//     and recorded traces,
//   * conversion chains v3 <-> v2 <-> v1 <-> text, including the
//     v2 -> v3 -> v2 byte-identity contract,
//   * truncated/corrupted v3 blocks raise FormatError naming the
//     segment and the column (hand-corrupted regression),
//   * zone-map skipping and column pruning advance the trace.decode.*
//     counters without changing any query result,
//   * analysis artifacts are byte-identical on the storm and
//     deadlock_ring workloads across both backends, all three binary
//     versions, at 1 and 8 threads.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/session.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "graph/export.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "replay/record.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"
#include "trace/columnar.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace tdbg {
namespace {

class TempFile {
 public:
  TempFile() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdbg_columnar_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".trc");
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

bool same_event(const trace::Event& a, const trace::Event& b) {
  return a.kind == b.kind && a.rank == b.rank && a.marker == b.marker &&
         a.construct == b.construct && a.t_start == b.t_start &&
         a.t_end == b.t_end && a.peer == b.peer && a.tag == b.tag &&
         a.channel_seq == b.channel_seq && a.bytes == b.bytes &&
         a.wildcard == b.wildcard;
}

void expect_same_trace(const trace::Trace& a, const trace::Trace& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_event(a.event(i), b.event(i))) << "event " << i;
  }
}

/// Display-sorted synthetic trace with monotone per-rank markers,
/// valid channel sequence numbers, and a mix of computes, sends, and
/// receives — every binary format accepts it, and the v2/v3 writers
/// earn the sorted footer flags (so `open_trace` goes lazy).
std::vector<trace::Event> synth_events(std::size_t n, int ranks,
                                       std::uint64_t seed) {
  auto rng = support::SplitMix64(seed).split(1);
  std::vector<trace::Event> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_marker(static_cast<std::size_t>(ranks), 1);
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::uint64_t>> chan;
  for (std::size_t i = 0; i < n; ++i) {
    trace::Event e;
    const int rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    e.rank = rank;
    e.marker = next_marker[static_cast<std::size_t>(rank)]++;
    e.t_start = static_cast<support::TimeNs>(i) * 10;
    e.t_end = e.t_start + static_cast<support::TimeNs>(rng.next_below(9));
    const auto roll = rng.next_below(4);
    e.kind = trace::EventKind::kCompute;
    if (roll == 0 && ranks > 1) {
      const int peer = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + 1 +
           rng.next_below(static_cast<std::uint64_t>(ranks - 1))) %
          static_cast<std::uint64_t>(ranks));
      e.kind = trace::EventKind::kSend;
      e.peer = peer;
      e.tag = static_cast<mpi::Tag>(rng.next_below(5));
      e.bytes = 8 + rng.next_below(4096);
      ++chan[{rank, peer}].first;
    } else if (roll == 1) {
      const auto start = rng.next_below(static_cast<std::uint64_t>(ranks));
      for (int k = 0; k < ranks; ++k) {
        const int src = static_cast<int>(
            (start + static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(ranks));
        auto& [sent, received] = chan[{src, rank}];
        if (src == rank || received >= sent) continue;
        e.kind = trace::EventKind::kRecv;
        e.peer = src;
        e.channel_seq = static_cast<mpi::ChannelSeq>(received++);
        e.tag = static_cast<mpi::Tag>(rng.next_below(5));
        e.bytes = 8 + rng.next_below(4096);
        e.wildcard = rng.next_below(2) == 0;
        break;
      }
    }
    events.push_back(e);
  }
  return events;
}

trace::Trace synth_trace(std::size_t n, int ranks, std::uint64_t seed) {
  return trace::Trace(ranks, synth_events(n, ranks, seed), nullptr);
}

std::vector<char> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// --- round-trips -----------------------------------------------------------

TEST(ColumnarTest, V3RoundTripEagerAndLazy) {
  const auto original = synth_trace(3000, 5, /*seed=*/11);
  TempFile file;
  trace::write_trace(file.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/256);

  const auto eager = trace::read_trace(file.path());
  expect_same_trace(original, eager);

  const auto lazy = trace::open_trace(file.path());
  ASSERT_TRUE(lazy.is_lazy()) << "sorted v3 file should open segmented";
  expect_same_trace(original, lazy);

  // Per-rank program order survives the columnar round-trip.
  for (mpi::Rank r = 0; r < original.num_ranks(); ++r) {
    EXPECT_EQ(original.rank_events(r), lazy.rank_events(r)) << "rank " << r;
  }
}

TEST(ColumnarTest, ExtremeFieldValuesRoundTrip) {
  // High-entropy and boundary values force every encoding (raw,
  // zigzag'd negatives, 64-bit maxima) through the codec.
  std::vector<trace::Event> events;
  auto rng = support::SplitMix64(99).split(2);
  for (std::size_t i = 0; i < 300; ++i) {
    trace::Event e;
    e.rank = static_cast<int>(i % 3);
    e.marker = (i < 5) ? ~std::uint64_t{0} - i : rng.next();
    e.kind = static_cast<trace::EventKind>(i % 8);
    e.construct = (i % 7 == 0) ? trace::kNoConstruct
                               : static_cast<trace::ConstructId>(i);
    e.t_start = static_cast<support::TimeNs>(i) * 1000;
    e.t_end = e.t_start - 17;  // end before start: still bijective
    e.peer = (i % 2 == 0) ? -1 : static_cast<int>(rng.next_below(1u << 30));
    e.tag = (i % 3 == 0) ? -1 : static_cast<int>(rng.next_below(1u << 20));
    e.channel_seq = rng.next();
    e.bytes = (i % 5 == 0) ? ~std::uint64_t{0} : rng.next();
    e.wildcard = (i % 2) != 0;
    events.push_back(e);
  }
  TempFile file;
  {
    auto registry = std::make_shared<trace::ConstructRegistry>();
    trace::TraceWriter writer(file.path(), /*num_ranks=*/3, registry,
                              trace::TraceFormat::kBinaryV3,
                              /*segment_events=*/64);
    writer.write_events(events);
    writer.finish();
  }
  const auto loaded = trace::read_trace(file.path());
  ASSERT_EQ(loaded.size(), events.size());
  // t_start is unique and increasing, so display order == input order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(same_event(events[i], loaded.event(i))) << "event " << i;
  }
}

TEST(ColumnarTest, ConversionChainPreservesEvents) {
  const auto original = synth_trace(1500, 4, /*seed=*/21);
  TempFile v3, v2, v1, text, back;
  trace::write_trace(v3.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/128);
  trace::write_trace(v2.path(), trace::read_trace(v3.path()),
                     trace::TraceFormat::kBinary, /*segment_events=*/128);
  trace::write_trace(v1.path(), trace::read_trace(v2.path()),
                     trace::TraceFormat::kBinaryV1);
  trace::write_trace(text.path(), trace::read_trace(v1.path()),
                     trace::TraceFormat::kText);
  trace::write_trace(back.path(), trace::read_trace(text.path()),
                     trace::TraceFormat::kBinaryV3, /*segment_events=*/128);
  expect_same_trace(original, trace::read_trace(back.path()));
}

TEST(ColumnarTest, V2ToV3ToV2IsByteIdentical) {
  const auto original = synth_trace(2000, 4, /*seed=*/31);
  TempFile v2a, v3, v2b;
  trace::write_trace(v2a.path(), original, trace::TraceFormat::kBinary,
                     /*segment_events=*/256);
  trace::write_trace(v3.path(), trace::read_trace(v2a.path()),
                     trace::TraceFormat::kBinaryV3, /*segment_events=*/256);
  trace::write_trace(v2b.path(), trace::read_trace(v3.path()),
                     trace::TraceFormat::kBinary, /*segment_events=*/256);
  EXPECT_EQ(slurp(v2a.path()), slurp(v2b.path()));
}

TEST(ColumnarTest, V3IsSmallerThanV2) {
  const auto original = synth_trace(20000, 6, /*seed=*/41);
  TempFile v2, v3;
  trace::write_trace(v2.path(), original, trace::TraceFormat::kBinary);
  trace::write_trace(v3.path(), original, trace::TraceFormat::kBinaryV3);
  const auto s2 = std::filesystem::file_size(v2.path());
  const auto s3 = std::filesystem::file_size(v3.path());
  EXPECT_LT(s3, s2 / 2) << "v3=" << s3 << " v2=" << s2;
}

TEST(ColumnarTest, InspectReportsColumnsAndCompression) {
  const auto original = synth_trace(2000, 4, /*seed=*/51);
  TempFile v3;
  trace::write_trace(v3.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/512);
  const auto info = trace::inspect_trace(v3.path());
  EXPECT_EQ(info.format, "binary-v3");
  EXPECT_EQ(info.event_count, original.size());
  EXPECT_TRUE(info.has_footer);

  const auto footer = trace::try_read_footer(v3.path());
  ASSERT_TRUE(footer.has_value());
  EXPECT_EQ(footer->footer.version, 3u);
  const auto columns = trace::inspect_columns(v3.path(), *footer);
  ASSERT_EQ(columns.size(), trace::wire::kNumColumnsV3);
  EXPECT_EQ(columns[0].name, "kind");
  std::uint64_t payload = 0;
  for (const auto& c : columns) {
    EXPECT_FALSE(c.encodings.empty()) << c.name;
    payload += c.bytes;
  }
  EXPECT_LT(payload, original.size() * trace::wire::kEventRecordBytes);
}

// --- failure modes ---------------------------------------------------------

void truncate_copy(const std::filesystem::path& from,
                   const std::filesystem::path& to, std::uint64_t keep) {
  const auto bytes = slurp(from);
  ASSERT_LE(keep, bytes.size());
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(keep));
}

TEST(ColumnarTest, TruncatedMidColumnNamesSegmentAndColumn) {
  const auto original = synth_trace(600, 4, /*seed=*/61);
  TempFile v3, cut;
  trace::write_trace(v3.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/128);
  const auto footer = trace::try_read_footer(v3.path());
  ASSERT_TRUE(footer.has_value());
  ASSERT_GE(footer->footer.segments.size(), 3u);
  const auto& seg2 = footer->footer.segments[2];

  // Cut three bytes into segment 2's last column payload.
  truncate_copy(v3.path(), cut.path(), seg2.offset + seg2.byte_len - 3);
  try {
    (void)trace::read_trace(cut.path());
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("segment 2"), std::string::npos) << what;
    EXPECT_NE(what.find("in column '"), std::string::npos) << what;
  }

  // Cut inside segment 2's header: still named, still FormatError.
  truncate_copy(v3.path(), cut.path(),
                seg2.offset + trace::columnar::kSegmentHeaderBytes - 2);
  try {
    (void)trace::read_trace(cut.path());
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("segment 2"), std::string::npos)
        << e.what();
  }

  // A cut at a block boundary before the footer is a readable prefix
  // (flush-snapshot semantics), not an error.
  truncate_copy(v3.path(), cut.path(), seg2.offset);
  const auto prefix = trace::read_trace(cut.path());
  EXPECT_EQ(prefix.size(),
            footer->footer.segments[0].count + footer->footer.segments[1].count);
}

TEST(ColumnarTest, CorruptEncodingByteNamesColumn) {
  const auto original = synth_trace(300, 3, /*seed=*/71);
  TempFile v3;
  trace::write_trace(v3.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/128);
  const auto footer = trace::try_read_footer(v3.path());
  ASSERT_TRUE(footer.has_value());
  // Column 0 ("kind")'s encoding byte sits right after tag + count.
  const auto pos = footer->footer.segments[0].offset + 1 + 4;
  {
    std::fstream f(v3.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(pos));
    const char bad = static_cast<char>(0xee);
    f.write(&bad, 1);
  }
  try {
    (void)trace::read_trace(v3.path());
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("column 'kind'"), std::string::npos) << what;
    EXPECT_NE(what.find("segment 0"), std::string::npos) << what;
  }
}

// --- zone maps, column pruning, counters -----------------------------------

TEST(ColumnarTest, QueriesMatchEagerAcrossVersionsAndCountersAdvance) {
  const auto original = synth_trace(4000, 5, /*seed=*/81);
  auto& reg = obs::MetricsRegistry::global();
  for (const auto format :
       {trace::TraceFormat::kBinary, trace::TraceFormat::kBinaryV3}) {
    TempFile file;
    trace::write_trace(file.path(), original, format, /*segment_events=*/256);
    const auto lazy = trace::open_trace(file.path());
    ASSERT_TRUE(lazy.is_lazy());

    // Zones exist on both segmented versions; v3's are exact.
    const auto zones = lazy.segment_zones(0);
    ASSERT_TRUE(zones.has_value());
    EXPECT_NE(zones->rank_mask, 0u);
    EXPECT_NE(zones->kind_mask, 0u);

    // Rank-window queries match the brute-force in-memory reference.
    const auto t_hi = original.t_max();
    const auto skipped_before =
        reg.counter("trace.decode.segments_skipped").total();
    for (mpi::Rank r = 0; r < original.num_ranks(); ++r) {
      for (const auto& [t0, t1] :
           std::vector<std::pair<support::TimeNs, support::TimeNs>>{
               {t_hi - 500, t_hi},
               {0, 500},
               {t_hi / 2, t_hi / 2 + 1000},
               {0, t_hi}}) {
        std::vector<std::size_t> got, want;
        lazy.for_each_rank_in_window(
            r, t0, t1,
            [&](std::size_t i, const trace::Event&) { got.push_back(i); });
        original.for_each_rank_in_window(
            r, t0, t1,
            [&](std::size_t i, const trace::Event&) { want.push_back(i); });
        EXPECT_EQ(got, want) << "rank " << r << " window [" << t0 << ", "
                             << t1 << "]";
      }
    }
    // The late windows skip every early segment via the directory
    // (counters compile to no-ops under TDBG_METRICS=OFF).
    if constexpr (obs::kMetricsEnabled) {
      EXPECT_GT(reg.counter("trace.decode.segments_skipped").total(),
                skipped_before);
    }
  }
}

TEST(ColumnarTest, ColumnPruningCountsSkippedColumns) {
  const auto original = synth_trace(2000, 4, /*seed=*/91);
  TempFile file;
  trace::write_trace(file.path(), original, trace::TraceFormat::kBinaryV3,
                     /*segment_events=*/256);
  const auto lazy = trace::open_trace(file.path());
  ASSERT_TRUE(lazy.is_lazy());

  auto& reg = obs::MetricsRegistry::global();
  const auto cols_before = reg.counter("trace.decode.columns_skipped").total();
  const auto bytes_before = reg.counter("trace.decode.decoded_bytes").total();

  // Ask for rank + marker only: those fields match the original; the
  // columns the caller promised not to read stay encoded.
  std::size_t visited = 0;
  lazy.for_each_in_segment_cols(
      0, trace::kColRank | trace::kColMarker,
      [&](std::size_t i, const trace::Event& e) {
        const auto want = original.event(i);
        EXPECT_EQ(e.rank, want.rank) << "event " << i;
        EXPECT_EQ(e.marker, want.marker) << "event " << i;
        ++visited;
      });
  EXPECT_EQ(visited, lazy.segment_range(0).second);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_GT(reg.counter("trace.decode.columns_skipped").total(),
              cols_before);
    EXPECT_GT(reg.counter("trace.decode.decoded_bytes").total(), bytes_before);
  }

  // The compressed tier kept the blob resident.
  const auto* seg_store = dynamic_cast<const trace::SegmentedTraceStore*>(
      lazy.store().get());
  ASSERT_NE(seg_store, nullptr);
  const auto stats = seg_store->cache_stats();
  EXPECT_GT(stats.compressed_segments, 0u);
  EXPECT_GT(stats.compressed_bytes, 0u);
}

// --- workload artifact identity --------------------------------------------

struct StormPlan {
  std::vector<std::vector<std::array<int, 3>>> sends;  // (dest, tag, payload)
  std::vector<int> recv_count;
};

StormPlan make_storm_plan(int ranks, int msgs_per_rank, std::uint64_t seed) {
  StormPlan plan;
  plan.sends.resize(static_cast<std::size_t>(ranks));
  plan.recv_count.assign(static_cast<std::size_t>(ranks), 0);
  const support::SplitMix64 root(seed);
  for (int s = 0; s < ranks; ++s) {
    auto rng = root.split(static_cast<std::uint64_t>(s));
    for (int m = 0; m < msgs_per_rank; ++m) {
      const int dest =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
      const int tag = static_cast<int>(rng.next_below(5));
      const int payload = static_cast<int>(rng.next_below(100000));
      plan.sends[static_cast<std::size_t>(s)].push_back({dest, tag, payload});
      ++plan.recv_count[static_cast<std::size_t>(dest)];
    }
  }
  return plan;
}

mpi::RankBody storm_body(const StormPlan& plan) {
  return [plan](mpi::Comm& comm) {
    const auto& mine = plan.sends[static_cast<std::size_t>(comm.rank())];
    for (const auto& [dest, tag, payload] : mine) {
      comm.send_value<int>(payload, dest, tag, "storm_send");
    }
    const int quota = plan.recv_count[static_cast<std::size_t>(comm.rank())];
    for (int i = 0; i < quota; ++i) {
      comm.recv_value<int>(mpi::kAnySource, mpi::kAnyTag, nullptr,
                           "storm_recv");
    }
  };
}

mpi::RankBody ring_body(int n) {
  return [n](mpi::Comm& comm) {
    const mpi::Rank r = comm.rank();
    const mpi::Rank next = (r + 1) % n;
    const mpi::Rank prev = (r + n - 1) % n;
    if (r == 0) {
      comm.send_value<int>(42, next, /*tag=*/1);
      comm.recv_value<int>(prev, /*tag=*/1);
    } else {
      const int token = comm.recv_value<int>(prev, /*tag=*/1);
      comm.send_value<int>(token, next, /*tag=*/1);
    }
  };
}

/// Canonical artifact bundle: everything stringified, so "identical"
/// means byte-identical.
struct Artifacts {
  std::string matches;
  std::string traffic;
  std::string graph;
};

Artifacts artifacts_of(const trace::Trace& t, std::size_t threads) {
  exec::ScopedExecutor pool(threads);
  analysis::Session session(t);
  Artifacts a;
  const auto& report = session.match_report();
  std::string m;
  for (const auto& mm : report.matches) {
    m += std::to_string(mm.send_index) + ">" + std::to_string(mm.recv_index) +
         ";";
  }
  for (const auto i : report.unmatched_sends) {
    m += "s" + std::to_string(i) + ";";
  }
  for (const auto i : report.unmatched_recvs) {
    m += "r" + std::to_string(i) + ";";
  }
  a.matches = std::move(m);
  a.traffic = session.traffic().to_string();
  a.graph = graph::to_dot(session.comm_graph().to_export());
  return a;
}

void expect_identical_artifacts_across_everything(const trace::Trace& rec) {
  const auto baseline = artifacts_of(rec, 1);
  for (const auto format :
       {trace::TraceFormat::kBinaryV1, trace::TraceFormat::kBinary,
        trace::TraceFormat::kBinaryV3}) {
    TempFile file;
    trace::write_trace(file.path(), rec, format, /*segment_events=*/256);
    for (const bool lazy : {false, true}) {
      const auto t = lazy ? trace::open_trace(file.path())
                          : trace::read_trace(file.path());
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const auto got = artifacts_of(t, threads);
        const auto tag = std::string(lazy ? "lazy" : "eager") + " v" +
                         std::to_string(static_cast<int>(format)) + " x" +
                         std::to_string(threads);
        EXPECT_EQ(baseline.matches, got.matches) << tag;
        EXPECT_EQ(baseline.traffic, got.traffic) << tag;
        EXPECT_EQ(baseline.graph, got.graph) << tag;
      }
    }
  }
}

TEST(ColumnarTest, StormArtifactsIdenticalAcrossBackendsVersionsThreads) {
  const auto plan = make_storm_plan(8, 40, /*seed=*/55);
  const auto rec = replay::record(8, storm_body(plan));
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  expect_identical_artifacts_across_everything(rec.trace);
}

TEST(ColumnarTest, DeadlockRingArtifactsIdenticalAcrossBackendsVersionsThreads) {
  constexpr int kRanks = 6;
  fault::FaultEngine engine(fault::FaultPlan::named("deadlock_ring",
                                                    /*seed=*/3),
                            kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto rec = replay::record(kRanks, ring_body(kRanks), options);
  ASSERT_FALSE(rec.trace.empty());
  expect_identical_artifacts_across_everything(rec.trace);
}

}  // namespace
}  // namespace tdbg
