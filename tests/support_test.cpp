#include <gtest/gtest.h>

#include <thread>

#include "support/clock.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"
#include "support/strings.hpp"

namespace tdbg::support {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(split(join(parts, "|"), '|'), parts);
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(StringsTest, HumanDurationScales) {
  EXPECT_EQ(human_duration(500), "500 ns");
  EXPECT_EQ(human_duration(1500), "1.500 us");
  EXPECT_EQ(human_duration(2'500'000), "2.500 ms");
  EXPECT_EQ(human_duration(3'000'000'000LL), "3.000 s");
}

TEST(StringsTest, HumanBytesScales) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(StringsTest, EscapeLabelHandlesSpecials) {
  EXPECT_EQ(escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label("a\nb"), "a\\nb");
}

TEST(SerializeTest, ScalarsRoundTripAllWidths) {
  BinaryWriter w;
  w.put<std::uint8_t>(0xAB);
  w.put<std::int32_t>(-12345);
  w.put<std::uint64_t>(0xDEADBEEFCAFEF00Dull);
  w.put<double>(3.25);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.get<std::int32_t>(), -12345);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, PositionAndSeek) {
  BinaryWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.position(), 0u);
  r.get<std::uint32_t>();
  EXPECT_EQ(r.position(), 4u);
  r.seek(0);
  EXPECT_EQ(r.get<std::uint32_t>(), 1u);
}

TEST(SerializeTest, ClearResets) {
  BinaryWriter w;
  w.put<std::uint64_t>(1);
  EXPECT_EQ(w.size(), 8u);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

TEST(ClockTest, MonotonicAndEpoch) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
  reset_run_epoch();
  const auto t = run_time_ns();
  EXPECT_GE(t, 0);
  EXPECT_LT(t, 1'000'000'000LL);  // well under a second after reset
}

TEST(ClockTest, StopwatchMeasures) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.elapsed_ns(), 4'000'000LL);
  sw.reset();
  EXPECT_LT(sw.elapsed_ns(), 4'000'000LL);
}

// The fault engine's "same seed ⇒ same faults" guarantee rests on the
// generator producing the canonical SplitMix64 sequence on every
// platform; pin the published golden values so a drive-by "improvement"
// to the mixer cannot silently change every seeded run.
TEST(RngTest, CanonicalSequenceIsCrossPlatformDeterministic) {
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(g.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(g.next(), 0x06c45d188009454full);
  SplitMix64 g42(42);
  EXPECT_EQ(g42.next(), 0xbdd732262feb6e95ull);
  EXPECT_EQ(g42.next(), 0x28efe333b266f103ull);
}

TEST(RngTest, SameSeedSameSequence) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SplitStreamsAreIndependent) {
  const SplitMix64 root(7);
  SplitMix64 s0 = root.split(0);
  SplitMix64 s1 = root.split(1);
  // Distinct streams must not collide over a long prefix...
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s0.next() == s1.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  // ...and splitting must not perturb the parent or depend on draws.
  SplitMix64 again = root.split(0);
  SplitMix64 fresh = SplitMix64(7).split(0);
  EXPECT_EQ(again.next(), fresh.next());
}

TEST(RngTest, BoundedDrawsStayInRange) {
  SplitMix64 g(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g.next_below(17), 17u);
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(g.next_below(0), 0u);
  EXPECT_EQ(g.next_below(1), 0u);
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    TDBG_CHECK(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, Hierarchy) {
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw FormatError("x"), Error);
  EXPECT_THROW(throw UsageError("x"), Error);
}

}  // namespace
}  // namespace tdbg::support
