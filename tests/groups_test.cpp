#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "debugger/process_groups.hpp"
#include "replay/record.hpp"

namespace tdbg::dbg {
namespace {

TEST(ProcessGroupsTest, StrassenMasterVsWorkers) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  analysis::Session session(rec.trace);
  const auto groups = group_processes(rec.trace, session.action_graph(),
                                      GroupingLevel::kShape);
  // The classic picture: one master, seven interchangeable workers.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].ranks, (std::vector<mpi::Rank>{0}));
  EXPECT_EQ(groups[1].ranks,
            (std::vector<mpi::Rank>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(describe_groups(groups), "{0} {1-7}");
}

TEST(ProcessGroupsTest, BuggyStrassenIsolatesRankSeven) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.deadlocked);

  // The Fig. 6 observation as a grouping: rank 7's truncated history
  // breaks it out of the worker group.
  analysis::Session session(rec.trace);
  const auto groups = group_processes(rec.trace, session.action_graph(),
                                      GroupingLevel::kShape);
  bool seven_alone = false;
  for (const auto& g : groups) {
    if (g.ranks == std::vector<mpi::Rank>{7}) seven_alone = true;
  }
  EXPECT_TRUE(seven_alone) << describe_groups(groups);
}

TEST(ProcessGroupsTest, StrictSplitsByRepetitionCount) {
  // A farm where workers process different numbers of tasks: shape
  // grouping merges them, strict grouping may split them.
  apps::taskfarm::Options opts;
  opts.num_tasks = 7;  // 3 workers, uneven split
  const auto rec = replay::record(
      4, [opts](mpi::Comm& comm) { apps::taskfarm::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  analysis::Session session(rec.trace);
  const auto shape = group_processes(rec.trace, session.action_graph(),
                                     GroupingLevel::kShape);
  const auto strict = group_processes(rec.trace, session.action_graph(),
                                      GroupingLevel::kStrict);
  EXPECT_LE(shape.size(), strict.size());
  // Master always alone.
  EXPECT_EQ(shape[0].ranks, (std::vector<mpi::Rank>{0}));
}

TEST(ProcessGroupsTest, DescribeCollapsesRuns) {
  std::vector<ProcessGroup> groups;
  groups.push_back(ProcessGroup{{0, 2, 3, 4, 7}, "x"});
  EXPECT_EQ(describe_groups(groups), "{0,2-4,7}");
}

}  // namespace
}  // namespace tdbg::dbg
