#include <gtest/gtest.h>

#include <mutex>

#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "replay/checkpoint.hpp"
#include "replay/record.hpp"
#include "replay/replay.hpp"
#include "replay/stopline.hpp"

namespace tdbg::replay {
namespace {

/// A 3-rank program where rank 0 receives with ANY_SOURCE and the
/// winner is genuinely racy: both workers send immediately.
void racy_body(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    for (int i = 0; i < 8; ++i) {
      std::vector<std::byte> buf;
      comm.recv(buf, mpi::kAnySource, 1);
    }
  } else {
    for (int i = 0; i < 4; ++i) {
      comm.send_value<int>(i, 0, 1);
    }
  }
}

TEST(Record, CapturesTraceAndLog) {
  const auto rec = record(3, racy_body);
  ASSERT_TRUE(rec.result.completed);
  EXPECT_EQ(rec.log.per_rank.size(), 3u);
  EXPECT_EQ(rec.log.per_rank[0].size(), 8u);  // 8 wildcard receives
  EXPECT_TRUE(rec.log.per_rank[1].empty());
  EXPECT_GT(rec.trace.size(), 0u);

  // Trace message matching must pair every send with a receive.
  analysis::Session session(rec.trace);
  const auto& report = session.match_report();
  EXPECT_EQ(report.matches.size(), 8u);
  EXPECT_TRUE(report.unmatched_sends.empty());
  EXPECT_TRUE(report.unmatched_recvs.empty());
}

TEST(Replay, ReproducesWildcardMatchOrder) {
  const auto rec = record(3, racy_body);
  ASSERT_TRUE(rec.result.completed);

  // Replaying with the log forced must reproduce the exact match
  // sequence, every time.
  for (int trial = 0; trial < 5; ++trial) {
    const auto replayed = [&] {
      MatchRecorder second(3);
      ReplayController controller(rec.log);
      mpi::RunOptions options;
      options.hooks = &second;
      options.controller = &controller;
      const auto result = mpi::run(3, racy_body, options);
      EXPECT_TRUE(result.completed) << result.abort_detail;
      return second.take_log();
    }();
    EXPECT_EQ(replayed, rec.log) << "trial " << trial;
  }
}

TEST(Replay, TaskFarmReplayIsExact) {
  apps::taskfarm::Options opts;
  opts.num_tasks = 30;
  const auto body = [&](mpi::Comm& comm) { apps::taskfarm::rank_body(comm, opts); };
  const auto rec = record(5, body);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;

  MatchRecorder second(5);
  ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  const auto result = mpi::run(5, body, options);
  ASSERT_TRUE(result.completed) << result.abort_detail;
  EXPECT_EQ(second.log(), rec.log);
}

TEST(Replay, StoplineParksEveryRankAtItsMarker) {
  apps::strassen::Options opts;
  opts.n = 32;
  opts.cutoff = 8;
  const auto body = [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); };
  const auto rec = record(8, body);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;

  // Vertical stopline through the middle of the trace.
  const auto t_mid = (rec.trace.t_min() + rec.trace.t_max()) / 2;
  analysis::Session analysis(rec.trace);
  const auto line = stopline_at_time(rec.trace, analysis.match_report(),
                                     analysis.rank_index(), t_mid);

  ReplaySession session(8, body, rec.log);
  const auto stops = session.run_to(line);
  for (const auto& stop : stops) {
    const auto& expected =
        line.thresholds[static_cast<std::size_t>(stop.rank)];
    ASSERT_TRUE(expected.has_value()) << "rank " << stop.rank;
    EXPECT_EQ(stop.marker, *expected) << "rank " << stop.rank;
  }
  const auto result = session.finish();
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(Replay, StepAdvancesOneMarker) {
  const auto body = [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i) comm.send_value<int>(i, 1, 1);
    } else {
      for (int i = 0; i < 5; ++i) comm.recv_value<int>(0, 1);
    }
  };
  const auto rec = record(2, body);
  ASSERT_TRUE(rec.result.completed);

  ReplaySession session(2, body, rec.log);
  Stopline line;
  line.thresholds = {std::uint64_t{2}, std::nullopt};
  const auto stops = session.run_to(line);
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_EQ(stops[0].rank, 0);
  EXPECT_EQ(stops[0].marker, 2u);

  const auto next = session.step(0);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->marker, 3u);
  const auto result = session.finish();
  EXPECT_TRUE(result.completed);
}

TEST(Replay, DivergentReplayIsDetected) {
  // Record one program, replay a DIFFERENT one that receives from the
  // wrong source: the forced match must trip a divergence error, not
  // silently proceed.
  const auto recorded_body = [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.recv_value<int>(1, 1);
    } else if (comm.rank() == 1) {
      comm.send_value<int>(7, 0, 1);
    } else {
      comm.send_value<int>(8, 0, 2);  // tag 2: never received
    }
  };
  const auto rec = record(3, recorded_body);
  ASSERT_TRUE(rec.result.completed);

  const auto divergent_body = [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.recv_value<int>(2, 2);  // recorded source was 1
    } else if (comm.rank() == 1) {
      comm.send_value<int>(7, 0, 1);
    } else {
      comm.send_value<int>(8, 0, 2);
    }
  };
  ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.controller = &controller;
  const auto result = mpi::run(3, divergent_body, options);
  EXPECT_FALSE(result.completed);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].what.find("divergence"), std::string::npos);
}

TEST(Stopline, VerticalCutsAreConsistent) {
  apps::strassen::Options opts;
  opts.n = 32;
  opts.cutoff = 8;
  const auto rec = record(
      8, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  // Sweep candidate times across the whole trace; every vertical cut
  // must come out consistent.
  const auto t0 = rec.trace.t_min();
  const auto t1 = rec.trace.t_max();
  analysis::Session analysis(rec.trace);
  const auto& report = analysis.match_report();
  const auto& index = analysis.rank_index();
  for (int i = 0; i <= 20; ++i) {
    const auto t = t0 + (t1 - t0) * i / 20;
    auto cut = causality::cut_at_time(rec.trace, t);
    causality::restrict_to_consistent(rec.trace, report, index, cut);
    EXPECT_TRUE(causality::is_consistent(rec.trace, report, index, cut))
        << "i=" << i;
  }
}

TEST(Checkpoint, KeepsLogarithmicBacklog) {
  CheckpointStore store(1, /*interval=*/8);
  for (std::uint64_t m = 0; m <= 4096; m += 8) {
    store.offer(0, m, std::vector<std::byte>(4));
  }
  // 513 offers; a logarithmic backlog must be dramatically smaller.
  EXPECT_LE(store.count(0), 16u);
  EXPECT_GE(store.count(0), 4u);

  // The newest checkpoint at-or-before a target must exist and the
  // replay distance must shrink as targets get more recent.
  const auto near_end = store.best_before(0, 4090);
  ASSERT_TRUE(near_end.has_value());
  EXPECT_LE(4090 - near_end->marker, 64u);

  const auto mid = store.best_before(0, 2000);
  ASSERT_TRUE(mid.has_value());
  EXPECT_LE(2000 - mid->marker, 2048u);
}

TEST(Checkpoint, BestBeforeRespectsTarget) {
  CheckpointStore store(2, 1);
  store.offer(1, 10, {});
  store.offer(1, 20, {});
  store.offer(1, 30, {});
  EXPECT_FALSE(store.best_before(1, 5).has_value());
  auto c = store.best_before(1, 25);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->marker, 20u);
  c = store.best_before(1, 30);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->marker, 30u);
}

TEST(Checkpoint, OffersBelowIntervalAreIgnored) {
  CheckpointStore store(1, 100);
  EXPECT_TRUE(store.offer(0, 0, {}));
  EXPECT_FALSE(store.offer(0, 50, {}));
  EXPECT_TRUE(store.offer(0, 100, {}));
  EXPECT_EQ(store.count(0), 2u);
}

}  // namespace
}  // namespace tdbg::replay
