// Round-trip, query-equivalence, and failure-mode tests for the trace
// store layer: the v2 segmented format, the lazy SegmentedTraceStore,
// and the v1 compatibility path (including a committed golden file).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <vector>

#include "analysis/session.hpp"
#include "support/error.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {
namespace {

class TempFile {
 public:
  TempFile() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdbg_store_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".trc");
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

bool same_event(const Event& a, const Event& b) {
  return a.kind == b.kind && a.rank == b.rank && a.marker == b.marker &&
         a.construct == b.construct && a.t_start == b.t_start &&
         a.t_end == b.t_end && a.peer == b.peer && a.tag == b.tag &&
         a.channel_seq == b.channel_seq && a.bytes == b.bytes &&
         a.wildcard == b.wildcard;
}

void expect_same_trace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ea = a.event(i);
    const auto eb = b.event(i);
    EXPECT_TRUE(same_event(ea, eb)) << "event " << i << " differs";
  }
  analysis::Session sa(a);
  analysis::Session sb(b);
  const auto& ra = sa.match_report();
  const auto& rb = sb.match_report();
  ASSERT_EQ(ra.matches.size(), rb.matches.size());
  for (std::size_t i = 0; i < ra.matches.size(); ++i) {
    EXPECT_EQ(ra.matches[i].send_index, rb.matches[i].send_index);
    EXPECT_EQ(ra.matches[i].recv_index, rb.matches[i].recv_index);
  }
  EXPECT_EQ(ra.unmatched_sends, rb.unmatched_sends);
  EXPECT_EQ(ra.unmatched_recvs, rb.unmatched_recvs);
}

struct GenOptions {
  int num_ranks = 4;
  std::size_t messages = 60;
  std::size_t noise_events = 80;  // compute / mark filler
  double recv_probability = 0.9;  // rest become missed messages
  double wildcard_probability = 0.2;
};

/// Random but *causally plausible* trace: per-rank monotone markers
/// and times, FIFO channel sequence numbers for receives.
Trace random_trace(std::uint32_t seed, const GenOptions& opt) {
  std::mt19937 rng(seed);
  auto registry = std::make_shared<ConstructRegistry>();
  const auto c_work = registry->intern("work", "gen.cpp", 1);
  const auto c_msg = registry->intern("msg", "gen.cpp", 2);

  const auto nr = static_cast<std::size_t>(opt.num_ranks);
  std::vector<std::uint64_t> marker(nr, 0);
  std::vector<support::TimeNs> clock(nr, 0);
  std::map<std::pair<mpi::Rank, mpi::Rank>, mpi::ChannelSeq> channel;
  std::vector<Event> events;

  auto base_event = [&](EventKind kind, mpi::Rank r) {
    Event e;
    e.kind = kind;
    e.rank = r;
    e.marker = ++marker[static_cast<std::size_t>(r)];
    e.t_start = clock[static_cast<std::size_t>(r)];
    clock[static_cast<std::size_t>(r)] +=
        std::uniform_int_distribution<support::TimeNs>(1, 50)(rng);
    e.t_end = clock[static_cast<std::size_t>(r)];
    return e;
  };

  for (std::size_t m = 0; m < opt.messages; ++m) {
    const auto src = static_cast<mpi::Rank>(
        std::uniform_int_distribution<int>(0, opt.num_ranks - 1)(rng));
    auto dst = static_cast<mpi::Rank>(
        std::uniform_int_distribution<int>(0, opt.num_ranks - 1)(rng));
    if (opt.num_ranks > 1 && dst == src) {
      dst = static_cast<mpi::Rank>((dst + 1) % opt.num_ranks);
    }
    const auto seq = channel[{src, dst}]++;
    auto send = base_event(EventKind::kSend, src);
    send.construct = c_msg;
    send.peer = dst;
    send.tag = std::uniform_int_distribution<int>(0, 3)(rng);
    send.channel_seq = seq;
    send.bytes = std::uniform_int_distribution<std::uint64_t>(0, 4096)(rng);
    events.push_back(send);
    if (std::uniform_real_distribution<>(0, 1)(rng) < opt.recv_probability) {
      auto recv = base_event(EventKind::kRecv, dst);
      recv.construct = c_msg;
      recv.peer = src;
      recv.tag = send.tag;
      recv.channel_seq = seq;
      recv.bytes = send.bytes;
      recv.wildcard =
          std::uniform_real_distribution<>(0, 1)(rng) <
          opt.wildcard_probability;
      events.push_back(recv);
    }
  }
  for (std::size_t i = 0; i < opt.noise_events; ++i) {
    const auto r = static_cast<mpi::Rank>(
        std::uniform_int_distribution<int>(0, opt.num_ranks - 1)(rng));
    auto e = base_event(std::uniform_int_distribution<int>(0, 1)(rng) == 0
                            ? EventKind::kCompute
                            : EventKind::kMark,
                        r);
    e.construct = c_work;
    events.push_back(e);
  }
  return Trace(opt.num_ranks, std::move(events), std::move(registry));
}

// --- round-trip property tests ------------------------------------

class RoundTripTest : public ::testing::TestWithParam<TraceFormat> {};

TEST_P(RoundTripTest, RandomTracesSurviveWriteAndRead) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    const auto original = random_trace(seed, {});
    TempFile file;
    write_trace(file.path(), original, GetParam(),
                /*segment_events=*/64);  // small: forces many segments
    const auto eager = read_trace(file.path());
    expect_same_trace(original, eager);
    const auto opened = open_trace(file.path());
    expect_same_trace(original, opened);
  }
}

TEST_P(RoundTripTest, EmptyTrace) {
  const Trace original(3, {}, std::make_shared<ConstructRegistry>());
  TempFile file;
  write_trace(file.path(), original, GetParam());
  const auto loaded = open_trace(file.path());
  EXPECT_EQ(loaded.num_ranks(), 3);
  EXPECT_EQ(loaded.size(), 0u);
  analysis::Session session(loaded);
  EXPECT_TRUE(session.match_report().matches.empty());
}

TEST_P(RoundTripTest, SingleRank) {
  GenOptions opt;
  opt.num_ranks = 1;
  opt.messages = 0;  // a lone rank cannot message anyone
  const auto original = random_trace(7, opt);
  TempFile file;
  write_trace(file.path(), original, GetParam(), /*segment_events=*/32);
  expect_same_trace(original, open_trace(file.path()));
}

TEST_P(RoundTripTest, WildcardHeavy) {
  GenOptions opt;
  opt.wildcard_probability = 1.0;
  opt.recv_probability = 1.0;
  const auto original = random_trace(11, opt);
  TempFile file;
  write_trace(file.path(), original, GetParam(), /*segment_events=*/64);
  expect_same_trace(original, open_trace(file.path()));
}

INSTANTIATE_TEST_SUITE_P(Formats, RoundTripTest,
                         ::testing::Values(TraceFormat::kBinary,
                                           TraceFormat::kBinaryV1,
                                           TraceFormat::kBinaryV3,
                                           TraceFormat::kText),
                         [](const auto& info) {
                           switch (info.param) {
                             case TraceFormat::kBinary: return "v2";
                             case TraceFormat::kBinaryV1: return "v1";
                             case TraceFormat::kBinaryV3: return "v3";
                             case TraceFormat::kText: return "text";
                           }
                           return "unknown";
                         });

// --- lazy store vs eager equivalence ------------------------------

TEST(SegmentedStoreTest, LazyOpenMatchesEagerQueries) {
  GenOptions opt;
  opt.messages = 200;
  opt.noise_events = 400;
  const auto original = random_trace(42, opt);
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary,
              /*segment_events=*/64);

  TraceOpenOptions oo;
  oo.cache_segments = 2;  // tiny cache: every query path crosses segments
  const auto lazy = open_trace(file.path(), oo);
  ASSERT_TRUE(lazy.is_lazy());

  // Point + range queries agree with the in-memory store.
  std::mt19937 rng(99);
  for (int i = 0; i < 50; ++i) {
    auto t0 = std::uniform_int_distribution<support::TimeNs>(
        original.t_min(), original.t_max())(rng);
    auto t1 = std::uniform_int_distribution<support::TimeNs>(
        original.t_min(), original.t_max())(rng);
    if (t1 < t0) std::swap(t0, t1);
    EXPECT_EQ(original.events_in_window(t0, t1),
              lazy.events_in_window(t0, t1));
  }
  for (mpi::Rank r = 0; r < original.num_ranks(); ++r) {
    ASSERT_EQ(original.rank_size(r), lazy.rank_size(r));
    for (std::uint64_t m = 1; m <= original.rank_size(r); m += 7) {
      EXPECT_EQ(original.find_marker(r, m), lazy.find_marker(r, m));
    }
    for (int i = 0; i < 20; ++i) {
      const auto t = std::uniform_int_distribution<support::TimeNs>(
          original.t_min() - 5, original.t_max() + 5)(rng);
      EXPECT_EQ(original.last_event_at_or_before(r, t),
                lazy.last_event_at_or_before(r, t));
    }
  }
  expect_same_trace(original, lazy);
}

TEST(SegmentedStoreTest, CacheResidencyStaysBounded) {
  GenOptions opt;
  opt.messages = 300;
  opt.noise_events = 600;
  const auto original = random_trace(5, opt);
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary,
              /*segment_events=*/64);

  TraceOpenOptions oo;
  oo.cache_segments = 3;
  const auto lazy = open_trace(file.path(), oo);
  const auto* seg =
      dynamic_cast<const SegmentedTraceStore*>(lazy.store().get());
  ASSERT_NE(seg, nullptr);
  ASSERT_GT(seg->segment_count(), oo.cache_segments);

  // Full sweep touches every segment but never holds more than the cap.
  std::size_t n = 0;
  lazy.for_each_event([&](std::size_t, const Event&) { ++n; });
  EXPECT_EQ(n, original.size());
  auto stats = seg->cache_stats();
  EXPECT_LE(stats.resident_segments, oo.cache_segments);
  EXPECT_GE(stats.loads, seg->segment_count());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);

  // A second sweep with a cold-ish cache reloads evicted segments.
  lazy.for_each_event([](std::size_t, const Event&) {});
  const auto stats2 = seg->cache_stats();
  EXPECT_GT(stats2.loads, stats.loads);
  EXPECT_LE(stats2.resident_segments, oo.cache_segments);
}

TEST(SegmentedStoreTest, OpenFallsBackToEagerForV1) {
  const auto original = random_trace(3, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinaryV1);
  const auto loaded = open_trace(file.path());
  EXPECT_FALSE(loaded.is_lazy());
  expect_same_trace(original, loaded);
}

// --- inspect_trace (footer-only metadata) -------------------------

TEST(InspectTest, V2FooterCarriesMetadata) {
  const auto original = random_trace(8, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary,
              /*segment_events=*/64);
  const auto fi = inspect_trace(file.path());
  EXPECT_EQ(fi.format, "binary-v2");
  EXPECT_TRUE(fi.has_footer);
  EXPECT_EQ(fi.num_ranks, original.num_ranks());
  EXPECT_EQ(fi.event_count, original.size());
  EXPECT_EQ(fi.segment_events, 64u);
  EXPECT_GT(fi.segment_count, 1u);
  EXPECT_TRUE(fi.display_sorted);
  EXPECT_TRUE(fi.rank_markers_monotone);
  ASSERT_TRUE(fi.has_time_span);
  EXPECT_EQ(fi.t_min, original.t_min());
  EXPECT_EQ(fi.t_max, original.t_max());
}

TEST(InspectTest, V1CountsEventsWithoutFooter) {
  const auto original = random_trace(9, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinaryV1);
  const auto fi = inspect_trace(file.path());
  EXPECT_EQ(fi.format, "binary-v1");
  EXPECT_FALSE(fi.has_footer);
  EXPECT_EQ(fi.event_count, original.size());
  EXPECT_EQ(fi.num_ranks, original.num_ranks());
}

// --- failure modes (satellite: IoError / FormatError) -------------

TEST(TraceIoErrorTest, WriterThrowsIoErrorWithPathOnUnwritableTarget) {
  const std::filesystem::path bad =
      "/nonexistent-tdbg-dir/trace-out.trc";
  try {
    TraceWriter writer(bad, 2, std::make_shared<ConstructRegistry>());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(bad.string()), std::string::npos);
  }
}

TEST(TraceIoErrorTest, UnknownEventKindIsFormatError) {
  const auto original = random_trace(13, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary);

  // Hand-corrupt the kind byte of the second record (header is 12
  // bytes, each record 59, the kind byte sits at record offset +1):
  // an enumerator from the future, not a truncation.
  const std::uintmax_t kind_offset = 12 + 59 + 1;
  {
    std::fstream f(file.path(), std::ios::in | std::ios::out |
                                    std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(kind_offset));
    const char bad = static_cast<char>(0xEE);
    f.write(&bad, 1);
  }

  // Eager read: rejected up front, naming the offending offset.
  try {
    read_trace(file.path());
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown event kind"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kind_offset)), std::string::npos)
        << what;
  }

  // Lazy read: open succeeds (footer is intact), but decoding the
  // poisoned segment must throw the same error, not cast garbage
  // through the enum.
  const auto lazy = open_trace(file.path());
  EXPECT_THROW(static_cast<void>(lazy.event(1)), FormatError);
}

TEST(TraceStoreFaultTest, FaultInjectedEventsRoundTrip) {
  auto registry = std::make_shared<ConstructRegistry>();
  std::vector<Event> events;
  Event fault;
  fault.kind = EventKind::kFaultInjected;
  fault.rank = 0;
  fault.marker = 1;
  fault.construct = kNoConstruct;
  fault.t_start = 5;
  fault.t_end = 5;
  fault.peer = 1;
  fault.tag = 3;
  fault.channel_seq = 2;
  fault.bytes = (std::uint64_t{2} << 56) | 16u;  // packed (kind, param)
  events.push_back(fault);
  Event other = fault;
  other.rank = 1;
  other.peer = -1;
  other.tag = mpi::kAnyTag;
  other.bytes = std::uint64_t{3} << 56;
  events.push_back(other);
  const Trace original(2, std::move(events), std::move(registry));

  for (const auto format :
       {TraceFormat::kBinary, TraceFormat::kBinaryV1, TraceFormat::kText}) {
    TempFile file;
    write_trace(file.path(), original, format);
    expect_same_trace(original, read_trace(file.path()));
    expect_same_trace(original, open_trace(file.path()));
  }
}

TEST(TraceIoErrorTest, MidRecordTruncationIsFormatError) {
  const auto original = random_trace(12, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary);

  // Chop the file in the middle of an event record (header is 12
  // bytes, each record 59): a hard corruption, not a clean prefix.
  const auto full = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), 12 + 59 + 30);
  ASSERT_LT(12u + 59 + 30, full);
  try {
    read_trace(file.path());
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find(file.path().string()),
              std::string::npos);
  }
}

TEST(TraceIoErrorTest, RecordBoundaryTruncationStillYieldsPrefix) {
  const auto original = random_trace(13, {});
  TempFile file;
  write_trace(file.path(), original, TraceFormat::kBinary);
  std::filesystem::resize_file(file.path(), 12 + 59 * 5);
  const auto loaded = read_trace(file.path());
  EXPECT_EQ(loaded.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(same_event(loaded.event(i), original.event(i)));
  }
}

// --- golden v1 file -----------------------------------------------

TEST(GoldenTest, CommittedV1TraceReadsIdentically) {
  const auto path = std::filesystem::path(TDBG_TEST_DATA_DIR) /
                    "golden_v1.trc";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const auto trace = read_trace(path);
  ASSERT_EQ(trace.num_ranks(), 2);
  ASSERT_EQ(trace.size(), 6u);

  // Display order: (t_start, rank, marker).
  const auto e0 = trace.event(0);
  EXPECT_EQ(e0.kind, EventKind::kEnter);
  EXPECT_EQ(e0.rank, 0);
  EXPECT_EQ(e0.marker, 1u);
  EXPECT_EQ(trace.constructs().info(e0.construct).name, "main");

  const auto e2 = trace.event(2);
  EXPECT_EQ(e2.kind, EventKind::kSend);
  EXPECT_EQ(e2.rank, 0);
  EXPECT_EQ(e2.peer, 1);
  EXPECT_EQ(e2.tag, 7);
  EXPECT_EQ(e2.bytes, 64u);
  EXPECT_EQ(trace.constructs().info(e2.construct).name, "work");

  const auto e3 = trace.event(3);
  EXPECT_EQ(e3.kind, EventKind::kRecv);
  EXPECT_EQ(e3.rank, 1);
  EXPECT_EQ(e3.peer, 0);
  EXPECT_TRUE(e3.wildcard);

  analysis::Session session(trace);
  const auto& report = session.match_report();
  ASSERT_EQ(report.matches.size(), 1u);
  EXPECT_EQ(report.matches[0].send_index, 2u);
  EXPECT_EQ(report.matches[0].recv_index, 3u);
  EXPECT_TRUE(report.unmatched_sends.empty());
  EXPECT_TRUE(report.unmatched_recvs.empty());

  // Converting golden v1 to v2 must not change anything observable.
  TempFile v2;
  write_trace(v2.path(), trace, TraceFormat::kBinary);
  expect_same_trace(trace, open_trace(v2.path()));
}

}  // namespace
}  // namespace tdbg::trace
