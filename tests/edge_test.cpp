// Error paths and edge cases across the stack: API contract
// violations, replay divergence branches, self-messaging, odd
// collective sizes, and the new combined operations.

#include <gtest/gtest.h>

#include <thread>

#include "analysis/session.hpp"
#include "causality/causal_order.hpp"
#include "mpi/runtime.hpp"
#include "replay/match_log.hpp"
#include "support/error.hpp"
#include "support/serialize.hpp"

namespace tdbg {
namespace {

TEST(EdgeMpi, SelfSendAndRecvWork) {
  const auto result = mpi::run(1, [](mpi::Comm& comm) {
    comm.send_value<int>(7, 0, 1);
    EXPECT_EQ(comm.recv_value<int>(0, 1), 7);
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeMpi, SendToInvalidRankThrows) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 5, 0);  // rank 5 does not exist
    }
  });
  EXPECT_FALSE(result.completed);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].what.find("rank out of range"),
            std::string::npos);
}

TEST(EdgeMpi, NegativeTagRejected) {
  const auto result = mpi::run(1, [](mpi::Comm& comm) {
    comm.send_value<int>(1, 0, -5);
  });
  EXPECT_FALSE(result.completed);
}

TEST(EdgeMpi, RecvValueSizeMismatchThrows) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<double>(1.5, 1, 1);
    } else {
      EXPECT_THROW(comm.recv_value<int>(0, 1), Error);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeMpi, ZeroByteMessages) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const std::byte>(), 1, 1);
    } else {
      std::vector<std::byte> buf{std::byte{1}};
      const auto st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 0u);
      EXPECT_TRUE(buf.empty());
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeMpi, AlltoallExchangesPersonalizedParts) {
  constexpr int kRanks = 5;
  const auto result = mpi::run(kRanks, [](mpi::Comm& comm) {
    std::vector<std::vector<std::byte>> parts(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      // Send rank r one byte encoding (me, them).
      parts[static_cast<std::size_t>(r)] = {
          std::byte{static_cast<unsigned char>(comm.rank() * 16 + r)}};
    }
    const auto got = comm.alltoall(parts);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(r)][0],
                std::byte{static_cast<unsigned char>(r * 16 + comm.rank())});
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeMpi, SendrecvShiftPattern) {
  constexpr int kRanks = 6;
  const auto result = mpi::run(kRanks, [](mpi::Comm& comm) {
    const mpi::Rank right = (comm.rank() + 1) % kRanks;
    const mpi::Rank left = (comm.rank() + kRanks - 1) % kRanks;
    const int mine = comm.rank() * 10;
    std::vector<std::byte> incoming;
    // Everyone shifts right simultaneously — the head-to-head pattern
    // Sendrecv exists for.
    const auto st = comm.sendrecv(
        std::as_bytes(std::span<const int>(&mine, 1)), right, 4, incoming,
        left, 4);
    EXPECT_EQ(st.source, left);
    int got;
    std::memcpy(&got, incoming.data(), sizeof got);
    EXPECT_EQ(got, left * 10);
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeMpi, CollectivesOnSingleRank) {
  const auto result = mpi::run(1, [](mpi::Comm& comm) {
    comm.barrier();
    std::vector<std::byte> data{std::byte{9}};
    comm.bcast(data, 0);
    EXPECT_EQ(data[0], std::byte{9});
    EXPECT_EQ(comm.allreduce_value<int>(5, [](int a, int b) { return a + b; }),
              5);
  });
  EXPECT_TRUE(result.completed);
}

TEST(EdgeReplay, ForcedMatchAlreadyConsumedDiverges) {
  // Log says recv #0 matched (src 1, seq 1) — but seq 0 from rank 1 is
  // tag-compatible and arrives first, so the forced seq-1 match is
  // unreachable without consuming seq 0 first: divergence.
  replay::MatchLog log;
  log.per_rank.resize(2);
  log.per_rank[0] = {mpi::SourceSeq{1, 1}};
  replay::ReplayController controller(std::move(log));
  mpi::RunOptions options;
  options.controller = &controller;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      comm.send_value<int>(1, 0, 1);
      comm.send_value<int>(2, 0, 1);
    } else {
      comm.recv_value<int>(1, 1);
    }
  }, options);
  EXPECT_FALSE(result.completed);
  ASSERT_GE(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].what.find("divergence"), std::string::npos);
}

TEST(EdgeReplay, LogShorterThanRunFallsBackToFreeChoice) {
  // A crashed recording may hold fewer receives than a replay runs:
  // receives beyond the log must not throw.
  replay::MatchLog log;
  log.per_rank.resize(2);
  log.per_rank[0] = {mpi::SourceSeq{1, 0}};  // only the first is forced
  replay::ReplayController controller(std::move(log));
  mpi::RunOptions options;
  options.controller = &controller;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      for (int i = 0; i < 3; ++i) comm.send_value<int>(i, 0, 1);
    } else {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(comm.recv_value<int>(mpi::kAnySource, 1), i);
      }
    }
  }, options);
  EXPECT_TRUE(result.completed);
}

TEST(EdgeCausality, EmptyAndSingleEventTraces) {
  trace::Trace empty(2, {}, nullptr);
  analysis::Session empty_session(empty);
  (void)empty_session.causal_order();
  EXPECT_TRUE(causality::is_consistent(
      empty, empty_session.match_report(), empty_session.rank_index(),
      causality::cut_at_time(empty, 100)));

  std::vector<trace::Event> one(1);
  one[0].rank = 0;
  one[0].marker = 1;
  trace::Trace single(2, std::move(one), nullptr);
  analysis::Session single_session(single);
  const auto& single_order = single_session.causal_order();
  EXPECT_TRUE(single_order.causal_past(0).empty());
  EXPECT_TRUE(single_order.causal_future(0).empty());
  const auto frontier = single_order.past_frontier(0);
  EXPECT_FALSE(frontier[0].has_value());
  EXPECT_FALSE(frontier[1].has_value());
}

TEST(EdgeSupport, BinaryReaderRejectsTruncation) {
  support::BinaryWriter w;
  w.put<std::uint32_t>(7);
  support::BinaryReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_THROW(r.get<std::uint64_t>(), FormatError);
  EXPECT_THROW(r.seek(100), FormatError);
}

TEST(EdgeSupport, BinaryStringRoundTrip) {
  support::BinaryWriter w;
  w.put_string("hello\0world");  // embedded NUL truncates via literal, fine
  w.put_string("");
  support::BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(EdgeRuntime, ConcurrentRunsAreIsolated) {
  // Two independent runs in the same process must not interfere: the
  // runtime keeps per-run worlds and per-thread rank bindings.
  std::atomic<int> ok{0};
  std::thread a([&] {
    const auto r = mpi::run(3, [](mpi::Comm& comm) {
      const int sum = comm.allreduce_value<int>(
          comm.rank(), [](int x, int y) { return x + y; });
      TDBG_CHECK(sum == 3, "world A sum wrong");
    });
    if (r.completed) ok.fetch_add(1);
  });
  std::thread b([&] {
    const auto r = mpi::run(5, [](mpi::Comm& comm) {
      const int sum = comm.allreduce_value<int>(
          comm.rank(), [](int x, int y) { return x + y; });
      TDBG_CHECK(sum == 10, "world B sum wrong");
    });
    if (r.completed) ok.fetch_add(1);
  });
  a.join();
  b.join();
  EXPECT_EQ(ok.load(), 2);
}

TEST(EdgeRuntime, ManyRanksSmokeTest) {
  constexpr int kRanks = 32;
  const auto result = mpi::run(kRanks, [](mpi::Comm& comm) {
    const auto sum = comm.allreduce_value<int>(
        comm.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2);
    comm.barrier();
  });
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace tdbg
