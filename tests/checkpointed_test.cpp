#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "apps/halo.hpp"
#include "replay/checkpointed_session.hpp"

namespace tdbg::replay {
namespace {

SteppableFactory halo_factory(std::size_t cells) {
  apps::halo::Options options;
  options.cells = cells;
  options.max_steps = 200;
  return apps::halo::factory(options);
}

TEST(CheckpointedSessionTest, RunsToCompletionAndCheckpoints) {
  CheckpointedSession session(4, halo_factory(32), /*interval=*/16);
  const auto run = session.run();
  ASSERT_TRUE(run.result.completed) << run.result.abort_detail;
  EXPECT_EQ(run.last_step, 199u);
  EXPECT_EQ(run.steps_executed, 4u * 200u);
  // Backlog is logarithmic: 200/16 = 12 boundary offers, retained ~2/level.
  EXPECT_GE(session.store().count(0), 3u);
  EXPECT_LE(session.store().count(0), 14u);
}

TEST(CheckpointedSessionTest, RollbackMatchesFullReplayState) {
  // State reached by rollback-through-checkpoint must equal the state
  // of an independent run stepped directly to the target.
  constexpr std::uint64_t kTarget = 150;

  CheckpointedSession session(4, halo_factory(16), 16);
  ASSERT_TRUE(session.run().result.completed);

  std::vector<std::vector<std::byte>> rolled;
  const auto rb = session.rollback_to(kTarget, &rolled);
  ASSERT_TRUE(rb.result.completed) << rb.result.abort_detail;

  // Reference: a fresh session that never checkpoints past 0, stepping
  // straight to the target.
  CheckpointedSession reference(4, halo_factory(16), 1 << 20);
  ASSERT_TRUE(reference.run(kTarget + 1).result.completed);
  std::vector<std::vector<std::byte>> direct;
  const auto ref = reference.rollback_to(kTarget, &direct);
  ASSERT_TRUE(ref.result.completed);

  ASSERT_EQ(rolled.size(), direct.size());
  for (std::size_t r = 0; r < rolled.size(); ++r) {
    EXPECT_EQ(rolled[r], direct[r]) << "rank " << r;
  }

  // And the checkpointed rollback did dramatically less re-stepping.
  EXPECT_LT(rb.steps_executed, ref.steps_executed);
}

TEST(CheckpointedSessionTest, RecentRollbackIsCheap) {
  CheckpointedSession session(2, halo_factory(8), 8);
  ASSERT_TRUE(session.run().result.completed);
  const auto rb = session.rollback_to(195);
  ASSERT_TRUE(rb.result.completed);
  // Nearest retained boundary is within ~2 intervals of the target.
  EXPECT_LE(rb.steps_executed, 2u * 24u);
}

TEST(CheckpointedSessionTest, RollbackBeforeFirstCheckpointReplaysFromStart) {
  CheckpointedSession session(2, halo_factory(8), 64);
  ASSERT_TRUE(session.run().result.completed);
  std::vector<std::vector<std::byte>> states;
  const auto rb = session.rollback_to(3, &states);
  ASSERT_TRUE(rb.result.completed);
  EXPECT_FALSE(states[0].empty());
}

TEST(CheckpointedSessionTest, RunTwiceRejected) {
  CheckpointedSession session(2, halo_factory(4), 8);
  ASSERT_TRUE(session.run(10).result.completed);
  EXPECT_THROW(session.run(), Error);
}

TEST(CheckpointedSessionTest, RollbackBeforeRunRejected) {
  CheckpointedSession session(2, halo_factory(4), 8);
  EXPECT_THROW(session.rollback_to(1), Error);
}

}  // namespace
}  // namespace tdbg::replay
