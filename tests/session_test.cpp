// analysis::Session contract tests (ctest label `session`):
//
//   * artifact memoization and the shared-reference guarantee,
//   * update() invalidation — stale artifacts refresh after growth,
//   * incremental recompute byte-identical to a from-scratch session,
//   * fused-sweep results equal the legacy per-pass algorithms on the
//     storm and deadlock_ring workloads at 1 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <utility>
#include <vector>

#include "analysis/session.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "graph/export.hpp"
#include "mpi/runtime.hpp"
#include "replay/record.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace tdbg {
namespace {

// --- workloads -------------------------------------------------------------

struct StormPlan {
  std::vector<std::vector<std::array<int, 3>>> sends;  // (dest, tag, payload)
  std::vector<int> recv_count;
};

StormPlan make_storm_plan(int ranks, int msgs_per_rank, std::uint64_t seed) {
  StormPlan plan;
  plan.sends.resize(static_cast<std::size_t>(ranks));
  plan.recv_count.assign(static_cast<std::size_t>(ranks), 0);
  const support::SplitMix64 root(seed);
  for (int s = 0; s < ranks; ++s) {
    auto rng = root.split(static_cast<std::uint64_t>(s));
    for (int m = 0; m < msgs_per_rank; ++m) {
      const int dest =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
      const int tag = static_cast<int>(rng.next_below(5));
      const int payload = static_cast<int>(rng.next_below(100000));
      plan.sends[static_cast<std::size_t>(s)].push_back({dest, tag, payload});
      ++plan.recv_count[static_cast<std::size_t>(dest)];
    }
  }
  return plan;
}

mpi::RankBody storm_body(const StormPlan& plan) {
  return [plan](mpi::Comm& comm) {
    const auto& mine = plan.sends[static_cast<std::size_t>(comm.rank())];
    for (const auto& [dest, tag, payload] : mine) {
      comm.send_value<int>(payload, dest, tag, "storm_send");
    }
    const int quota = plan.recv_count[static_cast<std::size_t>(comm.rank())];
    for (int i = 0; i < quota; ++i) {
      comm.recv_value<int>(mpi::kAnySource, mpi::kAnyTag, nullptr,
                           "storm_recv");
    }
  };
}

/// Token ring; with the deadlock_ring fault plan armed, rank 0's send
/// is held and the run deadlocks, leaving unmatched traffic.
mpi::RankBody ring_body(int n) {
  return [n](mpi::Comm& comm) {
    const mpi::Rank r = comm.rank();
    const mpi::Rank next = (r + 1) % n;
    const mpi::Rank prev = (r + n - 1) % n;
    if (r == 0) {
      comm.send_value<int>(42, next, /*tag=*/1);
      comm.recv_value<int>(prev, /*tag=*/1);
    } else {
      const int token = comm.recv_value<int>(prev, /*tag=*/1);
      comm.send_value<int>(token, next, /*tag=*/1);
    }
  };
}

/// Deterministic synthetic trace for the growth tests: increasing
/// timestamps (display order == construction order), per-rank monotone
/// markers, valid per-channel sequence numbers, and a mix of matched,
/// pending, and compute events.  Any prefix of the vector is itself a
/// valid trace, which is exactly the prefix-stable growth `update()`
/// recognizes.
std::vector<trace::Event> synth_events(std::size_t n, int ranks,
                                       std::uint64_t seed) {
  auto rng = support::SplitMix64(seed).split(1);
  std::vector<trace::Event> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_marker(static_cast<std::size_t>(ranks), 1);
  // Per (src, dst): sends issued, receives consumed.
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::uint64_t>> chan;
  for (std::size_t i = 0; i < n; ++i) {
    trace::Event e;
    const int rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    e.rank = rank;
    e.marker = next_marker[static_cast<std::size_t>(rank)]++;
    e.t_start = static_cast<support::TimeNs>(i) * 10;
    e.t_end = e.t_start + 6;
    const auto roll = rng.next_below(4);
    e.kind = trace::EventKind::kCompute;
    if (roll == 0 && ranks > 1) {
      const int peer = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + 1 +
           rng.next_below(static_cast<std::uint64_t>(ranks - 1))) %
          static_cast<std::uint64_t>(ranks));
      e.kind = trace::EventKind::kSend;
      e.peer = peer;
      e.tag = static_cast<mpi::Tag>(rng.next_below(3));
      e.bytes = 8 + rng.next_below(64);
      ++chan[{rank, peer}].first;
    } else if (roll == 1) {
      // Receive the oldest pending message from some source, if any.
      const auto start = rng.next_below(static_cast<std::uint64_t>(ranks));
      for (int k = 0; k < ranks; ++k) {
        const int src = static_cast<int>(
            (start + static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(ranks));
        auto& [sent, received] = chan[{src, rank}];
        if (src == rank || received >= sent) continue;
        e.kind = trace::EventKind::kRecv;
        e.peer = src;
        e.channel_seq = static_cast<mpi::ChannelSeq>(received++);
        e.tag = static_cast<mpi::Tag>(rng.next_below(3));
        e.bytes = 8 + rng.next_below(64);
        e.wildcard = rng.next_below(2) == 0;
        break;
      }
    }
    events.push_back(e);
  }
  return events;
}

// --- legacy per-pass reference implementations -----------------------------

/// The pre-refactor serial matcher: one direct scan over the trace,
/// per-channel FIFO pairing by sequence number, canonical ordering.
trace::MatchReport legacy_match(const trace::Trace& trace) {
  struct ChSend {
    std::uint64_t marker = 0;
    support::TimeNs t_start = 0;
    std::size_t index = 0;
  };
  struct ChRecv {
    mpi::ChannelSeq seq = 0;
    std::size_t index = 0;
  };
  std::map<std::pair<mpi::Rank, mpi::Rank>, std::vector<ChSend>> sends;
  std::map<std::pair<mpi::Rank, mpi::Rank>, std::vector<ChRecv>> recvs;
  trace.for_each_event([&](std::size_t i, const trace::Event& e) {
    if (e.kind == trace::EventKind::kSend) {
      sends[{e.rank, e.peer}].push_back({e.marker, e.t_start, i});
    } else if (e.kind == trace::EventKind::kRecv) {
      recvs[{e.peer, e.rank}].push_back({e.channel_seq, i});
    }
  });
  trace::MatchReport report;
  std::map<std::pair<mpi::Rank, mpi::Rank>, std::vector<bool>> used;
  for (auto& [key, ss] : sends) {
    std::stable_sort(ss.begin(), ss.end(),
                     [](const ChSend& a, const ChSend& b) {
                       if (a.marker != b.marker) return a.marker < b.marker;
                       return a.t_start < b.t_start;
                     });
    used[key].assign(ss.size(), false);
  }
  for (const auto& [key, rs] : recvs) {
    const auto it = sends.find(key);
    for (const auto& rv : rs) {
      if (it == sends.end() || rv.seq >= it->second.size() ||
          used[key][rv.seq]) {
        report.unmatched_recvs.push_back(rv.index);
        continue;
      }
      used[key][rv.seq] = true;
      report.matches.push_back(
          trace::MessageMatch{it->second[rv.seq].index, rv.index});
    }
  }
  for (const auto& [key, ss] : sends) {
    const auto& u = used[key];
    for (std::size_t s = 0; s < ss.size(); ++s) {
      if (!u[s]) report.unmatched_sends.push_back(ss[s].index);
    }
  }
  std::sort(report.matches.begin(), report.matches.end(),
            [](const trace::MessageMatch& a, const trace::MessageMatch& b) {
              return a.recv_index < b.recv_index;
            });
  std::sort(report.unmatched_sends.begin(), report.unmatched_sends.end());
  std::sort(report.unmatched_recvs.begin(), report.unmatched_recvs.end());
  return report;
}

void expect_match_reports_equal(const trace::MatchReport& a,
                                const trace::MatchReport& b) {
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].send_index, b.matches[i].send_index) << "at " << i;
    EXPECT_EQ(a.matches[i].recv_index, b.matches[i].recv_index) << "at " << i;
  }
  EXPECT_EQ(a.unmatched_sends, b.unmatched_sends);
  EXPECT_EQ(a.unmatched_recvs, b.unmatched_recvs);
}

/// The legacy traffic totals: per-match `trace.event()` lookups, the
/// way `analyze_traffic` accumulated before the fused sweep.
struct LegacyRankTotals {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
};

std::vector<LegacyRankTotals> legacy_rank_totals(
    const trace::Trace& trace, const trace::MatchReport& report) {
  std::vector<LegacyRankTotals> totals(
      static_cast<std::size_t>(trace.num_ranks()));
  for (const auto& m : report.matches) {
    const auto send = trace.event(m.send_index);
    const auto recv = trace.event(m.recv_index);
    auto& s = totals[static_cast<std::size_t>(send.rank)];
    ++s.sends;
    s.bytes_out += send.bytes;
    auto& d = totals[static_cast<std::size_t>(recv.rank)];
    ++d.recvs;
    d.bytes_in += recv.bytes;
  }
  return totals;
}

/// Full fused-vs-legacy comparison for one trace at one thread count.
void expect_fused_equals_legacy(const trace::Trace& trace,
                                std::size_t threads) {
  exec::ScopedExecutor pool(threads);
  analysis::Session session(trace);

  // Matching: fused per-channel pairing == the serial direct scan.
  const auto& report = session.match_report();
  expect_match_reports_equal(report, legacy_match(trace));

  // Rank index: the shared artifact == the trace facade's legacy
  // per-rank builder (`rank_events`).
  const auto& index = session.rank_index();
  ASSERT_EQ(index.seq.size(), static_cast<std::size_t>(trace.num_ranks()));
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    EXPECT_EQ(index.seq[static_cast<std::size_t>(r)], trace.rank_events(r))
        << "rank " << r;
  }

  // Traffic: sweep-record accounting == per-match event() lookups.
  const auto& traffic = session.traffic();
  const auto totals = legacy_rank_totals(trace, report);
  ASSERT_EQ(traffic.ranks.size(), totals.size());
  for (std::size_t r = 0; r < totals.size(); ++r) {
    EXPECT_EQ(traffic.ranks[r].sends, totals[r].sends) << "rank " << r;
    EXPECT_EQ(traffic.ranks[r].recvs, totals[r].recvs) << "rank " << r;
    EXPECT_EQ(traffic.ranks[r].bytes_out, totals[r].bytes_out) << "rank " << r;
    EXPECT_EQ(traffic.ranks[r].bytes_in, totals[r].bytes_in) << "rank " << r;
  }

  // Causality rides the shared artifacts: every match is ordered.
  const auto& order = session.causal_order();
  for (const auto& m : report.matches) {
    EXPECT_TRUE(order.happens_before(m.send_index, m.recv_index));
  }
}

void expect_sessions_identical(analysis::Session& a, analysis::Session& b) {
  expect_match_reports_equal(a.match_report(), b.match_report());
  EXPECT_EQ(a.rank_index().seq, b.rank_index().seq);
  EXPECT_EQ(a.rank_index().position, b.rank_index().position);
  EXPECT_EQ(a.traffic().to_string(), b.traffic().to_string());
  EXPECT_EQ(graph::to_dot(a.comm_graph().to_export()),
            graph::to_dot(b.comm_graph().to_export()));
  const auto& ra = a.races().races;
  const auto& rb = b.races().races;
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].recv_index, rb[i].recv_index) << "at " << i;
    EXPECT_EQ(ra[i].matched_send, rb[i].matched_send) << "at " << i;
    EXPECT_EQ(ra[i].candidates, rb[i].candidates) << "at " << i;
  }
  // Sampled happens-before grid over both causal orders.
  const auto& oa = a.causal_order();
  const auto& ob = b.causal_order();
  const auto n = a.trace().size();
  const std::size_t stride = std::max<std::size_t>(1, n / 29);
  for (std::size_t x = 0; x < n; x += stride) {
    for (std::size_t y = 0; y < n; y += stride) {
      EXPECT_EQ(oa.happens_before(x, y), ob.happens_before(x, y))
          << x << " -> " << y;
    }
  }
}

// --- memoization and invalidation ------------------------------------------

TEST(SessionTest, ArtifactsAreSharedAndMemoized) {
  const auto rec = replay::record(4, ring_body(4));
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);

  const auto* first = &session.match_report();
  EXPECT_EQ(first, &session.match_report());  // same object, no rebuild

  bool match_seen = false;
  for (const auto& info : session.pass_states()) {
    if (info.name != "match") continue;
    match_seen = true;
    EXPECT_TRUE(info.cached);
    EXPECT_EQ(info.computes, 1u);
    EXPECT_GE(info.reuses, 1u);
    EXPECT_EQ(info.watermark, rec.trace.size());
  }
  EXPECT_TRUE(match_seen);
  EXPECT_NE(session.describe().find("analysis session"), std::string::npos);
}

TEST(SessionTest, UpdateRefreshesStaleArtifacts) {
  constexpr int kRanks = 6;
  const auto events = synth_events(3000, kRanks, /*seed=*/20260809);
  const std::vector<trace::Event> prefix(events.begin(),
                                         events.begin() + 2000);

  analysis::Session session(trace::Trace(kRanks, prefix, nullptr));
  const auto matches_before = session.match_report().matches.size();
  const auto traffic_before = session.traffic().to_string();
  EXPECT_EQ(session.watermark(), 2000u);

  // Prefix-stable growth: artifacts must refresh, not stay stale.
  session.update(trace::Trace(kRanks, events, nullptr));
  EXPECT_EQ(session.watermark(), 3000u);
  const auto matches_after = session.match_report().matches.size();
  EXPECT_GT(matches_after, matches_before);
  EXPECT_NE(session.traffic().to_string(), traffic_before);

  // Same-size no-op tick: everything stays valid, nothing recomputes.
  const auto* stable = &session.match_report();
  session.update(trace::Trace(kRanks, events, nullptr));
  EXPECT_EQ(stable, &session.match_report());
}

TEST(SessionTest, NonPrefixUpdateDropsEverything) {
  constexpr int kRanks = 4;
  const auto events = synth_events(500, kRanks, /*seed=*/11);
  analysis::Session session(trace::Trace(kRanks, events, nullptr));
  (void)session.match_report();
  (void)session.traffic();

  // A different history (not an extension): full invalidation, and the
  // refreshed artifacts equal a from-scratch session's.
  auto other = synth_events(500, kRanks, /*seed=*/12);
  session.update(trace::Trace(kRanks, other, nullptr));
  for (const auto& info : session.pass_states()) {
    EXPECT_FALSE(info.cached) << info.name;
  }
  analysis::Session fresh(trace::Trace(kRanks, other, nullptr));
  expect_sessions_identical(session, fresh);
}

// --- incremental == from-scratch -------------------------------------------

TEST(SessionTest, IncrementalIdenticalToFromScratch) {
  constexpr int kRanks = 6;
  // 20k events cross the in-memory store's 8k-event segment size, so
  // the delta sweep exercises partial-segment skipping.
  const auto events = synth_events(20000, kRanks, /*seed=*/777);
  const std::vector<trace::Event> prefix(events.begin(),
                                         events.begin() + 12000);

  analysis::Session incremental(trace::Trace(kRanks, prefix, nullptr));
  // Materialize the full artifact chain before growing.
  (void)incremental.match_report();
  (void)incremental.traffic();
  (void)incremental.comm_graph();
  (void)incremental.races();
  (void)incremental.causal_order();

  incremental.update(trace::Trace(kRanks, events, nullptr));
  analysis::Session scratch(trace::Trace(kRanks, events, nullptr));
  expect_sessions_identical(incremental, scratch);

  // A small (1%-scale) append on top — the live-recording cadence.
  const std::vector<trace::Event> grown(events.begin(),
                                        events.begin() + 19000);
  analysis::Session live(trace::Trace(kRanks, grown, nullptr));
  (void)live.match_report();
  (void)live.traffic();
  live.update(trace::Trace(kRanks, events, nullptr));
  analysis::Session full(trace::Trace(kRanks, events, nullptr));
  expect_sessions_identical(live, full);
}

// --- fused == legacy per-pass ----------------------------------------------

TEST(SessionTest, FusedEqualsLegacyOnStormAt1And8Threads) {
  const auto plan = make_storm_plan(8, 40, /*seed=*/55);
  const auto rec = replay::record(8, storm_body(plan));
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  expect_fused_equals_legacy(rec.trace, 1);
  expect_fused_equals_legacy(rec.trace, 8);
}

TEST(SessionTest, FusedEqualsLegacyOnDeadlockRingAt1And8Threads) {
  constexpr int kRanks = 6;
  fault::FaultEngine engine(fault::FaultPlan::named("deadlock_ring",
                                                    /*seed=*/3),
                            kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto rec = replay::record(kRanks, ring_body(kRanks), options);
  ASSERT_FALSE(rec.trace.empty());
  // The held message leaves unmatched traffic — the interesting case.
  {
    exec::ScopedExecutor pool(1);
    analysis::Session probe(rec.trace);
    EXPECT_FALSE(probe.match_report().unmatched_sends.empty() &&
                 probe.match_report().unmatched_recvs.empty());
  }
  expect_fused_equals_legacy(rec.trace, 1);
  expect_fused_equals_legacy(rec.trace, 8);
}

}  // namespace
}  // namespace tdbg
