#include <gtest/gtest.h>

#include "rewriter.hpp"

namespace tdbg::uinst {
namespace {

int count_insertions(const std::string& src) {
  RewriteOptions options;
  options.add_include = false;
  return rewrite(src, options).insertions;
}

TEST(UinstTest, InstrumentsFreeFunction) {
  const std::string src = "int add(int a, int b) {\n  return a + b;\n}\n";
  const auto result = rewrite(src);
  EXPECT_EQ(result.insertions, 1);
  EXPECT_NE(result.text.find("add(int a, int b) { TDBG_FUNCTION();"),
            std::string::npos);
  EXPECT_TRUE(result.added_include);
  EXPECT_EQ(result.text.find("#include \"instrument/api.hpp\""), 0u);
}

TEST(UinstTest, InstrumentsMultipleFunctions) {
  const std::string src =
      "void f() { g(); }\n"
      "void g() { }\n"
      "int h(int x) { return x; }\n";
  EXPECT_EQ(count_insertions(src), 3);
}

TEST(UinstTest, SkipsControlFlow) {
  const std::string src =
      "void f() {\n"
      "  if (x) { a(); }\n"
      "  for (int i = 0; i < n; ++i) { b(); }\n"
      "  while (y) { c(); }\n"
      "  switch (z) { default: break; }\n"
      "}\n";
  EXPECT_EQ(count_insertions(src), 1);  // only f itself
}

TEST(UinstTest, SkipsDeclarationsAndDefaulted) {
  const std::string src =
      "int declared(int);\n"
      "struct S {\n"
      "  S() = default;\n"
      "  ~S() = default;\n"
      "};\n";
  EXPECT_EQ(count_insertions(src), 0);
}

TEST(UinstTest, HandlesMemberFunctionsAndQualifiers) {
  const std::string src =
      "struct S {\n"
      "  int get() const { return v_; }\n"
      "  int calc() const noexcept { return v_ * 2; }\n"
      "  int v_;\n"
      "};\n"
      "int S_helper() { return 0; }\n";
  EXPECT_EQ(count_insertions(src), 3);
}

TEST(UinstTest, HandlesCtorInitializerList) {
  const std::string src =
      "struct P {\n"
      "  P(int a, int b) : a_(a), b_(b) { validate(); }\n"
      "  int a_, b_;\n"
      "};\n";
  EXPECT_EQ(count_insertions(src), 1);
}

TEST(UinstTest, SkipsBracesInStringsAndComments) {
  const std::string src =
      "const char* s = \"f() {\";\n"
      "// void commented() { }\n"
      "/* void blocked() { } */\n"
      "void real() { }\n";
  EXPECT_EQ(count_insertions(src), 1);
}

TEST(UinstTest, SkipsRawStrings) {
  const std::string src =
      "const char* r = R\"(void fake() { })\";\n"
      "void real() { }\n";
  EXPECT_EQ(count_insertions(src), 1);
}

TEST(UinstTest, SkipsLambdas) {
  const std::string src =
      "void f() {\n"
      "  auto l = [](int x) { return x; };\n"
      "  l(1);\n"
      "}\n";
  // Only f; the lambda's '(' is preceded by ']'.
  EXPECT_EQ(count_insertions(src), 1);
}

TEST(UinstTest, IdempotentOnInstrumentedCode) {
  const std::string src = "void f() { TDBG_FUNCTION(); work(); }\n";
  RewriteOptions options;
  options.add_include = false;
  const auto result = rewrite(src, options);
  EXPECT_EQ(result.insertions, 0);
  EXPECT_EQ(result.text, src);
}

TEST(UinstTest, RewriteOutputCompilesConceptually) {
  // Round-trip: rewriting the rewritten text adds nothing new.
  const std::string src =
      "int fib(int n) {\n"
      "  if (n < 2) { return n; }\n"
      "  return fib(n - 1) + fib(n - 2);\n"
      "}\n";
  const auto once = rewrite(src);
  EXPECT_EQ(once.insertions, 1);
  const auto twice = rewrite(once.text);
  EXPECT_EQ(twice.insertions, 0);
  EXPECT_EQ(twice.text, once.text);
}

TEST(UinstTest, TrailingReturnType) {
  const std::string src = "auto f(int x) -> int { return x; }\n";
  EXPECT_EQ(count_insertions(src), 1);
}

TEST(UinstTest, InsertionPointsAreAfterOpeningBrace) {
  const std::string src = "void f() { body(); }";
  const auto points = insertion_points(src);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(src[points[0] - 1], '{');
}

}  // namespace
}  // namespace tdbg::uinst
