// Ground-truth validation of the fault-injection engine (ISSUE PR 4):
// determinism of the injection sequence, replay fidelity of faulted
// executions, and — the point of the subsystem — known injected bugs
// that the analysis detectors must find and name exactly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <vector>

#include "analysis/deadlock.hpp"
#include "analysis/session.hpp"
#include "analysis/races.hpp"
#include "analysis/supervision.hpp"
#include "causality/causal_order.hpp"
#include "fault/engine.hpp"
#include "fault/hang.hpp"
#include "fault/plan.hpp"
#include "instrument/session.hpp"
#include "mpi/hooks.hpp"
#include "mpi/runtime.hpp"
#include "replay/match_log.hpp"
#include "replay/record.hpp"
#include "support/error.hpp"
#include "trace/collector.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::fault {
namespace {

// --- target programs -------------------------------------------------------

/// Rank 0 streams `count` eager messages of `bytes` bytes to rank 1.
mpi::RankBody pipeline_body(int count, std::size_t bytes) {
  return [count, bytes](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> payload(bytes, std::byte{0x5A});
      for (int i = 0; i < count; ++i) comm.send(payload, 1, /*tag=*/3);
    } else {
      std::vector<std::byte> out;
      for (int i = 0; i < count; ++i) comm.recv(out, 0, /*tag=*/3);
    }
  };
}

/// Token ring: rank 0 starts the token, everyone else forwards it.
/// Holding rank 0's send turns this into a genuine wait-for cycle.
mpi::RankBody ring_body(int n) {
  return [n](mpi::Comm& comm) {
    const mpi::Rank r = comm.rank();
    const mpi::Rank next = (r + 1) % n;
    const mpi::Rank prev = (r + n - 1) % n;
    if (r == 0) {
      comm.send_value<int>(42, next, /*tag=*/1);
      comm.recv_value<int>(prev, /*tag=*/1);
    } else {
      const int token = comm.recv_value<int>(prev, /*tag=*/1);
      comm.send_value<int>(token, next, /*tag=*/1);
    }
  };
}

/// Ranks 1 and 2 each send `per_sender` messages to rank 0, same tag;
/// rank 0 receives them with *specific* sources — raceless until a
/// widen fault rewrites the postings to ANY_SOURCE.
mpi::RankBody fan_in_body(int per_sender) {
  return [per_sender](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 2 * per_sender; ++i) {
        comm.recv_value<int>(1 + (i % 2), /*tag=*/7);
      }
    } else {
      for (int i = 0; i < per_sender; ++i) {
        comm.send_value<int>(comm.rank() * 100 + i, 0, /*tag=*/7);
      }
    }
  };
}

/// Collects the per-rank sequences of kFaultInjected events (fields
/// that must be deterministic — no timestamps).
struct FaultEventKey {
  mpi::Rank rank;
  mpi::Rank peer;
  mpi::Tag tag;
  std::uint64_t channel_seq;
  std::uint64_t bytes;
  friend bool operator==(const FaultEventKey&, const FaultEventKey&) = default;
};

std::vector<FaultEventKey> fault_events_of(const trace::Trace& trace) {
  std::vector<FaultEventKey> out;
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    trace.for_each_rank_event(r, [&](std::size_t, const trace::Event& e) {
      if (e.kind == trace::EventKind::kFaultInjected) {
        out.push_back({e.rank, e.peer, e.tag, e.channel_seq, e.bytes});
      }
    });
  }
  return out;
}

class TempFile {
 public:
  TempFile() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdbg_fault_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".trc");
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// --- plans -----------------------------------------------------------------

TEST(FaultPlanTest, NamedPlansExistAndUnknownNamesThrow) {
  for (const auto name : FaultPlan::names()) {
    const auto plan = FaultPlan::named(name, /*seed=*/7);
    EXPECT_EQ(plan.seed, 7u);
  }
  EXPECT_TRUE(FaultPlan::named("none").empty());
  EXPECT_FALSE(FaultPlan::named("deadlock_ring").empty());
  EXPECT_THROW(FaultPlan::named("no_such_plan"), UsageError);
  try {
    FaultPlan::named("no_such_plan");
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("delay_storm"), std::string::npos);
  }
}

TEST(FaultPlanTest, PackedFaultBytesRoundTrip) {
  const auto bytes = pack_fault_bytes(FaultKind::kSlowRank, 123'456'789);
  EXPECT_EQ(unpack_fault_kind(bytes), FaultKind::kSlowRank);
  EXPECT_EQ(unpack_fault_param(bytes), 123'456'789u);
  EXPECT_EQ(unpack_fault_param(pack_fault_bytes(FaultKind::kDelay, 0)), 0u);
}

// --- determinism -----------------------------------------------------------

TEST(FaultEngineTest, SameSeedSameInjectionSequence) {
  const auto run_once = [](std::uint64_t seed) {
    FaultEngine engine(FaultPlan::named("corrupt", seed), 2);
    replay::RecordOptions options;
    options.fault_engine = &engine;
    const auto run = replay::record(2, pipeline_body(40, 32), options);
    EXPECT_TRUE(run.result.completed);
    return std::pair{engine.records(), fault_events_of(run.trace)};
  };
  const auto [records_a, events_a] = run_once(5);
  const auto [records_b, events_b] = run_once(5);
  ASSERT_FALSE(records_a.empty());  // rate 0.5 over 40 sends
  EXPECT_EQ(records_a, records_b);
  // The trace carries the same injections, field for field.
  ASSERT_EQ(events_a.size(), records_a.size());
  EXPECT_EQ(events_a, events_b);
}

TEST(FaultEngineTest, EmptyPlanInjectsNothing) {
  FaultEngine engine(FaultPlan{}, 2);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto run = replay::record(2, pipeline_body(10, 16), options);
  EXPECT_TRUE(run.result.completed);
  EXPECT_EQ(engine.injection_count(), 0u);
  EXPECT_TRUE(engine.records().empty());
  EXPECT_TRUE(fault_events_of(run.trace).empty());
}

// --- replay fidelity -------------------------------------------------------

TEST(FaultEngineTest, ReplayReproducesFaultedMatchesAndInjections) {
  const auto plan = FaultPlan::named("corrupt", /*seed=*/9);

  FaultEngine record_engine(plan, 2);
  replay::RecordOptions rec_options;
  rec_options.fault_engine = &record_engine;
  const auto body = pipeline_body(30, 24);
  auto recorded = replay::record(2, body, rec_options);
  ASSERT_TRUE(recorded.result.completed);
  const auto recorded_faults = record_engine.records();
  ASSERT_FALSE(recorded_faults.empty());

  // Replay: fresh engine, same plan+seed; the match log pins every
  // receive to the recorded message.  The faulted execution must
  // reproduce — same matches, same injections, same trace records.
  FaultEngine replay_engine(plan, 2);
  trace::TraceCollector collector(2, instr::global_constructs());
  instr::Session session(2, &collector);
  replay::MatchRecorder recorder(2);
  replay::ReplayController controller(recorded.log);
  mpi::HookFanout hooks;
  hooks.add(replay_engine.hooks());
  hooks.add(&session);
  hooks.add(&recorder);
  mpi::RunOptions options;
  options.hooks = &hooks;
  options.controller = &controller;
  options.fault_injector = &replay_engine;
  const auto result = mpi::run(2, body, options);
  ASSERT_TRUE(result.completed);

  EXPECT_EQ(recorder.log(), recorded.log);
  EXPECT_EQ(replay_engine.records(), recorded_faults);
  EXPECT_EQ(fault_events_of(collector.build_trace()),
            fault_events_of(recorded.trace));
}

// --- ground truth: crash → supervision -------------------------------------

TEST(FaultGroundTruthTest, InjectedCrashYieldsExactUnmatchedSends) {
  // Rank 0 streams 6 sends; rank 1 dies entering its 4th receive, so
  // exactly sends #3, #4, #5 (seq order) can never be consumed.  The
  // live supervisor must report exactly those.
  FaultEngine engine(FaultPlan::named("crash", /*seed=*/1), 2);
  trace::TraceCollector collector(2, instr::global_constructs());
  instr::Session session(2, &collector);
  analysis::LiveSupervisor supervisor(2);
  mpi::HookFanout hooks;
  hooks.add(engine.hooks());
  hooks.add(&session);
  hooks.add(&supervisor);
  mpi::RunOptions options;
  options.hooks = &hooks;
  options.fault_injector = &engine;
  const auto result = mpi::run(2, pipeline_body(6, 8), options);

  ASSERT_FALSE(result.completed);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].rank, 1);
  EXPECT_NE(result.failures[0].what.find("injected crash"), std::string::npos);
  EXPECT_EQ(engine.injection_count(FaultKind::kCrash), 1u);

  const auto outstanding = supervisor.outstanding();
  ASSERT_EQ(outstanding.size(), 3u);
  for (std::size_t i = 0; i < outstanding.size(); ++i) {
    EXPECT_EQ(outstanding[i].src, 0);
    EXPECT_EQ(outstanding[i].dst, 1);
    EXPECT_EQ(outstanding[i].tag, 3);
    EXPECT_EQ(outstanding[i].seq, 3 + i);  // the unreceived tail
  }
}

// --- ground truth: hold → deadlock detector --------------------------------

TEST(FaultGroundTruthTest, HeldMessageClosesRingAndDetectorNamesCycle) {
  constexpr int kRanks = 4;
  FaultEngine engine(FaultPlan::named("deadlock_ring", /*seed=*/2), kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto run = replay::record(kRanks, ring_body(kRanks), options);

  ASSERT_FALSE(run.result.completed);
  EXPECT_TRUE(run.result.deadlocked);
  EXPECT_GE(engine.injection_count(FaultKind::kDelay), 1u);

  const auto report = analysis::explain_deadlock(run.result.final_waits);
  ASSERT_EQ(report.cycle.size(), static_cast<std::size_t>(kRanks));
  std::vector<bool> in_cycle(kRanks, false);
  for (const auto rank : report.cycle) {
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, kRanks);
    in_cycle[static_cast<std::size_t>(rank)] = true;
  }
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(in_cycle[static_cast<std::size_t>(r)])
        << "rank " << r << " missing from the named cycle";
  }
}

// --- ground truth: widen → race detector -----------------------------------

TEST(FaultGroundTruthTest, WidenedReceivesManufactureDetectableRaces) {
  const auto record_with = [](FaultEngine* engine) {
    replay::RecordOptions options;
    options.fault_engine = engine;
    return replay::record(3, fan_in_body(4), options);
  };

  // Baseline: specific-source receives — raceless by construction.
  auto clean = record_with(nullptr);
  ASSERT_TRUE(clean.result.completed);
  analysis::Session clean_session(clean.trace);
  EXPECT_FALSE(clean_session.races().racy());

  // Widened: same program, receive postings rewritten to ANY_SOURCE.
  FaultEngine engine(FaultPlan::named("widen_races", /*seed=*/3), 3);
  auto widened = record_with(&engine);
  ASSERT_TRUE(widened.result.completed);
  ASSERT_GE(engine.injection_count(FaultKind::kWidenMatch), 1u);

  analysis::Session widened_session(widened.trace);
  const auto& report = widened_session.races();
  ASSERT_TRUE(report.racy());
  // The racing pair: a widened receive on rank 0 with a send from each
  // concurrent sender as candidates.
  bool found_pair = false;
  for (const auto& race : report.races) {
    EXPECT_EQ(widened.trace.event(race.recv_index).rank, 0);
    if (race.candidates.size() >= 2) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

// --- corruption is detectable ----------------------------------------------

TEST(FaultGroundTruthTest, CorruptionBreaksChecksumsExactlyAsCounted) {
  constexpr int kMessages = 30;
  constexpr std::size_t kBytes = 64;
  std::atomic<int> mismatches{0};
  const auto body = [&mismatches](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m) {
        std::vector<std::byte> payload(kBytes);
        std::byte sum{0};
        for (std::size_t i = 0; i + 1 < kBytes; ++i) {
          payload[i] = static_cast<std::byte>(i * 7 + m);
          sum ^= payload[i];
        }
        payload[kBytes - 1] = sum;
        comm.send(payload, 1, /*tag=*/4);
      }
    } else {
      std::vector<std::byte> out;
      for (int m = 0; m < kMessages; ++m) {
        comm.recv(out, 0, /*tag=*/4);
        std::byte sum{0};
        for (std::size_t i = 0; i + 1 < out.size(); ++i) sum ^= out[i];
        if (sum != out[out.size() - 1]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  FaultEngine engine(FaultPlan::named("corrupt", /*seed=*/6), 2);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto run = replay::record(2, body, options);
  ASSERT_TRUE(run.result.completed);

  const auto corrupted = engine.injection_count(FaultKind::kCorrupt);
  ASSERT_GE(corrupted, 1u);  // rate 0.5 over 30 sends
  // A single flipped byte always breaks the XOR checksum — whether it
  // hits a data byte or the checksum byte itself.
  EXPECT_EQ(mismatches.load(), static_cast<int>(corrupted));
}

// --- graceful degradation: hang diagnosis ----------------------------------

TEST(FaultGroundTruthTest, HangDiagnosisNamesBlockedRanksAndFlushesTrace) {
  constexpr int kRanks = 4;
  FaultEngine engine(FaultPlan::named("deadlock_ring", /*seed=*/8), kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto run = replay::record(kRanks, ring_body(kRanks), options);
  ASSERT_FALSE(run.result.completed);

  TempFile flushed;
  const auto diagnosis =
      diagnose_hang(run.result, run.trace, flushed.path());
  EXPECT_TRUE(diagnosis.hung);
  EXPECT_TRUE(diagnosis.deadlocked);
  EXPECT_EQ(diagnosis.ranks.size(), static_cast<std::size_t>(kRanks));
  // Every rank sits blocked in a receive; rank 0 is the only one that
  // ever *completed* an instrumented call (its held send), so it is
  // the only one with a last event — the others report wait-state
  // only, which is exactly the degradation the diagnosis formalizes.
  EXPECT_EQ(diagnosis.blocked.size(), static_cast<std::size_t>(kRanks));
  EXPECT_TRUE(diagnosis.ranks[0].has_last_event);
  // ... and the last thing that happened to it was the injected hold.
  EXPECT_EQ(diagnosis.ranks[0].last_event.kind,
            trace::EventKind::kFaultInjected);
  const auto text = diagnosis.describe();
  EXPECT_NE(text.find("deadlock"), std::string::npos);

  // The partial trace hit disk and reads back as a valid v2 trace.
  ASSERT_TRUE(std::filesystem::exists(flushed.path()));
  const auto reloaded = trace::read_trace(flushed.path());
  EXPECT_EQ(reloaded.size(), run.trace.size());
}

TEST(FaultGroundTruthTest, CompletedRunDiagnosesAsNotHung) {
  replay::RecordOptions options;
  const auto run = replay::record(2, pipeline_body(4, 8), options);
  ASSERT_TRUE(run.result.completed);
  const auto diagnosis = diagnose_hang(run.result, run.trace);
  EXPECT_FALSE(diagnosis.hung);
  EXPECT_TRUE(diagnosis.partial_trace.empty());
}

// --- slow rank + describe surface ------------------------------------------

TEST(FaultEngineTest, SlowRankInjectsAndDescribes) {
  FaultPlan plan = FaultPlan::named("slow_rank", /*seed=*/4);
  plan.rules[0].param = 1000;  // keep the test fast: 1us per call
  FaultEngine engine(plan, 2);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto run = replay::record(2, pipeline_body(5, 8), options);
  ASSERT_TRUE(run.result.completed);
  EXPECT_GE(engine.injection_count(FaultKind::kSlowRank), 5u);

  const auto text = engine.describe();
  EXPECT_NE(text.find("slow_rank"), std::string::npos);
  EXPECT_NE(text.find("injections"), std::string::npos);
}

}  // namespace
}  // namespace tdbg::fault
