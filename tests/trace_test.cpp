#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "analysis/session.hpp"
#include "support/error.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {
namespace {

Event make_event(EventKind kind, mpi::Rank rank, std::uint64_t marker,
                 support::TimeNs t0, support::TimeNs t1,
                 mpi::Rank peer = mpi::kAnySource, mpi::Tag tag = mpi::kAnyTag,
                 mpi::ChannelSeq seq = 0) {
  Event e;
  e.kind = kind;
  e.rank = rank;
  e.marker = marker;
  e.construct = 0;
  e.t_start = t0;
  e.t_end = t1;
  e.peer = peer;
  e.tag = tag;
  e.channel_seq = seq;
  return e;
}

class TempFile {
 public:
  TempFile() {
    // Pid-qualified: ctest runs each test as its own process, so a
    // bare counter would hand concurrent tests the same path.
    path_ = std::filesystem::temp_directory_path() /
            ("tdbg_trace_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".trc");
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(ConstructRegistryTest, InternsAndDeduplicates) {
  ConstructRegistry reg;
  const auto a = reg.intern("foo", "f.cpp", 10);
  const auto b = reg.intern("bar", "f.cpp", 20);
  const auto c = reg.intern("foo", "f.cpp", 10);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.info(a).name, "foo");
  EXPECT_EQ(reg.info(b).line, 20);
}

TEST(ConstructRegistryTest, SameNameDifferentLocationDistinct) {
  ConstructRegistry reg;
  EXPECT_NE(reg.intern("f", "a.cpp", 1), reg.intern("f", "b.cpp", 1));
  EXPECT_NE(reg.intern("f", "a.cpp", 1), reg.intern("f", "a.cpp", 2));
}

TEST(ConstructRegistryTest, SnapshotRestoreRoundTrip) {
  ConstructRegistry reg;
  reg.intern("one", "x.cpp", 1);
  reg.intern("two", "y.cpp", 2);
  ConstructRegistry copy;
  copy.restore(reg.snapshot());
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.info(0).name, "one");
  // Restored index must dedupe against re-interning.
  EXPECT_EQ(copy.intern("two", "y.cpp", 2), 1u);
}

TEST(TraceTest, RankEventsPreserveProgramOrder) {
  std::vector<Event> events;
  // Same timestamps on purpose: per-rank order must come from markers.
  events.push_back(make_event(EventKind::kMark, 0, 3, 100, 100));
  events.push_back(make_event(EventKind::kMark, 0, 1, 100, 100));
  events.push_back(make_event(EventKind::kMark, 0, 2, 100, 100));
  Trace trace(1, std::move(events), nullptr);
  const auto& seq = trace.rank_events(0);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(trace.event(seq[0]).marker, 1u);
  EXPECT_EQ(trace.event(seq[1]).marker, 2u);
  EXPECT_EQ(trace.event(seq[2]).marker, 3u);
}

TEST(TraceTest, WindowQueryFindsIntersecting) {
  std::vector<Event> events;
  events.push_back(make_event(EventKind::kCompute, 0, 1, 0, 10));
  events.push_back(make_event(EventKind::kCompute, 0, 2, 20, 30));
  events.push_back(make_event(EventKind::kCompute, 0, 3, 40, 50));
  Trace trace(1, std::move(events), nullptr);
  EXPECT_EQ(trace.events_in_window(5, 25).size(), 2u);
  EXPECT_EQ(trace.events_in_window(11, 19).size(), 0u);
  EXPECT_EQ(trace.events_in_window(0, 100).size(), 3u);
  EXPECT_EQ(trace.t_min(), 0);
  EXPECT_EQ(trace.t_max(), 50);
}

TEST(TraceTest, FindMarkerAndHitTest) {
  std::vector<Event> events;
  events.push_back(make_event(EventKind::kMark, 0, 1, 10, 10));
  events.push_back(make_event(EventKind::kMark, 0, 2, 20, 20));
  Trace trace(1, std::move(events), nullptr);
  ASSERT_TRUE(trace.find_marker(0, 2).has_value());
  EXPECT_FALSE(trace.find_marker(0, 9).has_value());
  const auto hit = trace.last_event_at_or_before(0, 15);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(trace.event(*hit).marker, 1u);
  EXPECT_FALSE(trace.last_event_at_or_before(0, 5).has_value());
}

TEST(TraceTest, MatchReportPairsByChannelSeq) {
  std::vector<Event> events;
  // Rank 0 sends twice to rank 1 (tag 5), rank 1 receives both.
  events.push_back(make_event(EventKind::kSend, 0, 1, 0, 1, 1, 5));
  events.push_back(make_event(EventKind::kSend, 0, 2, 2, 3, 1, 5));
  events.push_back(make_event(EventKind::kRecv, 1, 1, 4, 5, 0, 5, 0));
  events.push_back(make_event(EventKind::kRecv, 1, 2, 6, 7, 0, 5, 1));
  Trace trace(2, std::move(events), nullptr);
  analysis::Session session(trace);
  const auto& report = session.match_report();
  ASSERT_EQ(report.matches.size(), 2u);
  EXPECT_TRUE(report.unmatched_sends.empty());
  EXPECT_TRUE(report.unmatched_recvs.empty());
  // First send pairs with seq-0 recv.
  EXPECT_EQ(trace.event(report.matches[0].send_index).marker, 1u);
  EXPECT_EQ(trace.event(report.matches[0].recv_index).rank, 1);
}

TEST(TraceTest, MatchReportFlagsUnmatched) {
  std::vector<Event> events;
  events.push_back(make_event(EventKind::kSend, 0, 1, 0, 1, 1, 5));
  events.push_back(make_event(EventKind::kRecv, 1, 1, 2, 3, 0, 9, 4));
  Trace trace(2, std::move(events), nullptr);
  analysis::Session session(trace);
  const auto& report = session.match_report();
  EXPECT_TRUE(report.matches.empty());
  EXPECT_EQ(report.unmatched_sends.size(), 1u);
  EXPECT_EQ(report.unmatched_recvs.size(), 1u);
}

class TraceIoFormatTest : public ::testing::TestWithParam<TraceFormat> {};

TEST_P(TraceIoFormatTest, RoundTripPreservesEverything) {
  auto registry = std::make_shared<ConstructRegistry>();
  registry->intern("alpha", "a.cpp", 11);
  registry->intern("beta", "b.cpp", 22);

  std::vector<Event> events;
  auto e1 = make_event(EventKind::kSend, 0, 5, 100, 200, 1, 7, 0);
  e1.construct = 0;
  e1.bytes = 64;
  auto e2 = make_event(EventKind::kRecv, 1, 9, 150, 250, 0, 7, 0);
  e2.construct = 1;
  e2.bytes = 64;
  e2.wildcard = true;
  events.push_back(e1);
  events.push_back(e2);
  Trace original(2, std::move(events), registry);

  TempFile file;
  write_trace(file.path(), original, GetParam());
  const Trace loaded = read_trace(file.path());

  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.num_ranks(), 2);
  const auto& l1 = loaded.event(0);
  EXPECT_EQ(l1.kind, EventKind::kSend);
  EXPECT_EQ(l1.marker, 5u);
  EXPECT_EQ(l1.t_start, 100);
  EXPECT_EQ(l1.t_end, 200);
  EXPECT_EQ(l1.peer, 1);
  EXPECT_EQ(l1.tag, 7);
  EXPECT_EQ(l1.bytes, 64u);
  EXPECT_FALSE(l1.wildcard);
  const auto& l2 = loaded.event(1);
  EXPECT_TRUE(l2.wildcard);
  EXPECT_EQ(loaded.constructs().info(0).name, "alpha");
  EXPECT_EQ(loaded.constructs().info(1).line, 22);
}

INSTANTIATE_TEST_SUITE_P(Formats, TraceIoFormatTest,
                         ::testing::Values(TraceFormat::kBinary,
                                           TraceFormat::kText));

TEST(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(read_trace("/nonexistent/path/x.trc"), IoError);
}

TEST(TraceIoTest, RejectsGarbage) {
  TempFile file;
  {
    std::ofstream out(file.path());
    out << "not a trace at all\n";
  }
  EXPECT_THROW(read_trace(file.path()), FormatError);
}

TEST(TraceIoTest, BinaryTruncationStillYieldsPrefix) {
  // Flush-on-demand means a reader may see a file without the footer;
  // events before the cut must parse.
  auto registry = std::make_shared<ConstructRegistry>();
  TempFile file;
  {
    TraceWriter writer(file.path(), 1, registry);
    for (int i = 0; i < 10; ++i) {
      writer.write_event(make_event(EventKind::kMark, 0,
                                    static_cast<std::uint64_t>(i + 1), i, i));
    }
    // No finish(): simulate reading mid-run by copying before close...
    writer.finish();
  }
  // Truncate after the 10 events but before the footer: 8 magic +
  // 4 ranks + 10 * (1 tag + 54 payload) ... compute from file size by
  // chopping the footer (5 bytes: end tag + u32 count).
  const auto full = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), full - 5);
  const Trace loaded = read_trace(file.path());
  EXPECT_EQ(loaded.size(), 10u);
}

TEST(CollectorTest, CollectsPerRankAndBuilds) {
  TraceCollector collector(2);
  collector.append(make_event(EventKind::kMark, 0, 1, 0, 0));
  collector.append(make_event(EventKind::kMark, 1, 1, 1, 1));
  collector.append(make_event(EventKind::kMark, 0, 2, 2, 2));
  EXPECT_EQ(collector.buffered_count(), 3u);
  EXPECT_EQ(collector.total_count(), 3u);
  const Trace trace = collector.build_trace();
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.rank_events(0).size(), 2u);
}

TEST(CollectorTest, GlobalToggleDropsRecords) {
  TraceCollector collector(1);
  collector.set_enabled(false);
  collector.append(make_event(EventKind::kMark, 0, 1, 0, 0));
  collector.set_enabled(true);
  collector.append(make_event(EventKind::kMark, 0, 2, 1, 1));
  EXPECT_EQ(collector.buffered_count(), 1u);
}

TEST(CollectorTest, KindToggleDropsSelectively) {
  TraceCollector collector(1);
  collector.set_kind_enabled(EventKind::kEnter, false);
  collector.append(make_event(EventKind::kEnter, 0, 1, 0, 0));
  collector.append(make_event(EventKind::kSend, 0, 2, 1, 1, 0, 0));
  EXPECT_EQ(collector.buffered_count(), 1u);
  EXPECT_EQ(collector.build_trace().event(0).kind, EventKind::kSend);
}

TEST(CollectorTest, FlushOnDemandDrainsToWriter) {
  TempFile file;
  auto registry = std::make_shared<ConstructRegistry>();
  TraceCollector collector(2, registry);
  TraceWriter writer(file.path(), 2, registry);
  collector.attach_writer(&writer);
  collector.append(make_event(EventKind::kMark, 0, 1, 0, 0));
  collector.append(make_event(EventKind::kMark, 1, 1, 1, 1));
  EXPECT_EQ(writer.events_written(), 0u);
  collector.flush();
  EXPECT_EQ(writer.events_written(), 2u);
  EXPECT_EQ(collector.buffered_count(), 0u);
  writer.finish();
  EXPECT_EQ(read_trace(file.path()).size(), 2u);
}

TEST(CollectorTest, AutoFlushAtThreshold) {
  TempFile file;
  auto registry = std::make_shared<ConstructRegistry>();
  TraceCollector collector(1, registry);
  TraceWriter writer(file.path(), 1, registry);
  collector.attach_writer(&writer, /*threshold=*/4);
  for (int i = 0; i < 10; ++i) {
    collector.append(make_event(EventKind::kMark, 0,
                                static_cast<std::uint64_t>(i + 1), i, i));
  }
  EXPECT_GE(writer.events_written(), 4u);
  collector.flush();
  EXPECT_EQ(writer.events_written(), 10u);
}

TEST(CollectorTest, CrossChunkOrderAndRecycling) {
  // More events than several chunks hold, flushed chunk-by-chunk: the
  // reader must see every record, per-rank program order intact.
  TempFile file;
  auto registry = std::make_shared<ConstructRegistry>();
  TraceCollector collector(1, registry);
  TraceWriter writer(file.path(), 1, registry);
  collector.attach_writer(&writer,
                          /*threshold=*/TraceCollector::kChunkEvents);
  const auto n = 3 * TraceCollector::kChunkEvents + 123;
  for (std::size_t i = 0; i < n; ++i) {
    collector.append(make_event(EventKind::kMark, 0, i + 1,
                                static_cast<support::TimeNs>(i),
                                static_cast<support::TimeNs>(i)));
  }
  collector.flush();
  writer.finish();
  const Trace loaded = read_trace(file.path());
  ASSERT_EQ(loaded.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(loaded.event(i).marker, i + 1);
  }
  EXPECT_EQ(collector.total_count(), n);
  EXPECT_EQ(collector.buffered_count(), 0u);
}

TEST(CollectorTest, BackgroundFlushDrainsConcurrently) {
  // Producers append while the background thread flushes: the SPSC
  // hand-off must lose nothing and keep per-rank order.  One producer
  // thread per rank — appending to a rank's buffer is single-producer
  // by contract (it is the rank's own thread during a run).
  TempFile file;
  auto registry = std::make_shared<ConstructRegistry>();
  TraceCollector collector(2, registry);
  TraceWriter writer(file.path(), 2, registry);
  collector.attach_writer(&writer, /*threshold=*/256);
  collector.start_background_flush(std::chrono::milliseconds(1));

  constexpr std::size_t kPerRank = 20000;
  auto produce = [&](mpi::Rank rank) {
    for (std::size_t i = 0; i < kPerRank; ++i) {
      collector.append(make_event(EventKind::kMark, rank, i + 1,
                                  static_cast<support::TimeNs>(i),
                                  static_cast<support::TimeNs>(i)));
    }
  };
  std::thread t0(produce, 0);
  std::thread t1(produce, 1);
  t0.join();
  t1.join();
  collector.stop_background_flush();  // final drain
  EXPECT_EQ(writer.events_written(), 2 * kPerRank);
  writer.finish();

  const Trace loaded = read_trace(file.path());
  ASSERT_EQ(loaded.size(), 2 * kPerRank);
  for (mpi::Rank r = 0; r < 2; ++r) {
    const auto& events = loaded.rank_events(r);
    ASSERT_EQ(events.size(), kPerRank) << "rank " << r;
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(loaded.event(events[i]).marker, i + 1) << "rank " << r;
    }
  }
}

TEST(CollectorTest, BackgroundFlushStopIsIdempotent) {
  TraceCollector collector(1);
  collector.start_background_flush(std::chrono::milliseconds(1));
  collector.append(make_event(EventKind::kMark, 0, 1, 0, 0));
  collector.stop_background_flush();
  collector.stop_background_flush();
  // No writer attached: the records are still buffered, not lost.
  EXPECT_EQ(collector.buffered_count(), 1u);
  EXPECT_EQ(collector.build_trace().size(), 1u);
}

TEST(TraceIoTest, WriteEventsBatchRoundTrip) {
  // The batched span path must produce the same file as per-event
  // writes.
  auto registry = std::make_shared<ConstructRegistry>();
  TempFile batched;
  {
    TraceWriter writer(batched.path(), 1, registry);
    std::vector<Event> events;
    for (int i = 0; i < 300; ++i) {
      events.push_back(make_event(EventKind::kMark, 0,
                                  static_cast<std::uint64_t>(i + 1), i, i));
    }
    writer.write_events(events);
    EXPECT_EQ(writer.events_written(), 300u);
    writer.finish();
  }
  const Trace loaded = read_trace(batched.path());
  ASSERT_EQ(loaded.size(), 300u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.event(i).marker, i + 1);
  }
}

}  // namespace
}  // namespace tdbg::trace
