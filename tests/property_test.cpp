// Property-style sweeps over the core invariants, parameterized with
// TEST_P across workloads, rank counts, and seeds.

#include <gtest/gtest.h>

#include "analysis/races.hpp"
#include "analysis/session.hpp"
#include "apps/lu.hpp"
#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"
#include "replay/replay.hpp"
#include "trace/trace_io.hpp"

namespace tdbg {
namespace {

// --- Replay determinism across workload scales --------------------------

struct FarmParam {
  int ranks;
  int tasks;
  std::uint64_t seed;
};

class ReplayDeterminism : public ::testing::TestWithParam<FarmParam> {};

TEST_P(ReplayDeterminism, TaskFarmMatchLogIsReproducedExactly) {
  const auto p = GetParam();
  apps::taskfarm::Options opts;
  opts.num_tasks = p.tasks;
  opts.seed = p.seed;
  const auto body = [opts](mpi::Comm& comm) {
    apps::taskfarm::rank_body(comm, opts);
  };
  const auto rec = replay::record(p.ranks, body);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;

  replay::MatchRecorder second(p.ranks);
  replay::ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  ASSERT_TRUE(mpi::run(p.ranks, body, options).completed);
  EXPECT_EQ(second.log(), rec.log);
}

INSTANTIATE_TEST_SUITE_P(
    Farms, ReplayDeterminism,
    ::testing::Values(FarmParam{2, 10, 1}, FarmParam{3, 25, 2},
                      FarmParam{4, 40, 3}, FarmParam{6, 15, 4},
                      FarmParam{8, 50, 5}, FarmParam{5, 33, 6}));

// --- Stopline parking across positions ----------------------------------

class StoplineSweep : public ::testing::TestWithParam<int> {};

TEST_P(StoplineSweep, EveryVerticalStoplineParksAtItsThresholds) {
  apps::strassen::Options opts;
  opts.n = 32;
  opts.cutoff = 8;
  const auto body = [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  };
  const auto rec = replay::record(4, body);
  ASSERT_TRUE(rec.result.completed);

  const auto pct = GetParam();
  const auto t = rec.trace.t_min() +
                 (rec.trace.t_max() - rec.trace.t_min()) * pct / 100;
  analysis::Session analysis(rec.trace);
  const auto line = replay::stopline_at_time(
      rec.trace, analysis.match_report(), analysis.rank_index(), t);

  replay::ReplaySession session(4, body, rec.log);
  const auto stops = session.run_to(line);
  for (const auto& stop : stops) {
    const auto& expect = line.thresholds[static_cast<std::size_t>(stop.rank)];
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(stop.marker, *expect) << "rank " << stop.rank << " pct " << pct;
  }
  EXPECT_TRUE(session.finish().completed);
}

INSTANTIATE_TEST_SUITE_P(Positions, StoplineSweep,
                         ::testing::Values(5, 20, 35, 50, 65, 80, 95));

// --- Causality invariants on every workload ------------------------------

enum class Workload { kStrassen, kLu, kLuNonblocking, kFarm };

class CausalityInvariants : public ::testing::TestWithParam<Workload> {
 protected:
  replay::RecordedRun record_workload() {
    switch (GetParam()) {
      case Workload::kStrassen: {
        apps::strassen::Options opts;
        opts.n = 16;
        opts.cutoff = 8;
        return replay::record(4, [opts](mpi::Comm& comm) {
          apps::strassen::rank_body(comm, opts);
        });
      }
      case Workload::kLu:
      case Workload::kLuNonblocking: {
        apps::lu::Options opts;
        opts.px = 2;
        opts.py = 2;
        opts.nx = 4;
        opts.ny = 4;
        opts.iterations = 2;
        opts.nonblocking = GetParam() == Workload::kLuNonblocking;
        return replay::record(4, [opts](mpi::Comm& comm) {
          apps::lu::rank_body(comm, opts);
        });
      }
      case Workload::kFarm: {
        apps::taskfarm::Options opts;
        opts.num_tasks = 12;
        return replay::record(4, [opts](mpi::Comm& comm) {
          apps::taskfarm::rank_body(comm, opts);
        });
      }
    }
    return {};
  }
};

TEST_P(CausalityInvariants, HappensBeforeIsAStrictPartialOrder) {
  const auto rec = record_workload();
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();
  const auto n = rec.trace.size();
  // Subsample pairs for the O(n^2)/O(n^3) checks.
  const std::size_t stride = std::max<std::size_t>(1, n / 40);
  for (std::size_t a = 0; a < n; a += stride) {
    EXPECT_FALSE(order.happens_before(a, a));
    for (std::size_t b = 0; b < n; b += stride) {
      // Antisymmetry.
      if (order.happens_before(a, b)) {
        EXPECT_FALSE(order.happens_before(b, a));
      }
      // Transitivity through a third point.
      for (std::size_t c = 0; c < n; c += stride * 3) {
        if (order.happens_before(a, b) && order.happens_before(b, c)) {
          EXPECT_TRUE(order.happens_before(a, c));
        }
      }
    }
  }
}

TEST_P(CausalityInvariants, MessagesInduceHappensBefore) {
  const auto rec = record_workload();
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();
  for (const auto& m : order.matches().matches) {
    EXPECT_TRUE(order.happens_before(m.send_index, m.recv_index));
  }
  EXPECT_TRUE(order.matches().unmatched_sends.empty());
  EXPECT_TRUE(order.matches().unmatched_recvs.empty());
}

TEST_P(CausalityInvariants, ProgramOrderIsRespected) {
  const auto rec = record_workload();
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();
  for (mpi::Rank r = 0; r < rec.trace.num_ranks(); ++r) {
    const auto& seq = rec.trace.rank_events(r);
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_TRUE(order.happens_before(seq[i - 1], seq[i]));
    }
  }
}

TEST_P(CausalityInvariants, TraceRoundTripsThroughBothFormats) {
  const auto rec = record_workload();
  ASSERT_TRUE(rec.result.completed);
  for (const auto format :
       {trace::TraceFormat::kBinary, trace::TraceFormat::kBinaryV3,
        trace::TraceFormat::kText}) {
    const auto path =
        std::filesystem::temp_directory_path() /
        ("prop_roundtrip_" +
         std::to_string(static_cast<int>(GetParam())) +
         std::to_string(static_cast<int>(format)) + ".trc");
    trace::write_trace(path, rec.trace, format);
    const auto loaded = trace::read_trace(path);
    ASSERT_EQ(loaded.size(), rec.trace.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      const auto& a = rec.trace.event(i);
      const auto& b = loaded.event(i);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.rank, b.rank);
      EXPECT_EQ(a.marker, b.marker);
      EXPECT_EQ(a.peer, b.peer);
      EXPECT_EQ(a.tag, b.tag);
      EXPECT_EQ(a.channel_seq, b.channel_seq);
      EXPECT_EQ(a.wildcard, b.wildcard);
    }
    // Matching is format-independent.
    analysis::Session loaded_session(loaded);
    analysis::Session original_session(rec.trace);
    EXPECT_EQ(loaded_session.match_report().matches.size(),
              original_session.match_report().matches.size());
    std::filesystem::remove(path);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CausalityInvariants,
                         ::testing::Values(Workload::kStrassen, Workload::kLu,
                                           Workload::kLuNonblocking,
                                           Workload::kFarm));

// --- Nonblocking LU equivalence ------------------------------------------

TEST(LuNonblocking, SameChecksumAsBlocking) {
  apps::lu::Options opts;
  opts.px = 4;
  opts.py = 2;
  opts.nx = 6;
  opts.ny = 6;
  opts.iterations = 2;
  double blocking = 0.0, nonblocking = 0.0;
  {
    auto o = opts;
    const auto result = mpi::run(8, [&, o](mpi::Comm& comm) {
      const double v = apps::lu::rank_body(comm, o);
      if (comm.rank() == 0) blocking = v;
    });
    ASSERT_TRUE(result.completed);
  }
  {
    auto o = opts;
    o.nonblocking = true;
    const auto result = mpi::run(8, [&, o](mpi::Comm& comm) {
      const double v = apps::lu::rank_body(comm, o);
      if (comm.rank() == 0) nonblocking = v;
    });
    ASSERT_TRUE(result.completed);
  }
  EXPECT_EQ(blocking, nonblocking);
}

}  // namespace
}  // namespace tdbg
