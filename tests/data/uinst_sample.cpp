// Sample translation unit for the uinst --check integration test.
int add(int a, int b) { return a + b; }
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
