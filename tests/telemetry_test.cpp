// Tests for tdbg::telemetry — the flight recorder (structured logging
// into per-rank lock-free rings), span self-profiling, Chrome
// trace_event export, the health heartbeat, and their integration with
// the debugger (flight dump on a forced hang, `health` / `flightrec`
// commands).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/ring.hpp"
#include "debugger/commands.hpp"
#include "debugger/debugger.hpp"
#include "fault/hang.hpp"
#include "fault/plan.hpp"
#include "support/clock.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/health.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"
#include "viz/chrome.hpp"

namespace tdbg {
namespace {

// --- flight recorder ---------------------------------------------------

TEST(FlightRecorder, RecordsCarrySiteRankLevelAndArgs) {
  telemetry::FlightRecorder rec(/*capacity=*/64);
  const auto site = telemetry::intern_site("test.basic");
  rec.log_rank(3, telemetry::LogLevel::kInfo, site, 7, 9);
  const auto records = rec.dump();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].site, site);
  EXPECT_EQ(records[0].rank, 3);
  EXPECT_EQ(records[0].level, telemetry::LogLevel::kInfo);
  EXPECT_EQ(records[0].a0, 7u);
  EXPECT_EQ(records[0].a1, 9u);
  EXPECT_EQ(telemetry::site_name(site), "test.basic");
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestRecords) {
  // Capacity rounds to a power of two; all records land in one ring
  // (single rank), so appending 3x capacity must keep exactly the
  // last `capacity` records — a black box keeps the tail.
  telemetry::FlightRecorder rec(/*capacity=*/8);
  const auto site = telemetry::intern_site("test.wrap");
  for (std::uint64_t i = 0; i < 24; ++i) {
    rec.log_rank(0, telemetry::LogLevel::kInfo, site, i);
  }
  const auto records = rec.dump();
  ASSERT_EQ(records.size(), 8u);
  for (const auto& r : records) EXPECT_GE(r.a0, 16u);
  EXPECT_EQ(rec.appended(), 24u);
}

TEST(FlightRecorder, LevelGateSuppressesBelowMinimum) {
  telemetry::FlightRecorder rec(/*capacity=*/16);
  rec.set_min_level(telemetry::LogLevel::kWarn);
  EXPECT_FALSE(rec.enabled(telemetry::LogLevel::kInfo));
  EXPECT_TRUE(rec.enabled(telemetry::LogLevel::kError));
  const auto site = telemetry::intern_site("test.gate");
  rec.log(telemetry::LogLevel::kInfo, site);   // suppressed
  rec.log(telemetry::LogLevel::kError, site);  // kept
  EXPECT_EQ(rec.dump().size(), 1u);

  rec.set_min_level(telemetry::LogLevel::kOff);
  EXPECT_FALSE(rec.enabled(telemetry::LogLevel::kError));
}

TEST(FlightRecorder, ConcurrentWritersAndDumpsAreSafe) {
  // Hammer one recorder from several writer threads (two per ring to
  // force slot contention) while a reader dumps continuously.  TSan
  // runs this test too (the telemetry label is in verify.sh's TSan
  // pass); assertions here are liveness + sanity, the seqlock protocol
  // is what's under test.
  telemetry::FlightRecorder rec(/*capacity=*/128);
  const auto site = telemetry::intern_site("test.concurrent");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& r : rec.dump()) {
        // A torn record would show an unknown site or absurd rank.
        ASSERT_EQ(r.site, site);
        ASSERT_TRUE(r.rank == 0 || r.rank == 1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        rec.log_rank(w % 2, telemetry::LogLevel::kInfo, site, i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(rec.appended(), kWriters * kPerWriter);
  // Capacity is per ring; ranks 0 and 1 hash to different rings, and
  // both wrapped many times over.
  EXPECT_EQ(rec.dump().size(), 2u * 128u);
}

TEST(FlightRecorder, DumpTextTailsAndSortsByTime) {
  telemetry::FlightRecorder rec(/*capacity=*/32);
  const auto site = telemetry::intern_site("test.text");
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.log_rank(static_cast<int>(i % 2), telemetry::LogLevel::kWarn, site, i);
  }
  const auto text = rec.dump_text(/*max_records=*/2);
  // Two lines, each mentioning the site and the WARN level.
  std::istringstream lines(text);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("test.text"), std::string::npos);
    EXPECT_NE(line.find("WARN"), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 2);
}

TEST(FlightRecorder, MacroCompilesAndLogsThroughTheGlobal) {
  const auto before = telemetry::FlightRecorder::global().appended();
  TDBG_LOG(telemetry::LogLevel::kWarn, "test.macro", 1, 2);
  TDBG_LOG(telemetry::LogLevel::kWarn, "test.macro.noargs");
  EXPECT_EQ(telemetry::FlightRecorder::global().appended(), before + 2);
}

// --- spans -------------------------------------------------------------

TEST(SpanCollector, RecordsRaiiSpans) {
  auto& collector = telemetry::SpanCollector::global();
  collector.reset();
  {
    telemetry::Span span("test.span");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(telemetry::site_name(spans[0].name), "test.span");
  EXPECT_GE(spans[0].t_end - spans[0].t_start, 1'000'000);
  EXPECT_GE(spans[0].t_start, 0);
}

TEST(SpanCollector, DisabledSpansRecordNothing) {
  auto& collector = telemetry::SpanCollector::global();
  collector.reset();
  collector.set_enabled(false);
  { telemetry::Span span("test.disabled"); }
  collector.set_enabled(true);
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST(SpanCollector, FullCollectorDropsInsteadOfOverwriting) {
  telemetry::SpanCollector collector(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    collector.add(telemetry::intern_site("test.drop"), i, i, i + 1);
  }
  EXPECT_EQ(collector.snapshot().size(), 4u);
  EXPECT_EQ(collector.dropped(), 2u);
  // The *first* spans survive: a self-profile wants the session's
  // shape from the start.
  for (const auto& s : collector.snapshot()) EXPECT_LT(s.rank, 4);
}

// --- chrome export -----------------------------------------------------

/// Just enough JSON validation for the exporter: object/array nesting
/// balances outside strings, and strings close.  (Perfetto is the
/// real consumer; the scripts verify with python's json.loads.)
bool json_shape_ok(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(ChromeTrace, WriterEmitsParsableCompleteEvents) {
  telemetry::ChromeTraceWriter writer;
  writer.set_process_name(1, "app");
  writer.set_thread_name(1, 0, "rank 0");
  writer.add_complete(1, 0, "send \"x\"\\", 1500, 2750, "\"peer\":3");
  writer.add_instant(1, 0, "mark", 4000);
  const auto json = writer.str();
  EXPECT_TRUE(json_shape_ok(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ns -> µs with sub-µs decimals: 1500ns = 1.500, 2750ns dur = 2.750.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.750"), std::string::npos);
  // The quote and backslash in the name must be escaped.
  EXPECT_NE(json.find("send \\\"x\\\"\\\\"), std::string::npos);
}

TEST(ChromeTrace, RecordedRunExportsAppEventsAndSelfSpans) {
  telemetry::SpanCollector::global().reset();
  dbg::Debugger debugger(2, [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 1;
    apps::ring::rank_body(comm, opts);
  });
  debugger.record();
  debugger.order();  // forces a "debugger.analysis" span

  std::ostringstream os;
  const auto count = viz::write_chrome_trace(
      os, debugger.trace(), telemetry::SpanCollector::global().snapshot());
  const auto json = os.str();
  EXPECT_GT(count, 0u);
  EXPECT_TRUE(json_shape_ok(json));
  // App events on pid 1 with message args; self-spans on pid 2.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"peer\":"), std::string::npos);
  EXPECT_NE(json.find("debugger.record"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tdbg\""), std::string::npos);
}

// --- health monitor ----------------------------------------------------

TEST(HealthMonitor, FlagsARankThatStopsProgressing) {
  telemetry::HealthOptions options;
  options.interval = std::chrono::milliseconds(5);
  options.stall_after = std::chrono::milliseconds(20);
  // Rank 0 progresses every probe; rank 1 sits blocked at marker 7.
  std::atomic<std::uint64_t> moving{0};
  telemetry::HealthMonitor monitor(
      2,
      [&](int rank) {
        telemetry::HealthSample s;
        if (rank == 0) {
          s.state = telemetry::HealthSample::State::kRunning;
          s.marker = moving.fetch_add(1) + 1;
        } else {
          s.state = telemetry::HealthSample::State::kBlocked;
          s.marker = 7;
          s.detail = "recv <- rank 0";
        }
        return s;
      },
      options);
  monitor.start();
  // Deterministic wait: a stalled flag needs stall_after of no
  // progress; poll the snapshot instead of guessing tick counts.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool stalled = false;
  while (!stalled && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stalled = monitor.snapshot()[1].stalled;
  }
  monitor.stop();
  EXPECT_TRUE(stalled);
  EXPECT_FALSE(monitor.snapshot()[0].stalled);
  EXPECT_GE(monitor.ticks(), 2u);
  EXPECT_GE(monitor.series().rows(), 1u);

  const auto report = monitor.report();
  EXPECT_NE(report.find("STALLED"), std::string::npos);
  EXPECT_NE(report.find("recv <- rank 0"), std::string::npos);
  EXPECT_NE(report.find("rank 0: running"), std::string::npos);
}

TEST(HealthMonitor, StopIsIdempotentAndFinalSampleLands) {
  telemetry::HealthOptions options;
  options.interval = std::chrono::hours(1);  // never ticks on its own
  telemetry::HealthMonitor monitor(
      1,
      [](int) {
        telemetry::HealthSample s;
        s.state = telemetry::HealthSample::State::kRunning;
        return s;
      },
      options);
  monitor.start();
  monitor.stop();
  monitor.stop();
  EXPECT_EQ(monitor.ticks(), 1u);  // the final on-stop sample
}

// --- debugger integration ---------------------------------------------

mpi::RankBody ring_body() {
  return [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 3;
    apps::ring::rank_body(comm, opts);
  };
}

TEST(TelemetryIntegration, ForcedHangDumpsFlightLogNamingTheHold) {
  dbg::Debugger debugger(4, ring_body());
  debugger.set_fault_plan(fault::FaultPlan::named("deadlock_ring", 42));
  const auto& result = debugger.record();
  ASSERT_TRUE(result.deadlocked);

  const auto diagnosis =
      fault::diagnose_hang(result, debugger.trace());
  ASSERT_TRUE(diagnosis.hung);
  // The black box explains the hang: the injected hold is in the
  // dumped tail, and so is the watchdog's verdict.
  EXPECT_NE(diagnosis.flight_log.find("fault.hold"), std::string::npos)
      << diagnosis.flight_log;
  EXPECT_NE(diagnosis.flight_log.find("mpi.watchdog.deadlock"),
            std::string::npos);
  EXPECT_NE(diagnosis.describe().find("fault.hold"), std::string::npos);
}

TEST(TelemetryIntegration, RecordAttachesAStoppedHealthMonitor) {
  dbg::Debugger debugger(2, ring_body());
  debugger.record();
  const auto* health = debugger.health();
  ASSERT_NE(health, nullptr);
  EXPECT_GE(health->ticks(), 1u);
  const auto report = health->report();
  EXPECT_NE(report.find("rank 0"), std::string::npos);
  EXPECT_NE(report.find("rank 1"), std::string::npos);
}

TEST(TelemetryIntegration, HealthAndFlightrecCommands) {
  dbg::Debugger debugger(2, ring_body());
  dbg::CommandInterpreter interpreter(debugger);

  // Both commands answer before any recording.
  auto r = interpreter.execute("health");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("no health heartbeat yet"), std::string::npos);
  r = interpreter.execute("flightrec");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("flight recorder:"), std::string::npos);

  ASSERT_TRUE(interpreter.execute("record").ok);
  r = interpreter.execute("health");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("heartbeat:"), std::string::npos);
  EXPECT_NE(r.output.find("rank 1"), std::string::npos);
  r = interpreter.execute("flightrec 4");
  EXPECT_TRUE(r.ok);
  r = interpreter.execute("help");
  EXPECT_NE(r.output.find("flightrec"), std::string::npos);
  EXPECT_NE(r.output.find("health"), std::string::npos);
}

TEST(TelemetryIntegration, MpiSlowPathEmitsMatchAndParkSpans) {
  telemetry::SpanCollector::global().reset();
  dbg::Debugger debugger(4, ring_body());
  debugger.record();
  bool saw_match = false;
  for (const auto& s : telemetry::SpanCollector::global().snapshot()) {
    if (telemetry::site_name(s.name) == "mpi.match") saw_match = true;
  }
  // A 4-rank ring always has a receiver waiting for the token, so the
  // match slow path must fire at least once.
  EXPECT_TRUE(saw_match);
}

}  // namespace
}  // namespace tdbg
