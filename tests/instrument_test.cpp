#include <gtest/gtest.h>

#include "apps/fib.hpp"
#include "instrument/api.hpp"
#include "instrument/session.hpp"
#include "mpi/runtime.hpp"
#include "trace/collector.hpp"

namespace tdbg::instr {
namespace {

void small_instrumented_fn(int depth) {
  TDBG_FUNCTION();
  if (depth > 0) small_instrumented_fn(depth - 1);
}

TEST(SessionTest, GuardsAreNoopsOutsideRuns) {
  // No session bound to this thread: must not crash, must not count.
  small_instrumented_fn(3);
  mark("outside");
  ComputeScope scope("outside");
  SUCCEED();
}

TEST(SessionTest, CountsMarkersPerRank) {
  trace::TraceCollector collector(2, global_constructs());
  Session session(2, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    small_instrumented_fn(comm.rank() == 0 ? 4 : 1);  // 5 vs 2 calls
  }, options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(session.counter(0), 5u);
  EXPECT_EQ(session.counter(1), 2u);
}

TEST(SessionTest, MarkersCountMpiCallsToo) {
  trace::TraceCollector collector(2, global_constructs());
  Session session(2, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 3);
      comm.send_value<int>(2, 1, 3);
    } else {
      comm.recv_value<int>(0, 3);
      comm.recv_value<int>(0, 3);
    }
  }, options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(session.counter(0), 2u);  // two sends
  EXPECT_EQ(session.counter(1), 2u);  // two recvs
}

TEST(SessionTest, MarkersAreStableAcrossRecordingToggles) {
  // The counter must not depend on what is being *collected* — that is
  // what makes markers replayable across configurations.
  const auto run_counter = [](bool collect) {
    trace::TraceCollector collector(1, global_constructs());
    SessionOptions so;
    so.record_function_events = collect;
    Session session(1, collect ? &collector : nullptr, so);
    mpi::RunOptions options;
    options.hooks = &session;
    mpi::run(1, [](mpi::Comm&) { small_instrumented_fn(7); }, options);
    return session.counter(0);
  };
  EXPECT_EQ(run_counter(true), run_counter(false));
}

TEST(SessionTest, RecordsEnterAndExitEvents) {
  trace::TraceCollector collector(1, global_constructs());
  Session session(1, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [](mpi::Comm&) { small_instrumented_fn(2); }, options);
  const auto trace = collector.build_trace();
  std::size_t enters = 0, exits = 0;
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kEnter) ++enters;
    if (e.kind == trace::EventKind::kExit) ++exits;
  });
  EXPECT_EQ(enters, 3u);
  EXPECT_EQ(exits, 3u);
}

TEST(SessionTest, UserMonitorRecordsSiteAndArgs) {
  trace::TraceCollector collector(1, global_constructs());
  Session session(1, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [](mpi::Comm&) {
    TDBG_FUNCTION_ARGS(42, 99);
  }, options);
  const auto record = session.last_record(0);
  EXPECT_EQ(record.arg1, 42u);
  EXPECT_EQ(record.arg2, 99u);
  EXPECT_NE(record.site, trace::kNoConstruct);
}

TEST(SessionTest, ThresholdTriggersControl) {
  struct CountingControl : ControlInterface {
    int hits = 0;
    std::uint64_t hit_marker = 0;
    void at_event(mpi::Rank, std::uint64_t marker, trace::ConstructId,
                  trace::EventKind, int, bool threshold_hit,
                  const EventDetail&) override {
      if (threshold_hit) {
        ++hits;
        hit_marker = marker;
      }
    }
  };
  trace::TraceCollector collector(1, global_constructs());
  Session session(1, &collector);
  CountingControl control;
  session.set_control(&control);
  session.set_threshold(0, 3);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [](mpi::Comm&) { small_instrumented_fn(9); }, options);
  EXPECT_EQ(control.hits, 1);
  EXPECT_EQ(control.hit_marker, 3u);
}

TEST(SessionTest, ComputeScopeRecordsSpan) {
  trace::TraceCollector collector(1, global_constructs());
  Session session(1, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [](mpi::Comm&) {
    ComputeScope scope("work_block");
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }, options);
  const auto trace = collector.build_trace();
  bool found = false;
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kCompute) {
      found = true;
      EXPECT_GE(e.t_end, e.t_start);
      EXPECT_EQ(trace.constructs().info(e.construct).name, "work_block");
    }
  });
  EXPECT_TRUE(found);
}

TEST(SessionTest, RecvEventCarriesActualSourceAndWildcardFlag) {
  trace::TraceCollector collector(2, global_constructs());
  Session session(2, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(5, 1, 2);
    } else {
      comm.recv_value<int>(mpi::kAnySource, 2);
    }
  }, options);
  const auto trace = collector.build_trace();
  bool found = false;
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kRecv) {
      found = true;
      EXPECT_EQ(e.peer, 0);  // actual source, not ANY
      EXPECT_TRUE(e.wildcard);
      EXPECT_EQ(e.tag, 2);
    }
  });
  EXPECT_TRUE(found);
}

TEST(SessionTest, FibCallCountMatchesFormula) {
  trace::TraceCollector collector(1, global_constructs());
  SessionOptions so;
  so.record_function_events = false;  // count markers, skip records
  Session session(1, nullptr, so);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [](mpi::Comm&) { apps::fib_instrumented(15); }, options);
  EXPECT_EQ(session.counter(0), apps::fib_call_count(15));
}

TEST(SessionTest, MpiEventToggleSuppressesMessageRecords) {
  trace::TraceCollector collector(2, global_constructs());
  SessionOptions so;
  so.record_mpi_events = false;
  Session session(2, &collector, so);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 1);
    } else {
      comm.recv_value<int>(0, 1);
    }
  }, options);
  const auto trace = collector.build_trace();
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    EXPECT_FALSE(e.is_message());
  });
  // But markers counted anyway.
  EXPECT_EQ(session.counter(0), 1u);
}

}  // namespace
}  // namespace tdbg::instr
