// Tests for the obs metrics layer: instrument exactness under
// concurrency, snapshot monotonicity/diff/JSON round-trip, and the
// HookFanout ordering contract nested timers depend on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "mpi/hooks.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_hooks.hpp"
#include "support/clock.hpp"

namespace {

using namespace tdbg;

TEST(ObsSlots, RankFolding) {
  EXPECT_EQ(obs::slot_of(-1), 0u);
  EXPECT_EQ(obs::slot_of(0), 1u);
  EXPECT_EQ(obs::slot_of(31), 32u);
  EXPECT_EQ(obs::slot_of(32), 1u);  // folds onto rank 0's slot
  EXPECT_EQ(obs::rank_of_slot(0), -1);
  EXPECT_EQ(obs::rank_of_slot(1), 0);
  EXPECT_EQ(obs::rank_of_slot(32), 31);
}

TEST(ObsHistogram, BucketOfIsBitWidth) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  // Width-64 values clamp into the top bucket.
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::Histogram::kBuckets - 1);
}

TEST(ObsCounter, ConcurrentHammeringIsExact) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("test.hammer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        counter.add(t);            // per-thread rank slot
        counter.add(-1, 2);        // shared driver slot
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(counter.value(t), kIters);
  EXPECT_EQ(counter.value(-1), 2 * kThreads * kIters);
  EXPECT_EQ(counter.total(), 3 * kThreads * kIters);
}

TEST(ObsHistogram, ConcurrentHammeringIsExact) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("test.hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 1; i <= kIters; ++i) hist.record(t, i);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(hist.total_count(), kThreads * kIters);
  EXPECT_EQ(hist.total_sum(), kThreads * kIters * (kIters + 1) / 2);
  EXPECT_EQ(hist.total_max(), kIters);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(hist.count(t), kIters);
}

TEST(ObsSnapshot, MonotonicUnderConcurrentWrites) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("test.mono");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter.add(0);
  });

  std::uint64_t last = 0;
  support::TimeNs last_ns = 0;
  for (int i = 0; i < 200; ++i) {
    const auto snap = registry.snapshot();
    const auto* m = snap.find("test.mono");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->total(), last);
    EXPECT_GE(snap.taken_ns, last_ns);
    last = m->total();
    last_ns = snap.taken_ns;
  }
  stop.store(true);
  writer.join();
}

TEST(ObsSnapshot, DiffSubtractsCountersKeepsGauges) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("test.c");
  auto& gauge = registry.gauge("test.g");
  auto& hist = registry.histogram("test.h");

  counter.add(0, 10);
  gauge.set(0, 5);
  hist.record(0, 100);
  const auto before = registry.snapshot();

  counter.add(0, 7);
  gauge.set(0, 3);
  hist.record(0, 50);
  const auto after = registry.snapshot();

  const auto delta = after.diff(before);
  EXPECT_EQ(delta.find("test.c")->total(), 7u);
  EXPECT_EQ(delta.find("test.g")->total(), 3u);  // gauge: newer value
  EXPECT_EQ(delta.find("test.h")->total(), 1u);  // one new sample
  EXPECT_EQ(delta.find("test.h")->hist_sum, 50u);
}

TEST(ObsSnapshot, JsonRoundTrip) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  registry.counter("test.calls").add(0, 42);
  registry.counter("test.calls").add(3, 7);
  registry.gauge("test.depth").record_max(1, 9);
  registry.histogram("test.lat", obs::Unit::kNanoseconds).record(2, 1000);
  registry.histogram("test.lat", obs::Unit::kNanoseconds).record(-1, 3);

  const auto snap = registry.snapshot();
  const auto parsed = obs::Snapshot::from_json(snap.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->taken_ns, snap.taken_ns);
  ASSERT_EQ(parsed->metrics.size(), snap.metrics.size());
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    EXPECT_EQ(parsed->metrics[i], snap.metrics[i]) << snap.metrics[i].name;
  }
}

TEST(ObsSnapshot, FromJsonRejectsGarbage) {
  EXPECT_FALSE(obs::Snapshot::from_json("").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("{}").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("{\"taken_ns\":1}").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("[1,2,3]").has_value());
}

TEST(ObsSnapshot, TextRenderingFiltersByRankAndFamily) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  registry.counter("alpha.x").add(0, 4);
  registry.counter("beta.y").add(1, 5);
  const auto snap = registry.snapshot();

  const auto all = snap.to_text();
  EXPECT_NE(all.find("alpha.x"), std::string::npos);
  EXPECT_NE(all.find("beta.y"), std::string::npos);

  const auto alpha_only = snap.to_text(std::nullopt, "alpha");
  EXPECT_NE(alpha_only.find("alpha.x"), std::string::npos);
  EXPECT_EQ(alpha_only.find("beta.y"), std::string::npos);

  const auto rank1 = snap.to_text(1);
  EXPECT_EQ(rank1.find("alpha.x"), std::string::npos);
  EXPECT_NE(rank1.find("beta.y"), std::string::npos);
}

// Regression: the series used to freeze its column set at the first
// snapshot, silently dropping any instrument that first reported later
// (a heartbeat sampling a lazily-created gauge lost the whole column).
// Columns must grow, with earlier rows back-filled as 0.
TEST(ObsTimeSeries, ColumnsGrowWithLateInstruments) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  registry.counter("test.a").add(0, 1);
  obs::MetricsSeries series;
  series.add(registry.snapshot());
  registry.counter("test.a").add(0, 2);
  registry.counter("test.late").add(0, 9);  // not in the first snapshot
  series.add(registry.snapshot());

  EXPECT_EQ(series.rows(), 2u);
  EXPECT_EQ(series.columns(), 2u);
  const auto out = series.str();
  EXPECT_NE(out.find("test.a"), std::string::npos);
  EXPECT_NE(out.find("test.late"), std::string::npos);

  // Row 1 (before test.late existed) back-fills its cell with 0; row 2
  // carries the value 9.
  std::istringstream lines(out);
  std::string header, row1, row2;
  std::getline(lines, header);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_NE(header.find("test.late"), std::string::npos);
  EXPECT_EQ(row1.substr(row1.rfind(',') + 1), "0");
  EXPECT_EQ(row2.substr(row2.rfind(',') + 1), "9");
}

TEST(ObsRegistry, DisabledAddsAreDropped) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("test.off");
  registry.set_enabled(false);
  counter.add(0, 100);
  EXPECT_EQ(counter.total(), 0u);
  registry.set_enabled(true);
  counter.add(0, 1);
  EXPECT_EQ(counter.total(), 1u);
}

TEST(ObsRegistry, InternReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  auto& a = registry.counter("test.same");
  auto& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(ObsScopedTimer, RecordsOneSample) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("test.timer");
  {
    obs::ScopedTimer timer(hist, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_GE(hist.sum(2), 1000000u);  // at least the 1ms sleep
}

// --- HookFanout ordering contract ----------------------------------------

/// Records every hook invocation into a shared log.
class OrderHook : public mpi::ProfilingHooks {
 public:
  OrderHook(std::string name, std::vector<std::string>* log)
      : name_(std::move(name)), log_(log) {}
  void on_call_begin(const mpi::CallInfo&) override {
    log_->push_back(name_ + ".begin");
  }
  void on_call_end(const mpi::CallInfo&, const mpi::Status*) override {
    log_->push_back(name_ + ".end");
  }
  void on_rank_start(mpi::Rank) override {
    log_->push_back(name_ + ".start");
  }
  void on_rank_finish(mpi::Rank) override {
    log_->push_back(name_ + ".finish");
  }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(HookFanout, BeginInOrderEndInReverse) {
  std::vector<std::string> log;
  OrderHook a("a", &log);
  OrderHook b("b", &log);
  OrderHook c("c", &log);
  mpi::HookFanout fanout{&a, &b, &c};

  mpi::CallInfo info;
  fanout.on_call_begin(info);
  fanout.on_call_end(info, nullptr);
  fanout.on_rank_start(0);
  fanout.on_rank_finish(0);

  const std::vector<std::string> expected{
      "a.begin", "b.begin", "c.begin", "c.end",    "b.end",    "a.end",
      "a.start", "b.start", "c.start", "c.finish", "b.finish", "a.finish"};
  EXPECT_EQ(log, expected);
}

/// Times begin→end of every observed call into a histogram.
class TimingHook : public mpi::ProfilingHooks {
 public:
  explicit TimingHook(obs::Histogram& hist) : hist_(&hist) {}
  void on_call_begin(const mpi::CallInfo&) override {
    start_ = support::now_ns();
  }
  void on_call_end(const mpi::CallInfo&, const mpi::Status*) override {
    hist_->record(0, static_cast<std::uint64_t>(support::now_ns() - start_));
  }

 private:
  obs::Histogram* hist_;
  support::TimeNs start_ = 0;
};

/// Burns measurable time on the end side (a slow recorder).
class SlowEndHook : public mpi::ProfilingHooks {
 public:
  void on_call_end(const mpi::CallInfo&, const mpi::Status*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
};

TEST(HookFanout, NestedScopedTimersUnderFanout) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  auto& outer_hist = registry.histogram("test.outer");
  auto& inner_hist = registry.histogram("test.inner");
  TimingHook outer(outer_hist);
  SlowEndHook slow;
  TimingHook inner(inner_hist);
  // Installation order: outer, slow, inner.  Reverse end-side order
  // means inner.end and slow.end both run inside outer's window.
  mpi::HookFanout fanout{&outer, &slow, &inner};

  mpi::CallInfo info;
  fanout.on_call_begin(info);
  fanout.on_call_end(info, nullptr);

  ASSERT_EQ(outer_hist.count(0), 1u);
  ASSERT_EQ(inner_hist.count(0), 1u);
  // The earlier-installed timer's window brackets the later one's...
  EXPECT_GE(outer_hist.sum(0), inner_hist.sum(0));
  // ...and includes the slow child's 2ms of end-side work, which the
  // inner window must exclude.
  EXPECT_GE(outer_hist.sum(0), 2000000u);
  EXPECT_LT(inner_hist.sum(0), 2000000u);
}

TEST(MetricsHooks, CountsCallsAndBytes) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  obs::MetricsRegistry registry;
  obs::MetricsHooks hooks(registry);

  mpi::CallInfo send;
  send.kind = mpi::CallKind::kSend;
  send.rank = 1;
  send.bytes = 64;
  hooks.on_call_begin(send);
  hooks.on_call_end(send, nullptr);

  mpi::CallInfo recv;
  recv.kind = mpi::CallKind::kRecv;
  recv.rank = 2;
  recv.peer = mpi::kAnySource;
  mpi::Status status;
  status.bytes = 64;
  hooks.on_call_begin(recv);
  hooks.on_call_end(recv, &status);
  hooks.on_rank_finish(1);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find("runtime.calls.send")->per_rank[obs::slot_of(1)], 1u);
  EXPECT_EQ(snap.find("runtime.calls.recv")->per_rank[obs::slot_of(2)], 1u);
  EXPECT_EQ(snap.find("runtime.bytes_sent")->total(), 64u);
  EXPECT_EQ(snap.find("runtime.bytes_received")->total(), 64u);
  EXPECT_EQ(snap.find("runtime.recv_wildcards")->total(), 1u);
  EXPECT_EQ(snap.find("runtime.recv_block_ns")->total(), 1u);
  EXPECT_EQ(snap.find("runtime.ranks_finished")->total(), 1u);
}

TEST(MailboxObs, ChannelPathPublishesDeliveryMetrics) {
  // The per-channel mailbox must keep feeding the runtime.* metrics
  // the old single-mutex mailbox published: delivery counts, receiver
  // queue high-watermark, and delivery→match latency samples.
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  auto& registry = obs::MetricsRegistry::global();
  auto& delivered = registry.counter("runtime.msgs_delivered");
  auto& queue_hwm = registry.gauge("runtime.mailbox_queue_hwm");
  auto& match_latency =
      registry.histogram("runtime.match_latency_ns", obs::Unit::kNanoseconds);
  const auto delivered_before = delivered.total();
  const auto delivered_r1_before = delivered.value(1);
  const auto latency_before = match_latency.total_count();

  // Rank 0 floods rank 1 with kBurst tag-1 messages, then one tag-2
  // message.  Rank 1 receives tag 2 *first*: nothing can match until
  // the last delivery, so the queue is kBurst + 1 deep at that point
  // and the high-watermark must reflect it.
  static constexpr std::uint64_t kBurst = 64;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        comm.send_value<std::uint64_t>(i, 1, /*tag=*/1);
      }
      comm.send_value<std::uint64_t>(kBurst, 1, /*tag=*/2);
    } else {
      EXPECT_EQ(comm.recv_value<std::uint64_t>(0, 2), kBurst);
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        EXPECT_EQ(comm.recv_value<std::uint64_t>(0, 1), i);
      }
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_detail;

  // Every user message was delivered exactly once to rank 1's mailbox.
  EXPECT_EQ(delivered.total() - delivered_before, kBurst + 1);
  EXPECT_EQ(delivered.value(1) - delivered_r1_before, kBurst + 1)
      << "deliveries are counted against the receiving rank";
  // The burst sat unmatched while rank 1 waited for tag 2.
  EXPECT_GE(queue_hwm.value(1), kBurst + 1);
  // Each match of a stamped delivery records one latency sample.
  EXPECT_GE(match_latency.total_count() - latency_before, kBurst + 1);
}

}  // namespace
