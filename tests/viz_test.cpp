#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"
#include "viz/html_view.hpp"
#include "viz/profile.hpp"
#include "viz/timeline.hpp"

namespace tdbg::viz {
namespace {

replay::RecordedRun strassen_run(bool buggy = false) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = buggy;
  return replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
}

TEST(TimelineTest, SvgContainsBarsAndMessages) {
  const auto rec = strassen_run();
  ASSERT_TRUE(rec.result.completed);
  TimeSpaceDiagram diagram(rec.trace);
  const auto svg = diagram.to_svg();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Bars for constructs and lines for messages.
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  // All 8 process labels present.
  for (int r = 0; r < 8; ++r) {
    EXPECT_NE(svg.find(">P" + std::to_string(r) + "<"), std::string::npos);
  }
}

TEST(TimelineTest, StoplineOverlayDrawsRedLine) {
  const auto rec = strassen_run();
  TimeSpaceDiagram diagram(rec.trace);
  Overlay overlay;
  overlay.stopline = (rec.trace.t_min() + rec.trace.t_max()) / 2;
  const auto svg = diagram.to_svg(overlay);
  EXPECT_NE(svg.find("stroke=\"red\" stroke-width=\"2\""), std::string::npos);
}

TEST(TimelineTest, MissedMessageRendersDashed) {
  const auto rec = strassen_run(/*buggy=*/true);
  ASSERT_TRUE(rec.result.deadlocked);
  TimeSpaceDiagram diagram(rec.trace);
  const auto svg = diagram.to_svg();
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
}

TEST(TimelineTest, FrontierOverlayDrawsPolylines) {
  const auto rec = strassen_run();
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();
  // Mid-trace event on rank 0.
  const auto& seq = rec.trace.rank_events(0);
  const auto target = seq[seq.size() / 2];
  Overlay overlay;
  overlay.selected_event = target;
  overlay.past_frontier = order.past_frontier(target);
  overlay.future_frontier = order.future_frontier(target);
  TimeSpaceDiagram diagram(rec.trace);
  const auto svg = diagram.to_svg(overlay);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(TimelineTest, AsciiRendersRowsBottomUp) {
  const auto rec = strassen_run();
  TimeSpaceDiagram diagram(rec.trace);
  const auto ascii = diagram.to_ascii(80);
  // Process 0 at the bottom (last process row printed above the axis).
  const auto p0 = ascii.find("P0 ");
  const auto p7 = ascii.find("P7 ");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p7, std::string::npos);
  EXPECT_LT(p7, p0);
  // Some activity characters.
  EXPECT_NE(ascii.find_first_of("src="), std::string::npos);
}

TEST(TimelineTest, AsciiStopline) {
  const auto rec = strassen_run();
  TimeSpaceDiagram diagram(rec.trace);
  Overlay overlay;
  overlay.stopline = (rec.trace.t_min() + rec.trace.t_max()) / 2;
  const auto ascii = diagram.to_ascii(60, overlay);
  EXPECT_NE(ascii.find('|'), std::string::npos);
}

TEST(TimelineTest, ZoomWindowRestrictsEvents) {
  const auto rec = strassen_run();
  DiagramOptions options;
  options.window_t0 = rec.trace.t_min();
  options.window_t1 = rec.trace.t_min() + 1;  // 1 ns window
  TimeSpaceDiagram narrow(rec.trace, options);
  TimeSpaceDiagram full(rec.trace);
  EXPECT_LT(narrow.to_svg().size(), full.to_svg().size());
}

TEST(ProfileTest, AggregatesTimeAndCalls) {
  const auto rec = strassen_run();
  const auto profile = profile_trace(rec.trace);
  ASSERT_EQ(profile.ranks.size(), 8u);
  // Workers computed; the master messaged.
  EXPECT_GT(profile.ranks[1].compute, 0);
  EXPECT_GT(profile.ranks[0].messaging, 0);
  EXPECT_GT(profile.ranks[0].calls, 0u);
  // Rows are sorted by total time, descending.
  for (std::size_t i = 1; i < profile.rows.size(); ++i) {
    EXPECT_GE(profile.rows[i - 1].total, profile.rows[i].total);
  }
  const auto text = profile.to_string(rec.trace.constructs());
  EXPECT_NE(text.find("hottest constructs"), std::string::npos);
  EXPECT_NE(text.find("compute_product"), std::string::npos);
}

TEST(ProfileTest, RowCountsMatchEventCounts) {
  const auto rec = strassen_run();
  const auto profile = profile_trace(rec.trace);
  std::uint64_t row_events = 0;
  for (const auto& row : profile.rows) row_events += row.count;
  std::uint64_t countable = 0;
  rec.trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind != trace::EventKind::kExit &&
        e.kind != trace::EventKind::kMark) {
      ++countable;
    }
  });
  EXPECT_EQ(row_events, countable);
}

TEST(HtmlViewTest, SelfContainedPage) {
  const auto rec = strassen_run();
  const auto html = to_html(rec.trace);
  EXPECT_EQ(html.find("<!doctype html>"), 0u);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("data-marker="), std::string::npos);
  EXPECT_NE(html.find("addEventListener('wheel'"), std::string::npos);
  // No external references: self-contained.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(HtmlViewTest, StoplineOverlayIncluded) {
  const auto rec = strassen_run();
  Overlay overlay;
  overlay.stopline = (rec.trace.t_min() + rec.trace.t_max()) / 2;
  const auto html = to_html(rec.trace, {}, overlay);
  EXPECT_NE(html.find("stroke='red'"), std::string::npos);
}

TEST(TimelineTest, HitTestMatchesTraceQuery) {
  const auto rec = strassen_run();
  TimeSpaceDiagram diagram(rec.trace);
  const auto t = (rec.trace.t_min() + rec.trace.t_max()) / 3;
  for (mpi::Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(diagram.hit_test(t, r), rec.trace.last_event_at_or_before(r, t));
  }
}

}  // namespace
}  // namespace tdbg::viz
