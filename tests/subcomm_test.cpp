#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "mpi/subcomm.hpp"
#include "replay/record.hpp"

namespace tdbg::mpi {
namespace {

TEST(SubCommTest, SplitByParityFormsTwoGroups) {
  const auto result = run(6, [](Comm& comm) {
    auto sub = split(comm, comm.rank() % 2);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.color(), comm.rank() % 2);
    // Members ordered by world rank (key ties), translation works.
    EXPECT_EQ(sub.world_rank(sub.rank()), comm.rank());
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, KeyControlsOrdering) {
  const auto result = run(4, [](Comm& comm) {
    // Reverse ordering: higher world rank gets lower key.
    auto sub = split(comm, 0, comm.size() - comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
  EXPECT_TRUE(result.completed);
}

TEST(SubCommTest, PointToPointWithinGroup) {
  const auto result = run(6, [](Comm& comm) {
    auto sub = split(comm, comm.rank() % 2);
    if (sub.rank() == 0) {
      for (int r = 1; r < sub.size(); ++r) {
        sub.send_value<int>(sub.color() * 100 + r, r, 3);
      }
    } else {
      const auto st_value = sub.recv_value<int>(0, 3);
      EXPECT_EQ(st_value, sub.color() * 100 + sub.rank());
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, IsolationSameTagDifferentGroups) {
  // Both groups use the same user tag; contexts must keep them apart.
  const auto result = run(4, [](Comm& comm) {
    auto sub = split(comm, comm.rank() % 2);
    if (sub.rank() == 0) {
      sub.send_value<int>(1000 + sub.color(), 1, 7);
    } else {
      EXPECT_EQ(sub.recv_value<int>(0, 7), 1000 + sub.color());
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, IsolationFromWorldTraffic) {
  // A world-communicator message with the same tag must not be stolen
  // by a subcomm receive, or vice versa.
  const auto result = run(2, [](Comm& comm) {
    auto sub = split(comm, 0);
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 9);       // world
      sub.send_value<int>(2, 1, 9);        // subgroup, same tag
    } else {
      EXPECT_EQ(sub.recv_value<int>(0, 9), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 9), 1);
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, GroupCollectives) {
  const auto result = run(8, [](Comm& comm) {
    // Rows of a 4x2 grid: color = row, 2 columns each... use 2 rows of 4.
    const int row = comm.rank() / 4;
    auto sub = split(comm, row);
    EXPECT_EQ(sub.size(), 4);

    sub.barrier();

    std::vector<std::byte> data;
    if (sub.rank() == 0) {
      data.assign(4, std::byte{static_cast<unsigned char>(row + 1)});
    }
    sub.bcast(data, 0);
    ASSERT_EQ(data.size(), 4u);
    EXPECT_EQ(data[0], std::byte{static_cast<unsigned char>(row + 1)});

    const int sum = sub.allreduce_value<int>(
        sub.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 0 + 1 + 2 + 3);
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, SequentialSplitsGetFreshContexts) {
  const auto result = run(4, [](Comm& comm) {
    auto a = split(comm, 0);
    auto b = split(comm, 0);
    // Same members, different contexts: a message sent on `a` must be
    // received on `a`, not `b`.
    if (comm.rank() == 0) {
      a.send_value<int>(11, 1, 5);
      b.send_value<int>(22, 1, 5);
    } else if (comm.rank() == 1) {
      EXPECT_EQ(b.recv_value<int>(0, 5), 22);
      EXPECT_EQ(a.recv_value<int>(0, 5), 11);
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_detail;
}

TEST(SubCommTest, SubCommTrafficIsTraced) {
  const auto rec = replay::record(4, [](Comm& comm) {
    auto sub = split(comm, comm.rank() % 2);
    if (sub.rank() == 0) {
      sub.send_value<int>(1, 1, 2);
    } else {
      sub.recv_value<int>(0, 2);
    }
  });
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  // The subgroup p2p shows up as send/recv records with the
  // user-visible tag and world ranks.
  int sends = 0, recvs = 0;
  rec.trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kSend && e.tag == 2) ++sends;
    if (e.kind == trace::EventKind::kRecv && e.tag == 2) ++recvs;
  });
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
}

}  // namespace
}  // namespace tdbg::mpi
