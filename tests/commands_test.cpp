#include <gtest/gtest.h>

#include <filesystem>

#include "apps/ring.hpp"
#include "apps/strassen.hpp"
#include "debugger/commands.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"

namespace tdbg::dbg {
namespace {

mpi::RankBody ring_target() {
  return [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 4;
    apps::ring::rank_body(comm, opts);
  };
}

class CommandsTest : public ::testing::Test {
 protected:
  CommandsTest() : debugger_(4, ring_target()), interp_(debugger_) {}

  CommandResult run(const std::string& cmd) { return interp_.execute(cmd); }

  Debugger debugger_;
  CommandInterpreter interp_;
};

TEST_F(CommandsTest, RequiresRecordFirst) {
  const auto r = run("status");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.output.find("record"), std::string::npos);
}

TEST_F(CommandsTest, RecordThenStatus) {
  EXPECT_TRUE(run("record").ok);
  const auto r = run("status");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("completed"), std::string::npos);
  EXPECT_NE(r.output.find("target ranks : 4"), std::string::npos);
}

TEST_F(CommandsTest, DoubleRecordRejected) {
  EXPECT_TRUE(run("record").ok);
  EXPECT_FALSE(run("record").ok);
}

TEST_F(CommandsTest, UnknownCommand) {
  run("record");
  const auto r = run("frobnicate");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos);
}

TEST_F(CommandsTest, EmptyLineIsNoop) {
  const auto r = run("   ");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.output.empty());
}

TEST_F(CommandsTest, QuitSetsFlag) {
  EXPECT_TRUE(run("quit").quit);
}

TEST_F(CommandsTest, TimelineRendersRows) {
  run("record");
  const auto r = run("timeline 60");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("P0 "), std::string::npos);
  EXPECT_NE(r.output.find("P3 "), std::string::npos);
}

TEST_F(CommandsTest, EventsListsMarkers) {
  run("record");
  const auto r = run("events 1 5");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("marker 1"), std::string::npos);
}

TEST_F(CommandsTest, EventsRejectsBadRank) {
  run("record");
  EXPECT_FALSE(run("events 9").ok);
}

TEST_F(CommandsTest, StoplineReplayStepUndoContinue) {
  run("record");
  ASSERT_TRUE(run("stopline 50%").ok);
  const auto rep = run("replay");
  ASSERT_TRUE(rep.ok) << rep.output;
  EXPECT_NE(rep.output.find("parked"), std::string::npos);

  const auto step = run("step 0");
  EXPECT_TRUE(step.ok);

  const auto undo = run("undo");
  EXPECT_TRUE(undo.ok);
  EXPECT_NE(undo.output.find("undone"), std::string::npos);

  const auto cont = run("continue");
  EXPECT_TRUE(cont.ok);
  EXPECT_NE(cont.output.find("completed"), std::string::npos);
}

TEST_F(CommandsTest, ReplayWithoutStoplineRejected) {
  run("record");
  EXPECT_FALSE(run("replay").ok);
}

TEST_F(CommandsTest, StepWithoutReplayRejected) {
  run("record");
  EXPECT_FALSE(run("step 0").ok);
}

TEST_F(CommandsTest, AnalysesRun) {
  run("record");
  EXPECT_TRUE(run("traffic").ok);
  EXPECT_TRUE(run("races").ok);
  EXPECT_TRUE(run("unmatched").ok);
  const auto dl = run("deadlock");
  EXPECT_TRUE(dl.ok);
  EXPECT_NE(dl.output.find("no circular"), std::string::npos);
}

TEST_F(CommandsTest, ActionsView) {
  run("record");
  const auto r = run("actions 0");
  EXPECT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("markers"), std::string::npos);
}

TEST_F(CommandsTest, CallsSummary) {
  run("record");
  const auto r = run("calls");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("rank_body"), std::string::npos);
}

TEST_F(CommandsTest, ExportWritesFiles) {
  run("record");
  const auto path = std::filesystem::temp_directory_path() / "cmd_comm.dot";
  const auto r = run("export comm dot " + path.string());
  EXPECT_TRUE(r.ok) << r.output;
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 10u);
  std::filesystem::remove(path);
}

TEST_F(CommandsTest, FrontiersPrintPerRank) {
  run("record");
  const auto r = run("frontiers 1 3");
  EXPECT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("concurrency region"), std::string::npos);
}

TEST_F(CommandsTest, FrontierStopline) {
  run("record");
  const auto set = run("stopline past 1 3");
  ASSERT_TRUE(set.ok) << set.output;
  const auto rep = run("replay");
  EXPECT_TRUE(rep.ok) << rep.output;
  run("continue");
}

TEST_F(CommandsTest, LiveLaunchWorkflow) {
  const auto launched = run("launch 3");
  ASSERT_TRUE(launched.ok) << launched.output;
  EXPECT_NE(launched.output.find("launched live"), std::string::npos);

  const auto step = run("step 0");
  EXPECT_TRUE(step.ok) << step.output;

  const auto cont = run("continue");
  EXPECT_TRUE(cont.ok) << cont.output;

  // The live history is now the recorded one: analyses work.
  EXPECT_TRUE(run("status").ok);
  EXPECT_TRUE(run("traffic").ok);
  EXPECT_TRUE(run("timeline 40").ok);
  // And a second launch/record is rejected.
  EXPECT_FALSE(run("launch").ok);
  EXPECT_FALSE(run("record").ok);
}

TEST_F(CommandsTest, HelpListsFaults) {
  const auto r = run("help");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("faults"), std::string::npos);
  EXPECT_NE(r.output.find("passes"), std::string::npos);
}

TEST_F(CommandsTest, PassesShowsArtifactCacheState) {
  run("record");
  // Before any analysis, the table exists but nothing is cached.
  auto r = run("passes");
  ASSERT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("analysis session"), std::string::npos);
  EXPECT_NE(r.output.find("match"), std::string::npos);
  // Running an analysis materializes its artifact chain.
  ASSERT_TRUE(run("traffic").ok);
  r = run("passes");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.output.find("cached"), std::string::npos) << r.output;
}

TEST_F(CommandsTest, FaultsWithoutPlanSaysSo) {
  const auto r = run("faults");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("no fault plan"), std::string::npos);
}

TEST(CommandsFaultTest, FaultsShowsArmedPlanAndInjections) {
  Debugger debugger(4, ring_target());
  debugger.set_fault_plan(fault::FaultPlan::named("delay_storm", /*seed=*/5));
  CommandInterpreter interp(debugger);

  // Before record: the armed plan is visible.
  const auto armed = interp.execute("faults");
  EXPECT_TRUE(armed.ok);
  EXPECT_NE(armed.output.find("armed"), std::string::npos);
  EXPECT_NE(armed.output.find("delay"), std::string::npos);

  ASSERT_TRUE(interp.execute("record").ok);
  const auto r = interp.execute("faults");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("fault plan"), std::string::npos);
  EXPECT_NE(r.output.find("injections"), std::string::npos);

  // The obs counters surface through `stats` alongside everything
  // else (only when the metrics layer is compiled in).
  if (obs::kMetricsEnabled && debugger.fault_engine()->injection_count() > 0) {
    const auto stats = interp.execute("stats");
    EXPECT_NE(stats.output.find("fault.injections"), std::string::npos);
  }
}

TEST(CommandsFaultTest, FaultedRecordOfCrashPlanReportsFailure) {
  Debugger debugger(4, ring_target());
  debugger.set_fault_plan(fault::FaultPlan::named("crash", /*seed=*/1));
  CommandInterpreter interp(debugger);
  const auto rec = interp.execute("record");
  EXPECT_NE(rec.output.find("failed"), std::string::npos);
  const auto faults = interp.execute("faults");
  EXPECT_NE(faults.output.find("crash"), std::string::npos);
}

TEST(CommandsBuggyTest, DeadlockReported) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  Debugger debugger(8, [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  });
  CommandInterpreter interp(debugger);
  const auto rec = interp.execute("record");
  EXPECT_NE(rec.output.find("DEADLOCKED"), std::string::npos);
  const auto dl = interp.execute("deadlock");
  EXPECT_NE(dl.output.find("circular wait"), std::string::npos);
  const auto un = interp.execute("unmatched");
  EXPECT_NE(un.output.find("never received"), std::string::npos);
}

}  // namespace
}  // namespace tdbg::dbg
