// Tests for the extension features: nonblocking point-to-point,
// intertwined-message detection, exposed variables, and watchpoints.

#include <gtest/gtest.h>

#include "analysis/intertwined.hpp"
#include "analysis/session.hpp"
#include "apps/ring.hpp"
#include "apps/strassen.hpp"
#include "debugger/debugger.hpp"
#include "instrument/api.hpp"
#include "mpi/runtime.hpp"
#include "replay/record.hpp"

namespace tdbg {
namespace {

TEST(NonblockingTest, IsendCompletesImmediately) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 9;
      auto req = comm.isend(std::as_bytes(std::span<const int>(&v, 1)), 1, 1);
      EXPECT_TRUE(req.complete());
      comm.wait(req);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 1), 9);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(NonblockingTest, IrecvMatchesAtWait) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(5, 1, 2);
      comm.send_value<int>(6, 1, 3);
    } else {
      std::vector<std::byte> a, b;
      auto ra = comm.irecv(a, 0, 3);  // posted out of tag order
      auto rb = comm.irecv(b, 0, 2);
      EXPECT_FALSE(ra.complete());
      const auto sa = comm.wait(ra);
      const auto sb = comm.wait(rb);
      EXPECT_EQ(sa.tag, 3);
      EXPECT_EQ(sb.tag, 2);
      int va, vb;
      std::memcpy(&va, a.data(), sizeof va);
      std::memcpy(&vb, b.data(), sizeof vb);
      EXPECT_EQ(va, 6);
      EXPECT_EQ(vb, 5);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(NonblockingTest, WaitallCompletesInOrder) {
  constexpr int kMsgs = 16;
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) comm.send_value<int>(i, 1, 1);
    } else {
      std::vector<std::vector<std::byte>> bufs(kMsgs);
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        reqs.push_back(comm.irecv(bufs[static_cast<std::size_t>(i)], 0, 1));
      }
      const auto statuses = comm.waitall(reqs);
      ASSERT_EQ(statuses.size(), static_cast<std::size_t>(kMsgs));
      for (int i = 0; i < kMsgs; ++i) {
        int v;
        std::memcpy(&v, bufs[static_cast<std::size_t>(i)].data(), sizeof v);
        EXPECT_EQ(v, i);  // FIFO per channel; waits in program order
      }
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(NonblockingTest, ReplayControlsIrecvViaWait) {
  // Wildcard irecv completed at wait must be forced identically on
  // replay (the completion is what the controller orders).
  const auto body = [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 6; ++i) {
        std::vector<std::byte> buf;
        auto req = comm.irecv(buf, mpi::kAnySource, 1);
        comm.wait(req);
      }
    } else {
      for (int i = 0; i < 3; ++i) comm.send_value<int>(i, 0, 1);
    }
  };
  const auto rec = replay::record(3, body);
  ASSERT_TRUE(rec.result.completed);
  replay::MatchRecorder second(3);
  replay::ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  ASSERT_TRUE(mpi::run(3, body, options).completed);
  EXPECT_EQ(second.log(), rec.log);
}

TEST(IntertwinedTest, CrossingMessagesDetected) {
  // Rank 0 sends tag A then tag B; rank 1 receives tag B first:
  // send order and receive order disagree -> intertwined.
  const auto rec = replay::record(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      comm.send_value<int>(2, 1, 20);
    } else {
      comm.recv_value<int>(0, 20);
      comm.recv_value<int>(0, 10);
    }
  });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  const auto& pairs = session.intertwined();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(rec.trace.event(pairs[0].first_send).tag, 10);
  EXPECT_EQ(rec.trace.event(pairs[0].second_send).tag, 20);
}

TEST(IntertwinedTest, OrderedMessagesAreNot) {
  const auto rec = replay::record(2, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 10);
      comm.send_value<int>(2, 1, 20);
    } else {
      comm.recv_value<int>(0, 10);
      comm.recv_value<int>(0, 20);
    }
  });
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  EXPECT_TRUE(session.intertwined().empty());
}

TEST(ExposeVariableTest, SessionSeesRankVariables) {
  instr::Session session(2, nullptr);
  mpi::RunOptions options;
  options.hooks = &session;
  std::atomic<bool> checked{false};
  const auto result = mpi::run(2, [&](mpi::Comm& comm) {
    const int mine = 100 + comm.rank();
    instr::expose_variable("mine", mine);
    const auto view = session.variable(comm.rank(), "mine");
    ASSERT_NE(view.address, nullptr);
    EXPECT_EQ(view.bytes, sizeof(int));
    int read;
    std::memcpy(&read, view.address, sizeof read);
    EXPECT_EQ(read, 100 + comm.rank());
    checked = true;
  }, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(checked);
  EXPECT_EQ(session.variable(0, "unknown").address, nullptr);
}

TEST(WatchpointTest, StopsWhenVariableChanges) {
  // A counting loop; the watchpoint fires when `lap` changes.
  const auto body = [](mpi::Comm& comm) {
    static thread_local int lap = 0;
    lap = 0;
    instr::expose_variable("lap", lap);
    apps::ring::Options opts;
    opts.laps = 5;
    if (comm.rank() == 0) {
      for (int l = 0; l < opts.laps; ++l) {
        lap = l;
        comm.send_value<std::uint64_t>(1, 1 % comm.size(), apps::ring::kTagToken,
                                       "watch_send");
        comm.recv_value<std::uint64_t>(comm.size() - 1, apps::ring::kTagToken,
                                       nullptr, "watch_recv");
      }
    } else {
      for (int l = 0; l < opts.laps; ++l) {
        const auto v = comm.recv_value<std::uint64_t>(
            comm.rank() - 1, apps::ring::kTagToken, nullptr, "watch_recv");
        comm.send_value<std::uint64_t>(v, (comm.rank() + 1) % comm.size(),
                                       apps::ring::kTagToken, "watch_send");
      }
    }
  };

  dbg::Debugger debugger(2, body);
  ASSERT_TRUE(debugger.record().completed);

  // Park rank 0 at its first event, then watch `lap` and continue.
  replay::Stopline line;
  line.thresholds = {std::uint64_t{1}, std::nullopt};
  auto stops = debugger.replay_to(line);
  ASSERT_EQ(stops.size(), 1u);

  debugger.watch(0, "lap");
  // Step rank 0 until the watch trips (the watch probe runs at every
  // event; when the variable changes, StopInfo::watch names it).
  std::optional<replay::StopInfo> hit;
  for (int i = 0; i < 50; ++i) {
    const auto stop = debugger.step(0);
    if (!stop) break;
    if (!stop->watch.empty()) {
      hit = stop;
      break;
    }
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->watch, "lap");
  debugger.end_replay();
}

TEST(MessageBreakTest, StopsAtMatchingSend) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto body = [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  };
  dbg::Debugger debugger(8, body);
  ASSERT_TRUE(debugger.record().completed);

  // Park rank 0 at its first event, arm "break when rank 0 sends to
  // rank 3", and resume: the stop must be a send with peer 3.
  replay::Stopline line;
  line.thresholds.assign(8, std::nullopt);
  line.thresholds[0] = std::uint64_t{1};
  ASSERT_EQ(debugger.replay_to(line).size(), 1u);

  replay::MessageBreak spec;
  spec.on_recv = false;
  spec.peer = 3;
  debugger.break_on_message(0, spec);

  const auto stop = debugger.continue_rank(0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->kind, trace::EventKind::kSend);
  auto* session = debugger.replay_session();
  EXPECT_EQ(session->last_record(0).arg1, 3u);  // dest recorded by monitor

  debugger.end_replay();
}

TEST(MessageBreakTest, TagFilterApplies) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  dbg::Debugger debugger(8, [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  });
  ASSERT_TRUE(debugger.record().completed);

  replay::Stopline line;
  line.thresholds.assign(8, std::nullopt);
  line.thresholds[0] = std::uint64_t{1};
  debugger.replay_to(line);

  // Break only on the result tag: rank 0's 14 operand sends must not
  // stop it; the first stop is its first result receive... receives
  // use kTagResult too, so restrict to recv.
  replay::MessageBreak spec;
  spec.on_send = false;
  spec.tag = apps::strassen::kTagResult;
  debugger.break_on_message(0, spec);
  const auto stop = debugger.continue_rank(0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->kind, trace::EventKind::kRecv);

  debugger.end_replay();
}

}  // namespace
}  // namespace tdbg
