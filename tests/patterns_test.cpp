#include <gtest/gtest.h>

#include "analysis/patterns.hpp"
#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "replay/record.hpp"

namespace tdbg::analysis {
namespace {

TEST(PatternParseTest, TokensAndReps) {
  const auto p = parse_pattern("send:foo+ recv* any? enter");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].kind, trace::EventKind::kSend);
  EXPECT_EQ(p[0].construct, "foo");
  EXPECT_EQ(p[0].rep, PatternToken::Rep::kPlus);
  EXPECT_EQ(p[1].kind, trace::EventKind::kRecv);
  EXPECT_TRUE(p[1].construct.empty());
  EXPECT_EQ(p[1].rep, PatternToken::Rep::kStar);
  EXPECT_TRUE(p[2].any_kind);
  EXPECT_EQ(p[2].rep, PatternToken::Rep::kOpt);
  EXPECT_EQ(p[3].rep, PatternToken::Rep::kOnce);
}

TEST(PatternParseTest, RejectsBadKindAndEmpty) {
  EXPECT_THROW(parse_pattern("bogus"), Error);
  EXPECT_THROW(parse_pattern(""), Error);
  EXPECT_THROW(parse_pattern("   "), Error);
}

class ModelTest : public ::testing::Test {
 protected:
  ModelTest() {
    apps::strassen::Options opts;
    opts.n = 16;
    opts.cutoff = 8;
    opts.buggy = buggy_;
    rec_ = replay::record(8, [opts](mpi::Comm& comm) {
      apps::strassen::rank_body(comm, opts);
    });
  }

  bool buggy_ = false;
  replay::RecordedRun rec_;
};

TEST_F(ModelTest, WorkerModelMatchesAllWorkers) {
  ASSERT_TRUE(rec_.result.completed);
  // A worker: enter rank_body, enter worker, then receive/compute/send
  // in some shape.
  Session session(rec_.trace);
  const auto results = session.check_model("enter:rank_body enter:worker any*");
  for (const auto& r : results) {
    if (r.rank == 0) {
      EXPECT_FALSE(r.matched) << "the master is not a worker";
    } else {
      EXPECT_TRUE(r.matched) << "rank " << r.rank << ": " << r.detail;
    }
  }
}

TEST_F(ModelTest, PreciseWorkerSequence) {
  ASSERT_TRUE(rec_.result.completed);
  // Full worker body on 8 ranks: recv A, tick, recv B, compute
  // (strassen recursion collapses into `any*`), send result.
  Session session(rec_.trace);
  const auto results = session.check_model(
      "enter:rank_body enter:worker enter:MatrRecv recv:MatrRecv "
      "compute:prepare_operands enter:MatrRecv recv:MatrRecv any* "
      "enter:MatrSend send:MatrSend");
  int matched = 0;
  for (const auto& r : results) {
    if (r.matched) ++matched;
  }
  EXPECT_EQ(matched, 7);  // every worker, not the master
}

TEST(ModelBuggyTest, RankSevenDeviates) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto rec = replay::record(8, [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  });
  ASSERT_TRUE(rec.result.deadlocked);

  // Against the worker model, ranks 1-6 conform and rank 7's truncated
  // history deviates — the Fig. 6 observation as a model query.
  Session session(rec.trace);
  const auto results = session.check_model(
      "enter:rank_body enter:worker enter:MatrRecv recv:MatrRecv "
      "compute:prepare_operands enter:MatrRecv recv:MatrRecv any* "
      "enter:MatrSend send:MatrSend");
  for (const auto& r : results) {
    if (r.rank >= 1 && r.rank <= 6) {
      EXPECT_TRUE(r.matched) << "rank " << r.rank << ": " << r.detail;
    }
    if (r.rank == 7) {
      EXPECT_FALSE(r.matched);
      EXPECT_FALSE(r.detail.empty());
    }
  }
}

TEST(ModelUnitTest, QuantifiersBacktrack) {
  // Hand-built action sequence: enter f, send x3 (one action), enter g.
  std::vector<trace::Event> events;
  auto reg = std::make_shared<trace::ConstructRegistry>();
  const auto f = reg->intern("f");
  const auto g = reg->intern("g");
  const auto s = reg->intern("s");
  std::uint64_t marker = 1;
  const auto push = [&](trace::EventKind kind, trace::ConstructId c) {
    trace::Event e;
    e.rank = 0;
    e.kind = kind;
    e.construct = c;
    e.marker = marker++;
    e.peer = kind == trace::EventKind::kSend ? 1 : mpi::kAnySource;
    events.push_back(e);
  };
  push(trace::EventKind::kEnter, f);
  push(trace::EventKind::kSend, s);
  push(trace::EventKind::kSend, s);
  push(trace::EventKind::kSend, s);
  push(trace::EventKind::kEnter, g);
  trace::Trace trace(2, std::move(events), reg);
  const auto actions = graph::ActionGraph::from_trace(trace);

  // `any* enter:g` must backtrack the star to leave the final enter.
  EXPECT_TRUE(check_model(trace, actions, 0,
                          parse_pattern("any* enter:g")).matched);
  // send+ collapses the run of sends into one action.
  EXPECT_TRUE(check_model(trace, actions, 0,
                          parse_pattern("enter:f send+ enter:g")).matched);
  EXPECT_FALSE(check_model(trace, actions, 0,
                           parse_pattern("enter:f enter:g")).matched);
  // Optional token.
  EXPECT_TRUE(check_model(trace, actions, 0,
                          parse_pattern("enter:f send? send* enter:g"))
                  .matched);
}

}  // namespace
}  // namespace tdbg::analysis
