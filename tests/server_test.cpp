// tdbg::server tests (ctest label `server`):
//
//   * protocol codec round-trips and malformed-frame rejection, with
//     no sockets involved,
//   * served responses byte-identical to `execute_on_session` on a
//     direct local `analysis::Session` over the same trace file,
//   * session-cache sharing (N clients, one load) and LRU eviction,
//   * admission control: queue-full returns `kOverloaded`, an expired
//     deadline returns `kTimeout` — explicit statuses, never a hang,
//   * graceful shutdown drains admitted work before closing,
//   * an 8-client stress mix (also run under TSan and ASan/UBSan by
//     `scripts/verify.sh`).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/session.hpp"
#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/ops.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/session_cache.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace tdbg {
namespace {

using namespace tdbg::server;

// --- helpers ---------------------------------------------------------------

/// Deterministic synthetic workload (the session_test generator):
/// monotone per-rank markers, valid channel sequence numbers, a mix of
/// matched and in-flight messages.
std::vector<trace::Event> synth_events(std::size_t n, int ranks,
                                       std::uint64_t seed) {
  auto rng = support::SplitMix64(seed).split(1);
  std::vector<trace::Event> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_marker(static_cast<std::size_t>(ranks), 1);
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::uint64_t>> chan;
  for (std::size_t i = 0; i < n; ++i) {
    trace::Event e;
    const int rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    e.rank = rank;
    e.marker = next_marker[static_cast<std::size_t>(rank)]++;
    e.t_start = static_cast<support::TimeNs>(i) * 10;
    e.t_end = e.t_start + 6;
    const auto roll = rng.next_below(4);
    e.kind = trace::EventKind::kCompute;
    if (roll == 0 && ranks > 1) {
      const int peer = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + 1 +
           rng.next_below(static_cast<std::uint64_t>(ranks - 1))) %
          static_cast<std::uint64_t>(ranks));
      e.kind = trace::EventKind::kSend;
      e.peer = peer;
      e.tag = static_cast<mpi::Tag>(rng.next_below(3));
      e.bytes = 8 + rng.next_below(64);
      ++chan[{rank, peer}].first;
    } else if (roll == 1) {
      const auto start = rng.next_below(static_cast<std::uint64_t>(ranks));
      for (int k = 0; k < ranks; ++k) {
        const int src = static_cast<int>(
            (start + static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(ranks));
        auto& [sent, received] = chan[{src, rank}];
        if (src == rank || received >= sent) continue;
        e.kind = trace::EventKind::kRecv;
        e.peer = src;
        e.channel_seq = static_cast<mpi::ChannelSeq>(received++);
        e.tag = static_cast<mpi::Tag>(rng.next_below(3));
        e.bytes = 8 + rng.next_below(64);
        e.wildcard = rng.next_below(2) == 0;
        break;
      }
    }
    events.push_back(e);
  }
  return events;
}

/// Short-lived scratch directory with a *short* absolute path, so
/// Unix-domain socket paths stay under sun_path's ~108-byte cap.
struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("tdbg_sv_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string write_synth_trace(const TempDir& dir, const std::string& name,
                              std::size_t n, int ranks, std::uint64_t seed) {
  const auto file = dir.file(name);
  trace::write_trace(file, trace::Trace(ranks, synth_events(n, ranks, seed),
                                        nullptr));
  return file;
}

/// Direct local execution — the reference the served bytes must equal.
std::vector<std::byte> local_payload(const std::string& trace_path, Op op,
                                     std::vector<std::byte> args) {
  SessionCache::Entry entry;
  entry.key = fingerprint_trace_file(trace_path);
  entry.trace = trace::open_trace(trace_path);
  entry.session = std::make_unique<analysis::Session>(entry.trace);
  Request request;
  request.op = op;
  request.id = 1;
  request.args = std::move(args);
  const auto response = execute_on_session(request, entry, CacheView{});
  EXPECT_EQ(response.status, Status::kOk) << op_name(op);
  return response.payload;
}

// --- protocol codec --------------------------------------------------------

TEST(ServerProtocolTest, RequestRoundTrip) {
  Request request;
  request.op = Op::kWindow;
  request.id = 0xdeadbeefcafe1234ull;
  request.deadline_ms = 750;
  request.args = encode_window_args("/tmp/x.trc", 100, 900);

  const auto frame = encode_request(request);
  // Strip the length prefix the way the assembler would.
  FrameAssembler assembler;
  assembler.feed(frame);
  const auto body = assembler.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_FALSE(assembler.next().has_value());

  const auto decoded = decode_request(*body);
  EXPECT_EQ(decoded.op, Op::kWindow);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.deadline_ms, 750u);
  const auto args = decode_window_args(decoded.args);
  EXPECT_EQ(args.path, "/tmp/x.trc");
  EXPECT_EQ(args.t0, 100);
  EXPECT_EQ(args.t1, 900);
}

TEST(ServerProtocolTest, ResponseRoundTrip) {
  const auto resp = make_error_response(7, Status::kOverloaded, "queue full");
  const auto frame = encode_response(resp);
  FrameAssembler assembler;
  assembler.feed(frame);
  const auto body = assembler.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = decode_response(*body);
  EXPECT_EQ(decoded.status, Status::kOverloaded);
  EXPECT_EQ(decoded.id, 7u);
  EXPECT_EQ(decode_text(decoded.payload), "queue full");
}

TEST(ServerProtocolTest, FrameAssemblerReassemblesByteAtATime) {
  Request request;
  request.op = Op::kMatchReport;
  request.id = 42;
  request.args = encode_trace_arg("t.trc");
  const auto frame = encode_request(request);

  FrameAssembler assembler;
  std::size_t frames = 0;
  // Two copies of the frame, delivered one byte at a time.
  for (int copy = 0; copy < 2; ++copy) {
    for (const auto b : frame) {
      assembler.feed({&b, 1});
      while (auto body = assembler.next()) {
        const auto decoded = decode_request(*body);
        EXPECT_EQ(decoded.id, 42u);
        ++frames;
      }
    }
  }
  EXPECT_EQ(frames, 2u);
}

TEST(ServerProtocolTest, MalformedFramesRejected) {
  Request request;
  request.op = Op::kPing;
  request.id = 1;
  const auto frame = encode_request(request);
  std::vector<std::byte> body(frame.begin() + 4, frame.end());

  {  // bad magic
    auto bad = body;
    bad[0] = std::byte{0xff};
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // wrong version
    auto bad = body;
    bad[4] = std::byte{0x77};
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // unknown op
    auto bad = body;
    bad[6] = std::byte{0x99};
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // trailing junk after the args blob
    auto bad = body;
    bad.push_back(std::byte{0});
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // truncated mid-header
    std::vector<std::byte> bad(body.begin(), body.begin() + 6);
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // args length pointing past the end of the frame
    auto bad = body;
    // The u32 arg_len sits at offset 20 (after magic, version, op,
    // id, deadline); inflate it past the frame end.
    bad[20] = std::byte{0xff};
    bad[21] = std::byte{0xff};
    EXPECT_THROW((void)decode_request(bad), FormatError);
  }
  {  // a length prefix beyond the frame cap poisons the stream
    FrameAssembler assembler;
    const std::uint32_t huge = kMaxFrameBytes + 1;
    std::byte prefix[4];
    std::memcpy(prefix, &huge, 4);
    assembler.feed(prefix);
    EXPECT_THROW((void)assembler.next(), FormatError);
  }
  // Responses get the same treatment.
  EXPECT_THROW((void)decode_response(body), FormatError);  // request magic
}

TEST(ServerProtocolTest, PayloadCodecsRoundTrip) {
  OpenInfo open;
  open.fingerprint = "123-abc";
  open.num_ranks = 4;
  open.events = 999;
  open.segments = 3;
  open.t_min = -5;
  open.t_max = 77;
  EXPECT_EQ(decode_open_info(encode_open_info(open)), open);

  DeadlockInfo dl;
  dl.stalled = true;
  dl.description = "one in flight\n";
  dl.unmatched_send_indices = {3, 9};
  dl.last_marker_per_rank = {4, 4, 2};
  EXPECT_EQ(decode_deadlock(encode_deadlock(dl)), dl);

  const auto events = synth_events(64, 3, 11);
  const auto decoded = decode_events(encode_events(events));
  ASSERT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].marker, events[i].marker);
    EXPECT_EQ(decoded[i].kind, events[i].kind);
    EXPECT_EQ(decoded[i].rank, events[i].rank);
  }

  EXPECT_EQ(decode_text(encode_text("dot dot dot")), "dot dot dot");

  SessionStatsInfo stats;
  stats.fingerprint = "1-2";
  stats.events = 10;
  stats.watermark = 10;
  stats.cache_hits = 5;
  stats.cache_misses = 1;
  stats.cache_evictions = 0;
  stats.resident_sessions = 1;
  stats.passes_text = "12 passes";
  const auto back = decode_session_stats(encode_session_stats(stats));
  EXPECT_EQ(back.fingerprint, stats.fingerprint);
  EXPECT_EQ(back.cache_hits, 5u);
  EXPECT_EQ(back.passes_text, stats.passes_text);
}

// --- served == local -------------------------------------------------------

TEST(ServerTest, ServedResponsesMatchDirectSession) {
  TempDir dir("match");
  const auto trace_path = write_synth_trace(dir, "a.trc", 600, 4, 17);

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  Server srv(options);
  srv.start();
  {
    Client client("unix:" + options.unix_path);

    const std::vector<std::pair<Op, std::vector<std::byte>>> calls = {
        {Op::kOpenTrace, encode_trace_arg(trace_path)},
        {Op::kMatchReport, encode_trace_arg(trace_path)},
        {Op::kTraffic, encode_trace_arg(trace_path)},
        {Op::kRaces, encode_trace_arg(trace_path)},
        {Op::kDeadlock, encode_trace_arg(trace_path)},
        {Op::kWindow, encode_window_args(trace_path, 100, 2000)},
        {Op::kGraphDot, encode_graph_args(trace_path, GraphKind::kComm)},
        {Op::kGraphDot, encode_graph_args(trace_path, GraphKind::kCall)},
    };
    for (const auto& [op, args] : calls) {
      const auto served = client.call(op, args);
      ASSERT_EQ(served.status, Status::kOk) << op_name(op);
      EXPECT_EQ(served.payload, local_payload(trace_path, op, args))
          << "served payload diverges for " << op_name(op);
    }

    // Typed helpers agree with the trace too.
    const auto info = client.open_trace(trace_path);
    EXPECT_EQ(info.num_ranks, 4);
    EXPECT_EQ(info.events, 600u);
  }
  srv.shutdown();
  srv.wait();
}

TEST(ServerTest, EightClientsShareOneSessionByteIdentical) {
  TempDir dir("eight");
  const auto trace_path = write_synth_trace(dir, "a.trc", 800, 4, 23);

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  options.dispatch_threads = 4;
  Server srv(options);
  srv.start();

  const std::vector<Op> ops = {Op::kMatchReport, Op::kTraffic, Op::kRaces,
                               Op::kDeadlock};
  constexpr int kClients = 8;
  std::vector<std::map<Op, std::vector<std::byte>>> results(kClients);
  std::vector<std::string> failures(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        try {
          Client client("unix:" + options.unix_path);
          for (const auto op : ops) {
            auto response = client.call(op, encode_trace_arg(trace_path));
            if (response.status != Status::kOk) {
              failures[static_cast<std::size_t>(c)] =
                  std::string("status ") +
                  std::string(status_name(response.status));
              return;
            }
            results[static_cast<std::size_t>(c)][op] =
                std::move(response.payload);
          }
        } catch (const std::exception& e) {
          failures[static_cast<std::size_t>(c)] = e.what();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  }
  // Byte-identical across clients AND vs the direct local session.
  for (const auto op : ops) {
    const auto reference = local_payload(trace_path, op,
                                         encode_trace_arg(trace_path));
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(results[static_cast<std::size_t>(c)][op], reference)
          << "client " << c << " diverges on " << op_name(op);
    }
  }
  // All 32 requests shared ONE session load.
  const auto cache = srv.cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, static_cast<std::uint64_t>(kClients) * ops.size() - 1);
  srv.shutdown();
  srv.wait();
}

// --- session cache ---------------------------------------------------------

TEST(ServerSessionCacheTest, SharesAndEvicts) {
  TempDir dir("cache");
  const auto a = write_synth_trace(dir, "a.trc", 200, 3, 1);
  const auto b = write_synth_trace(dir, "b.trc", 200, 3, 2);

  SessionCache cache(/*max_sessions=*/1);
  const auto first = cache.open(a);
  const auto again = cache.open(a);
  EXPECT_EQ(first.get(), again.get());  // same Entry shared
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  const auto other = cache.open(b);  // evicts `a`
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident, 1u);
  // The evicted entry stays alive for holders of the shared_ptr.
  EXPECT_EQ(first->trace.size(), 200u);

  const auto reload = cache.open(a);  // cold again
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_NE(reload.get(), first.get());
  (void)other;
}

TEST(ServerSessionCacheTest, FingerprintTracksContent) {
  TempDir dir("fp");
  const auto path = write_synth_trace(dir, "a.trc", 100, 3, 1);
  const auto key1 = fingerprint_trace_file(path);
  // Same content -> same key.
  EXPECT_EQ(fingerprint_trace_file(path), key1);
  // Different content in the same path -> different key.
  trace::write_trace(path,
                     trace::Trace(3, synth_events(101, 3, 9), nullptr));
  const auto key2 = fingerprint_trace_file(path);
  EXPECT_NE(key1, key2);
  EXPECT_THROW((void)fingerprint_trace_file(dir.file("missing.trc")),
               IoError);
}

// --- admission control -----------------------------------------------------

TEST(ServerTest, QueueFullReturnsOverloadedNeverHangs) {
  TempDir dir("ovl");
  const auto trace_path = write_synth_trace(dir, "a.trc", 100, 3, 5);

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  options.dispatch_threads = 1;
  options.max_pending = 1;
  options.debug_dispatch_delay_ns = 300'000'000;  // 300 ms per dispatch
  Server srv(options);
  srv.start();

  constexpr int kCallers = 4;
  std::vector<Status> statuses(kCallers, Status::kOk);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kCallers; ++c) {
      threads.emplace_back([&, c] {
        Client client("unix:" + options.unix_path);
        statuses[static_cast<std::size_t>(c)] =
            client.call(Op::kMatchReport, encode_trace_arg(trace_path))
                .status;
      });
    }
    // While the queue is saturated, ping still answers (reader-side).
    Client prober("unix:" + options.unix_path);
    prober.ping();
    for (auto& t : threads) t.join();
  }
  int ok = 0;
  int overloaded = 0;
  for (const auto s : statuses) {
    if (s == Status::kOk) ++ok;
    if (s == Status::kOverloaded) ++overloaded;
  }
  // 1 in flight + 1 queued; with 4 near-simultaneous callers at least
  // one must have been bounced with explicit backpressure.
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, kCallers);
  srv.shutdown();
  srv.wait();
}

TEST(ServerTest, ExpiredDeadlineReturnsTimeout) {
  TempDir dir("to");
  const auto trace_path = write_synth_trace(dir, "a.trc", 100, 3, 5);

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  options.dispatch_threads = 1;
  options.debug_dispatch_delay_ns = 50'000'000;  // 50 ms >> 1 ms budget
  Server srv(options);
  srv.start();
  {
    Client client("unix:" + options.unix_path);
    const auto response = client.call(
        Op::kMatchReport, encode_trace_arg(trace_path), /*deadline_ms=*/1);
    EXPECT_EQ(response.status, Status::kTimeout);
    // Without a deadline the same request computes fine.
    const auto unbounded =
        client.call(Op::kMatchReport, encode_trace_arg(trace_path));
    EXPECT_EQ(unbounded.status, Status::kOk);
  }
  srv.shutdown();
  srv.wait();
}

TEST(ServerTest, GracefulShutdownDrainsInFlight) {
  TempDir dir("drain");
  const auto trace_path = write_synth_trace(dir, "a.trc", 400, 3, 5);

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  options.dispatch_threads = 1;
  options.debug_dispatch_delay_ns = 150'000'000;  // 150 ms
  Server srv(options);
  srv.start();

  Status slow_status = Status::kError;
  std::thread slow([&] {
    Client client("unix:" + options.unix_path);
    slow_status =
        client.call(Op::kMatchReport, encode_trace_arg(trace_path)).status;
  });
  // Let the slow request get admitted, then ask for the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  {
    Client killer("unix:" + options.unix_path);
    killer.shutdown_server();
    // Post-shutdown requests are refused explicitly (or the socket is
    // already gone) — never silently queued.
    try {
      const auto refused =
          killer.call(Op::kMatchReport, encode_trace_arg(trace_path));
      EXPECT_EQ(refused.status, Status::kShuttingDown);
    } catch (const IoError&) {
      // drain finished first and closed the connection — acceptable
    }
  }
  slow.join();
  // The in-flight request was completed, not dropped.
  EXPECT_EQ(slow_status, Status::kOk);
  srv.wait();
  EXPECT_TRUE(srv.finished());
}

// --- transports ------------------------------------------------------------

TEST(ServerTest, TcpEndpointServes) {
  TempDir dir("tcp");
  const auto trace_path = write_synth_trace(dir, "a.trc", 200, 3, 3);

  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  Server srv(options);
  srv.start();
  ASSERT_GT(srv.tcp_port(), 0);
  {
    Client client("tcp:127.0.0.1:" + std::to_string(srv.tcp_port()));
    client.ping();
    const auto report = client.match_report(trace_path);
    const auto direct = decode_match_report(local_payload(
        trace_path, Op::kMatchReport, encode_trace_arg(trace_path)));
    EXPECT_EQ(report.matches.size(), direct.matches.size());
    EXPECT_EQ(report.unmatched_sends, direct.unmatched_sends);
  }
  srv.shutdown();
  srv.wait();
}

TEST(ServerTest, GarbageBytesGetBadRequestNotCrash) {
  TempDir dir("junk");
  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  Server srv(options);
  srv.start();

  // Raw socket: a well-framed body that is not a valid request.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint32_t len = 8;
  char junk[12];
  std::memcpy(junk, &len, 4);
  std::memset(junk + 4, 0x5a, 8);
  ASSERT_EQ(::send(fd, junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  // The server answers kBadRequest (id 0) and closes the connection.
  FrameAssembler assembler;
  Response response;
  bool got = false;
  char buf[512];
  while (!got) {
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection closed without a response";
    assembler.feed({reinterpret_cast<const std::byte*>(buf),
                    static_cast<std::size_t>(n)});
    if (auto body = assembler.next()) {
      response = decode_response(*body);
      got = true;
    }
  }
  EXPECT_EQ(response.status, Status::kBadRequest);
  ::close(fd);

  // And the server still serves well-formed clients afterwards.
  Client client("unix:" + options.unix_path);
  client.ping();
  srv.shutdown();
  srv.wait();
}

// --- stress (also run under TSan / ASan via scripts/verify.sh) -------------

TEST(ServerStressTest, EightClientsMixedOpsTwoTraces) {
  TempDir dir("stress");
  const std::vector<std::string> traces = {
      write_synth_trace(dir, "a.trc", 500, 4, 101),
      write_synth_trace(dir, "b.trc", 500, 4, 202),
  };

  ServerOptions options;
  options.unix_path = dir.file("s.sock");
  options.dispatch_threads = 4;
  options.max_sessions = 2;
  Server srv(options);
  srv.start();

  const std::vector<Op> ops = {Op::kMatchReport, Op::kTraffic, Op::kRaces,
                               Op::kDeadlock};
  // Reference payloads per (trace, op), computed locally.
  std::map<std::pair<std::string, Op>, std::vector<std::byte>> reference;
  for (const auto& t : traces) {
    for (const auto op : ops) {
      reference[{t, op}] = local_payload(t, op, encode_trace_arg(t));
    }
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client("unix:" + options.unix_path);
        for (int round = 0; round < kRounds; ++round) {
          const auto& t = traces[static_cast<std::size_t>(c + round) %
                                 traces.size()];
          const auto op = ops[static_cast<std::size_t>(c * kRounds + round) %
                              ops.size()];
          auto response = client.call(op, encode_trace_arg(t));
          if (response.status != Status::kOk) {
            failures[static_cast<std::size_t>(c)] =
                std::string(status_name(response.status));
            return;
          }
          if (response.payload != reference[{t, op}]) {
            failures[static_cast<std::size_t>(c)] =
                "payload diverges on " + std::string(op_name(op));
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  }
  // Both traces were loaded exactly once despite 48 requests.
  EXPECT_EQ(srv.cache_stats().misses, 2u);
  srv.shutdown();
  srv.wait();
}

// --- trace.cache.* observability (satellite) -------------------------------

TEST(TraceCacheMetricsTest, SegmentCacheCountersExported) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  auto& reg = obs::MetricsRegistry::global();
  const auto loads0 = reg.counter("trace.cache.loads").total();
  const auto hits0 = reg.counter("trace.cache.hits").total();
  const auto evict0 = reg.counter("trace.cache.evictions").total();

  TempDir dir("obs");
  const auto path = dir.file("seg.trc");
  trace::write_trace(path, trace::Trace(3, synth_events(1000, 3, 7), nullptr),
                     trace::TraceFormat::kBinary, /*segment_events=*/64);

  trace::TraceOpenOptions open_options;
  open_options.cache_segments = 2;
  open_options.prefetch = false;
  const auto trace = trace::open_trace(path, open_options);
  ASSERT_GT(trace.segment_count(), 4u);
  trace.for_each_event([](std::size_t, const trace::Event&) {});
  (void)trace.event(0);  // reload after eviction...
  (void)trace.event(0);  // ...then a warm hit

  EXPECT_GT(reg.counter("trace.cache.loads").total(), loads0);
  EXPECT_GT(reg.counter("trace.cache.hits").total(), hits0);
  EXPECT_GT(reg.counter("trace.cache.evictions").total(), evict0);
  EXPECT_GT(reg.gauge("trace.cache.resident_segments").max(), 0u);
  // The store's own stats agree in spirit with the exported counters.
  const auto* store =
      dynamic_cast<const trace::SegmentedTraceStore*>(trace.store().get());
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->cache_stats().loads, 0u);
  EXPECT_GT(store->cache_stats().evictions, 0u);
}

}  // namespace
}  // namespace tdbg
