// The analysis thread pool (tdbg::exec) and the segment-parallel
// map-reduce built on it: pool lifecycle, work stealing, exception
// propagation, and — the contract everything else leans on — that
// every migrated analysis produces bit-identical reports at 1, 2, and
// 8 threads, on both trace-store backends, with prefetch on or off.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/patterns.hpp"
#include "analysis/races.hpp"
#include "analysis/session.hpp"
#include "analysis/traffic.hpp"
#include "causality/causal_order.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "graph/action_graph.hpp"
#include "graph/comm_graph.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "replay/record.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"
#include "telemetry/span.hpp"
#include "trace/trace_io.hpp"
#include "viz/chrome.hpp"

namespace tdbg {
namespace {

// --- workloads -------------------------------------------------------------

/// Seeded random storm (mirrors storm_test): every rank sends a
/// pseudo-random schedule eagerly, then drains its quota with fully
/// wild receives — dense wildcard traffic for matching and races.
struct StormPlan {
  std::vector<std::vector<std::array<int, 3>>> sends;  // (dest, tag, payload)
  std::vector<int> recv_count;
};

StormPlan make_storm_plan(int ranks, int msgs_per_rank, std::uint64_t seed) {
  StormPlan plan;
  plan.sends.resize(static_cast<std::size_t>(ranks));
  plan.recv_count.assign(static_cast<std::size_t>(ranks), 0);
  const support::SplitMix64 root(seed);
  for (int s = 0; s < ranks; ++s) {
    auto rng = root.split(static_cast<std::uint64_t>(s));
    for (int m = 0; m < msgs_per_rank; ++m) {
      const int dest =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
      const int tag = static_cast<int>(rng.next_below(5));
      const int payload = static_cast<int>(rng.next_below(100000));
      plan.sends[static_cast<std::size_t>(s)].push_back({dest, tag, payload});
      ++plan.recv_count[static_cast<std::size_t>(dest)];
    }
  }
  return plan;
}

mpi::RankBody storm_body(const StormPlan& plan) {
  return [plan](mpi::Comm& comm) {
    const auto& mine = plan.sends[static_cast<std::size_t>(comm.rank())];
    for (const auto& [dest, tag, payload] : mine) {
      comm.send_value<int>(payload, dest, tag, "storm_send");
    }
    const int quota = plan.recv_count[static_cast<std::size_t>(comm.rank())];
    for (int i = 0; i < quota; ++i) {
      comm.recv_value<int>(mpi::kAnySource, mpi::kAnyTag, nullptr,
                           "storm_recv");
    }
  };
}

/// Token ring (mirrors fault_test): with the deadlock_ring fault plan
/// armed, rank 0's send is held and the run deadlocks, leaving a
/// partial trace with unmatched traffic.
mpi::RankBody ring_body(int n) {
  return [n](mpi::Comm& comm) {
    const mpi::Rank r = comm.rank();
    const mpi::Rank next = (r + 1) % n;
    const mpi::Rank prev = (r + n - 1) % n;
    if (r == 0) {
      comm.send_value<int>(42, next, /*tag=*/1);
      comm.recv_value<int>(prev, /*tag=*/1);
    } else {
      const int token = comm.recv_value<int>(prev, /*tag=*/1);
      comm.send_value<int>(token, next, /*tag=*/1);
    }
  };
}

// --- report equality -------------------------------------------------------

void expect_match_reports_equal(const trace::MatchReport& a,
                                const trace::MatchReport& b) {
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].send_index, b.matches[i].send_index) << "at " << i;
    EXPECT_EQ(a.matches[i].recv_index, b.matches[i].recv_index) << "at " << i;
  }
  EXPECT_EQ(a.unmatched_sends, b.unmatched_sends);
  EXPECT_EQ(a.unmatched_recvs, b.unmatched_recvs);
}

void expect_race_reports_equal(const analysis::RaceReport& a,
                               const analysis::RaceReport& b) {
  ASSERT_EQ(a.races.size(), b.races.size());
  for (std::size_t i = 0; i < a.races.size(); ++i) {
    EXPECT_EQ(a.races[i].recv_index, b.races[i].recv_index) << "at " << i;
    EXPECT_EQ(a.races[i].matched_send, b.races[i].matched_send) << "at " << i;
    EXPECT_EQ(a.races[i].candidates, b.races[i].candidates) << "at " << i;
  }
}

/// Runs the whole analysis pipeline on a fresh facade over `store`
/// (fresh = nothing memoized) under a pool of `threads` threads, and
/// checks it against the serial baseline computed at 1 thread.
struct PipelineReports {
  trace::MatchReport match;
  std::string traffic;
  analysis::RaceReport races;
  std::string comm_graph;
  std::string action_graph;
  std::vector<analysis::ModelResult> model;
};

PipelineReports run_pipeline(
    const std::shared_ptr<const trace::TraceStore>& store,
    std::size_t threads) {
  exec::ScopedExecutor pool(threads);
  const trace::Trace trace(store);
  analysis::Session session(trace);
  PipelineReports out;
  out.match = session.match_report();
  out.traffic = session.traffic().to_string();
  out.races = session.races();
  out.comm_graph = graph::to_dot(session.comm_graph().to_export());
  out.action_graph =
      graph::to_dot(session.action_graph().to_export(trace.constructs()));
  out.model = session.check_model("any*");
  return out;
}

void expect_pipelines_equal(const PipelineReports& a,
                            const PipelineReports& b) {
  expect_match_reports_equal(a.match, b.match);
  EXPECT_EQ(a.traffic, b.traffic);
  expect_race_reports_equal(a.races, b.races);
  EXPECT_EQ(a.comm_graph, b.comm_graph);
  EXPECT_EQ(a.action_graph, b.action_graph);
  ASSERT_EQ(a.model.size(), b.model.size());
  for (std::size_t i = 0; i < a.model.size(); ++i) {
    EXPECT_EQ(a.model[i].matched, b.model[i].matched);
    EXPECT_EQ(a.model[i].failed_at, b.model[i].failed_at);
    EXPECT_EQ(a.model[i].detail, b.model[i].detail);
  }
}

class TempTraceFile {
 public:
  TempTraceFile() {
    path_ = std::filesystem::temp_directory_path() /
            ("tdbg_exec_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".trc");
  }
  ~TempTraceFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// --- pool mechanics --------------------------------------------------------

TEST(ExecutorTest, StartStopIdle) {
  // Pools of every interesting size construct and tear down cleanly
  // without ever receiving work.
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    exec::Executor pool(n);
    EXPECT_EQ(pool.threads(), n);
  }
}

TEST(ExecutorTest, ParallelForRunsEveryIndexOnce) {
  exec::Executor pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, "test.pf",
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecutorTest, OneThreadRunsInlineInSubmissionOrder) {
  exec::Executor pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(8, "test.inline",
                    [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // inline = plain serial loop
}

TEST(ExecutorTest, AsyncTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    exec::Executor pool(4);
    for (int i = 0; i < 64; ++i) pool.async([&] { ran.fetch_add(1); });
  }  // destructor drains anything still queued
  EXPECT_EQ(ran.load(), 64);
}

TEST(ExecutorTest, ExceptionPropagatesToCaller) {
  exec::Executor pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(16, "test.throw",
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 3) throw std::runtime_error("task 3 died");
                        }),
      std::runtime_error);
  // The remaining tasks still ran; the pool is not poisoned.
  EXPECT_EQ(ran.load(), 16);
  std::atomic<int> again{0};
  pool.parallel_for(4, "test.after",
                    [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
}

TEST(ExecutorTest, ExceptionPropagatesInline) {
  exec::Executor pool(1);
  EXPECT_THROW(pool.parallel_for(4, "test.throw.inline",
                                 [](std::size_t i) {
                                   if (i == 2) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ExecutorTest, StealsUnderSkewedTasks) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  // One worker (threads=2): every task lands in its queue.  The worker
  // pops the front and sleeps in it; the actively-draining caller must
  // take the rest from the back — every caller pop counts as a steal.
  auto& steals = obs::MetricsRegistry::global().counter("exec.steals");
  const auto before = steals.total();
  exec::Executor pool(2);
  pool.parallel_for(8, "test.skew", [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  EXPECT_GT(steals.total(), before);
}

TEST(ExecutorTest, TaskAndSiteCountersAdvance) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "TDBG_METRICS=OFF";
  auto& reg = obs::MetricsRegistry::global();
  const auto tasks_before = reg.counter("exec.tasks").total();
  const auto site_before = reg.counter("exec.tasks.test.site").total();
  exec::Executor pool(4);
  pool.parallel_for(12, "test.site", [](std::size_t) {});
  EXPECT_EQ(reg.counter("exec.tasks").total(), tasks_before + 12);
  EXPECT_EQ(reg.counter("exec.tasks.test.site").total(), site_before + 12);
  EXPECT_GE(reg.gauge("exec.queue_depth").max(), 1u);
  EXPECT_EQ(reg.gauge("exec.threads").value(-1), 4u);
}

TEST(ExecutorTest, ScopedExecutorReplacesGlobal) {
  {
    exec::ScopedExecutor scoped(3);
    EXPECT_EQ(&exec::Executor::global(), &scoped.get());
    EXPECT_EQ(exec::Executor::global().threads(), 3u);
  }
  // After the scope, global() resolves to the default pool again.
  EXPECT_NE(exec::Executor::global().threads(), 3u);
}

TEST(ExecutorTest, WorkerSpansRenderAsChromeTracks) {
  // Sleeping tasks on a 2-thread pool: the caller drains from the
  // back while the lone worker pops the front, so at least one task
  // runs on the worker and its span carries the synthetic rank that
  // the Chrome exporter names as an "exec worker N" track.
  auto& collector = telemetry::SpanCollector::global();
  collector.reset();
  {
    exec::ScopedExecutor pool(2);
    pool.get().parallel_for(4, "test.worker_tracks", [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
  }
  const auto spans = collector.snapshot();
  bool on_worker = false;
  for (const auto& span : spans) {
    on_worker |= span.rank >= static_cast<int>(exec::kWorkerRankBase);
  }
  ASSERT_TRUE(on_worker);
  std::ostringstream os;
  viz::write_chrome_trace(os, trace::Trace{}, spans);
  EXPECT_NE(os.str().find("\"exec worker 0\""), std::string::npos);
}

TEST(ExecutorTest, NestedParallelForCompletes) {
  exec::Executor pool(4);
  std::atomic<int> leaf{0};
  pool.parallel_for(8, "test.outer", [&](std::size_t) {
    exec::Executor::global();  // safe to touch the registry from a task
    for (int i = 0; i < 4; ++i) leaf.fetch_add(1);
  });
  EXPECT_EQ(leaf.load(), 32);
}

// --- map-reduce determinism ------------------------------------------------

TEST(MapReduceTest, SegmentViewCoversTraceExactly) {
  const auto plan = make_storm_plan(4, 30, /*seed=*/11);
  const auto rec = replay::record(4, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);
  const auto& trace = rec.trace;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < trace.segment_count(); ++s) {
    const auto [begin, end] = trace.segment_range(s);
    EXPECT_EQ(begin, covered);
    std::size_t seen = 0;
    trace.for_each_in_segment(s, [&](std::size_t i, const trace::Event&) {
      EXPECT_EQ(i, begin + seen);
      ++seen;
    });
    EXPECT_EQ(seen, end - begin);
    covered = end;
  }
  EXPECT_EQ(covered, trace.size());
}

TEST(MapReduceTest, DeterministicAcrossThreadCounts) {
  const auto plan = make_storm_plan(6, 40, /*seed=*/7);
  const auto rec = replay::record(6, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);
  const auto& store = rec.trace.store();

  // An order-sensitive reduction: concatenate every event index in
  // merge order.  Identical output proves partials merge in segment
  // order, not completion order.
  const auto gather = [&](std::size_t threads) {
    exec::ScopedExecutor pool(threads);
    const trace::Trace trace(store);
    return trace.map_reduce<std::vector<std::size_t>>(
        "test.gather",
        [&](std::size_t seg, std::vector<std::size_t>& part) {
          trace.for_each_in_segment(
              seg, [&](std::size_t i, const trace::Event&) {
                part.push_back(i);
              });
        },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
  };
  const auto serial = gather(1);
  ASSERT_EQ(serial.size(), rec.trace.size());
  EXPECT_EQ(gather(2), serial);
  EXPECT_EQ(gather(8), serial);
}

// --- parallel == serial for the migrated analyses --------------------------

TEST(ParallelAnalysisTest, StormPipelineIdenticalAt1_2_8Threads) {
  const auto plan = make_storm_plan(6, 40, /*seed=*/21);
  const auto rec = replay::record(6, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);
  const auto serial = run_pipeline(rec.trace.store(), 1);
  EXPECT_FALSE(serial.match.matches.empty());
  expect_pipelines_equal(serial, run_pipeline(rec.trace.store(), 2));
  expect_pipelines_equal(serial, run_pipeline(rec.trace.store(), 8));
}

TEST(ParallelAnalysisTest, DeadlockRingPipelineIdenticalAt1_2_8Threads) {
  constexpr int kRanks = 6;
  fault::FaultEngine engine(fault::FaultPlan::named("deadlock_ring",
                                                    /*seed=*/3),
                            kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto rec = replay::record(kRanks, ring_body(kRanks), options);
  ASSERT_FALSE(rec.trace.empty());
  const auto serial = run_pipeline(rec.trace.store(), 1);
  // The held message leaves unmatched traffic — the interesting case
  // for the canonicalized unmatched lists.
  EXPECT_FALSE(serial.match.unmatched_sends.empty() &&
               serial.match.unmatched_recvs.empty());
  expect_pipelines_equal(serial, run_pipeline(rec.trace.store(), 2));
  expect_pipelines_equal(serial, run_pipeline(rec.trace.store(), 8));
}

TEST(ParallelAnalysisTest, SegmentedStoreIdenticalToInMemory) {
  const auto plan = make_storm_plan(6, 40, /*seed=*/33);
  const auto rec = replay::record(6, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);

  TempTraceFile file;
  trace::write_trace(file.path(), rec.trace, trace::TraceFormat::kBinary,
                     /*segment_events=*/64);
  trace::TraceOpenOptions open_options;
  open_options.cache_segments = 3;  // force eviction traffic under load
  const auto lazy = trace::open_trace(file.path(), open_options);
  ASSERT_TRUE(lazy.is_lazy());
  ASSERT_GT(lazy.segment_count(), 4u);

  const auto baseline = run_pipeline(rec.trace.store(), 1);
  expect_pipelines_equal(baseline, run_pipeline(lazy.store(), 1));
  expect_pipelines_equal(baseline, run_pipeline(lazy.store(), 8));
}

// --- segmented store under concurrency -------------------------------------

TEST(SegmentedStoreConcurrency, ConcurrentReadersSeeIdenticalHistory) {
  const auto plan = make_storm_plan(4, 60, /*seed=*/5);
  const auto rec = replay::record(4, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);

  TempTraceFile file;
  trace::write_trace(file.path(), rec.trace, trace::TraceFormat::kBinary,
                     /*segment_events=*/128);
  trace::TraceOpenOptions open_options;
  open_options.cache_segments = 2;  // tiny cache: constant eviction
  const auto lazy = trace::open_trace(file.path(), open_options);
  ASSERT_TRUE(lazy.is_lazy());

  // Checksum of the full stream, computed serially as ground truth.
  const auto checksum = [&](const trace::Trace& t) {
    std::uint64_t acc = 0;
    t.for_each_event([&](std::size_t i, const trace::Event& e) {
      acc = acc * 1315423911u + i + static_cast<std::uint64_t>(e.kind) +
            static_cast<std::uint64_t>(e.marker);
    });
    return acc;
  };
  const std::uint64_t expected = checksum(rec.trace);

  // 8 raw threads hammer the same store: full scans, per-rank scans,
  // and random point reads, against a 2-segment cache.  TSan-clean and
  // every reader sees the same bytes.
  constexpr int kReaders = 8;
  std::vector<std::uint64_t> sums(kReaders, 0);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      sums[static_cast<std::size_t>(t)] = checksum(lazy);
      support::SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int k = 0; k < 200; ++k) {
        const auto i = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(lazy.size())));
        const auto a = lazy.event(i);
        const auto b = rec.trace.event(i);
        if (a.marker != b.marker || a.kind != b.kind) {
          sums[static_cast<std::size_t>(t)] = 0;  // poison -> test fails
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  for (int t = 0; t < kReaders; ++t) EXPECT_EQ(sums[t], expected) << t;
}

TEST(SegmentedStoreConcurrency, PrefetchPipelineMatchesColdScan) {
  const auto plan = make_storm_plan(4, 60, /*seed=*/9);
  const auto rec = replay::record(4, storm_body(plan));
  ASSERT_TRUE(rec.result.completed);

  TempTraceFile file;
  trace::write_trace(file.path(), rec.trace, trace::TraceFormat::kBinary,
                     /*segment_events=*/128);

  const auto scan = [](const trace::Trace& t) {
    std::uint64_t acc = 0;
    t.for_each_event([&](std::size_t i, const trace::Event& e) {
      acc = acc * 31 + i + static_cast<std::uint64_t>(e.marker);
    });
    return acc;
  };

  exec::ScopedExecutor pool(4);  // prefetch needs a parallel pool
  trace::TraceOpenOptions with;
  with.cache_segments = 3;
  trace::TraceOpenOptions without = with;
  without.prefetch = false;
  const auto prefetched = trace::open_trace(file.path(), with);
  const auto cold = trace::open_trace(file.path(), without);
  EXPECT_EQ(scan(prefetched), scan(cold));

  const auto* seg_store = dynamic_cast<const trace::SegmentedTraceStore*>(
      prefetched.store().get());
  ASSERT_NE(seg_store, nullptr);
  EXPECT_GT(seg_store->cache_stats().prefetches, 0u);
  const auto* cold_store = dynamic_cast<const trace::SegmentedTraceStore*>(
      cold.store().get());
  ASSERT_NE(cold_store, nullptr);
  EXPECT_EQ(cold_store->cache_stats().prefetches, 0u);
}

}  // namespace
}  // namespace tdbg
