// Randomized message storms: seeded pseudo-random communication
// schedules stress the matching, tracing, and replay machinery far
// from the hand-written patterns in the other suites.
//
// Each rank runs a deterministic (seeded) schedule of sends to random
// partners with random tags; receives are posted to consume exactly
// what was sent (the schedule is globally agreed up front, so every
// run completes).  Half the receives use ANY_SOURCE to exercise
// nondeterministic matching.

#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "causality/causal_order.hpp"
#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "mpi/runtime.hpp"
#include "replay/record.hpp"
#include "support/rng.hpp"

namespace tdbg {
namespace {

struct Plan {
  // For each sender: list of (dest, tag, payload).
  std::vector<std::vector<std::array<int, 3>>> sends;
  // For each receiver: how many messages it gets in total, and which
  // of its receives are wildcard (by index).
  std::vector<int> recv_count;
};

Plan make_plan(int ranks, int msgs_per_rank, std::uint64_t seed) {
  Plan plan;
  plan.sends.resize(static_cast<std::size_t>(ranks));
  plan.recv_count.assign(static_cast<std::size_t>(ranks), 0);
  // One split RNG stream per sender: schedules stay identical when a
  // rank's message count changes, unlike the old shared-hash scheme.
  const support::SplitMix64 root(seed);
  for (int s = 0; s < ranks; ++s) {
    auto rng = root.split(static_cast<std::uint64_t>(s));
    for (int m = 0; m < msgs_per_rank; ++m) {
      const int dest =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
      const int tag = static_cast<int>(rng.next_below(5));
      const int payload = static_cast<int>(rng.next_below(100000));
      plan.sends[static_cast<std::size_t>(s)].push_back(
          {dest, tag, payload});
      ++plan.recv_count[static_cast<std::size_t>(dest)];
    }
  }
  return plan;
}

/// The storm body: everyone sends its schedule (eager, cannot block),
/// then receives its quota — alternating wildcard and fully-wild
/// receives so matching is heavily nondeterministic.
mpi::RankBody storm_body(const Plan& plan) {
  return [plan](mpi::Comm& comm) {
    const auto& mine = plan.sends[static_cast<std::size_t>(comm.rank())];
    for (const auto& [dest, tag, payload] : mine) {
      comm.send_value<int>(payload, dest, tag, "storm_send");
    }
    const int quota = plan.recv_count[static_cast<std::size_t>(comm.rank())];
    long long sum = 0;
    for (int i = 0; i < quota; ++i) {
      sum += comm.recv_value<int>(mpi::kAnySource, mpi::kAnyTag, nullptr,
                                  "storm_recv");
    }
    // Deterministic grand total regardless of match order.
    long long expected = 0;
    for (int s = 0; s < comm.size(); ++s) {
      for (const auto& [dest, tag, payload] :
           plan.sends[static_cast<std::size_t>(s)]) {
        if (dest == comm.rank()) expected += payload;
      }
    }
    TDBG_CHECK(sum == expected, "storm payload sum mismatch");
  };
}

struct StormParam {
  int ranks;
  int msgs;
  std::uint64_t seed;
};

class StormTest : public ::testing::TestWithParam<StormParam> {};

TEST_P(StormTest, CompletesAndMatchesFully) {
  const auto p = GetParam();
  const auto plan = make_plan(p.ranks, p.msgs, p.seed);
  const auto rec = replay::record(p.ranks, storm_body(plan));
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;

  analysis::Session session(rec.trace);
  const auto& report = session.match_report();
  EXPECT_EQ(report.matches.size(),
            static_cast<std::size_t>(p.ranks * p.msgs));
  EXPECT_TRUE(report.unmatched_sends.empty());
  EXPECT_TRUE(report.unmatched_recvs.empty());

  // Causality is well-formed even on dense wildcard traffic.
  const auto& order = session.causal_order();
  for (const auto& m : order.matches().matches) {
    EXPECT_TRUE(order.happens_before(m.send_index, m.recv_index));
  }
}

TEST_P(StormTest, ReplayIsExact) {
  const auto p = GetParam();
  const auto plan = make_plan(p.ranks, p.msgs, p.seed);
  const auto body = storm_body(plan);
  const auto rec = replay::record(p.ranks, body);
  ASSERT_TRUE(rec.result.completed);

  replay::MatchRecorder second(p.ranks);
  replay::ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  ASSERT_TRUE(mpi::run(p.ranks, body, options).completed);
  EXPECT_EQ(second.log(), rec.log);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StormTest,
    ::testing::Values(StormParam{2, 8, 11}, StormParam{3, 20, 22},
                      StormParam{5, 30, 33}, StormParam{8, 25, 44},
                      StormParam{8, 60, 55}, StormParam{12, 15, 66},
                      StormParam{4, 100, 77}));

/// A storm under an active delay plan: injected sender-side latency
/// perturbs arrival order everywhere, but nothing is lost — the run
/// must still complete with every message matched.
TEST(FaultStormTest, DelayPlanStormAtEightRanksMatchesFully) {
  constexpr int kRanks = 8;
  const auto plan = make_plan(kRanks, 20, /*seed=*/99);
  fault::FaultEngine engine(fault::FaultPlan::named("delay_storm", 7), kRanks);
  replay::RecordOptions options;
  options.fault_engine = &engine;
  const auto rec = replay::record(kRanks, storm_body(plan), options);
  ASSERT_TRUE(rec.result.completed) << rec.result.abort_detail;
  EXPECT_GE(engine.injection_count(fault::FaultKind::kDelay), 1u);

  analysis::Session session(rec.trace);
  const auto& report = session.match_report();
  EXPECT_EQ(report.matches.size(), static_cast<std::size_t>(kRanks * 20));
  EXPECT_TRUE(report.unmatched_sends.empty());
  EXPECT_TRUE(report.unmatched_recvs.empty());
}

}  // namespace
}  // namespace tdbg
