#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "graph/action_graph.hpp"
#include "graph/call_graph.hpp"
#include "graph/comm_graph.hpp"
#include "graph/export.hpp"
#include "graph/trace_graph.hpp"
#include "instrument/session.hpp"
#include "replay/record.hpp"

namespace tdbg::graph {
namespace {

using trace::Event;
using trace::EventKind;

Event ev(EventKind kind, mpi::Rank rank, std::uint64_t marker,
         trace::ConstructId construct, mpi::Rank peer = mpi::kAnySource,
         mpi::ChannelSeq seq = 0) {
  Event e;
  e.kind = kind;
  e.rank = rank;
  e.marker = marker;
  e.construct = construct;
  e.t_start = static_cast<support::TimeNs>(marker * 10);
  e.t_end = e.t_start + 5;
  e.peer = peer;
  e.tag = 0;
  e.channel_seq = seq;
  return e;
}

/// main(0) calls f twice; f sends to rank 1, which receives in g.
trace::Trace small_trace() {
  constexpr trace::ConstructId kMain = 0, kF = 1, kG = 2;
  std::vector<Event> events;
  events.push_back(ev(EventKind::kEnter, 0, 1, kMain));
  events.push_back(ev(EventKind::kEnter, 0, 2, kF));
  events.push_back(ev(EventKind::kSend, 0, 3, kF, 1, 0));
  events.push_back(ev(EventKind::kExit, 0, 3, kF));
  events.push_back(ev(EventKind::kEnter, 0, 4, kF));
  events.push_back(ev(EventKind::kSend, 0, 5, kF, 1, 1));
  events.push_back(ev(EventKind::kExit, 0, 5, kF));
  events.push_back(ev(EventKind::kExit, 0, 5, kMain));
  events.push_back(ev(EventKind::kEnter, 1, 1, kG));
  events.push_back(ev(EventKind::kRecv, 1, 2, kG, 0, 0));
  events.push_back(ev(EventKind::kRecv, 1, 3, kG, 0, 1));
  events.push_back(ev(EventKind::kExit, 1, 3, kG));
  return trace::Trace(2, std::move(events), nullptr);
}

TEST(TraceGraphTest, BuildsCallAndMessageArcs) {
  const auto trace = small_trace();
  const auto g = TraceGraph::from_trace(trace);
  // Nodes: r0:main, r0:f, r0:<root>, r1:g, r1:<root>, channel 0->1.
  EXPECT_EQ(g.node_count(), 6u);
  // Arcs: root->main, main->f (x2 stored separately), root->g,
  // f->ch (x2), ch->g (x2): 8 operations total.
  EXPECT_EQ(g.operation_count(), 8u);

  const NodeId main_node{NodeId::Kind::kFunction, 0, 0, -1};
  const NodeId f_node{NodeId::Kind::kFunction, 0, 1, -1};
  const auto calls = g.arcs_between(main_node, f_node, ArcKind::kCall);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].count, 1u);

  const NodeId ch{NodeId::Kind::kChannel, 0, trace::kNoConstruct, 1};
  EXPECT_EQ(g.arcs_between(f_node, ch, ArcKind::kSend).size(), 2u);
  const NodeId g_node{NodeId::Kind::kFunction, 1, 2, -1};
  EXPECT_EQ(g.arcs_between(ch, g_node, ArcKind::kRecv).size(), 2u);
}

TEST(TraceGraphTest, DisseminationBoundsArcCount) {
  constexpr std::size_t kLimit = 8;
  TraceGraph g(1, kLimit);
  // 1000 parallel calls main->f.
  Event enter_main = ev(EventKind::kEnter, 0, 1, 0);
  g.add_event(enter_main);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    g.add_event(ev(EventKind::kEnter, 0, 2 + 2 * i, 1));
    g.add_event(ev(EventKind::kExit, 0, 3 + 2 * i, 1));
  }
  // Stored arcs bounded by the merge limit...
  EXPECT_LE(g.arc_count(), kLimit + 2);
  // ...but the operation count is preserved exactly.
  EXPECT_EQ(g.operation_count(), 1001u);
}

TEST(TraceGraphTest, ExpandArcRecoversMergedOperations) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 4;
  const auto rec = replay::record(
      2, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  const auto g = TraceGraph::from_trace(rec.trace, /*merge_limit=*/2);

  // For every merged arc group, expanding all arcs must recover
  // exactly `count` trace events each.
  std::size_t checked = 0;
  for (const auto& [key, group] : g.arc_groups()) {
    for (const auto& arc : group) {
      if (arc.count <= 1) continue;
      const auto events = g.expand_arc(rec.trace, arc);
      EXPECT_EQ(events.size(), arc.count);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << "expected at least one merged arc to verify";
}

TEST(TraceGraphTest, NodeCountBoundHolds) {
  // Paper: nodes <= functions * P + P^2.
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 4;
  const auto rec = replay::record(
      4, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);
  const auto g = TraceGraph::from_trace(rec.trace);
  const auto functions = rec.trace.constructs().size() + 1;  // + <root>
  EXPECT_LE(g.node_count(), functions * 4 + 4 * 4);
}

TEST(CallGraphTest, ProjectsPerRank) {
  const auto trace = small_trace();
  const auto tg = TraceGraph::from_trace(trace);
  const auto cg0 = CallGraph::project(tg, 0);
  // Edges on rank 0: root->main, main->f.
  ASSERT_EQ(cg0.edges().size(), 2u);
  EXPECT_EQ(cg0.call_count(1), 2u);  // f called twice
  const auto cg1 = CallGraph::project(tg, 1);
  ASSERT_EQ(cg1.edges().size(), 1u);
  EXPECT_EQ(cg1.call_count(2), 1u);

  const auto merged = CallGraph::project(tg, std::nullopt);
  EXPECT_EQ(merged.edges().size(), 3u);
}

TEST(CallGraphTest, CallsPerArcSplitsEdges) {
  const auto trace = small_trace();
  const auto cg = CallGraph::from_trace(trace, 0);
  trace::ConstructRegistry reg;
  reg.intern("main");
  reg.intern("f");
  reg.intern("g");
  const auto one_arc = cg.to_export(reg, 0);
  const auto split = cg.to_export(reg, 1);
  // f is called twice: with calls_per_arc=1 the main->f edge doubles.
  EXPECT_EQ(split.edges.size(), one_arc.edges.size() + 1);
}

TEST(CommGraphTest, MatchedPairsBecomeNodes) {
  const auto trace = small_trace();
  analysis::Session session(trace);
  const auto& cg = session.comm_graph();
  ASSERT_EQ(cg.nodes().size(), 2u);
  EXPECT_TRUE(cg.nodes()[0].matched());
  EXPECT_TRUE(cg.unmatched_sends().empty());
  // Both messages 0->1; consecutive on both endpoints: one causal arc.
  ASSERT_EQ(cg.arcs().size(), 1u);
  EXPECT_EQ(cg.arcs()[0].first, 0u);
  EXPECT_EQ(cg.arcs()[0].second, 1u);
}

TEST(CommGraphTest, BuggyStrassenShowsMissedMessage) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  opts.buggy = true;
  const auto rec = replay::record(
      8, [&](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.deadlocked);
  analysis::Session session(rec.trace);
  const auto& cg = session.comm_graph();
  const auto missed = cg.unmatched_sends();
  // Exactly one missed message: the second operand that went to rank 0
  // instead of rank 7 (the paper's Fig. 6).
  ASSERT_EQ(missed.size(), 1u);
  const auto& node = cg.nodes()[missed[0]];
  EXPECT_EQ(node.src, 0);
  EXPECT_EQ(node.dst, 0);  // self-send: the misdirected operand
  EXPECT_EQ(node.tag, apps::strassen::kTagOperandB);
}

TEST(ActionGraphTest, CompressesRuns) {
  std::vector<Event> events;
  // Ten consecutive sends inside one function: one action.
  events.push_back(ev(EventKind::kEnter, 0, 1, 0));
  for (std::uint64_t i = 0; i < 10; ++i) {
    events.push_back(ev(EventKind::kSend, 0, 2 + i, 5, 1, i));
  }
  events.push_back(ev(EventKind::kExit, 0, 12, 0));
  trace::Trace trace(2, std::move(events), nullptr);
  const auto ag = ActionGraph::from_trace(trace);
  const auto& actions = ag.actions(0);
  ASSERT_EQ(actions.size(), 2u);  // enter main, send x10
  EXPECT_EQ(actions[1].count, 10u);
  EXPECT_EQ(actions[1].kind, EventKind::kSend);
  EXPECT_EQ(ag.total_operations(), 11u);
}

TEST(ExportTest, DotAndVcgAreWellFormed) {
  const auto trace = small_trace();
  trace::ConstructRegistry reg;
  reg.intern("main");
  reg.intern("f");
  reg.intern("g");
  const auto tg = TraceGraph::from_trace(trace);
  const auto exported = tg.to_export(reg);

  const auto dot = to_dot(exported);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));

  const auto vcg = to_vcg(exported);
  EXPECT_NE(vcg.find("graph: {"), std::string::npos);
  EXPECT_NE(vcg.find("node: {"), std::string::npos);
  EXPECT_NE(vcg.find("edge: {"), std::string::npos);
  EXPECT_EQ(std::count(vcg.begin(), vcg.end(), '{'),
            std::count(vcg.begin(), vcg.end(), '}'));
}

TEST(ExportTest, LabelsAreEscaped) {
  ExportGraph g;
  g.title = "has \"quotes\" and <angles>";
  g.nodes.push_back(ExportNode{"n\"1", "label \"x\"", ""});
  const auto dot = to_dot(g);
  EXPECT_EQ(dot.find("\"has \"quotes\""), std::string::npos);
  const auto vcg = to_vcg(g);
  EXPECT_NE(vcg.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace tdbg::graph
