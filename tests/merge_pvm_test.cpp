#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/session.hpp"
#include "apps/strassen.hpp"
#include "mpi/pvm.hpp"
#include "mpi/runtime.hpp"
#include "replay/record.hpp"
#include "trace/merge.hpp"
#include "trace/trace_io.hpp"

namespace tdbg {
namespace {

TEST(MergeTest, SplitThenMergeRoundTrips) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      4, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  const auto parts = trace::split_by_rank(rec.trace);
  ASSERT_EQ(parts.size(), 4u);
  for (mpi::Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(parts[static_cast<std::size_t>(r)].size(),
              rec.trace.rank_events(r).size());
  }

  const auto merged = trace::merge_traces(parts);
  EXPECT_EQ(merged.size(), rec.trace.size());
  EXPECT_EQ(merged.num_ranks(), 4);
  // Matching survives the round trip.
  analysis::Session merged_session(merged);
  analysis::Session original_session(rec.trace);
  EXPECT_EQ(merged_session.match_report().matches.size(),
            original_session.match_report().matches.size());
}

TEST(MergeTest, DistinctConstructTablesRemap) {
  // Two single-rank traces with clashing construct ids but different
  // names must merge without confusing the constructs.
  auto reg_a = std::make_shared<trace::ConstructRegistry>();
  const auto a_id = reg_a->intern("alpha");
  std::vector<trace::Event> ea(1);
  ea[0].rank = 0;
  ea[0].marker = 1;
  ea[0].construct = a_id;

  auto reg_b = std::make_shared<trace::ConstructRegistry>();
  const auto b_id = reg_b->intern("beta");
  std::vector<trace::Event> eb(1);
  eb[0].rank = 1;
  eb[0].marker = 1;
  eb[0].construct = b_id;
  EXPECT_EQ(a_id, b_id);  // the clash

  const auto merged = trace::merge_traces(
      {trace::Trace(2, std::move(ea), reg_a),
       trace::Trace(2, std::move(eb), reg_b)});
  ASSERT_EQ(merged.size(), 2u);
  const auto name_of = [&](mpi::Rank r) {
    return merged.constructs()
        .info(merged.event(merged.rank_events(r)[0]).construct)
        .name;
  };
  EXPECT_EQ(name_of(0), "alpha");
  EXPECT_EQ(name_of(1), "beta");
}

TEST(MergeTest, PerRankFilesWorkflow) {
  apps::strassen::Options opts;
  opts.n = 16;
  opts.cutoff = 8;
  const auto rec = replay::record(
      3, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  ASSERT_TRUE(rec.result.completed);

  // Write one file per rank (the AIMS workflow), then merge-read.
  std::vector<std::filesystem::path> paths;
  const auto parts = trace::split_by_rank(rec.trace);
  for (std::size_t r = 0; r < parts.size(); ++r) {
    const auto path = std::filesystem::temp_directory_path() /
                      ("merge_rank" + std::to_string(r) + ".trc");
    trace::write_trace(path, parts[r]);
    paths.push_back(path);
  }
  const auto merged = trace::read_merged(paths);
  EXPECT_EQ(merged.size(), rec.trace.size());
  for (const auto& p : paths) std::filesystem::remove(p);
}

TEST(PvmTest, PackSendRecvUnpack) {
  const auto result = mpi::run(2, [](mpi::Comm& comm) {
    pvm::Task task(comm);
    if (task.mytid() == 0) {
      task.initsend();
      task.pk_value<int>(42);
      task.pk_value<double>(2.5);
      const std::array<int, 3> arr{1, 2, 3};
      task.pk(std::span<const int>(arr));
      task.send(1, 5);
    } else {
      const auto bytes = task.recv(pvm::kAny, pvm::kAny);
      EXPECT_EQ(bytes, sizeof(int) + sizeof(double) + 3 * sizeof(int));
      EXPECT_EQ(task.bufinfo().source, 0);
      EXPECT_EQ(task.bufinfo().tag, 5);
      EXPECT_EQ(task.upk_value<int>(), 42);
      EXPECT_EQ(task.upk_value<double>(), 2.5);
      std::array<int, 3> arr{};
      task.upk(std::span<int>(arr));
      EXPECT_EQ(arr[2], 3);
      // Over-reading throws.
      EXPECT_THROW(task.upk_value<int>(), Error);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(PvmTest, SameBufferToMultipleTasks) {
  const auto result = mpi::run(4, [](mpi::Comm& comm) {
    pvm::Task task(comm);
    if (task.mytid() == 0) {
      task.initsend();
      task.pk_value<int>(99);
      for (int t = 1; t < task.ntasks(); ++t) task.send(t, 1);
    } else {
      task.recv(0, 1);
      EXPECT_EQ(task.upk_value<int>(), 99);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(PvmTest, PvmTrafficIsTracedAndReplayable) {
  const auto body = [](mpi::Comm& comm) {
    pvm::Task task(comm);
    if (task.mytid() == 0) {
      for (int i = 0; i < 4; ++i) {
        task.recv(pvm::kAny, 1);  // nondeterministic, PVM style
      }
    } else {
      task.initsend();
      task.pk_value<int>(task.mytid());
      task.send(0, 1);
      task.initsend();
      task.pk_value<int>(task.mytid() * 2);
      task.send(0, 1);
    }
  };
  const auto rec = replay::record(3, body);
  ASSERT_TRUE(rec.result.completed);
  analysis::Session session(rec.trace);
  EXPECT_EQ(session.match_report().matches.size(), 4u);

  // PVM-style wildcard receives replay under the same controller.
  replay::MatchRecorder second(3);
  replay::ReplayController controller(rec.log);
  mpi::RunOptions options;
  options.hooks = &second;
  options.controller = &controller;
  ASSERT_TRUE(mpi::run(3, body, options).completed);
  EXPECT_EQ(second.log(), rec.log);
}

}  // namespace
}  // namespace tdbg
