// Table 1 — Instrumentation overhead (seconds).
//
// Paper's table:
//                    Strassen matrix multiply (4 procs)   Fibonacci
//   Input size/value   96.128.112      192.256.224        34        35
//   Number of calls    136             136                18454930  29860704
//   Time (uninstr.)    8.19            28.72              5.17      8.36
//   Time (instr.)      8.46            28.77              20.98     34.12
//
// Shape to reproduce: for the coarse-grained Strassen workload the
// UserMonitor overhead is in the noise (~1-3%); for the fine-grained
// Fibonacci recursion — tens of millions of instrumented calls — the
// instrumented run is several times slower, because the monitor call
// costs as much as the function body.
//
// Workloads are scaled to finish in seconds on a laptop: Strassen uses
// square matrices (the paper's were mildly rectangular — same
// communication structure) and Fibonacci uses n=28/30 (call counts in
// the 0.8M-2.2M range; the per-call cost ratio is what carries the
// shape, not the absolute count).

#include <cinttypes>

#include "apps/fib.hpp"
#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "instrument/session.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace tdbg;

struct Cell {
  std::uint64_t calls = 0;
  double uninstr_s = 0.0;
  double instr_s = 0.0;
};

Cell strassen_cell(const std::string& name, std::size_t n, int reps) {
  apps::strassen::Options opts;
  opts.n = n;
  opts.cutoff = 32;
  opts.verify = false;  // the paper timed the multiply, not a check
  const auto body = [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  };

  Cell cell;
  cell.uninstr_s = bench::time_median_s(name + "_uninstr", reps,
                                        [&] { mpi::run(4, body); });

  // Instrumented: UserMonitor counts markers on every function entry
  // and MPI call (no trace records — Table 1 measures the monitor).
  cell.instr_s = bench::time_median_s(name + "_instr", reps, [&] {
    instr::Session session(4, nullptr);
    mpi::RunOptions options;
    options.hooks = &session;
    mpi::run(4, body, options);
  });
  {
    instr::Session session(4, nullptr);
    mpi::RunOptions options;
    options.hooks = &session;
    mpi::run(4, body, options);
    for (mpi::Rank r = 0; r < 4; ++r) cell.calls += session.counter(r);
  }
  return cell;
}

Cell fib_cell(const std::string& name, unsigned n, int reps) {
  Cell cell;
  cell.calls = apps::fib_call_count(n);
  volatile std::uint64_t sink = 0;
  cell.uninstr_s = bench::time_median_s(name + "_uninstr", reps,
                                        [&] { sink = apps::fib_plain(n); });
  cell.instr_s = bench::time_median_s(name + "_instr", reps, [&] {
    instr::Session session(1, nullptr);
    mpi::RunOptions options;
    options.hooks = &session;
    mpi::run(1, [&](mpi::Comm&) { sink = apps::fib_instrumented(n); },
             options);
  });
  (void)sink;
  return cell;
}

}  // namespace

int main() {
  bench::header("Table 1: instrumentation overhead (seconds)");

  const auto s1 = strassen_cell("table1.strassen256", 256, 5);
  const auto s2 = strassen_cell("table1.strassen512", 512, 3);
  const auto f1 = fib_cell("table1.fib28", 28, 5);
  const auto f2 = fib_cell("table1.fib30", 30, 3);

  std::printf("%-18s %14s %14s %14s %14s\n", "", "Strassen 256",
              "Strassen 512", "fib(28)", "fib(30)");
  std::printf("%-18s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 " %14" PRIu64
              "\n",
              "Number of calls", s1.calls, s2.calls, f1.calls, f2.calls);
  std::printf("%-18s %14.4f %14.4f %14.4f %14.4f\n", "Time (uninstr.)",
              s1.uninstr_s, s2.uninstr_s, f1.uninstr_s, f2.uninstr_s);
  std::printf("%-18s %14.4f %14.4f %14.4f %14.4f\n", "Time (instr.)",
              s1.instr_s, s2.instr_s, f1.instr_s, f2.instr_s);
  std::printf("%-18s %13.2fx %13.2fx %13.2fx %13.2fx\n", "Overhead",
              s1.instr_s / s1.uninstr_s, s2.instr_s / s2.uninstr_s,
              f1.instr_s / f1.uninstr_s, f2.instr_s / f2.uninstr_s);

  // Same ratios read back from the MetricsRegistry histograms the
  // timing loop recorded into (mean-based; the rows above are
  // medians).  A mismatch in shape here would mean the user-visible
  // `stats` surface and the bench tables drifted apart.
  const auto reg_ratio = [](const char* name) {
    const auto uninstr =
        bench::registry_mean_s(std::string(name) + "_uninstr");
    const auto instr = bench::registry_mean_s(std::string(name) + "_instr");
    return instr / uninstr;
  };
  if (obs::kMetricsEnabled) {
    std::printf("%-18s %13.2fx %13.2fx %13.2fx %13.2fx\n",
                "Overhead (registry)", reg_ratio("table1.strassen256"),
                reg_ratio("table1.strassen512"), reg_ratio("table1.fib28"),
                reg_ratio("table1.fib30"));
  }

  bench::note("paper (SGI PCA cluster): Strassen 8.19->8.46s (1.03x) and "
              "28.72->28.77s (1.00x);");
  bench::note("fib(34) 5.17->20.98s (4.06x), fib(35) 8.36->34.12s (4.08x).");
  bench::note("shape check: coarse-grain overhead ~1x, fine-grain many x.");
  bench::note("(the fine-grain ratio exceeds the paper's 4x because a 2026 "
              "compiler makes the bare call far cheaper than a 1998 one; "
              "the per-call monitor cost itself is a few ns, see "
              "abl_marker_cost)");
  return 0;
}
