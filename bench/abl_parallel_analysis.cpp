// Ablation — parallel analysis engine (google-benchmark).
//
// PR 7 moves the heavy trace analyses (message matching, traffic,
// races, causal order, communication graph) onto a work-stealing
// thread pool with a deterministic segment-ordered merge.  This bench
// quantifies the change on a >2M-event synthetic trace:
//
//   BM_MatchTraffic/N    match_report + analyze_traffic at N threads
//                        (the fully parallel phases)
//   BM_FullPipeline/N    the whole pipeline at N threads: matching,
//                        traffic, causal order, races, comm graph —
//                        includes the serial vector-clock propagation,
//                        so this is the end-to-end (Amdahl) number
//   BM_SegmentedScan/P   cold full scan of the on-disk v2 file with
//                        the segment prefetch pipeline off (P=0) and
//                        on (P=1)
//
// Before any timing, main() verifies the determinism contract: the
// match report, traffic report, race list, and comm-graph DOT are
// byte-identical at 1, 2, 4, and 8 threads; any mismatch aborts with
// exit 1.  When the host has >= 8 hardware threads it then enforces
// the PR's gate — >= 3x speedup for the parallel phases at 8 threads —
// and otherwise prints a skip note (scripts/bench_pr7_parallel.sh
// records the same decision in BENCH_pr7_parallel.json).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/races.hpp"
#include "analysis/session.hpp"
#include "analysis/traffic.hpp"
#include "causality/causal_order.hpp"
#include "graph/comm_graph.hpp"
#include "graph/export.hpp"
#include "support/executor.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;

constexpr std::size_t kEvents = 1u << 21;  // ~2.1M events
constexpr int kRanks = 8;
constexpr std::size_t kWildcards = 256;  // racy receives (bounded pairing)

struct BenchData {
  std::shared_ptr<const trace::TraceStore> store;
  std::filesystem::path v2;

  BenchData() {
    auto registry = std::make_shared<trace::ConstructRegistry>();
    const auto c_work = registry->intern("work", "bench.cpp", 1);
    const auto c_msg = registry->intern("msg", "bench.cpp", 2);

    // Random interleaving of per-rank streams.  Every send is paired
    // with a matching receive on the (src, dst) channel — the receive
    // carries the channel sequence number explicitly, exactly as the
    // recorder writes it — so the matcher, traffic analyzer, and comm
    // graph all do full-size work.  A bounded number of receives are
    // wildcards to give the race detector a realistic workload.
    std::mt19937 rng(20260809);
    std::vector<std::uint64_t> marker(kRanks, 0);
    std::vector<support::TimeNs> clock(kRanks, 0);
    std::vector<std::vector<mpi::ChannelSeq>> chan_seq(
        kRanks, std::vector<mpi::ChannelSeq>(kRanks, 0));
    std::size_t wild = 0;
    std::vector<trace::Event> events;
    events.reserve(kEvents + 1);
    auto advance = [&](int r, trace::Event& e) {
      e.rank = static_cast<mpi::Rank>(r);
      e.marker = ++marker[static_cast<std::size_t>(r)];
      e.t_start = clock[static_cast<std::size_t>(r)];
      clock[static_cast<std::size_t>(r)] +=
          std::uniform_int_distribution<support::TimeNs>(1, 20)(rng);
      e.t_end = clock[static_cast<std::size_t>(r)];
    };
    while (events.size() < kEvents) {
      const int r = std::uniform_int_distribution<int>(0, kRanks - 1)(rng);
      if (std::uniform_int_distribution<int>(0, 9) (rng) == 0) {
        const int dst =
            (r + 1 + std::uniform_int_distribution<int>(0, kRanks - 2)(rng)) %
            kRanks;
        const auto seq = chan_seq[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(dst)]++;
        trace::Event send;
        advance(r, send);
        send.kind = trace::EventKind::kSend;
        send.construct = c_msg;
        send.peer = static_cast<mpi::Rank>(dst);
        send.tag = 1;
        send.channel_seq = seq;
        send.bytes = 256;
        events.push_back(send);
        trace::Event recv;
        advance(dst, recv);
        recv.kind = trace::EventKind::kRecv;
        recv.construct = c_msg;
        recv.peer = static_cast<mpi::Rank>(r);
        recv.tag = 1;
        recv.channel_seq = seq;
        recv.bytes = 256;
        if (wild < kWildcards &&
            std::uniform_int_distribution<int>(0, 399)(rng) == 0) {
          recv.wildcard = true;
          ++wild;
        }
        events.push_back(recv);
      } else {
        trace::Event e;
        advance(r, e);
        e.kind = trace::EventKind::kCompute;
        e.construct = c_work;
        events.push_back(e);
      }
    }
    trace::Trace trace(kRanks, std::move(events), std::move(registry));
    store = trace.store();
    v2 = std::filesystem::temp_directory_path() /
         ("tdbg_bench_parallel_" + std::to_string(::getpid()) + ".trc");
    trace::write_trace(v2, trace);
  }

  ~BenchData() { std::filesystem::remove(v2); }
};

BenchData& data() {
  static BenchData d;
  return d;
}

/// The fully parallel phases, on a fresh facade (nothing memoized).
std::size_t match_traffic(
    const std::shared_ptr<const trace::TraceStore>& store) {
  const trace::Trace t(store);
  analysis::Session session(t);
  const auto& report = session.match_report();
  return report.matches.size() + session.traffic().to_string().size();
}

struct PipelineDigest {
  std::size_t matches = 0;
  std::vector<std::size_t> unmatched_sends;
  std::vector<std::size_t> unmatched_recvs;
  std::string traffic;
  std::vector<analysis::MessageRace> races;
  std::string comm_dot;
};

PipelineDigest full_pipeline(
    const std::shared_ptr<const trace::TraceStore>& store) {
  const trace::Trace t(store);
  analysis::Session session(t);
  PipelineDigest d;
  const auto& report = session.match_report();
  d.matches = report.matches.size();
  d.unmatched_sends = report.unmatched_sends;
  d.unmatched_recvs = report.unmatched_recvs;
  d.traffic = session.traffic().to_string();
  d.races = session.races().races;
  d.comm_dot = graph::to_dot(session.comm_graph().to_export());
  return d;
}

bool digests_equal(const PipelineDigest& a, const PipelineDigest& b) {
  if (a.matches != b.matches || a.unmatched_sends != b.unmatched_sends ||
      a.unmatched_recvs != b.unmatched_recvs || a.traffic != b.traffic ||
      a.comm_dot != b.comm_dot || a.races.size() != b.races.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.races.size(); ++i) {
    if (a.races[i].recv_index != b.races[i].recv_index ||
        a.races[i].matched_send != b.races[i].matched_send ||
        a.races[i].candidates != b.races[i].candidates) {
      return false;
    }
  }
  return true;
}

void BM_MatchTraffic(benchmark::State& state) {
  exec::ScopedExecutor pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(match_traffic(data().store));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_MatchTraffic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  exec::ScopedExecutor pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(full_pipeline(data().store).matches);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SegmentedScan(benchmark::State& state) {
  exec::ScopedExecutor pool(4);
  trace::TraceOpenOptions options;
  options.cache_segments = 4;
  options.prefetch = state.range(0) == 1;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const auto t = trace::open_trace(data().v2, options);
    t.for_each_event(
        [&](std::size_t, const trace::Event& e) { sum += e.marker; });
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_SegmentedScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Byte-identical across thread counts, or die.
bool verify_determinism() {
  PipelineDigest serial;
  {
    exec::ScopedExecutor pool(1);
    serial = full_pipeline(data().store);
  }
  for (const std::size_t n : {2u, 4u, 8u}) {
    exec::ScopedExecutor pool(n);
    if (!digests_equal(serial, full_pipeline(data().store))) {
      std::fprintf(stderr,
                   "FAIL: analysis reports differ at %zu threads vs serial\n",
                   n);
      return false;
    }
  }
  std::fprintf(stderr,
               "determinism: reports byte-identical at 1/2/4/8 threads "
               "(%zu matches)\n",
               serial.matches);
  return true;
}

/// The PR's speedup gate, self-contained: >= 3x for the parallel
/// phases at 8 threads, enforced only where 8 hardware threads exist.
bool verify_speedup() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 8) {
    std::fprintf(stderr,
                 "speedup gate skipped: %u hardware thread(s) < 8\n", hw);
    return true;
  }
  const auto time_at = [&](std::size_t threads) {
    exec::ScopedExecutor pool(threads);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(match_traffic(data().store));
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  const double serial = time_at(1);
  const double parallel = time_at(8);
  const double speedup = serial / parallel;
  std::fprintf(stderr, "speedup: %.2fx at 8 threads (%.1f ms -> %.1f ms)\n",
               speedup, serial * 1e3, parallel * 1e3);
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: below the 3x gate\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_determinism()) return 1;
  if (!verify_speedup()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
