// Figure 3 — "History displayed with VK.  A trace of Strassen's matrix
// multiplication running on 8 processes.  Process 0 (at the bottom)
// distributes pairs of submatrices among the other processes (each
// send is shown as a separate message).  Then process 0 receives 7
// partial results and combines them into the final result."
//
// Regenerates the view and verifies the communication structure the
// caption describes: 14 operand sends from rank 0 (two per product,
// separate messages), one product per worker, 7 result messages back.

#include <cstdio>
#include <fstream>

#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "replay/record.hpp"
#include "viz/timeline.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 3: VK view of Strassen on 8 processes");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  if (!rec.result.completed) {
    std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
    return 1;
  }

  // Count the structure from the trace.
  int operand_sends = 0, result_sends = 0, worker_recvs[8] = {0};
  rec.trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kSend) {
      if (e.rank == 0 && (e.tag == apps::strassen::kTagOperandA ||
                          e.tag == apps::strassen::kTagOperandB)) {
        ++operand_sends;
      }
      if (e.rank != 0 && e.tag == apps::strassen::kTagResult) ++result_sends;
    }
    if (e.kind == trace::EventKind::kRecv && e.rank != 0) {
      ++worker_recvs[e.rank];
    }
  });

  std::printf("operand sends from process 0 : %d (expect 14 = 7 pairs)\n",
              operand_sends);
  std::printf("partial results to process 0 : %d (expect 7)\n", result_sends);
  bool two_each = true;
  for (int r = 1; r < 8; ++r) two_each = two_each && worker_recvs[r] == 2;
  std::printf("each worker receives 2 msgs  : %s\n", two_each ? "yes" : "NO");

  // The "VK window" rendering: an animated scrolling window in the
  // original; here, three zoom windows across the run.
  viz::TimeSpaceDiagram full(rec.trace);
  std::ofstream("fig3_vk_strassen.svg") << full.to_svg();
  const auto span = rec.trace.t_max() - rec.trace.t_min();
  for (int w = 0; w < 3; ++w) {
    viz::DiagramOptions window;
    window.window_t0 = rec.trace.t_min() + span * w / 3;
    window.window_t1 = rec.trace.t_min() + span * (w + 1) / 3;
    viz::TimeSpaceDiagram view(rec.trace, window);
    std::ofstream("fig3_vk_window" + std::to_string(w) + ".svg")
        << view.to_svg();
  }
  std::printf("svg written                  : fig3_vk_strassen.svg + 3 "
              "scroll windows\n");
  std::printf("\n%s", full.to_ascii(100).c_str());
  bench::note("paper: P0 distributes 7 submatrix pairs, receives 7 "
              "partials, combines.");
  return operand_sends == 14 && result_sends == 7 && two_each ? 0 : 1;
}
