// Ablation A1 — what do recording and controlled replay cost?
//
// The paper's replay is "done in a straightforward manner by
// re-executing until an execution marker threshold is encountered"
// (§6).  This bench quantifies the pipeline on two workloads: the
// deterministic Strassen and the racy task farm.
//
//   plain     : no hooks at all
//   recorded  : instrumentation session + match recorder (the §2 stack)
//   replayed  : re-execution under the replay controller (forced
//               matching, §4.2)

#include <cstdio>

#include "apps/strassen.hpp"
#include "apps/taskfarm.hpp"
#include "bench_util.hpp"
#include "replay/record.hpp"

namespace {

using namespace tdbg;

void measure(const char* name, int ranks, const mpi::RankBody& body) {
  constexpr int kReps = 5;
  const double plain =
      bench::time_median_s(kReps, [&] { mpi::run(ranks, body); });

  replay::RecordedRun recorded;
  const double record_s = bench::time_median_s(kReps, [&] {
    recorded = replay::record(ranks, body);
  });

  const double replay_s = bench::time_median_s(kReps, [&] {
    replay::ReplayController controller(recorded.log);
    mpi::RunOptions options;
    options.controller = &controller;
    mpi::run(ranks, body, options);
  });

  std::printf("%-22s plain %8.4fs | recorded %8.4fs (%.2fx) | replayed "
              "%8.4fs (%.2fx) | %llu receives forced\n",
              name, plain, record_s, record_s / plain, replay_s,
              replay_s / plain,
              static_cast<unsigned long long>(recorded.log.total_receives()));
}

}  // namespace

int main() {
  bench::header("Ablation A1: record / replay overhead");

  apps::strassen::Options sopts;
  sopts.n = 96;
  sopts.cutoff = 32;
  sopts.verify = false;
  measure("strassen 8 ranks", 8, [sopts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, sopts);
  });

  apps::taskfarm::Options fopts;
  fopts.num_tasks = 200;
  fopts.work_scale = 2000;
  measure("task farm 6 ranks", 6, [fopts](mpi::Comm& comm) {
    apps::taskfarm::rank_body(comm, fopts);
  });

  bench::note("shape: recording costs a few percent on coarse-grained "
              "codes; controlled replay is comparable to a plain run "
              "(forcing only constrains the matcher).");
  return 0;
}
