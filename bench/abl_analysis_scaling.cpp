// Ablation A6 — does the history machinery scale with trace length?
//
// §4.3 motivates the graph abstraction with "an execution history can
// be huge and often won't fit into memory".  This bench grows a
// workload 100x and reports build times for the structures the
// debugger keeps per session: the vector-clock causal order (O(n·P)),
// the trace graph (bounded by dissemination), message matching, and a
// frontier query (O(P log n) thanks to the monotone-clock binary
// search).

#include <cstdio>

#include "apps/ring.hpp"
#include "analysis/pass.hpp"
#include "analysis/session.hpp"
#include "bench_util.hpp"
#include "causality/causal_order.hpp"
#include "graph/trace_graph.hpp"
#include "replay/record.hpp"

int main() {
  using namespace tdbg;
  bench::header("Ablation A6: analysis scaling with history length");

  std::printf("%-8s %-10s %-12s %-12s %-12s %-14s %-12s\n", "laps", "events",
              "match (ms)", "order (ms)", "graph (ms)", "frontier (us)",
              "graph arcs");
  for (const int laps : {20, 200, 2000}) {
    apps::ring::Options opts;
    opts.laps = laps;
    const auto rec = replay::record(8, [opts](mpi::Comm& comm) {
      apps::ring::rank_body(comm, opts);
    });
    if (!rec.result.completed) {
      std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
      return 1;
    }

    const double match_s = bench::time_median_s(3, [&] {
      analysis::Session fresh(rec.trace);
      const auto& report = fresh.match_report();
      (void)report;
    });
    const double order_s = bench::time_median_s(3, [&] {
      analysis::Session fresh(rec.trace);
      const auto& order = fresh.causal_order();
      (void)order;
    });
    std::size_t arcs = 0;
    const double graph_s = bench::time_median_s(3, [&] {
      const auto g = graph::TraceGraph::from_trace(rec.trace, 16);
      arcs = g.arc_count();
    });

    analysis::Session session(rec.trace);
    const auto& order = session.causal_order();
    const auto mid = rec.trace.rank_events(4)[rec.trace.rank_events(4).size() / 2];
    const double frontier_s = bench::time_median_s(5, [&] {
      const auto pf = order.past_frontier(mid);
      const auto ff = order.future_frontier(mid);
      (void)pf;
      (void)ff;
    });

    std::printf("%-8d %-10zu %-12.3f %-12.3f %-12.3f %-14.2f %-12zu\n", laps,
                rec.trace.size(), match_s * 1e3, order_s * 1e3,
                graph_s * 1e3, frontier_s * 1e6, arcs);
  }
  bench::note("shape: matching and causal-order builds grow ~linearly with "
              "history; the dissemination-bounded graph and the frontier "
              "query stay (near-)flat.");
  return 0;
}
