// Figure 4 — "Communication graph of Strassen's algorithm
// implementation.  Each node corresponds to one or two messages.  The
// arcs describe causality of messages."
//
// Regenerates the graph, reports its shape, and writes DOT + VCG.

#include <cstdio>
#include <fstream>

#include "apps/strassen.hpp"
#include "analysis/session.hpp"
#include "bench_util.hpp"
#include "graph/comm_graph.hpp"
#include "replay/record.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 4: communication graph of Strassen");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  if (!rec.result.completed) {
    std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
    return 1;
  }

  analysis::Session session(rec.trace);
  const auto& graph = session.comm_graph();
  std::printf("message nodes   : %zu (expect 21: 14 operands + 7 results)\n",
              graph.nodes().size());
  std::printf("causality arcs  : %zu\n", graph.arcs().size());
  std::printf("unmatched sends : %zu (expect 0)\n",
              graph.unmatched_sends().size());
  std::printf("unmatched recvs : %zu (expect 0)\n",
              graph.unmatched_recvs().size());

  const auto exported = graph.to_export();
  std::ofstream("fig4_comm_graph.dot") << graph::to_dot(exported);
  std::ofstream("fig4_comm_graph.vcg") << graph::to_vcg(exported);
  std::printf("written         : fig4_comm_graph.{dot,vcg}\n");

  // Per-worker view: each worker's operand pair is causally followed
  // by its result message (the arc structure in the figure).
  int workers_with_chain = 0;
  for (const auto& [from, to] : graph.arcs()) {
    const auto& a = graph.nodes()[from];
    const auto& b = graph.nodes()[to];
    if (a.dst == b.src && a.src == 0 && b.dst == 0 &&
        b.tag == apps::strassen::kTagResult) {
      ++workers_with_chain;
    }
  }
  std::printf("operand->result causal chains: %d (expect 7, one per "
              "worker)\n",
              workers_with_chain);
  bench::note("paper: nodes = matched message pairs, arcs = causality "
              "(Fig. 4 shows the 7-product fan-out/fan-in).");
  return graph.nodes().size() == 21 && workers_with_chain == 7 ? 0 : 1;
}
