// abl_columnar_store — the PR-10 TraceStore v3 ablation and gate.
//
// Builds one ~2.1M-event synthetic workload (same shape as
// abl_pass_fusion: paired sends/receives, computes, bounded
// wildcards), writes it as v2 row segments and v3 column blocks, and
// — before any timing — verifies that every analysis artifact
// (matching, traffic, comm graph, races) computed over the v3 file is
// byte-identical to the v2 file.  Then measures, best-of-5, fresh
// open per repetition:
//
//   size          on-disk bytes, v3 / v2
//   full sweep    cold open + decode of every event, wall and
//                 process-CPU time
//   rank window   64 narrow rank-filtered window queries spread over
//                 the back half of the time range, asking only for
//                 rank/marker/times (the zone-map + column-pruning
//                 path)
//
// and ASSERTS the PR-10 acceptance gates (exit 1 on any miss):
//
//   v3 size   <= 0.35x v2
//   sweep     >= 2x faster than v2 (wall AND cpu)
//   window    >= 4x faster than v2 (wall AND cpu)
//
// scripts/bench_pr10_columnar.sh records the numbers in
// BENCH_pr10_columnar.json.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "analysis/session.hpp"
#include "graph/export.hpp"
#include "support/clock.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;

constexpr int kRanks = 8;
constexpr std::size_t kWildcards = 256;

std::vector<trace::Event> build_events(
    std::size_t target, const std::shared_ptr<trace::ConstructRegistry>& reg) {
  const auto c_work = reg->intern("work", "bench.cpp", 1);
  const auto c_msg = reg->intern("msg", "bench.cpp", 2);
  std::mt19937 rng(20260809);
  std::vector<std::uint64_t> marker(kRanks, 0);
  std::vector<support::TimeNs> clock(kRanks, 0);
  std::vector<std::vector<mpi::ChannelSeq>> chan_seq(
      kRanks, std::vector<mpi::ChannelSeq>(kRanks, 0));
  std::size_t wild = 0;
  std::vector<trace::Event> events;
  events.reserve(target + 1);
  auto advance = [&](int r, trace::Event& e) {
    e.rank = static_cast<mpi::Rank>(r);
    e.marker = ++marker[static_cast<std::size_t>(r)];
    e.t_start = clock[static_cast<std::size_t>(r)];
    clock[static_cast<std::size_t>(r)] +=
        std::uniform_int_distribution<support::TimeNs>(1, 20)(rng);
    e.t_end = clock[static_cast<std::size_t>(r)];
  };
  while (events.size() < target) {
    const int r = std::uniform_int_distribution<int>(0, kRanks - 1)(rng);
    if (std::uniform_int_distribution<int>(0, 9)(rng) == 0) {
      const int dst =
          (r + 1 + std::uniform_int_distribution<int>(0, kRanks - 2)(rng)) %
          kRanks;
      const auto seq = chan_seq[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(dst)]++;
      trace::Event send;
      advance(r, send);
      send.kind = trace::EventKind::kSend;
      send.construct = c_msg;
      send.peer = static_cast<mpi::Rank>(dst);
      send.tag = 1;
      send.channel_seq = seq;
      send.bytes = 256;
      events.push_back(send);
      trace::Event recv;
      advance(dst, recv);
      recv.kind = trace::EventKind::kRecv;
      recv.construct = c_msg;
      recv.peer = static_cast<mpi::Rank>(r);
      recv.tag = 1;
      recv.channel_seq = seq;
      recv.bytes = 256;
      if (wild < kWildcards &&
          std::uniform_int_distribution<int>(0, 399)(rng) == 0) {
        recv.wildcard = true;
        ++wild;
      }
      events.push_back(recv);
    } else {
      trace::Event e;
      advance(r, e);
      e.kind = trace::EventKind::kCompute;
      e.construct = c_work;
      events.push_back(e);
    }
  }
  return events;
}

double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

trace::Trace open_cold(const std::filesystem::path& path) {
  trace::TraceOpenOptions options;
  options.cache_segments = 4;
  options.prefetch = false;
  return trace::open_trace(path, options);
}

/// Cold full sweep: decode every event once, touching every field.
std::uint64_t full_sweep(const std::filesystem::path& path) {
  const auto t = open_cold(path);
  std::uint64_t sink = 0;
  t.for_each_event([&](std::size_t, const trace::Event& e) {
    sink += static_cast<std::uint64_t>(e.rank) + e.marker + e.bytes +
            static_cast<std::uint64_t>(e.t_end - e.t_start) +
            static_cast<std::uint64_t>(e.kind);
  });
  return sink;
}

/// 64 narrow rank-filtered window queries — the timeline-zoom shape:
/// the UI needs rank, marker and times, nothing else.  Every query
/// prunes the leading segments through the directory zone maps; on v3
/// the column-restricted API decodes only the four requested columns
/// (a few bytes per event) instead of full 59-byte rows, and the
/// spread of window positions defeats the 4-segment decoded cache so
/// v2 keeps re-decoding entire segments.
std::uint64_t rank_windows(const std::filesystem::path& path) {
  const auto t = open_cold(path);
  const auto span = t.t_max() - t.t_min();
  constexpr trace::ColumnSet kZoomCols = trace::kColRank | trace::kColMarker |
                                         trace::kColTStart | trace::kColTEnd;
  std::uint64_t sink = 0;
  for (mpi::Rank r = 0; r < kRanks; ++r) {
    for (const double frac :
         {0.52, 0.58, 0.65, 0.72, 0.79, 0.86, 0.93, 0.99}) {
      const auto t0 =
          t.t_min() + static_cast<support::TimeNs>(
                          static_cast<double>(span) * frac);
      const auto t1 = t0 + span / 1000;
      t.for_each_rank_in_window_cols(
          r, t0, t1, kZoomCols, [&](std::size_t i, const trace::Event& e) {
            sink += i + e.marker;
          });
    }
  }
  return sink;
}

struct Timed {
  double wall_ms = 0;
  double cpu_ms = 0;
};

template <typename Fn>
Timed best_of(int reps, std::uint64_t expect, const Fn& fn) {
  Timed best{1e300, 1e300};
  for (int i = 0; i < reps; ++i) {
    const support::Stopwatch wall;
    const double c0 = cpu_now();
    const auto sink = fn();
    const double cpu = (cpu_now() - c0) * 1e3;
    const double ms = wall.elapsed_s() * 1e3;
    if (sink != expect) {
      std::fprintf(stderr, "columnar: result drift (%llu != %llu)\n",
                   static_cast<unsigned long long>(sink),
                   static_cast<unsigned long long>(expect));
      std::exit(1);
    }
    best.wall_ms = std::min(best.wall_ms, ms);
    best.cpu_ms = std::min(best.cpu_ms, cpu);
  }
  return best;
}

/// Every analysis artifact, canonically stringified.
std::string artifact_digest(const trace::Trace& t) {
  analysis::Session session(t);
  std::string d;
  const auto& report = session.match_report();
  for (const auto& m : report.matches) {
    d += std::to_string(m.send_index) + ">" + std::to_string(m.recv_index) +
         ";";
  }
  for (const auto i : report.unmatched_sends) d += "s" + std::to_string(i);
  for (const auto i : report.unmatched_recvs) d += "r" + std::to_string(i);
  d += session.traffic().to_string();
  d += graph::to_dot(session.comm_graph().to_export());
  for (const auto& race : session.races().races) {
    d += std::to_string(race.recv_index) + ":" +
         std::to_string(race.candidates.size()) + ";";
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 1u << 21;  // ~2.1M
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc) events = std::stoull(argv[++i]);
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tdbg_bench_columnar_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto v2 = dir / "t.v2.trc";
  const auto v3 = dir / "t.v3.trc";

  auto registry = std::make_shared<trace::ConstructRegistry>();
  {
    const trace::Trace full(kRanks, build_events(events, registry), registry);
    events = full.size();
    trace::write_trace(v2, full, trace::TraceFormat::kBinary);
    trace::write_trace(v3, full, trace::TraceFormat::kBinaryV3);
  }

  // Gate 0 (before any timing): artifacts over v3 == artifacts over
  // v2, byte for byte.
  if (artifact_digest(open_cold(v2)) != artifact_digest(open_cold(v3))) {
    std::fprintf(stderr,
                 "columnar: GATE FAIL — analysis artifacts differ "
                 "between v2 and v3\n");
    std::filesystem::remove_all(dir);
    return 1;
  }
  std::fprintf(stderr,
               "columnar: artifacts byte-identical across v2/v3 "
               "(%zu events)\n",
               events);

  const auto v2_bytes = std::filesystem::file_size(v2);
  const auto v3_bytes = std::filesystem::file_size(v3);
  const double size_ratio =
      static_cast<double>(v3_bytes) / static_cast<double>(v2_bytes);
  std::fprintf(stderr,
               "columnar: size v2 %llu bytes, v3 %llu bytes -> %.3fx "
               "(gate <= 0.35x)\n",
               static_cast<unsigned long long>(v2_bytes),
               static_cast<unsigned long long>(v3_bytes), size_ratio);

  const auto sweep_ref = full_sweep(v2);
  const auto sweep_v2 = best_of(reps, sweep_ref, [&] { return full_sweep(v2); });
  const auto sweep_v3 = best_of(reps, sweep_ref, [&] { return full_sweep(v3); });
  const double sweep_wall_x = sweep_v2.wall_ms / sweep_v3.wall_ms;
  const double sweep_cpu_x = sweep_v2.cpu_ms / sweep_v3.cpu_ms;
  std::fprintf(stderr,
               "columnar: cold full sweep v2 %.2f ms wall / %.2f ms cpu, "
               "v3 %.2f ms wall / %.2f ms cpu -> %.2fx wall, %.2fx cpu "
               "(gate >= 2x)\n",
               sweep_v2.wall_ms, sweep_v2.cpu_ms, sweep_v3.wall_ms,
               sweep_v3.cpu_ms, sweep_wall_x, sweep_cpu_x);

  const auto window_ref = rank_windows(v2);
  const auto win_v2 = best_of(reps, window_ref, [&] { return rank_windows(v2); });
  const auto win_v3 = best_of(reps, window_ref, [&] { return rank_windows(v3); });
  const double win_wall_x = win_v2.wall_ms / win_v3.wall_ms;
  const double win_cpu_x = win_v2.cpu_ms / win_v3.cpu_ms;
  std::fprintf(stderr,
               "columnar: rank-window queries v2 %.2f ms wall / %.2f ms cpu, "
               "v3 %.2f ms wall / %.2f ms cpu -> %.2fx wall, %.2fx cpu "
               "(gate >= 4x)\n",
               win_v2.wall_ms, win_v2.cpu_ms, win_v3.wall_ms, win_v3.cpu_ms,
               win_wall_x, win_cpu_x);

  std::filesystem::remove_all(dir);

  bool ok = true;
  if (size_ratio > 0.35) {
    std::fprintf(stderr, "columnar: GATE FAIL — v3 size %.3fx > 0.35x v2\n",
                 size_ratio);
    ok = false;
  }
  if (sweep_wall_x < 2.0 || sweep_cpu_x < 2.0) {
    std::fprintf(stderr,
                 "columnar: GATE FAIL — cold sweep %.2fx wall / %.2fx cpu "
                 "< 2x\n",
                 sweep_wall_x, sweep_cpu_x);
    ok = false;
  }
  if (win_wall_x < 4.0 || win_cpu_x < 4.0) {
    std::fprintf(stderr,
                 "columnar: GATE FAIL — rank-window %.2fx wall / %.2fx cpu "
                 "< 4x\n",
                 win_wall_x, win_cpu_x);
    ok = false;
  }
  return ok ? 0 : 1;
}
