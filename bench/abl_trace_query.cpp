// Ablation — trace store open latency and query cost (google-benchmark).
//
// PR 3 replaces the monolithic load-everything trace reader with the
// segmented, footer-indexed v2 format and a lazy SegmentedTraceStore.
// This bench quantifies the change on a >1M-event trace:
//
//   BM_OpenEagerV1       full v1 load (the old behavior: decode all)
//   BM_OpenLazyV2        v2 open (header + footer only)
//   BM_WindowV1LoadScan  1% time-window query the old way: full load,
//                        then a full scan
//   BM_WindowV2Cold      1% window on a fresh lazy open (directory
//                        binary search + the touched segments only)
//   BM_WindowV2Warm      same window with the segment cache warm
//   BM_FindMarkerLazy    marker lookup through the footer index
//   BM_LastEventLazy     hit-test (last_event_at_or_before)
//
// The warm-window benchmark also reports the store's resident segment
// bytes so the RSS bound from the LRU cache is visible in the output.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <random>
#include <vector>

#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;

constexpr std::size_t kEvents = 1u << 21;  // ~2.1M events
constexpr int kRanks = 8;

struct BenchFiles {
  std::filesystem::path v1;
  std::filesystem::path v2;
  support::TimeNs t_min = 0;
  support::TimeNs t_max = 0;
  std::vector<std::uint64_t> rank_markers;  // highest marker per rank

  BenchFiles() {
    const auto dir = std::filesystem::temp_directory_path();
    const auto pid = std::to_string(::getpid());
    v1 = dir / ("tdbg_bench_query_" + pid + "_v1.trc");
    v2 = dir / ("tdbg_bench_query_" + pid + "_v2.trc");

    auto registry = std::make_shared<trace::ConstructRegistry>();
    const auto c_work = registry->intern("work", "bench.cpp", 1);
    const auto c_msg = registry->intern("msg", "bench.cpp", 2);

    std::mt19937 rng(12345);
    std::vector<std::uint64_t> marker(kRanks, 0);
    std::vector<support::TimeNs> clock(kRanks, 0);
    std::vector<mpi::ChannelSeq> ring_seq(kRanks, 0);
    std::vector<trace::Event> events;
    events.reserve(kEvents);
    while (events.size() < kEvents) {
      const auto r =
          static_cast<mpi::Rank>(std::uniform_int_distribution<int>(
              0, kRanks - 1)(rng));
      trace::Event e;
      e.rank = r;
      e.marker = ++marker[static_cast<std::size_t>(r)];
      e.t_start = clock[static_cast<std::size_t>(r)];
      clock[static_cast<std::size_t>(r)] +=
          std::uniform_int_distribution<support::TimeNs>(1, 20)(rng);
      e.t_end = clock[static_cast<std::size_t>(r)];
      if (std::uniform_int_distribution<int>(0, 9)(rng) == 0) {
        // Ring message: r -> r+1 with FIFO channel sequence.
        e.kind = trace::EventKind::kSend;
        e.construct = c_msg;
        e.peer = static_cast<mpi::Rank>((r + 1) % kRanks);
        e.tag = 1;
        e.channel_seq = ring_seq[static_cast<std::size_t>(r)]++;
        e.bytes = 256;
      } else {
        e.kind = trace::EventKind::kCompute;
        e.construct = c_work;
      }
      events.push_back(e);
    }
    rank_markers = marker;
    trace::Trace trace(kRanks, std::move(events), std::move(registry));
    t_min = trace.t_min();
    t_max = trace.t_max();
    trace::write_trace(v1, trace, trace::TraceFormat::kBinaryV1);
    trace::write_trace(v2, trace, trace::TraceFormat::kBinary);
  }

  ~BenchFiles() {
    std::filesystem::remove(v1);
    std::filesystem::remove(v2);
  }

  [[nodiscard]] std::pair<support::TimeNs, support::TimeNs> window(
      double at, double frac) const {
    const auto span = static_cast<double>(t_max - t_min);
    const auto t0 =
        t_min + static_cast<support::TimeNs>(span * at);
    return {t0, t0 + static_cast<support::TimeNs>(span * frac)};
  }
};

BenchFiles& files() {
  static BenchFiles f;
  return f;
}

void BM_OpenEagerV1(benchmark::State& state) {
  for (auto _ : state) {
    const auto trace = trace::read_trace(files().v1);
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_OpenEagerV1)->Unit(benchmark::kMillisecond);

void BM_OpenLazyV2(benchmark::State& state) {
  for (auto _ : state) {
    const auto trace = trace::open_trace(files().v2);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_OpenLazyV2)->Unit(benchmark::kMicrosecond);

void BM_WindowV1LoadScan(benchmark::State& state) {
  const auto [t0, t1] = files().window(0.47, 0.01);
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto trace = trace::read_trace(files().v1);
    trace.for_each_in_window(
        t0, t1, [&](std::size_t, const trace::Event&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.counters["window_events"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_WindowV1LoadScan)->Unit(benchmark::kMillisecond);

void BM_WindowV2Cold(benchmark::State& state) {
  const auto [t0, t1] = files().window(0.47, 0.01);
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto trace = trace::open_trace(files().v2);
    trace.for_each_in_window(
        t0, t1, [&](std::size_t, const trace::Event&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.counters["window_events"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_WindowV2Cold)->Unit(benchmark::kMicrosecond);

void BM_WindowV2Warm(benchmark::State& state) {
  const auto trace = trace::open_trace(files().v2);
  const auto [t0, t1] = files().window(0.47, 0.01);
  std::size_t hits = 0;
  for (auto _ : state) {
    trace.for_each_in_window(
        t0, t1, [&](std::size_t, const trace::Event&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  const auto* seg =
      dynamic_cast<const trace::SegmentedTraceStore*>(trace.store().get());
  if (seg != nullptr) {
    state.counters["resident_bytes"] =
        static_cast<double>(seg->cache_stats().resident_bytes);
    state.counters["resident_segments"] =
        static_cast<double>(seg->cache_stats().resident_segments);
  }
}
BENCHMARK(BM_WindowV2Warm)->Unit(benchmark::kMicrosecond);

void BM_FindMarkerLazy(benchmark::State& state) {
  const auto trace = trace::open_trace(files().v2);
  std::mt19937 rng(7);
  for (auto _ : state) {
    const auto r = static_cast<mpi::Rank>(
        std::uniform_int_distribution<int>(0, kRanks - 1)(rng));
    const auto m = std::uniform_int_distribution<std::uint64_t>(
        1, files().rank_markers[static_cast<std::size_t>(r)])(rng);
    benchmark::DoNotOptimize(trace.find_marker(r, m));
  }
}
BENCHMARK(BM_FindMarkerLazy)->Unit(benchmark::kMicrosecond);

void BM_LastEventLazy(benchmark::State& state) {
  const auto trace = trace::open_trace(files().v2);
  std::mt19937 rng(8);
  for (auto _ : state) {
    const auto r = static_cast<mpi::Rank>(
        std::uniform_int_distribution<int>(0, kRanks - 1)(rng));
    const auto t = std::uniform_int_distribution<support::TimeNs>(
        files().t_min, files().t_max)(rng);
    benchmark::DoNotOptimize(trace.last_event_at_or_before(r, t));
  }
}
BENCHMARK(BM_LastEventLazy)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
