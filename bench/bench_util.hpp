#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "support/clock.hpp"

/// \file bench_util.hpp
/// Shared helpers for the per-figure/per-table bench binaries.  Each
/// binary regenerates one table or figure of the paper's evaluation
/// and prints the corresponding rows (plus, where the paper reports
/// numbers, the paper's values for shape comparison — absolute times
/// differ: the paper ran on a 1998 SGI Power Challenge cluster, this
/// harness runs ranks as threads in one process).

namespace tdbg::bench {

/// Median wall-clock seconds of `reps` runs of `fn`.
inline double time_median_s(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    support::Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_s());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Prints a section header.
inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Prints a key/value informational line.
inline void note(const std::string& text) {
  std::printf("     %s\n", text.c_str());
}

}  // namespace tdbg::bench
