#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "support/clock.hpp"

/// \file bench_util.hpp
/// Shared helpers for the per-figure/per-table bench binaries.  Each
/// binary regenerates one table or figure of the paper's evaluation
/// and prints the corresponding rows (plus, where the paper reports
/// numbers, the paper's values for shape comparison — absolute times
/// differ: the paper ran on a 1998 SGI Power Challenge cluster, this
/// harness runs ranks as threads in one process).

namespace tdbg::bench {

/// Median wall-clock seconds of `reps` runs of `fn`.
inline double time_median_s(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    support::Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_s());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Registry-backed variant: every sample is also recorded into the
/// global `MetricsRegistry` histogram `bench.<name>_ns`, and the
/// recorded value IS the value used for the median — so a table row
/// and a `stats` dump of the same run can never disagree.  Falls back
/// to a plain stopwatch when metrics are compiled out or disabled.
inline double time_median_s(std::string_view name, int reps,
                            const std::function<void()>& fn) {
  auto& hist = obs::MetricsRegistry::global().histogram(
      "bench." + std::string(name) + "_ns", obs::Unit::kNanoseconds);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    if (hist.hot()) {
      obs::ScopedTimer timer(hist, /*rank=*/-1);
      fn();
      samples.push_back(static_cast<double>(timer.stop()) * 1e-9);
    } else {
      support::Stopwatch sw;
      fn();
      samples.push_back(sw.elapsed_s());
    }
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Mean seconds of the named `bench.<name>_ns` histogram, read back
/// from the global registry (NaN when it has no samples).
inline double registry_mean_s(std::string_view name) {
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* m = snap.find("bench." + std::string(name) + "_ns");
  if (m == nullptr || m->total() == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return static_cast<double>(m->hist_sum) /
         static_cast<double>(m->total()) * 1e-9;
}

/// Prints a section header.
inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Prints a key/value informational line.
inline void note(const std::string& text) {
  std::printf("     %s\n", text.c_str());
}

}  // namespace tdbg::bench
