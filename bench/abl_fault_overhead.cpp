// Ablation A7 — the fault-injection seams (google-benchmark).
//
// The fault engine's contract (ISSUE: fault injection) is that with no
// injector installed the runtime pays exactly one pointer test per
// send and per receive — cheap enough to leave the seams compiled in
// everywhere, like the obs metrics layer.  Before the benchmark table,
// main() asserts that contract directly: the median cost of the
// null-injector check must be within a small factor of a bare relaxed
// load.  The table then puts numbers on the three configurations a
// debugging session actually runs: no injector, an armed-but-empty
// engine, and an active delay plan.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "fault/engine.hpp"
#include "fault/plan.hpp"
#include "mpi/fault_injector.hpp"
#include "mpi/runtime.hpp"
#include "support/clock.hpp"

namespace {

using namespace tdbg;

/// Rank 0 streams `msgs` small eager messages to rank 1.
mpi::RankBody pipeline_body(int msgs) {
  return [msgs](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < msgs; ++i) comm.send_value<int>(i, 1, /*tag=*/3);
    } else {
      for (int i = 0; i < msgs; ++i) comm.recv_value<int>(0, /*tag=*/3);
    }
  };
}

double run_pipeline(mpi::FaultInjector* injector,
                    mpi::ProfilingHooks* hooks, int msgs) {
  mpi::RunOptions options;
  options.fault_injector = injector;
  options.hooks = hooks;
  const auto start = support::now_ns();
  const auto result = mpi::run(2, pipeline_body(msgs), options);
  const auto elapsed = support::now_ns() - start;
  if (!result.completed) std::abort();
  return static_cast<double>(elapsed) / static_cast<double>(msgs);
}

void BM_PipelineNoInjector(benchmark::State& state) {
  constexpr int kMsgs = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(nullptr, nullptr, kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineNoInjector)->Unit(benchmark::kMillisecond);

void BM_PipelineEmptyEngine(benchmark::State& state) {
  constexpr int kMsgs = 20000;
  for (auto _ : state) {
    fault::FaultEngine engine(fault::FaultPlan{}, 2);
    benchmark::DoNotOptimize(run_pipeline(&engine, engine.hooks(), kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineEmptyEngine)->Unit(benchmark::kMillisecond);

void BM_PipelineDelayPlan(benchmark::State& state) {
  // Active faults are *supposed* to cost time; this row shows the
  // delay_storm plan's injected latency dominating honest overhead.
  constexpr int kMsgs = 2000;
  for (auto _ : state) {
    fault::FaultEngine engine(fault::FaultPlan::named("delay_storm", 7), 2);
    benchmark::DoNotOptimize(run_pipeline(&engine, engine.hooks(), kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineDelayPlan)->Unit(benchmark::kMillisecond);

/// Median ns/op of `op` over `reps` batches of `iters` calls.
template <typename Op>
double median_ns_per_op(const Op& op, int reps = 9, int iters = 2000000) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    const auto start = support::now_ns();
    for (int i = 0; i < iters; ++i) op();
    const auto elapsed = support::now_ns() - start;
    samples.push_back(static_cast<double>(elapsed) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// The contract assert: the per-send null-injector check (load a
/// pointer, compare, branch not taken) ≈ a bare relaxed load.  Runs
/// before the benchmark table so a regression fails the binary
/// (exit 1) even when nobody reads the table.
bool assert_disabled_cost() {
  std::atomic<bool> flag{false};
  const double load_ns = median_ns_per_op([&] {
    benchmark::DoNotOptimize(flag.load(std::memory_order_relaxed));
  });

  mpi::FaultInjector* injector = nullptr;
  benchmark::DoNotOptimize(injector);  // opaque to the optimizer
  const double check_ns = median_ns_per_op([&] {
    benchmark::DoNotOptimize(injector != nullptr);
  });

  const double budget_ns = 4.0 * load_ns + 2.0;
  // stderr: keeps --benchmark_format=json output parseable.
  std::fprintf(stderr,
               "disabled-fault contract: relaxed load %.3f ns/op, "
               "null-injector check %.3f ns/op (budget %.3f)\n",
               load_ns, check_ns, budget_ns);
  if (check_ns > budget_ns) {
    std::fprintf(stderr,
                 "FAIL: the null-injector check costs %.3f ns/op, more than "
                 "the %.3f ns/op budget — the disabled fault path is no "
                 "longer a single pointer test\n",
                 check_ns, budget_ns);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!assert_disabled_cost()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
