// Figure 8 — "Past and future frontiers of a time point in a specific
// processor ... The timeline display then calculated the region of the
// computation that is concurrent with that point.  The concurrency
// region is shown between the slanted black lines."
//
// Regenerates the analysis on the NPB-LU-style wavefront: selects
// mid-trace events, computes past/future frontiers and the concurrency
// region, validates the partition (past + future + concurrent + self =
// everything), and renders the overlay.  The wavefront's pipelining is
// what makes the frontiers *slant* — the bench reports the slant (the
// spread of frontier times across ranks) to show the region is not a
// vertical slice.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "analysis/session.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"
#include "causality/causal_order.hpp"
#include "support/strings.hpp"
#include "replay/record.hpp"
#include "viz/timeline.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 8: past/future frontiers in the LU wavefront");

  apps::lu::Options opts;
  opts.px = 4;
  opts.py = 2;
  opts.nx = 16;
  opts.ny = 16;
  opts.iterations = 3;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::lu::rank_body(comm, opts); });
  if (!rec.result.completed) {
    std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
    return 1;
  }
  analysis::Session session(rec.trace);
  const auto& order = session.causal_order();

  // "The user clicked at the point indicated by the circle": a
  // mid-trace receive on an interior rank.
  const auto& seq = rec.trace.rank_events(5);
  std::size_t selected = seq[seq.size() / 2];

  const auto past = order.causal_past(selected);
  const auto future = order.causal_future(selected);
  const auto region = order.concurrency_region(selected);
  std::printf("selected: rank %d marker %llu (mid-trace)\n",
              rec.trace.event(selected).rank,
              static_cast<unsigned long long>(rec.trace.event(selected).marker));
  std::printf("past %zu | concurrent %zu | future %zu | total %zu\n",
              past.size(), region.size(), future.size(), rec.trace.size());
  const bool partitions =
      past.size() + region.size() + future.size() + 1 == rec.trace.size();
  std::printf("partition check: %s\n", partitions ? "ok" : "BROKEN");

  // The slant: frontier event times spread across ranks.
  const auto pf = order.past_frontier(selected);
  const auto ff = order.future_frontier(selected);
  support::TimeNs pf_min = rec.trace.t_max(), pf_max = rec.trace.t_min();
  int pf_count = 0;
  for (const auto& f : pf) {
    if (!f) continue;
    ++pf_count;
    pf_min = std::min(pf_min, rec.trace.event(*f).t_end);
    pf_max = std::max(pf_max, rec.trace.event(*f).t_end);
  }
  std::printf("past frontier spans %d ranks; time spread %s (a vertical "
              "line would have spread ~0)\n",
              pf_count, support::human_duration(pf_max - pf_min).c_str());

  // Consistency of the frontier cuts (what makes them usable as
  // stoplines, §4.1's closing suggestion).
  std::printf("past-frontier cut consistent  : %s\n",
              causality::is_consistent(rec.trace, session.match_report(),
                                       session.rank_index(),
                                       order.past_frontier_cut(selected))
                  ? "yes"
                  : "NO");
  std::printf("future-frontier cut consistent: %s\n",
              causality::is_consistent(rec.trace, session.match_report(),
                                       session.rank_index(),
                                       order.future_frontier_cut(selected))
                  ? "yes"
                  : "NO");

  viz::Overlay overlay;
  overlay.selected_event = selected;
  overlay.past_frontier = pf;
  overlay.future_frontier = ff;
  viz::TimeSpaceDiagram diagram(rec.trace);
  std::ofstream("fig8_lu_frontiers.svg") << diagram.to_svg(overlay);
  std::printf("svg written: fig8_lu_frontiers.svg\n");
  bench::note("paper: concurrency region between the slanted frontier "
              "lines of the LU trace.");
  return partitions ? 0 : 1;
}
