// Ablation A4 — the UserMonitor hot path (google-benchmark).
//
// Table 1's fine-grained column is dominated by the per-call monitor
// cost.  This bench isolates the pieces: the raw counter+threshold
// tick, the full TDBG_FUNCTION scope guard inside a session, and the
// guard's cost when no session is bound (instrumented binaries running
// outside the debugger).

#include <benchmark/benchmark.h>

#include "instrument/api.hpp"
#include "instrument/session.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace tdbg;

void BM_MonitorTick(benchmark::State& state) {
  instr::MonitorState monitor;
  bool hit = false;
  std::uint64_t marker = 0;
  for (auto _ : state) {
    marker = monitor.tick(1, 2, 3, &hit);
    benchmark::DoNotOptimize(marker);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_MonitorTick);

void BM_MonitorTickArmedThreshold(benchmark::State& state) {
  instr::MonitorState monitor;
  monitor.threshold.store(~std::uint64_t{0} - 1);
  bool hit = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.tick(1, 2, 3, &hit));
  }
}
BENCHMARK(BM_MonitorTickArmedThreshold);

void instrumented_leaf() { TDBG_FUNCTION(); }

void BM_FunctionScopeNoSession(benchmark::State& state) {
  // The "instrumented binary, debugger absent" cost: one thread-local
  // load and branch.
  for (auto _ : state) {
    instrumented_leaf();
  }
}
BENCHMARK(BM_FunctionScopeNoSession);

void BM_FunctionScopeInSession(benchmark::State& state) {
  // Run the loop inside a rank so the session is bound; recording off
  // (markers only), the Table 1 configuration.
  instr::SessionOptions so;
  so.record_function_events = false;
  instr::Session session(1, nullptr, so);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [&](mpi::Comm&) {
    for (auto _ : state) {
      instrumented_leaf();
    }
  }, options);
}
BENCHMARK(BM_FunctionScopeInSession);

void BM_FunctionScopeRecording(benchmark::State& state) {
  // With trace records flowing into the collector.
  trace::TraceCollector collector(1, instr::global_constructs());
  instr::Session session(1, &collector);
  mpi::RunOptions options;
  options.hooks = &session;
  mpi::run(1, [&](mpi::Comm&) {
    for (auto _ : state) {
      instrumented_leaf();
    }
  }, options);
  state.SetLabel(std::to_string(collector.total_count()) + " records");
}
BENCHMARK(BM_FunctionScopeRecording);

}  // namespace

BENCHMARK_MAIN();
