// Ablation A8 — the telemetry layer (google-benchmark).
//
// The flight recorder's contract (ISSUE: telemetry) is that a
// *suppressed* TDBG_LOG statement costs one relaxed atomic load — the
// level gate — so the recorder can stay compiled in everywhere, like
// the obs metrics layer and the fault seams.  Before the benchmark
// table, main() asserts that contract directly: the median cost of a
// suppressed log must be within a small factor of a bare relaxed
// load.  The table then puts numbers on the three configurations a
// run can be in: no logging at all, log statements present but
// suppressed (the disabled path the 1.05x acceptance bound covers),
// and the recorder actually capturing a record per message.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "mpi/runtime.hpp"
#include "support/clock.hpp"
#include "telemetry/log.hpp"
#include "telemetry/span.hpp"

namespace {

using namespace tdbg;

/// Rank 0 streams `msgs` small eager messages to rank 1 — the same
/// pipeline abl_fault_overhead measures, so rows are comparable
/// across ablations.
mpi::RankBody pipeline_body(int msgs) {
  return [msgs](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < msgs; ++i) comm.send_value<int>(i, 1, /*tag=*/3);
    } else {
      for (int i = 0; i < msgs; ++i) comm.recv_value<int>(0, /*tag=*/3);
    }
  };
}

/// The same pipeline with one TDBG_LOG statement per message on both
/// sides.  Whether those statements cost anything is decided by the
/// recorder's minimum level, set by each benchmark below.
mpi::RankBody logged_pipeline_body(int msgs) {
  return [msgs](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < msgs; ++i) {
        TDBG_LOG(telemetry::LogLevel::kDebug, "bench.pipeline.send",
                 static_cast<std::uint64_t>(i));
        comm.send_value<int>(i, 1, /*tag=*/3);
      }
    } else {
      for (int i = 0; i < msgs; ++i) {
        TDBG_LOG(telemetry::LogLevel::kDebug, "bench.pipeline.recv",
                 static_cast<std::uint64_t>(i));
        comm.recv_value<int>(0, /*tag=*/3);
      }
    }
  };
}

double run_pipeline(const mpi::RankBody& body, int msgs) {
  const auto start = support::now_ns();
  const auto result = mpi::run(2, body);
  const auto elapsed = support::now_ns() - start;
  if (!result.completed) std::abort();
  return static_cast<double>(elapsed) / static_cast<double>(msgs);
}

/// Keeps the rows comparable: spans off everywhere (the mailbox's
/// slow-path spans would otherwise add jitter unrelated to the log
/// gate), recorder level as requested, both restored on destruction.
struct TelemetryConfig {
  explicit TelemetryConfig(telemetry::LogLevel level) {
    telemetry::SpanCollector::global().set_enabled(false);
    telemetry::FlightRecorder::global().set_min_level(level);
  }
  ~TelemetryConfig() {
    telemetry::FlightRecorder::global().set_min_level(
        telemetry::LogLevel::kDebug);
    telemetry::SpanCollector::global().set_enabled(true);
  }
};

void BM_PipelineBare(benchmark::State& state) {
  constexpr int kMsgs = 20000;
  TelemetryConfig config(telemetry::LogLevel::kOff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(pipeline_body(kMsgs), kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineBare)->Unit(benchmark::kMillisecond);

void BM_PipelineDisabledLog(benchmark::State& state) {
  // One suppressed TDBG_LOG per message on each side — the disabled
  // path the ≤1.05x acceptance bound (scripts/bench_pr6_telemetry.sh)
  // is asserted against.
  constexpr int kMsgs = 20000;
  TelemetryConfig config(telemetry::LogLevel::kOff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(logged_pipeline_body(kMsgs), kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineDisabledLog)->Unit(benchmark::kMillisecond);

void BM_PipelineFlightRecorder(benchmark::State& state) {
  // Capturing is *supposed* to cost something: a timestamp, a slot
  // claim, five word stores.  This row shows that honest price.
  constexpr int kMsgs = 20000;
  TelemetryConfig config(telemetry::LogLevel::kDebug);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(logged_pipeline_body(kMsgs), kMsgs));
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_PipelineFlightRecorder)->Unit(benchmark::kMillisecond);

/// Median ns/op of `op` over `reps` batches of `iters` calls.
template <typename Op>
double median_ns_per_op(const Op& op, int reps = 9, int iters = 2000000) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    const auto start = support::now_ns();
    for (int i = 0; i < iters; ++i) op();
    const auto elapsed = support::now_ns() - start;
    samples.push_back(static_cast<double>(elapsed) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// The contract assert: a suppressed TDBG_LOG (load the minimum
/// level, compare, branch not taken) ≈ a bare relaxed load.  Runs
/// before the benchmark table so a regression fails the binary
/// (exit 1) even when nobody reads the table.
bool assert_disabled_cost() {
  std::atomic<std::uint8_t> level{255};
  const double load_ns = median_ns_per_op([&] {
    benchmark::DoNotOptimize(level.load(std::memory_order_relaxed));
  });

  telemetry::FlightRecorder::global().set_min_level(telemetry::LogLevel::kOff);
  const double log_ns = median_ns_per_op([&] {
    TDBG_LOG(telemetry::LogLevel::kDebug, "bench.suppressed", 1, 2);
  });
  telemetry::FlightRecorder::global().set_min_level(
      telemetry::LogLevel::kDebug);

  const double budget_ns = 4.0 * load_ns + 2.0;
  // stderr: keeps --benchmark_format=json output parseable.
  std::fprintf(stderr,
               "disabled-telemetry contract: relaxed load %.3f ns/op, "
               "suppressed TDBG_LOG %.3f ns/op (budget %.3f)\n",
               load_ns, log_ns, budget_ns);
  if (log_ns > budget_ns) {
    std::fprintf(stderr,
                 "FAIL: a suppressed TDBG_LOG costs %.3f ns/op, more than "
                 "the %.3f ns/op budget — the disabled log path is no "
                 "longer a single level check\n",
                 log_ns, budget_ns);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!assert_disabled_cost()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
