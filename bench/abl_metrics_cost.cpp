// Ablation A5 — the obs metrics hot path (google-benchmark).
//
// The metrics layer's contract (ISSUE: observability) is that a
// *disabled* metric costs one relaxed atomic load on the hot path —
// cheap enough to leave instruments compiled in everywhere.  Before
// the benchmark table, main() asserts that contract directly: the
// median cost of `Counter::add` on a disabled registry must be within
// a small factor of a bare relaxed load (and nowhere near the
// enabled-path read-modify-write cost).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace tdbg;

void BM_RelaxedLoad(benchmark::State& state) {
  std::atomic<bool> flag{false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(flag.load(std::memory_order_relaxed));
  }
}
BENCHMARK(BM_RelaxedLoad);

void BM_CounterAddEnabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.total());
}
BENCHMARK(BM_CounterAddEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.counter");
  registry.set_enabled(false);
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.total());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(1, v++);
  }
  benchmark::DoNotOptimize(hist.total_count());
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.hist");
  registry.set_enabled(false);
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(1, v++);
  }
  benchmark::DoNotOptimize(hist.total_count());
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_ScopedTimerDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.hist");
  registry.set_enabled(false);
  for (auto _ : state) {
    obs::ScopedTimer timer(hist, 1);  // cold: no clock read at all
  }
  benchmark::DoNotOptimize(hist.total_count());
}
BENCHMARK(BM_ScopedTimerDisabled);

/// Median ns/op of `op` over `reps` batches of `iters` calls.
template <typename Op>
double median_ns_per_op(const Op& op, int reps = 9, int iters = 2000000) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    const auto start = support::now_ns();
    for (int i = 0; i < iters; ++i) op();
    const auto elapsed = support::now_ns() - start;
    samples.push_back(static_cast<double>(elapsed) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// The contract assert: disabled add ≈ relaxed load.  Run before the
/// benchmark table so a regression fails the binary (exit 1) even when
/// nobody reads the table.
bool assert_disabled_cost() {
  if constexpr (!obs::kMetricsEnabled) {
    std::printf("metrics compiled out (TDBG_METRICS=0): disabled-cost "
                "contract trivially holds\n");
    return true;
  }
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("assert.counter");
  registry.set_enabled(false);

  std::atomic<bool> flag{false};
  const double load_ns = median_ns_per_op([&] {
    benchmark::DoNotOptimize(flag.load(std::memory_order_relaxed));
  });
  const double disabled_ns = median_ns_per_op([&] { counter.add(1); });

  // A disabled add is the relaxed load plus a predicted branch; allow
  // generous slack (4x + 2ns) for timer noise on loads measured in
  // fractions of a nanosecond, while still catching any regression
  // that puts real work (rmw, lock, clock read) on the disabled path —
  // those cost 10-100x a bare load.
  const double budget_ns = 4.0 * load_ns + 2.0;
  std::printf("disabled-metric contract: relaxed load %.3f ns/op, "
              "disabled add %.3f ns/op (budget %.3f)\n",
              load_ns, disabled_ns, budget_ns);
  if (disabled_ns > budget_ns) {
    std::fprintf(stderr,
                 "FAIL: disabled Counter::add costs %.3f ns/op, more than "
                 "the %.3f ns/op budget — the hot path is no longer a "
                 "single relaxed load\n",
                 disabled_ns, budget_ns);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!assert_disabled_cost()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
