// Ablation A3 — undo latency: naive replay-from-start vs the §6
// improvement ("periodically checkpointing program states and keeping
// a logarithmic backlog of process states").
//
// Model: an iterative computation generating one execution marker per
// step; undo-to-marker-m costs the re-executed steps.  Naive replay
// re-executes from 0; checkpointed replay restores the newest retained
// snapshot at-or-before m and re-executes the remainder.  The bench
// sweeps undo targets across a long run and reports re-executed steps
// and wall time for both strategies, plus the backlog footprint.

#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/halo.hpp"
#include "bench_util.hpp"
#include "replay/checkpoint.hpp"
#include "replay/checkpointed_session.hpp"

namespace {

using namespace tdbg;

/// One step of the model computation (a small stencil pass: real work
/// so re-execution time is measurable).
void step(std::vector<double>& state) {
  for (std::size_t i = 1; i + 1 < state.size(); ++i) {
    state[i] = 0.25 * (state[i - 1] + 2 * state[i] + state[i + 1]);
  }
}

std::vector<std::byte> snapshot(const std::vector<double>& state) {
  std::vector<std::byte> bytes(state.size() * sizeof(double));
  std::memcpy(bytes.data(), state.data(), bytes.size());
  return bytes;
}

}  // namespace

int main() {
  bench::header("Ablation A3: undo latency, naive vs checkpointed (§6)");

  constexpr std::uint64_t kSteps = 20000;
  constexpr std::uint64_t kInterval = 64;
  constexpr std::size_t kState = 4096;

  // Forward run, offering checkpoints as we go.
  replay::CheckpointStore store(1, kInterval);
  std::vector<double> state(kState, 1.0);
  for (std::uint64_t m = 1; m <= kSteps; ++m) {
    step(state);
    if (m % kInterval == 0) store.offer(0, m, snapshot(state));
  }
  std::printf("forward run: %llu steps, %zu checkpoints retained "
              "(%zu KiB backlog; a keep-everything policy would hold %llu "
              "snapshots = %llu KiB)\n",
              static_cast<unsigned long long>(kSteps), store.count(0),
              store.total_bytes() / 1024,
              static_cast<unsigned long long>(kSteps / kInterval),
              static_cast<unsigned long long>(kSteps / kInterval * kState *
                                              sizeof(double) / 1024));

  std::printf("\n%-14s %-16s %-12s %-16s %-12s %-10s\n", "undo target",
              "naive steps", "naive ms", "ckpt steps", "ckpt ms", "speedup");
  for (const std::uint64_t target :
       {kSteps - 10, kSteps - 500, kSteps / 2, kSteps / 10, std::uint64_t{100}}) {
    // Naive: re-execute from scratch.
    std::uint64_t naive_steps = 0;
    const double naive_s = bench::time_median_s(3, [&] {
      std::vector<double> s(kState, 1.0);
      naive_steps = 0;
      for (std::uint64_t m = 1; m <= target; ++m) {
        step(s);
        ++naive_steps;
      }
    });

    // Checkpointed: restore nearest snapshot, replay the tail.
    std::uint64_t ckpt_steps = 0;
    const double ckpt_s = bench::time_median_s(3, [&] {
      const auto cp = store.best_before(0, target);
      std::vector<double> s(kState, 1.0);
      std::uint64_t from = 0;
      if (cp) {
        std::memcpy(s.data(), cp->state.data(), cp->state.size());
        from = cp->marker;
      }
      ckpt_steps = 0;
      for (std::uint64_t m = from + 1; m <= target; ++m) {
        step(s);
        ++ckpt_steps;
      }
    });

    std::printf("%-14llu %-16llu %-12.3f %-16llu %-12.3f %-10.1fx\n",
                static_cast<unsigned long long>(target),
                static_cast<unsigned long long>(naive_steps), naive_s * 1e3,
                static_cast<unsigned long long>(ckpt_steps), ckpt_s * 1e3,
                ckpt_s > 0 ? naive_s / ckpt_s : 0.0);
  }
  bench::note("shape: recent undo targets replay O(interval) steps instead "
              "of O(history); backlog is logarithmic, and replay distance "
              "grows with target age.");

  // Second act: the same trade measured end-to-end on a real
  // message-passing target (the BSP halo app through
  // CheckpointedSession, 4 ranks, coordinated checkpoints).
  std::printf("\nend-to-end (4-rank halo exchange, 400 supersteps, "
              "checkpoint interval 16):\n");
  apps::halo::Options hopts;
  hopts.cells = 256;
  hopts.max_steps = 400;
  replay::CheckpointedSession session(4, apps::halo::factory(hopts), 16);
  const auto fwd = session.run();
  std::printf("  forward: %llu rank-steps, %zu checkpoints/rank, %zu KiB "
              "backlog\n",
              static_cast<unsigned long long>(fwd.steps_executed),
              session.store().count(0), session.store().total_bytes() / 1024);
  for (const std::uint64_t target : {395ull, 200ull, 40ull}) {
    support::Stopwatch sw;
    const auto rb = session.rollback_to(target);
    std::printf("  rollback to step %-4llu: %llu rank-steps re-executed "
                "(naive would be %llu), %.2f ms\n",
                static_cast<unsigned long long>(target),
                static_cast<unsigned long long>(rb.steps_executed),
                static_cast<unsigned long long>(4 * (target + 1)),
                sw.elapsed_s() * 1e3);
  }
  return 0;
}
