// Ablation — pass fusion and incremental recompute (google-benchmark).
//
// PR 8 replaces per-consumer trace scans with one shared-artifact
// `analysis::Session`: a single fused segment sweep extracts, in one
// decode of the trace, everything matching, the rank index, traffic,
// the comm graph, and the race pools previously gathered in separate
// full scans — and a prefix-stable `update()` re-sweeps only the
// appended delta.  (The downstream pairings recompute from the
// channel records on either path; they never rescanned the trace
// before the refactor, so they sit outside both comparisons.)
//
//   BM_FusedSweep          `compute_sweep`: one pass, all extracts
//   BM_NScanBaseline       the pre-refactor shape: five independent
//                          full scans, each decoding every event to
//                          extract one consumer's records
//   BM_FullRecompute       from-scratch sweep after a 1% append
//   BM_IncrementalUpdate   `update()` after the same append: the
//                          sweep extends over the delta segments only
//
// Before any timing, main() enforces the PR's gates on best-of-5
// process-CPU-time measurements (exit 1 on either failure):
//
//   - fused sweep >= 2x cheaper than the N-scan baseline,
//   - incremental update >= 10x cheaper than a full recompute.
//
// scripts/bench_pr8_session.sh records the medians and ratios in
// BENCH_pr8_session.json.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <ctime>
#include <cstdio>
#include <filesystem>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "analysis/pass.hpp"
#include "analysis/session.hpp"
#include "support/executor.hpp"
#include "trace/store.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;

constexpr std::size_t kEvents = 1u << 21;  // ~2.1M events
constexpr int kRanks = 8;
constexpr std::size_t kWildcards = 256;

struct BenchData {
  std::shared_ptr<trace::ConstructRegistry> registry;
  std::vector<trace::Event> events;   // the full history
  std::size_t prefix_size = 0;        // 99% of it: the pre-append state
  std::filesystem::path v2;           // the segmented on-disk form

  BenchData() {
    registry = std::make_shared<trace::ConstructRegistry>();
    const auto c_work = registry->intern("work", "bench.cpp", 1);
    const auto c_msg = registry->intern("msg", "bench.cpp", 2);

    // Same workload shape as abl_parallel_analysis: every send paired
    // with a seq-stamped receive so matching, traffic, and the comm
    // graph do full-size work; a bounded number of wildcard receives
    // keep the race pools realistic.
    std::mt19937 rng(20260809);
    std::vector<std::uint64_t> marker(kRanks, 0);
    std::vector<support::TimeNs> clock(kRanks, 0);
    std::vector<std::vector<mpi::ChannelSeq>> chan_seq(
        kRanks, std::vector<mpi::ChannelSeq>(kRanks, 0));
    std::size_t wild = 0;
    events.reserve(kEvents + 1);
    auto advance = [&](int r, trace::Event& e) {
      e.rank = static_cast<mpi::Rank>(r);
      e.marker = ++marker[static_cast<std::size_t>(r)];
      e.t_start = clock[static_cast<std::size_t>(r)];
      clock[static_cast<std::size_t>(r)] +=
          std::uniform_int_distribution<support::TimeNs>(1, 20)(rng);
      e.t_end = clock[static_cast<std::size_t>(r)];
    };
    while (events.size() < kEvents) {
      const int r = std::uniform_int_distribution<int>(0, kRanks - 1)(rng);
      if (std::uniform_int_distribution<int>(0, 9)(rng) == 0) {
        const int dst =
            (r + 1 + std::uniform_int_distribution<int>(0, kRanks - 2)(rng)) %
            kRanks;
        const auto seq = chan_seq[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(dst)]++;
        trace::Event send;
        advance(r, send);
        send.kind = trace::EventKind::kSend;
        send.construct = c_msg;
        send.peer = static_cast<mpi::Rank>(dst);
        send.tag = 1;
        send.channel_seq = seq;
        send.bytes = 256;
        events.push_back(send);
        trace::Event recv;
        advance(dst, recv);
        recv.kind = trace::EventKind::kRecv;
        recv.construct = c_msg;
        recv.peer = static_cast<mpi::Rank>(r);
        recv.tag = 1;
        recv.channel_seq = seq;
        recv.bytes = 256;
        if (wild < kWildcards &&
            std::uniform_int_distribution<int>(0, 399)(rng) == 0) {
          recv.wildcard = true;
          ++wild;
        }
        events.push_back(recv);
      } else {
        trace::Event e;
        advance(r, e);
        e.kind = trace::EventKind::kCompute;
        e.construct = c_work;
        events.push_back(e);
      }
    }
    // Canonicalize into display (time) order so a positional slice is
    // a display-order prefix — the shape a live recording appends in,
    // and what the session's prefix-stability fingerprint recognizes.
    {
      const trace::Trace tmp(kRanks, events, registry);
      std::vector<trace::Event> display;
      display.reserve(events.size());
      tmp.for_each_event(
          [&](std::size_t, const trace::Event& e) { display.push_back(e); });
      events = std::move(display);
    }
    prefix_size = events.size() - events.size() / 100;  // 1% append
    v2 = std::filesystem::temp_directory_path() /
         ("tdbg_bench_fusion_" + std::to_string(::getpid()) + ".trc");
    trace::write_trace(v2, full());
  }

  ~BenchData() { std::filesystem::remove(v2); }

  [[nodiscard]] trace::Trace full() const {
    return trace::Trace(kRanks, events, registry);
  }

  /// The fusion comparison runs on the segmented store with a small
  /// cache, where every extra scan pays real segment decode — the
  /// deployment the fused sweep exists for.
  [[nodiscard]] trace::Trace lazy() const {
    trace::TraceOpenOptions options;
    options.cache_segments = 4;
    options.prefetch = false;
    return trace::open_trace(v2, options);
  }
  [[nodiscard]] trace::Trace prefix() const {
    return trace::Trace(
        kRanks,
        std::vector<trace::Event>(events.begin(),
                                  events.begin() +
                                      static_cast<std::ptrdiff_t>(prefix_size)),
        registry);
  }
};

BenchData& data() {
  static BenchData d;
  return d;
}

/// Process CPU time (all threads) in seconds — the work metric both
/// gates read, insensitive to how either side schedules its threads.
double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// The fused sweep: one decode of every event, all extracts at once.
std::size_t fused_sweep(const trace::Trace& trace) {
  const auto sweep = analysis::compute_sweep(trace);
  return sweep.num_events;
}

using ChannelKey = std::pair<mpi::Rank, mpi::Rank>;

/// The pre-refactor shape: each consumer ran its own full scan over
/// the trace, decoding every event to extract only its records.  Five
/// scans — matching, rank index, traffic, comm graph, race pools —
/// each the direct analogue of what the corresponding pass gathered
/// before fusion.
std::size_t nscan_baseline(const trace::Trace& trace) {
  std::size_t sink = 0;

  {  // Matching: per-channel send records and receive seqs.
    std::map<ChannelKey, std::vector<std::array<std::uint64_t, 3>>> sends;
    std::map<ChannelKey, std::vector<std::pair<mpi::ChannelSeq, std::size_t>>>
        recvs;
    trace.for_each_event([&](std::size_t i, const trace::Event& e) {
      if (e.kind == trace::EventKind::kSend) {
        sends[{e.rank, e.peer}].push_back(
            {e.marker, static_cast<std::uint64_t>(e.t_start), i});
      } else if (e.kind == trace::EventKind::kRecv) {
        recvs[{e.peer, e.rank}].push_back({e.channel_seq, i});
      }
    });
    sink += sends.size() + recvs.size();
  }

  {  // Rank index: per-rank program-order lists.
    std::vector<std::vector<std::size_t>> order(
        static_cast<std::size_t>(trace.num_ranks()));
    trace.for_each_event([&](std::size_t i, const trace::Event& e) {
      order[static_cast<std::size_t>(e.rank)].push_back(i);
    });
    sink += order[0].size();
  }

  {  // Traffic: per-channel message and byte accounting.
    std::map<ChannelKey, std::pair<std::uint64_t, std::uint64_t>> channels;
    trace.for_each_event([&](std::size_t, const trace::Event& e) {
      if (!e.is_message()) return;
      auto& [count, bytes] =
          channels[e.kind == trace::EventKind::kSend
                       ? ChannelKey{e.rank, e.peer}
                       : ChannelKey{e.peer, e.rank}];
      ++count;
      bytes += e.bytes;
    });
    sink += channels.size();
  }

  {  // Comm graph: per-rank message endpoints in program order.
    std::vector<std::vector<std::pair<std::size_t, bool>>> endpoints(
        static_cast<std::size_t>(trace.num_ranks()));
    trace.for_each_event([&](std::size_t i, const trace::Event& e) {
      if (e.is_message()) {
        endpoints[static_cast<std::size_t>(e.rank)].push_back(
            {i, e.kind == trace::EventKind::kSend});
      }
    });
    sink += endpoints[0].size();
  }

  {  // Race pools: wildcard receives plus every candidate send.
    std::vector<std::size_t> wild;
    std::vector<std::size_t> candidates;
    trace.for_each_event([&](std::size_t i, const trace::Event& e) {
      if (e.kind == trace::EventKind::kRecv && e.wildcard) {
        wild.push_back(i);
      } else if (e.kind == trace::EventKind::kSend) {
        candidates.push_back(i);
      }
    });
    sink += wild.size() + candidates.size();
  }

  return sink;
}

void BM_FusedSweep(benchmark::State& state) {
  exec::ScopedExecutor pool(4);
  const auto trace = data().lazy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused_sweep(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_FusedSweep)->Unit(benchmark::kMillisecond);

void BM_NScanBaseline(benchmark::State& state) {
  exec::ScopedExecutor pool(4);
  const auto trace = data().lazy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nscan_baseline(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_NScanBaseline)->Unit(benchmark::kMillisecond);

void BM_FullRecompute(benchmark::State& state) {
  exec::ScopedExecutor pool(4);
  const auto full = data().full();
  for (auto _ : state) {
    analysis::Session session(full);
    benchmark::DoNotOptimize(session.sweep().num_events);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_FullRecompute)->Unit(benchmark::kMillisecond);

void BM_IncrementalUpdate(benchmark::State& state) {
  exec::ScopedExecutor pool(4);
  const auto full = data().full();
  for (auto _ : state) {
    state.PauseTiming();
    analysis::Session session(data().prefix());
    benchmark::DoNotOptimize(session.sweep().num_events);  // pre-append state
    state.ResumeTiming();
    session.update(full);
    benchmark::DoNotOptimize(session.sweep().num_events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * (kEvents - data().prefix_size)));
}
BENCHMARK(BM_IncrementalUpdate)->Unit(benchmark::kMillisecond);

/// Fused sweep >= 2x cheaper than N scans, in CPU time, best of 5.
bool verify_fusion_gate() {
  exec::ScopedExecutor pool(4);
  const auto trace = data().lazy();
  auto best_cpu = [&](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const double c0 = cpu_now();
      benchmark::DoNotOptimize(fn(trace));
      best = std::min(best, cpu_now() - c0);
    }
    return best;
  };
  const double fused = best_cpu(fused_sweep);
  const double nscan = best_cpu(nscan_baseline);
  const double ratio = nscan / fused;
  std::fprintf(stderr,
               "fusion: fused sweep %.1f ms cpu, N-scan baseline %.1f ms "
               "cpu -> %.2fx\n",
               fused * 1e3, nscan * 1e3, ratio);
  if (ratio < 2.0) {
    std::fprintf(stderr, "FAIL: pass fusion below the 2x cpu-time gate\n");
    return false;
  }
  return true;
}

/// Incremental update >= 10x cheaper than a full recompute after a 1%
/// append, in CPU time, best of 5.
bool verify_incremental_gate() {
  exec::ScopedExecutor pool(4);
  const auto full = data().full();
  double best_full = 1e300;
  double best_inc = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    {
      analysis::Session session(full);
      const double c0 = cpu_now();
      benchmark::DoNotOptimize(session.sweep().num_events);
      best_full = std::min(best_full, cpu_now() - c0);
    }
    {
      analysis::Session session(data().prefix());
      benchmark::DoNotOptimize(session.sweep().num_events);
      const double c0 = cpu_now();
      session.update(full);
      benchmark::DoNotOptimize(session.sweep().num_events);
      best_inc = std::min(best_inc, cpu_now() - c0);
    }
  }
  const double ratio = best_full / best_inc;
  std::fprintf(stderr,
               "incremental: full sweep %.1f ms cpu, update after 1%% "
               "append %.1f ms cpu -> %.2fx\n",
               best_full * 1e3, best_inc * 1e3, ratio);
  if (ratio < 10.0) {
    std::fprintf(stderr,
                 "FAIL: incremental recompute below the 10x cpu-time gate\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_fusion_gate()) return 1;
  if (!verify_incremental_gate()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
