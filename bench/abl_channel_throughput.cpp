// Ablation A7 — messaging hot-path throughput (google-benchmark).
//
// The paper's overhead argument (§2, Table 1) only works if the
// runtime under the instrumentation is itself fast: every nanosecond
// the mailbox spends on locks is charged to the "uninstrumented" rows
// too.  This bench pins down the four messaging shapes the debugger
// workloads exercise: two-rank ping-pong latency, one-directional
// streaming throughput, many-to-one wildcard fan-in (the taskfarm
// shape), and ssend rendezvous round trips.
//
// The driver rank owns the benchmark `state`; peers run an
// open-ended protocol loop terminated by a sentinel tag, so iteration
// counts never need to be agreed on up front.

#include <benchmark/benchmark.h>

#include "mpi/runtime.hpp"

namespace {

using namespace tdbg;

constexpr mpi::Tag kWork = 1;
constexpr mpi::Tag kEcho = 2;
constexpr mpi::Tag kCtl = 3;  ///< batch-size requests; 0 = stop

void BM_PingPong(benchmark::State& state) {
  mpi::run(2, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (auto _ : state) {
        comm.send_value<int>(1, 1, kWork);
        benchmark::DoNotOptimize(comm.recv_value<int>(1, kEcho));
      }
      comm.send_value<int>(0, 1, kCtl);
    } else {
      for (;;) {
        const auto st = comm.probe(0, mpi::kAnyTag);
        if (st.tag == kCtl) {
          comm.recv_value<int>(0, kCtl);
          return;
        }
        comm.send_value<int>(comm.recv_value<int>(0, kWork) + 1, 0, kEcho);
      }
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PingPong);

void BM_StreamOneToOne(benchmark::State& state) {
  // Receiver-driven batches: rank 0 requests `kBatch` messages, rank 1
  // streams them, so the ring fast path runs without rendezvous.
  constexpr int kBatch = 1024;
  mpi::run(2, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      while (state.KeepRunningBatch(kBatch)) {
        comm.send_value<int>(kBatch, 1, kCtl);
        for (int i = 0; i < kBatch; ++i) {
          benchmark::DoNotOptimize(comm.recv_value<int>(1, kWork));
        }
      }
      comm.send_value<int>(0, 1, kCtl);
    } else {
      for (;;) {
        const int n = comm.recv_value<int>(0, kCtl);
        if (n == 0) return;
        for (int i = 0; i < n; ++i) comm.send_value<int>(i, 1 - comm.rank(), kWork);
      }
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamOneToOne);

void BM_WildcardFanIn(benchmark::State& state) {
  // The taskfarm shape: every worker streams into rank 0's wildcard
  // receive.  Exercises the cross-channel arrival scan.
  const int ranks = static_cast<int>(state.range(0));
  constexpr int kPerWorker = 256;
  const int batch = (ranks - 1) * kPerWorker;
  mpi::run(ranks, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      while (state.KeepRunningBatch(batch)) {
        for (int r = 1; r < ranks; ++r) comm.send_value<int>(kPerWorker, r, kCtl);
        for (int i = 0; i < batch; ++i) {
          benchmark::DoNotOptimize(comm.recv_value<int>(mpi::kAnySource, kWork));
        }
      }
      for (int r = 1; r < ranks; ++r) comm.send_value<int>(0, r, kCtl);
    } else {
      for (;;) {
        const int n = comm.recv_value<int>(0, kCtl);
        if (n == 0) return;
        for (int i = 0; i < n; ++i) comm.send_value<int>(i, 0, kWork);
      }
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WildcardFanIn)->Arg(4)->Arg(8);

void BM_SsendRendezvous(benchmark::State& state) {
  mpi::run(2, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      const int value = 7;
      for (auto _ : state) {
        comm.ssend(std::as_bytes(std::span<const int>(&value, 1)), 1, kWork);
      }
      comm.send_value<int>(0, 1, kCtl);
    } else {
      for (;;) {
        const auto st = comm.probe(0, mpi::kAnyTag);
        if (st.tag == kCtl) {
          comm.recv_value<int>(0, kCtl);
          return;
        }
        benchmark::DoNotOptimize(comm.recv_value<int>(0, kWork));
      }
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SsendRendezvous);

void BM_PayloadStream4k(benchmark::State& state) {
  // 4 KiB payloads: the shape the payload pool exists for (too big for
  // inline storage, recycled through the freelist instead of malloc).
  constexpr int kBatch = 256;
  constexpr std::size_t kBytes = 4096;
  mpi::run(2, [&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf;
      while (state.KeepRunningBatch(kBatch)) {
        comm.send_value<int>(kBatch, 1, kCtl);
        for (int i = 0; i < kBatch; ++i) {
          comm.recv(buf, 1, kWork);
          benchmark::DoNotOptimize(buf.data());
        }
      }
      comm.send_value<int>(0, 1, kCtl);
    } else {
      const std::vector<std::byte> payload(kBytes, std::byte{42});
      for (;;) {
        const int n = comm.recv_value<int>(0, kCtl);
        if (n == 0) return;
        for (int i = 0; i < n; ++i) {
          comm.send(std::span<const std::byte>(payload), 0, kWork);
        }
      }
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBytes));
}
BENCHMARK(BM_PayloadStream4k);

}  // namespace

BENCHMARK_MAIN();
