// Figure 9 — "Dynamic call graph from Strassen example.  Multiple arcs
// show multiple function calls.  The number of calls per arc is
// adjustable.  Each arc has an image in the execution trace.  The
// graph was converted to VCG format displayed with the xvcg graph
// layout tool."
//
// Regenerates the graph, sweeps the calls-per-arc display knob, writes
// the VCG file, and verifies "each arc has an image in the execution
// trace" by expanding merged trace-graph arcs back to trace events.

#include <cstdio>
#include <fstream>

#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "graph/call_graph.hpp"
#include "graph/trace_graph.hpp"
#include "replay/record.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 9: dynamic call graph (VCG) of Strassen");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 8;  // deeper recursion => richer call graph
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  if (!rec.result.completed) {
    std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
    return 1;
  }

  const auto tg = graph::TraceGraph::from_trace(rec.trace, /*merge_limit=*/8);
  const auto cg = graph::CallGraph::project(tg, std::nullopt);
  std::printf("functions in graph : %zu\n", cg.function_count());
  std::printf("caller->callee edges: %zu\n", cg.edges().size());
  std::uint64_t total_calls = 0;
  for (const auto& e : cg.edges()) total_calls += e.calls;
  std::printf("total calls        : %llu\n",
              static_cast<unsigned long long>(total_calls));

  // The adjustable calls-per-arc knob.
  std::printf("\ncalls-per-arc sweep (displayed arcs):\n");
  for (const std::uint64_t per_arc : {0ull, 1ull, 5ull, 25ull, 100ull}) {
    const auto exported = cg.to_export(rec.trace.constructs(), per_arc);
    std::printf("  calls/arc=%-4llu -> %zu arcs\n",
                static_cast<unsigned long long>(per_arc),
                exported.edges.size());
  }

  const auto exported = cg.to_export(rec.trace.constructs(), 0);
  std::ofstream("fig9_call_graph.vcg") << graph::to_vcg(exported);
  std::ofstream("fig9_call_graph.dot") << graph::to_dot(exported);
  std::printf("\nwritten: fig9_call_graph.{vcg,dot} (xvcg-compatible)\n");

  // "Each arc has an image in the execution trace": every merged arc
  // expands back to exactly its count of trace events.
  std::size_t verified = 0, mismatches = 0;
  for (const auto& [key, group] : tg.arc_groups()) {
    for (const auto& arc : group) {
      if (std::get<2>(key) != graph::ArcKind::kCall) continue;
      const auto events = tg.expand_arc(rec.trace, arc);
      if (events.size() == arc.count) {
        ++verified;
      } else {
        ++mismatches;
      }
    }
  }
  std::printf("arc->trace images verified: %zu arcs (%zu mismatches)\n",
              verified, mismatches);
  bench::note("paper: merged multi-arcs, adjustable calls-per-arc, VCG "
              "output for xvcg.");
  return mismatches == 0 ? 0 : 1;
}
