// abl_server_throughput — serving-path latency/throughput ablation for
// the PR-9 analysis service, and the session-cache acceptance gate.
//
// Scenarios (in-process Server over a Unix socket, real wire protocol):
//
//   cold    every match_report hits a *different* fingerprint with a
//           1-entry session cache, so each request pays fingerprint +
//           open_trace + Session build + first match compute;
//   cached  every match_report hits the same resident session, so the
//           request pays only dispatch + artifact reuse + encode;
//   fanout  8 concurrent clients over the cached session — aggregate
//           requests/second for the serving path under contention.
//
// Prints p50/p99 latency and req/s per scenario, then ASSERTS the
// PR-9 acceptance gate: cached-session match_report p50 must be at
// least 10x faster than cold-open p50.  Exits 1 when the gate fails,
// so scripts/bench_pr9_server.sh and CI inherit the check.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;
using namespace tdbg::server;

std::vector<trace::Event> synth_events(std::size_t n, int ranks,
                                       std::uint64_t seed) {
  auto rng = support::SplitMix64(seed).split(1);
  std::vector<trace::Event> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_marker(static_cast<std::size_t>(ranks), 1);
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::uint64_t>> chan;
  for (std::size_t i = 0; i < n; ++i) {
    trace::Event e;
    const int rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    e.rank = rank;
    e.marker = next_marker[static_cast<std::size_t>(rank)]++;
    e.t_start = static_cast<support::TimeNs>(i) * 10;
    e.t_end = e.t_start + 6;
    const auto roll = rng.next_below(4);
    e.kind = trace::EventKind::kCompute;
    if (roll == 0 && ranks > 1) {
      const int peer = static_cast<int>(
          (static_cast<std::uint64_t>(rank) + 1 +
           rng.next_below(static_cast<std::uint64_t>(ranks - 1))) %
          static_cast<std::uint64_t>(ranks));
      e.kind = trace::EventKind::kSend;
      e.peer = peer;
      e.tag = static_cast<mpi::Tag>(rng.next_below(3));
      e.bytes = 8 + rng.next_below(64);
      ++chan[{rank, peer}].first;
    } else if (roll == 1) {
      const auto start = rng.next_below(static_cast<std::uint64_t>(ranks));
      for (int k = 0; k < ranks; ++k) {
        const int src = static_cast<int>(
            (start + static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(ranks));
        auto& [sent, received] = chan[{src, rank}];
        if (src == rank || received >= sent) continue;
        e.kind = trace::EventKind::kRecv;
        e.peer = src;
        e.channel_seq = static_cast<mpi::ChannelSeq>(received++);
        e.tag = static_cast<mpi::Tag>(rng.next_below(3));
        e.bytes = 8 + rng.next_below(64);
        break;
      }
    }
    events.push_back(e);
  }
  return events;
}

struct LatencyStats {
  double p50_ms = 0;
  double p99_ms = 0;
  double req_per_s = 0;
};

LatencyStats summarize(std::vector<support::TimeNs> samples,
                       support::TimeNs total_ns, std::size_t requests) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return static_cast<double>(samples[i]) * 1e-6;
  };
  LatencyStats s;
  s.p50_ms = at(0.50);
  s.p99_ms = at(0.99);
  s.req_per_s = static_cast<double>(requests) /
                (static_cast<double>(total_ns) * 1e-9);
  return s;
}

LatencyStats drive(Client& client, const std::vector<std::string>& paths,
                   std::size_t requests) {
  std::vector<support::TimeNs> samples;
  samples.reserve(requests);
  const support::Stopwatch all;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& path = paths[i % paths.size()];
    const support::Stopwatch one;
    const auto response =
        client.call(Op::kMatchReport, encode_trace_arg(path));
    if (response.status != Status::kOk) {
      std::fprintf(stderr, "request failed: %s\n",
                   std::string(status_name(response.status)).c_str());
      std::exit(1);
    }
    samples.push_back(one.elapsed_ns());
  }
  return summarize(std::move(samples), all.elapsed_ns(), requests);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 120'000;
  std::size_t cold_requests = 12;
  std::size_t cached_requests = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc) events = std::stoull(argv[++i]);
    if (arg == "--cached-requests" && i + 1 < argc) {
      cached_requests = std::stoull(argv[++i]);
    }
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tdbg_bench_srv_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string sock = (dir / "s.sock").string();

  // Two traces with distinct fingerprints: with a 1-entry cache,
  // alternating between them makes every open cold.
  std::vector<std::string> both;
  for (int t = 0; t < 2; ++t) {
    const auto path = (dir / ("t" + std::to_string(t) + ".trc")).string();
    trace::write_trace(
        path, trace::Trace(8, synth_events(events, 8,
                                           1000 + static_cast<std::uint64_t>(t)),
                           nullptr));
    both.push_back(path);
  }
  const std::vector<std::string> just_first = {both[0]};

  ServerOptions options;
  options.unix_path = sock;
  options.max_sessions = 1;  // forces eviction in the alternating phase
  options.dispatch_threads = 4;
  Server srv(options);
  srv.start();

  LatencyStats cold;
  LatencyStats cached;
  LatencyStats fanout;
  {
    Client client("unix:" + sock);
    // Cold opens: alternate fingerprints through the 1-entry cache.
    cold = drive(client, both, cold_requests);
    // Cached: warm once, then hammer the resident session.
    (void)client.call(Op::kMatchReport, encode_trace_arg(both[0]));
    cached = drive(client, just_first, cached_requests);

    // Concurrent fan-out over the cached session.
    constexpr int kClients = 8;
    const std::size_t per_client = cached_requests / 4;
    const support::Stopwatch all;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        Client mine("unix:" + sock);
        for (std::size_t i = 0; i < per_client; ++i) {
          (void)mine.call(Op::kMatchReport, encode_trace_arg(both[0]));
        }
      });
    }
    for (auto& t : threads) t.join();
    fanout.req_per_s =
        static_cast<double>(per_client * kClients) /
        (static_cast<double>(all.elapsed_ns()) * 1e-9);
  }
  srv.shutdown();
  srv.wait();
  std::filesystem::remove_all(dir);

  std::fprintf(stderr,
               "server-throughput: cold match_report p50 %.3f ms p99 %.3f ms, "
               "%.1f req/s (%zu requests, %zu events)\n",
               cold.p50_ms, cold.p99_ms, cold.req_per_s, cold_requests,
               events);
  std::fprintf(stderr,
               "server-throughput: cached match_report p50 %.3f ms p99 %.3f "
               "ms, %.1f req/s (%zu requests)\n",
               cached.p50_ms, cached.p99_ms, cached.req_per_s,
               cached_requests);
  std::fprintf(stderr,
               "server-throughput: fanout 8 clients %.1f req/s (cached)\n",
               fanout.req_per_s);

  const double speedup = cold.p50_ms / cached.p50_ms;
  std::fprintf(stderr,
               "server-throughput: cached/cold p50 speedup %.1fx "
               "(gate >= 10x)\n",
               speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cached-session p50 not >= 10x faster than cold "
                 "open\n");
    return 1;
  }
  return 0;
}
