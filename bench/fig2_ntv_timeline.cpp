// Figure 2 — "History displayed with NTV.  Angled lines represent
// messages; the vertical line near the left side represents the
// stopline."
//
// Regenerates the display: records the Strassen run, renders the
// NTV-style time-space diagram with a stopline placed early in the
// history (as in the figure), and reports the display statistics —
// bars drawn, message lines drawn, and that the stopline's cut is a
// consistent set of breakpoints.

#include <cstdio>
#include <fstream>

#include "apps/strassen.hpp"
#include "analysis/session.hpp"
#include "bench_util.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"
#include "replay/stopline.hpp"
#include "viz/timeline.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 2: NTV time-space diagram with stopline");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  if (!rec.result.completed) {
    std::printf("FAILED: %s\n", rec.result.abort_detail.c_str());
    return 1;
  }

  analysis::Session session(rec.trace);
  const auto& matches = session.match_report();
  // Stopline "near the left side": 20% into the history.
  const auto t_line =
      rec.trace.t_min() + (rec.trace.t_max() - rec.trace.t_min()) / 5;

  viz::Overlay overlay;
  overlay.stopline = t_line;
  viz::TimeSpaceDiagram diagram(rec.trace);
  const auto svg = diagram.to_svg(overlay);
  std::ofstream("fig2_ntv_timeline.svg") << svg;

  auto cut = causality::cut_at_time(rec.trace, t_line);
  causality::restrict_to_consistent(rec.trace, session.match_report(),
                                    session.rank_index(), cut);

  std::printf("processes               : %d\n", rec.trace.num_ranks());
  std::printf("trace records           : %zu\n", rec.trace.size());
  std::printf("message lines drawn     : %zu\n", matches.matches.size());
  std::printf("stopline time           : 20%% into the run\n");
  std::printf("stopline cut consistent : %s\n",
              causality::is_consistent(rec.trace, session.match_report(),
                                       session.rank_index(), cut)
                  ? "yes"
                  : "NO");
  std::printf("svg written             : fig2_ntv_timeline.svg (%zu bytes)\n",
              svg.size());
  std::printf("\nASCII preview (sends 's', recvs 'r', compute '='):\n%s",
              diagram.to_ascii(100, overlay).c_str());
  bench::note("paper: full-trace NTV view; stopline = vertical line, "
              "messages = angled lines.");
  return 0;
}
