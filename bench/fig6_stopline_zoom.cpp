// Figure 6 — "Missed message from process 0 to process 7.  The correct
// message sequence is shown in Figure 3.  The vertical stopline (on
// the left side) gives a consistent set of breakpoints for replay."
//
// Regenerates the zoomed diagnosis: magnifies the message bundle of
// the buggy trace, confirms the caption's observations (workers 1-6
// receive 2 messages, worker 7 only 1; one send from 0 is never
// received), places the stopline before the first send, and verifies
// the derived cut is a consistent breakpoint set.

#include <cstdio>
#include <fstream>

#include "analysis/session.hpp"
#include "analysis/traffic.hpp"
#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "causality/causal_order.hpp"
#include "replay/record.hpp"
#include "replay/stopline.hpp"
#include "viz/timeline.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 6: missed message 0->7, stopline for replay");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  opts.buggy = true;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });
  if (!rec.result.deadlocked) {
    std::printf("FAILED: expected a deadlock\n");
    return 1;
  }

  // The caption's observations, from the trace.
  int recvs[8] = {0};
  rec.trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kRecv) {
      ++recvs[e.rank];
    }
  });
  std::printf("worker receive counts        : ");
  for (int r = 1; r < 8; ++r) std::printf("P%d=%d ", r, recvs[r]);
  std::printf("\n");
  const bool seven_short = recvs[7] == 1;
  std::printf("P7 received only 1 of 2      : %s\n",
              seven_short ? "yes" : "NO");

  analysis::Session session(rec.trace);
  const auto& matches = session.match_report();
  std::printf("missed (unreceived) messages : %zu (expect 1)\n",
              matches.unmatched_sends.size());
  if (!matches.unmatched_sends.empty()) {
    const auto& e = rec.trace.event(matches.unmatched_sends[0]);
    std::printf("  the missed send: rank %d -> rank %d, tag %d (operand B "
                "misdirected)\n",
                e.rank, e.peer, e.tag);
  }

  const auto& traffic = session.traffic();
  std::printf("irregularity report          : %zu finding(s)\n",
              traffic.irregularities.size());
  for (const auto& irr : traffic.irregularities) {
    std::printf("  ! %s\n", irr.description.c_str());
  }

  // Stopline before the first send of the distribution group.
  support::TimeNs first_send_t = rec.trace.t_max();
  bool saw_first_send = false;
  rec.trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (saw_first_send) return;
    if (e.kind == trace::EventKind::kSend && e.rank == 0) {
      first_send_t = std::min(first_send_t, e.t_start);
      saw_first_send = true;
    }
  });
  const auto t_line = first_send_t - 1;
  auto cut = causality::cut_at_time(rec.trace, t_line);
  const auto dropped = causality::restrict_to_consistent(
      rec.trace, session.match_report(), session.rank_index(), cut);
  const auto line = replay::stopline_from_cut(rec.trace, cut);
  int armed = 0;
  for (const auto& t : line.thresholds) armed += t.has_value() ? 1 : 0;
  std::printf("stopline placed before first send; consistent: %s "
              "(%zu events dropped to restore consistency)\n",
              causality::is_consistent(rec.trace, session.match_report(),
                                       session.rank_index(), cut)
                  ? "yes"
                  : "NO",
              dropped);
  std::printf("breakpoints armed            : %d of 8 ranks\n", armed);

  // The zoomed rendering of the message bundle.
  viz::DiagramOptions zoom;
  zoom.window_t0 = rec.trace.t_min();
  zoom.window_t1 =
      rec.trace.t_min() + (rec.trace.t_max() - rec.trace.t_min()) / 2;
  viz::TimeSpaceDiagram magnified(rec.trace, zoom);
  viz::Overlay overlay;
  overlay.stopline = t_line;
  std::ofstream("fig6_stopline_zoom.svg") << magnified.to_svg(overlay);
  std::printf("svg written                  : fig6_stopline_zoom.svg\n");
  bench::note("paper: ranks 1-6 show the tick+bar pattern (2 recvs); rank 7 "
              "misses the tick; stopline gives consistent breakpoints.");
  return seven_short && matches.unmatched_sends.size() == 1 ? 0 : 1;
}
