// Ablation A5 — trace collection and flush-on-demand (google-benchmark).
//
// The paper had to convert AIMS from post-mortem file dumping to
// on-demand flushing (§2.1).  This bench measures the collector's
// append path (buffered), the auto-flush path (records streaming to a
// writer), and the binary encode throughput of the writer itself.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "trace/collector.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tdbg;

trace::Event sample_event() {
  trace::Event e;
  e.kind = trace::EventKind::kSend;
  e.rank = 0;
  e.marker = 42;
  e.construct = 1;
  e.t_start = 1000;
  e.t_end = 2000;
  e.peer = 3;
  e.tag = 7;
  e.bytes = 128;
  return e;
}

void BM_CollectorAppendBuffered(benchmark::State& state) {
  trace::TraceCollector collector(1);
  const auto e = sample_event();
  for (auto _ : state) {
    collector.append(e);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectorAppendBuffered);

void BM_CollectorAppendDisabled(benchmark::State& state) {
  trace::TraceCollector collector(1);
  collector.set_enabled(false);
  const auto e = sample_event();
  for (auto _ : state) {
    collector.append(e);
  }
}
BENCHMARK(BM_CollectorAppendDisabled);

void BM_CollectorAutoFlush(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tdbg_bench_autoflush.trc";
  auto registry = std::make_shared<trace::ConstructRegistry>();
  trace::TraceCollector collector(1, registry);
  trace::TraceWriter writer(path, 1, registry);
  collector.attach_writer(&writer, static_cast<std::size_t>(state.range(0)));
  const auto e = sample_event();
  for (auto _ : state) {
    collector.append(e);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  collector.attach_writer(nullptr);
  std::filesystem::remove(path);
}
BENCHMARK(BM_CollectorAutoFlush)->Arg(256)->Arg(4096)->Arg(65536);

void BM_WriterEncodeBinary(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tdbg_bench_writer.trc";
  auto registry = std::make_shared<trace::ConstructRegistry>();
  trace::TraceWriter writer(path, 1, registry);
  const auto e = sample_event();
  for (auto _ : state) {
    writer.write_event(e);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 55);
  std::filesystem::remove(path);
}
BENCHMARK(BM_WriterEncodeBinary);

}  // namespace

BENCHMARK_MAIN();
