// Ablation A2 — the dissemination technique (§4.3).
//
// "In order to keep the number of arcs in the trace graph independent
// of the execution length, we use the dissemination technique ...
// This technique allows us to control the size of the history at the
// cost of some resolution.  If the user wants to zoom in on a
// particular event, the required arcs are reconstructed by rescanning
// the appropriate portion of the trace file."
//
// Sweeps the merge limit and the execution length: stored arcs must
// stay bounded while operations grow; then measures the zoom-rescan
// cost that buys the resolution back.

#include <cstdio>

#include "apps/ring.hpp"
#include "bench_util.hpp"
#include "graph/trace_graph.hpp"
#include "replay/record.hpp"

int main() {
  using namespace tdbg;
  bench::header("Ablation A2: trace-graph dissemination");

  std::printf("%-10s %-12s %-12s %-12s %-14s\n", "laps", "operations",
              "limit", "stored arcs", "arcs/op");
  for (const int laps : {10, 100, 1000}) {
    apps::ring::Options opts;
    opts.laps = laps;
    const auto rec = replay::record(4, [opts](mpi::Comm& comm) {
      apps::ring::rank_body(comm, opts);
    });
    for (const std::size_t limit : {4u, 16u, 64u}) {
      const auto g = graph::TraceGraph::from_trace(rec.trace, limit);
      std::printf("%-10d %-12llu %-12zu %-12zu %-14.4f\n", laps,
                  static_cast<unsigned long long>(g.operation_count()), limit,
                  g.arc_count(),
                  static_cast<double>(g.arc_count()) /
                      static_cast<double>(g.operation_count()));
    }
  }

  // Zoom rescan: expand every merged arc of the largest trace and time
  // it.
  apps::ring::Options opts;
  opts.laps = 1000;
  const auto rec = replay::record(4, [opts](mpi::Comm& comm) {
    apps::ring::rank_body(comm, opts);
  });
  const auto g = graph::TraceGraph::from_trace(rec.trace, 4);
  std::size_t merged = 0, recovered = 0;
  const double rescan_s = bench::time_median_s(3, [&] {
    merged = 0;
    recovered = 0;
    for (const auto& [key, group] : g.arc_groups()) {
      for (const auto& arc : group) {
        if (arc.count <= 1) continue;
        ++merged;
        recovered += g.expand_arc(rec.trace, arc).size();
      }
    }
  });
  std::printf("\nzoom rescan: %zu merged arcs -> %zu operations recovered "
              "in %.4fs\n",
              merged, recovered, rescan_s);
  bench::note("shape: stored arcs plateau at the merge limit as execution "
              "grows 100x; rescan restores full resolution on demand.");
  return 0;
}
