// Figure 5 — "Process 0 (at the bottom) and process 7 (at the top) are
// blocked in receives waiting for data from each other."
//
// Regenerates the failure: runs the buggy Strassen, lets the watchdog
// unwind the deadlock, verifies the 0<->7 circular wait, and renders
// the trace up to the hang.

#include <cstdio>
#include <fstream>

#include "analysis/deadlock.hpp"
#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "replay/record.hpp"
#include "viz/timeline.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 5: buggy Strassen — ranks 0 and 7 deadlocked");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  opts.buggy = true;
  const auto rec = replay::record(
      8, [opts](mpi::Comm& comm) { apps::strassen::rank_body(comm, opts); });

  std::printf("run outcome      : %s\n",
              rec.result.deadlocked ? "deadlock detected" : "UNEXPECTED");
  std::printf("watchdog detail  : %s\n", rec.result.abort_detail.c_str());

  const auto report = analysis::explain_deadlock(rec.result.final_waits);
  std::printf("analysis         : %s\n", report.description.c_str());

  bool zero_waits_on_seven = false, seven_waits_on_zero = false;
  for (const auto& w : rec.result.final_waits) {
    if (w.rank == 0 && w.kind == mpi::WaitKind::kRecv && w.peer == 7) {
      zero_waits_on_seven = true;
    }
    if (w.rank == 7 && w.kind == mpi::WaitKind::kRecv && w.peer == 0) {
      seven_waits_on_zero = true;
    }
  }
  std::printf("0 blocked on 7   : %s\n", zero_waits_on_seven ? "yes" : "NO");
  std::printf("7 blocked on 0   : %s\n", seven_waits_on_zero ? "yes" : "NO");

  viz::TimeSpaceDiagram diagram(rec.trace);
  std::ofstream("fig5_deadlock_trace.svg") << diagram.to_svg();
  std::printf("svg written      : fig5_deadlock_trace.svg\n");
  std::printf("\n%s", diagram.to_ascii(100).c_str());
  bench::note("paper: processes 0 and 7 fail to make progress, blocked in "
              "receives on each other.");
  return rec.result.deadlocked && zero_waits_on_seven && seven_waits_on_zero
             ? 0
             : 1;
}
