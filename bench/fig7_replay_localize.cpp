// Figure 7 — "Identification of the incorrect send destination with
// p2d2."
//
// Regenerates the full §4.1 debugging workflow: replay the buggy
// Strassen to a stopline before the distribution loop, then step rank
// 0 through the loop of MatrSend.  The UserMonitor records (call site
// + first two arguments, §2.2) expose each send's destination; the
// bench asserts the bug is localized: operand B of product jres goes
// to rank jres where jres+1 was intended.

#include <cstdio>

#include "apps/strassen.hpp"
#include "bench_util.hpp"
#include "debugger/debugger.hpp"

int main() {
  using namespace tdbg;
  bench::header("Figure 7: replay + step finds the wrong send destination");

  apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  opts.buggy = true;
  dbg::Debugger debugger(8, [opts](mpi::Comm& comm) {
    apps::strassen::rank_body(comm, opts);
  });
  if (!debugger.record().deadlocked) {
    std::printf("FAILED: expected the recorded run to deadlock\n");
    return 1;
  }

  // Stopline at rank 0's first MatrSend activation.
  const auto& trace = debugger.trace();
  std::size_t first = 0;
  for (std::size_t i : trace.rank_events(0)) {
    const auto& e = trace.event(i);
    if (e.kind == trace::EventKind::kEnter &&
        trace.constructs().info(e.construct).name == "MatrSend") {
      first = i;
      break;
    }
  }
  replay::Stopline line;
  line.thresholds.assign(8, std::nullopt);
  line.thresholds[0] = trace.event(first).marker;
  const auto stops = debugger.replay_to(line);
  std::printf("replayed; rank 0 parked at marker %llu entering MatrSend\n",
              static_cast<unsigned long long>(stops.at(0).marker));

  // Step through the loop; collect (dest, tag) of every MatrSend.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sends;
  auto* session = debugger.replay_session();
  const auto observe = [&](const replay::StopInfo& stop) {
    if (stop.kind == trace::EventKind::kEnter &&
        trace.constructs().info(stop.construct).name == "MatrSend") {
      const auto rec = session->last_record(0);
      sends.emplace_back(rec.arg1, rec.arg2);
    }
  };
  observe(stops.at(0));
  int steps = 0;
  while (sends.size() < 14 && steps < 1000) {
    const auto stop = debugger.step(0);
    ++steps;
    if (!stop) break;
    observe(*stop);
  }

  std::printf("observed %zu MatrSend calls in %d steps:\n", sends.size(),
              steps);
  int faults = 0;
  for (std::size_t i = 0; i < sends.size(); ++i) {
    const auto [dest, tag] = sends[i];
    const int jres = static_cast<int>(i / 2);
    const auto expected = static_cast<std::uint64_t>(jres + 1);
    const bool wrong = dest != expected;
    faults += wrong ? 1 : 0;
    std::printf("  jres=%d operand %c: MatrSend(dest=%llu)%s\n", jres,
                tag == static_cast<std::uint64_t>(apps::strassen::kTagOperandA)
                    ? 'A'
                    : 'B',
                static_cast<unsigned long long>(dest),
                wrong ? "   <-- WRONG, expected jres+1" : "");
  }
  std::printf("localized: %d faulty destinations, all on operand B — the "
              "send loop uses jres where jres+1 was intended\n",
              faults);

  const auto result = debugger.end_replay();
  std::printf("replay ran on to the recorded deadlock: %s\n",
              result && result->deadlocked ? "yes" : "NO");
  bench::note("paper: a few step operations lead to the loop of MatrSend; "
              "jres should be jres+1 in line 161.");
  return faults == static_cast<int>(sends.size() / 2) && faults > 0 ? 0 : 1;
}
