# Empty compiler generated dependencies file for strassen_debug_session.
# This may be replaced when dependencies are built.
