file(REMOVE_RECURSE
  "CMakeFiles/strassen_debug_session.dir/strassen_debug_session.cpp.o"
  "CMakeFiles/strassen_debug_session.dir/strassen_debug_session.cpp.o.d"
  "strassen_debug_session"
  "strassen_debug_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_debug_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
