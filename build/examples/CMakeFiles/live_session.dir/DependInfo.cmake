
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/live_session.cpp" "examples/CMakeFiles/live_session.dir/live_session.cpp.o" "gcc" "examples/CMakeFiles/live_session.dir/live_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/debugger/CMakeFiles/tdbg_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tdbg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tdbg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/tdbg_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/tdbg_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/tdbg_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/tdbg_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
