# Empty dependencies file for live_session.
# This may be replaced when dependencies are built.
