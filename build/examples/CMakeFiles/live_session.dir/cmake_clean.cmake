file(REMOVE_RECURSE
  "CMakeFiles/live_session.dir/live_session.cpp.o"
  "CMakeFiles/live_session.dir/live_session.cpp.o.d"
  "live_session"
  "live_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
