file(REMOVE_RECURSE
  "CMakeFiles/lu_frontiers.dir/lu_frontiers.cpp.o"
  "CMakeFiles/lu_frontiers.dir/lu_frontiers.cpp.o.d"
  "lu_frontiers"
  "lu_frontiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
