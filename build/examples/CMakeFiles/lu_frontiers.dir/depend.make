# Empty dependencies file for lu_frontiers.
# This may be replaced when dependencies are built.
