file(REMOVE_RECURSE
  "CMakeFiles/merge_pvm_test.dir/merge_pvm_test.cpp.o"
  "CMakeFiles/merge_pvm_test.dir/merge_pvm_test.cpp.o.d"
  "merge_pvm_test"
  "merge_pvm_test.pdb"
  "merge_pvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_pvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
