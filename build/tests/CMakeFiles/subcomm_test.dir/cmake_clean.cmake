file(REMOVE_RECURSE
  "CMakeFiles/subcomm_test.dir/subcomm_test.cpp.o"
  "CMakeFiles/subcomm_test.dir/subcomm_test.cpp.o.d"
  "subcomm_test"
  "subcomm_test.pdb"
  "subcomm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subcomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
