# Empty compiler generated dependencies file for subcomm_test.
# This may be replaced when dependencies are built.
