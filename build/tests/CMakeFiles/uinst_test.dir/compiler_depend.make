# Empty compiler generated dependencies file for uinst_test.
# This may be replaced when dependencies are built.
