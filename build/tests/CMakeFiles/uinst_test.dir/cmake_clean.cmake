file(REMOVE_RECURSE
  "CMakeFiles/uinst_test.dir/uinst_test.cpp.o"
  "CMakeFiles/uinst_test.dir/uinst_test.cpp.o.d"
  "uinst_test"
  "uinst_test.pdb"
  "uinst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uinst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
