# Empty compiler generated dependencies file for checkpointed_test.
# This may be replaced when dependencies are built.
