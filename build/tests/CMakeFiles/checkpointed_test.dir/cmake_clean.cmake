file(REMOVE_RECURSE
  "CMakeFiles/checkpointed_test.dir/checkpointed_test.cpp.o"
  "CMakeFiles/checkpointed_test.dir/checkpointed_test.cpp.o.d"
  "checkpointed_test"
  "checkpointed_test.pdb"
  "checkpointed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpointed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
