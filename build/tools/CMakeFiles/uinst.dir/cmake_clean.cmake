file(REMOVE_RECURSE
  "CMakeFiles/uinst.dir/uinst/main.cpp.o"
  "CMakeFiles/uinst.dir/uinst/main.cpp.o.d"
  "uinst"
  "uinst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uinst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
