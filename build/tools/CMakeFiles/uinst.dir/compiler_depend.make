# Empty compiler generated dependencies file for uinst.
# This may be replaced when dependencies are built.
