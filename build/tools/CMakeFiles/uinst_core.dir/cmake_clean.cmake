file(REMOVE_RECURSE
  "CMakeFiles/uinst_core.dir/uinst/rewriter.cpp.o"
  "CMakeFiles/uinst_core.dir/uinst/rewriter.cpp.o.d"
  "libuinst_core.a"
  "libuinst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uinst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
