file(REMOVE_RECURSE
  "libuinst_core.a"
)
