# Empty dependencies file for uinst_core.
# This may be replaced when dependencies are built.
