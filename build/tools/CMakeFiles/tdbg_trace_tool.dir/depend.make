# Empty dependencies file for tdbg_trace_tool.
# This may be replaced when dependencies are built.
