file(REMOVE_RECURSE
  "CMakeFiles/tdbg_trace_tool.dir/tdbg_trace.cpp.o"
  "CMakeFiles/tdbg_trace_tool.dir/tdbg_trace.cpp.o.d"
  "tdbg_trace"
  "tdbg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
