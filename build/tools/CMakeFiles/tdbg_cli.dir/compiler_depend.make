# Empty compiler generated dependencies file for tdbg_cli.
# This may be replaced when dependencies are built.
