file(REMOVE_RECURSE
  "CMakeFiles/tdbg_cli.dir/tdbg_cli.cpp.o"
  "CMakeFiles/tdbg_cli.dir/tdbg_cli.cpp.o.d"
  "tdbg_cli"
  "tdbg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
