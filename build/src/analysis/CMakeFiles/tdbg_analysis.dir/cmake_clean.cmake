file(REMOVE_RECURSE
  "CMakeFiles/tdbg_analysis.dir/critical_path.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/critical_path.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/deadlock.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/deadlock.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/intertwined.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/intertwined.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/patterns.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/races.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/races.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/supervision.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/supervision.cpp.o.d"
  "CMakeFiles/tdbg_analysis.dir/traffic.cpp.o"
  "CMakeFiles/tdbg_analysis.dir/traffic.cpp.o.d"
  "libtdbg_analysis.a"
  "libtdbg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
