file(REMOVE_RECURSE
  "libtdbg_analysis.a"
)
