
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/critical_path.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/critical_path.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/critical_path.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/deadlock.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/deadlock.cpp.o.d"
  "/root/repo/src/analysis/intertwined.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/intertwined.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/intertwined.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/races.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/races.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/races.cpp.o.d"
  "/root/repo/src/analysis/supervision.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/supervision.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/supervision.cpp.o.d"
  "/root/repo/src/analysis/traffic.cpp" "src/analysis/CMakeFiles/tdbg_analysis.dir/traffic.cpp.o" "gcc" "src/analysis/CMakeFiles/tdbg_analysis.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/causality/CMakeFiles/tdbg_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
