# Empty compiler generated dependencies file for tdbg_analysis.
# This may be replaced when dependencies are built.
