file(REMOVE_RECURSE
  "CMakeFiles/tdbg_debugger.dir/commands.cpp.o"
  "CMakeFiles/tdbg_debugger.dir/commands.cpp.o.d"
  "CMakeFiles/tdbg_debugger.dir/debugger.cpp.o"
  "CMakeFiles/tdbg_debugger.dir/debugger.cpp.o.d"
  "CMakeFiles/tdbg_debugger.dir/process_groups.cpp.o"
  "CMakeFiles/tdbg_debugger.dir/process_groups.cpp.o.d"
  "libtdbg_debugger.a"
  "libtdbg_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
