# Empty compiler generated dependencies file for tdbg_debugger.
# This may be replaced when dependencies are built.
