file(REMOVE_RECURSE
  "libtdbg_debugger.a"
)
