# Empty compiler generated dependencies file for tdbg_mpi.
# This may be replaced when dependencies are built.
