file(REMOVE_RECURSE
  "CMakeFiles/tdbg_mpi.dir/comm.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/tdbg_mpi.dir/mailbox.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/tdbg_mpi.dir/runtime.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/runtime.cpp.o.d"
  "CMakeFiles/tdbg_mpi.dir/subcomm.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/subcomm.cpp.o.d"
  "CMakeFiles/tdbg_mpi.dir/wait_registry.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/wait_registry.cpp.o.d"
  "CMakeFiles/tdbg_mpi.dir/world.cpp.o"
  "CMakeFiles/tdbg_mpi.dir/world.cpp.o.d"
  "libtdbg_mpi.a"
  "libtdbg_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
