file(REMOVE_RECURSE
  "libtdbg_mpi.a"
)
