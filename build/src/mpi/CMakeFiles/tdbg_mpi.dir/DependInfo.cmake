
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/mailbox.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/mailbox.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/mailbox.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/runtime.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/runtime.cpp.o.d"
  "/root/repo/src/mpi/subcomm.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/subcomm.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/subcomm.cpp.o.d"
  "/root/repo/src/mpi/wait_registry.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/wait_registry.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/wait_registry.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/mpi/CMakeFiles/tdbg_mpi.dir/world.cpp.o" "gcc" "src/mpi/CMakeFiles/tdbg_mpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
