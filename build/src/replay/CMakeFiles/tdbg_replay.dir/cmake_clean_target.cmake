file(REMOVE_RECURSE
  "libtdbg_replay.a"
)
