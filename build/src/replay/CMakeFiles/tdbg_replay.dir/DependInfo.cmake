
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/breakpoints.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/breakpoints.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/breakpoints.cpp.o.d"
  "/root/repo/src/replay/checkpoint.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/checkpoint.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/checkpoint.cpp.o.d"
  "/root/repo/src/replay/checkpointed_session.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/checkpointed_session.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/checkpointed_session.cpp.o.d"
  "/root/repo/src/replay/match_log.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/match_log.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/match_log.cpp.o.d"
  "/root/repo/src/replay/record.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/record.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/record.cpp.o.d"
  "/root/repo/src/replay/replay.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/replay.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/replay.cpp.o.d"
  "/root/repo/src/replay/stopline.cpp" "src/replay/CMakeFiles/tdbg_replay.dir/stopline.cpp.o" "gcc" "src/replay/CMakeFiles/tdbg_replay.dir/stopline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/tdbg_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/tdbg_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
