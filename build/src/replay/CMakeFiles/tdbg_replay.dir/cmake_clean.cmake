file(REMOVE_RECURSE
  "CMakeFiles/tdbg_replay.dir/breakpoints.cpp.o"
  "CMakeFiles/tdbg_replay.dir/breakpoints.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/checkpoint.cpp.o"
  "CMakeFiles/tdbg_replay.dir/checkpoint.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/checkpointed_session.cpp.o"
  "CMakeFiles/tdbg_replay.dir/checkpointed_session.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/match_log.cpp.o"
  "CMakeFiles/tdbg_replay.dir/match_log.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/record.cpp.o"
  "CMakeFiles/tdbg_replay.dir/record.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/replay.cpp.o"
  "CMakeFiles/tdbg_replay.dir/replay.cpp.o.d"
  "CMakeFiles/tdbg_replay.dir/stopline.cpp.o"
  "CMakeFiles/tdbg_replay.dir/stopline.cpp.o.d"
  "libtdbg_replay.a"
  "libtdbg_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
