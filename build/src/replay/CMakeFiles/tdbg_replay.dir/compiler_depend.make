# Empty compiler generated dependencies file for tdbg_replay.
# This may be replaced when dependencies are built.
