
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/action_graph.cpp" "src/graph/CMakeFiles/tdbg_graph.dir/action_graph.cpp.o" "gcc" "src/graph/CMakeFiles/tdbg_graph.dir/action_graph.cpp.o.d"
  "/root/repo/src/graph/call_graph.cpp" "src/graph/CMakeFiles/tdbg_graph.dir/call_graph.cpp.o" "gcc" "src/graph/CMakeFiles/tdbg_graph.dir/call_graph.cpp.o.d"
  "/root/repo/src/graph/comm_graph.cpp" "src/graph/CMakeFiles/tdbg_graph.dir/comm_graph.cpp.o" "gcc" "src/graph/CMakeFiles/tdbg_graph.dir/comm_graph.cpp.o.d"
  "/root/repo/src/graph/export.cpp" "src/graph/CMakeFiles/tdbg_graph.dir/export.cpp.o" "gcc" "src/graph/CMakeFiles/tdbg_graph.dir/export.cpp.o.d"
  "/root/repo/src/graph/trace_graph.cpp" "src/graph/CMakeFiles/tdbg_graph.dir/trace_graph.cpp.o" "gcc" "src/graph/CMakeFiles/tdbg_graph.dir/trace_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
