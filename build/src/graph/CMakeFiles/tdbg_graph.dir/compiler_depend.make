# Empty compiler generated dependencies file for tdbg_graph.
# This may be replaced when dependencies are built.
