file(REMOVE_RECURSE
  "libtdbg_graph.a"
)
