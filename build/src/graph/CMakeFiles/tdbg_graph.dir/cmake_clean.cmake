file(REMOVE_RECURSE
  "CMakeFiles/tdbg_graph.dir/action_graph.cpp.o"
  "CMakeFiles/tdbg_graph.dir/action_graph.cpp.o.d"
  "CMakeFiles/tdbg_graph.dir/call_graph.cpp.o"
  "CMakeFiles/tdbg_graph.dir/call_graph.cpp.o.d"
  "CMakeFiles/tdbg_graph.dir/comm_graph.cpp.o"
  "CMakeFiles/tdbg_graph.dir/comm_graph.cpp.o.d"
  "CMakeFiles/tdbg_graph.dir/export.cpp.o"
  "CMakeFiles/tdbg_graph.dir/export.cpp.o.d"
  "CMakeFiles/tdbg_graph.dir/trace_graph.cpp.o"
  "CMakeFiles/tdbg_graph.dir/trace_graph.cpp.o.d"
  "libtdbg_graph.a"
  "libtdbg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
