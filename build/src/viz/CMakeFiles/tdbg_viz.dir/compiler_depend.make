# Empty compiler generated dependencies file for tdbg_viz.
# This may be replaced when dependencies are built.
