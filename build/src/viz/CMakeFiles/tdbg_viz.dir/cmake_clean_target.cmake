file(REMOVE_RECURSE
  "libtdbg_viz.a"
)
