
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/html_view.cpp" "src/viz/CMakeFiles/tdbg_viz.dir/html_view.cpp.o" "gcc" "src/viz/CMakeFiles/tdbg_viz.dir/html_view.cpp.o.d"
  "/root/repo/src/viz/profile.cpp" "src/viz/CMakeFiles/tdbg_viz.dir/profile.cpp.o" "gcc" "src/viz/CMakeFiles/tdbg_viz.dir/profile.cpp.o.d"
  "/root/repo/src/viz/timeline.cpp" "src/viz/CMakeFiles/tdbg_viz.dir/timeline.cpp.o" "gcc" "src/viz/CMakeFiles/tdbg_viz.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/causality/CMakeFiles/tdbg_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
