file(REMOVE_RECURSE
  "CMakeFiles/tdbg_viz.dir/html_view.cpp.o"
  "CMakeFiles/tdbg_viz.dir/html_view.cpp.o.d"
  "CMakeFiles/tdbg_viz.dir/profile.cpp.o"
  "CMakeFiles/tdbg_viz.dir/profile.cpp.o.d"
  "CMakeFiles/tdbg_viz.dir/timeline.cpp.o"
  "CMakeFiles/tdbg_viz.dir/timeline.cpp.o.d"
  "libtdbg_viz.a"
  "libtdbg_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
