# Empty compiler generated dependencies file for tdbg_support.
# This may be replaced when dependencies are built.
