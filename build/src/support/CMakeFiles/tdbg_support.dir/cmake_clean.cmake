file(REMOVE_RECURSE
  "CMakeFiles/tdbg_support.dir/clock.cpp.o"
  "CMakeFiles/tdbg_support.dir/clock.cpp.o.d"
  "CMakeFiles/tdbg_support.dir/error.cpp.o"
  "CMakeFiles/tdbg_support.dir/error.cpp.o.d"
  "CMakeFiles/tdbg_support.dir/serialize.cpp.o"
  "CMakeFiles/tdbg_support.dir/serialize.cpp.o.d"
  "CMakeFiles/tdbg_support.dir/strings.cpp.o"
  "CMakeFiles/tdbg_support.dir/strings.cpp.o.d"
  "libtdbg_support.a"
  "libtdbg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
