file(REMOVE_RECURSE
  "libtdbg_support.a"
)
