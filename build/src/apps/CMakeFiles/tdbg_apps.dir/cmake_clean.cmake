file(REMOVE_RECURSE
  "CMakeFiles/tdbg_apps.dir/fib.cpp.o"
  "CMakeFiles/tdbg_apps.dir/fib.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/halo.cpp.o"
  "CMakeFiles/tdbg_apps.dir/halo.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/lu.cpp.o"
  "CMakeFiles/tdbg_apps.dir/lu.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/matrix.cpp.o"
  "CMakeFiles/tdbg_apps.dir/matrix.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/ring.cpp.o"
  "CMakeFiles/tdbg_apps.dir/ring.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/strassen.cpp.o"
  "CMakeFiles/tdbg_apps.dir/strassen.cpp.o.d"
  "CMakeFiles/tdbg_apps.dir/taskfarm.cpp.o"
  "CMakeFiles/tdbg_apps.dir/taskfarm.cpp.o.d"
  "libtdbg_apps.a"
  "libtdbg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
