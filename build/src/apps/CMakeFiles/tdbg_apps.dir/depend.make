# Empty dependencies file for tdbg_apps.
# This may be replaced when dependencies are built.
