file(REMOVE_RECURSE
  "libtdbg_apps.a"
)
