
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fib.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/fib.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/fib.cpp.o.d"
  "/root/repo/src/apps/halo.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/halo.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/halo.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/matrix.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/matrix.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/matrix.cpp.o.d"
  "/root/repo/src/apps/ring.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/ring.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/ring.cpp.o.d"
  "/root/repo/src/apps/strassen.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/strassen.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/strassen.cpp.o.d"
  "/root/repo/src/apps/taskfarm.cpp" "src/apps/CMakeFiles/tdbg_apps.dir/taskfarm.cpp.o" "gcc" "src/apps/CMakeFiles/tdbg_apps.dir/taskfarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/tdbg_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/tdbg_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/tdbg_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
