file(REMOVE_RECURSE
  "libtdbg_trace.a"
)
