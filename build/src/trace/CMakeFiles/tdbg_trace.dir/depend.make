# Empty dependencies file for tdbg_trace.
# This may be replaced when dependencies are built.
