file(REMOVE_RECURSE
  "CMakeFiles/tdbg_trace.dir/collector.cpp.o"
  "CMakeFiles/tdbg_trace.dir/collector.cpp.o.d"
  "CMakeFiles/tdbg_trace.dir/construct_registry.cpp.o"
  "CMakeFiles/tdbg_trace.dir/construct_registry.cpp.o.d"
  "CMakeFiles/tdbg_trace.dir/merge.cpp.o"
  "CMakeFiles/tdbg_trace.dir/merge.cpp.o.d"
  "CMakeFiles/tdbg_trace.dir/trace.cpp.o"
  "CMakeFiles/tdbg_trace.dir/trace.cpp.o.d"
  "CMakeFiles/tdbg_trace.dir/trace_io.cpp.o"
  "CMakeFiles/tdbg_trace.dir/trace_io.cpp.o.d"
  "libtdbg_trace.a"
  "libtdbg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
