file(REMOVE_RECURSE
  "libtdbg_instrument.a"
)
