# Empty compiler generated dependencies file for tdbg_instrument.
# This may be replaced when dependencies are built.
