file(REMOVE_RECURSE
  "CMakeFiles/tdbg_instrument.dir/session.cpp.o"
  "CMakeFiles/tdbg_instrument.dir/session.cpp.o.d"
  "libtdbg_instrument.a"
  "libtdbg_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
