file(REMOVE_RECURSE
  "libtdbg_causality.a"
)
