# Empty compiler generated dependencies file for tdbg_causality.
# This may be replaced when dependencies are built.
