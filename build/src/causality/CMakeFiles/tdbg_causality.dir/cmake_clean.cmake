file(REMOVE_RECURSE
  "CMakeFiles/tdbg_causality.dir/causal_order.cpp.o"
  "CMakeFiles/tdbg_causality.dir/causal_order.cpp.o.d"
  "libtdbg_causality.a"
  "libtdbg_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdbg_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
