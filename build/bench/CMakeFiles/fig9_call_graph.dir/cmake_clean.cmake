file(REMOVE_RECURSE
  "CMakeFiles/fig9_call_graph.dir/fig9_call_graph.cpp.o"
  "CMakeFiles/fig9_call_graph.dir/fig9_call_graph.cpp.o.d"
  "fig9_call_graph"
  "fig9_call_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_call_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
