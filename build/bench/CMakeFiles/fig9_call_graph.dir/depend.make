# Empty dependencies file for fig9_call_graph.
# This may be replaced when dependencies are built.
