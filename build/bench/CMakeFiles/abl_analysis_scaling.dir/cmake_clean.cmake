file(REMOVE_RECURSE
  "CMakeFiles/abl_analysis_scaling.dir/abl_analysis_scaling.cpp.o"
  "CMakeFiles/abl_analysis_scaling.dir/abl_analysis_scaling.cpp.o.d"
  "abl_analysis_scaling"
  "abl_analysis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_analysis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
