# Empty compiler generated dependencies file for abl_analysis_scaling.
# This may be replaced when dependencies are built.
