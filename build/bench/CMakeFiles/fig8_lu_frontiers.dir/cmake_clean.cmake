file(REMOVE_RECURSE
  "CMakeFiles/fig8_lu_frontiers.dir/fig8_lu_frontiers.cpp.o"
  "CMakeFiles/fig8_lu_frontiers.dir/fig8_lu_frontiers.cpp.o.d"
  "fig8_lu_frontiers"
  "fig8_lu_frontiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lu_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
