# Empty compiler generated dependencies file for fig8_lu_frontiers.
# This may be replaced when dependencies are built.
