file(REMOVE_RECURSE
  "CMakeFiles/abl_trace_flush.dir/abl_trace_flush.cpp.o"
  "CMakeFiles/abl_trace_flush.dir/abl_trace_flush.cpp.o.d"
  "abl_trace_flush"
  "abl_trace_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trace_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
