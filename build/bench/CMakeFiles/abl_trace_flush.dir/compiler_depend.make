# Empty compiler generated dependencies file for abl_trace_flush.
# This may be replaced when dependencies are built.
