# Empty compiler generated dependencies file for fig6_stopline_zoom.
# This may be replaced when dependencies are built.
