file(REMOVE_RECURSE
  "CMakeFiles/fig6_stopline_zoom.dir/fig6_stopline_zoom.cpp.o"
  "CMakeFiles/fig6_stopline_zoom.dir/fig6_stopline_zoom.cpp.o.d"
  "fig6_stopline_zoom"
  "fig6_stopline_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stopline_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
