# Empty dependencies file for abl_undo_checkpoint.
# This may be replaced when dependencies are built.
