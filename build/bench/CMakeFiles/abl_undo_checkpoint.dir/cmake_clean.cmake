file(REMOVE_RECURSE
  "CMakeFiles/abl_undo_checkpoint.dir/abl_undo_checkpoint.cpp.o"
  "CMakeFiles/abl_undo_checkpoint.dir/abl_undo_checkpoint.cpp.o.d"
  "abl_undo_checkpoint"
  "abl_undo_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_undo_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
