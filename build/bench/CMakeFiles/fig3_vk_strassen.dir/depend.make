# Empty dependencies file for fig3_vk_strassen.
# This may be replaced when dependencies are built.
