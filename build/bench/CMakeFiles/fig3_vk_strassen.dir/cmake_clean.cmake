file(REMOVE_RECURSE
  "CMakeFiles/fig3_vk_strassen.dir/fig3_vk_strassen.cpp.o"
  "CMakeFiles/fig3_vk_strassen.dir/fig3_vk_strassen.cpp.o.d"
  "fig3_vk_strassen"
  "fig3_vk_strassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vk_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
