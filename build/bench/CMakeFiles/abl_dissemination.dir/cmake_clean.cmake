file(REMOVE_RECURSE
  "CMakeFiles/abl_dissemination.dir/abl_dissemination.cpp.o"
  "CMakeFiles/abl_dissemination.dir/abl_dissemination.cpp.o.d"
  "abl_dissemination"
  "abl_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
