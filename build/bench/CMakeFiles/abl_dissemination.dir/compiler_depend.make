# Empty compiler generated dependencies file for abl_dissemination.
# This may be replaced when dependencies are built.
