file(REMOVE_RECURSE
  "CMakeFiles/fig5_deadlock_trace.dir/fig5_deadlock_trace.cpp.o"
  "CMakeFiles/fig5_deadlock_trace.dir/fig5_deadlock_trace.cpp.o.d"
  "fig5_deadlock_trace"
  "fig5_deadlock_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deadlock_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
