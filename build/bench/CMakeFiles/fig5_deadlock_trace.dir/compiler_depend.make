# Empty compiler generated dependencies file for fig5_deadlock_trace.
# This may be replaced when dependencies are built.
