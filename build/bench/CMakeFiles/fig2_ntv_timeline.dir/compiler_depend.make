# Empty compiler generated dependencies file for fig2_ntv_timeline.
# This may be replaced when dependencies are built.
