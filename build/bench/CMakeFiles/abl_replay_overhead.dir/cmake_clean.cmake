file(REMOVE_RECURSE
  "CMakeFiles/abl_replay_overhead.dir/abl_replay_overhead.cpp.o"
  "CMakeFiles/abl_replay_overhead.dir/abl_replay_overhead.cpp.o.d"
  "abl_replay_overhead"
  "abl_replay_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replay_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
