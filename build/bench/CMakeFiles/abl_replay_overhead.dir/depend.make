# Empty dependencies file for abl_replay_overhead.
# This may be replaced when dependencies are built.
