# Empty dependencies file for fig4_comm_graph.
# This may be replaced when dependencies are built.
