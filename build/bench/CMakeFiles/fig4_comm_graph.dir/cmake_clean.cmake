file(REMOVE_RECURSE
  "CMakeFiles/fig4_comm_graph.dir/fig4_comm_graph.cpp.o"
  "CMakeFiles/fig4_comm_graph.dir/fig4_comm_graph.cpp.o.d"
  "fig4_comm_graph"
  "fig4_comm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_comm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
