# Empty compiler generated dependencies file for fig7_replay_localize.
# This may be replaced when dependencies are built.
