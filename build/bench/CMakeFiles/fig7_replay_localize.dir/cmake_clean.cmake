file(REMOVE_RECURSE
  "CMakeFiles/fig7_replay_localize.dir/fig7_replay_localize.cpp.o"
  "CMakeFiles/fig7_replay_localize.dir/fig7_replay_localize.cpp.o.d"
  "fig7_replay_localize"
  "fig7_replay_localize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_replay_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
