
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_marker_cost.cpp" "bench/CMakeFiles/abl_marker_cost.dir/abl_marker_cost.cpp.o" "gcc" "bench/CMakeFiles/abl_marker_cost.dir/abl_marker_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/tdbg_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/tdbg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdbg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tdbg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
