# Empty compiler generated dependencies file for abl_marker_cost.
# This may be replaced when dependencies are built.
