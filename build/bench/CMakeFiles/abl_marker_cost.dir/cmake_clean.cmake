file(REMOVE_RECURSE
  "CMakeFiles/abl_marker_cost.dir/abl_marker_cost.cpp.o"
  "CMakeFiles/abl_marker_cost.dir/abl_marker_cost.cpp.o.d"
  "abl_marker_cost"
  "abl_marker_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_marker_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
