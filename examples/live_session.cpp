// Live debugging — p2d2's primary mode: breakpoints on the FIRST
// execution, no prior recording.  The live run is simultaneously
// recorded, so when it ends the whole trace-driven toolbox (analyses,
// exact replay of the same nondeterministic matches) applies to it.
//
// The target is the self-scheduling task farm: its ANY_SOURCE receives
// make every run order-unique, which is exactly when "debug the run
// you are looking at, then replay that same run" matters.

#include <iostream>

#include "apps/taskfarm.hpp"
#include "debugger/debugger.hpp"
#include "instrument/api.hpp"

int main() {
  using namespace tdbg;

  apps::taskfarm::Options opts;
  opts.num_tasks = 20;
  dbg::Debugger debugger(4, [opts](mpi::Comm& comm) {
    apps::taskfarm::rank_body(comm, opts);
  });

  // Launch live, stopping every rank at its 3rd instrumented event.
  replay::Stopline line;
  line.thresholds.assign(4, std::uint64_t{3});
  auto stops = debugger.launch(line);
  std::cout << "live run parked " << stops.size() << " ranks at marker 3\n";

  // Arm a message breakpoint: stop rank 0 (the master) when it is
  // about to receive a result, then let it run.
  replay::MessageBreak on_result;
  on_result.on_send = false;
  on_result.tag = apps::taskfarm::kTagResult;
  debugger.break_on_message(0, on_result);
  // Workers must run free or the master has nothing to receive.
  for (mpi::Rank r = 1; r < 4; ++r) debugger.continue_rank(r);
  const auto stop = debugger.continue_rank(0);
  if (stop) {
    std::cout << "master stopped before its first result receive "
                 "(marker " << stop->marker << ")\n";
  }

  // Undo: even on a live run, the partially recorded match log lets
  // the debugger replay back to the previous stop.
  if (const auto undone = debugger.undo()) {
    std::cout << "undo: " << undone->size() << " rank(s) re-parked\n";
  }

  // Finish: the live history becomes the recorded run.
  const auto result = debugger.end_replay();
  std::cout << "live run "
            << (result && result->completed ? "completed" : "failed")
            << "; captured " << debugger.trace().size() << " records\n";

  // The captured wildcard matches are now replayable — and the race
  // report shows why that matters.
  const auto races = debugger.races();
  std::cout << races.races.size()
            << " wildcard receives raced in the captured run; a replay "
               "pins every one of them.\n";
  const auto again = debugger.replay_to(line);
  std::cout << "replayed the captured run to the same stopline: "
            << again.size() << " ranks parked\n";
  debugger.end_replay();
  return 0;
}
