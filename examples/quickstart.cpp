// Quickstart: record a small message-passing program, look at its
// history, set a stopline, and replay to it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "apps/ring.hpp"
#include "debugger/debugger.hpp"

int main() {
  using namespace tdbg;

  // The target program: a 4-rank token ring (any function taking a
  // Comm& works — instrument functions with TDBG_FUNCTION(), or run
  // tools/uinst over your sources to insert that automatically).
  constexpr int kRanks = 4;
  const auto target = [](mpi::Comm& comm) {
    apps::ring::Options opts;
    opts.laps = 3;
    apps::ring::rank_body(comm, opts);
  };

  // 1. Record: run with instrumentation, capture trace + match log.
  dbg::Debugger debugger(kRanks, target);
  const auto& result = debugger.record();
  std::cout << "recorded run: "
            << (result.completed ? "completed" : "did not complete") << ", "
            << debugger.trace().size() << " trace records\n\n";

  // 2. The big picture: an ASCII time-space diagram (use to_svg() for
  //    the full NTV-style rendering).
  std::cout << debugger.diagram().to_ascii(76) << "\n";

  // 3. Set a stopline in the middle of the history and replay to it.
  const auto t_mid =
      (debugger.trace().t_min() + debugger.trace().t_max()) / 2;
  const auto stopline = debugger.stopline_at(t_mid);
  const auto stops = debugger.replay_to(stopline);
  std::cout << "replayed to stopline; " << stops.size()
            << " ranks parked:\n";
  for (const auto& stop : stops) {
    std::cout << "  rank " << stop.rank << " at marker " << stop.marker
              << " ("
              << debugger.trace().constructs().info(stop.construct).name
              << ")\n";
  }

  // 4. Single-step rank 0 a few events, then undo back.
  std::cout << "\nstepping rank 0:\n";
  for (int i = 0; i < 3; ++i) {
    if (const auto stop = debugger.step(0)) {
      std::cout << "  now at marker " << stop->marker << "\n";
    } else {
      std::cout << "  rank 0 is waiting for a message from a parked rank\n";
      break;
    }
  }
  if (const auto undone = debugger.undo()) {
    std::cout << "undo: rank 0 back at marker " << (*undone)[0].marker
              << "\n";
  }

  // 5. Let the replay run to its end.
  const auto replay_result = debugger.end_replay();
  std::cout << "replay "
            << (replay_result && replay_result->completed ? "completed"
                                                          : "failed")
            << "\n";
  return 0;
}
