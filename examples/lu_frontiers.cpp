// Figure 8: past and future frontiers of a selected point in an
// NPB-LU-style wavefront execution.
//
// The user clicks an event mid-trace; the debugger computes the set of
// events guaranteed to have happened before it (past), the events it
// is guaranteed to affect (future), and the concurrency region in
// between — then renders the frontier overlay and uses the frontiers
// as stoplines.
//
// Writes lu_frontiers.svg next to the binary.

#include <fstream>
#include <iostream>

#include "apps/lu.hpp"
#include "debugger/debugger.hpp"

int main() {
  using namespace tdbg;

  apps::lu::Options opts;
  opts.px = 4;
  opts.py = 2;
  opts.nx = 16;
  opts.ny = 16;
  opts.iterations = 3;
  dbg::Debugger debugger(8, [opts](mpi::Comm& comm) {
    apps::lu::rank_body(comm, opts);
  });
  const auto& result = debugger.record();
  std::cout << "LU wavefront recorded ("
            << (result.completed ? "completed" : "failed") << ", "
            << debugger.trace().size() << " records)\n";

  // "The user clicked at the point indicated by the circle": pick a
  // mid-trace receive on rank 5 (an interior rank of the grid).
  const auto& trace = debugger.trace();
  const auto& seq = trace.rank_events(5);
  std::size_t selected = seq[seq.size() / 2];
  for (std::size_t i : seq) {
    if (trace.event(i).kind == trace::EventKind::kRecv &&
        trace.event(i).t_start >= trace.t_max() / 3) {
      selected = i;
      break;
    }
  }

  const auto& order = debugger.order();
  const auto past = order.causal_past(selected);
  const auto future = order.causal_future(selected);
  const auto region = order.concurrency_region(selected);
  std::cout << "selected event: rank " << trace.event(selected).rank
            << ", marker " << trace.event(selected).marker << "\n"
            << "  causal past:        " << past.size() << " events\n"
            << "  causal future:      " << future.size() << " events\n"
            << "  concurrency region: " << region.size() << " events\n";

  std::cout << "\npast frontier (last event on each rank that affects the "
               "selection):\n";
  const auto past_frontier = order.past_frontier(selected);
  for (mpi::Rank r = 0; r < 8; ++r) {
    std::cout << "  rank " << r << ": ";
    if (const auto& f = past_frontier[static_cast<std::size_t>(r)]) {
      const auto& e = trace.event(*f);
      std::cout << "marker " << e.marker << " ("
                << trace.constructs().info(e.construct).name << ")\n";
    } else {
      std::cout << "(none — entire rank is concurrent or in the future)\n";
    }
  }

  // Render the Fig. 8 overlay.
  viz::Overlay overlay;
  overlay.selected_event = selected;
  overlay.past_frontier = past_frontier;
  overlay.future_frontier = order.future_frontier(selected);
  std::ofstream("lu_frontiers.svg") << debugger.diagram().to_svg(overlay);
  std::cout << "\nwrote lu_frontiers.svg\n";

  // Frontier stoplines are directly replayable (§4.1's "not currently
  // implemented" suggestion, implemented).
  const auto stops = debugger.replay_to(debugger.stopline_past_frontier(selected));
  std::cout << "replayed to the past-frontier stopline: " << stops.size()
            << " ranks parked\n";
  debugger.end_replay();
  return 0;
}
