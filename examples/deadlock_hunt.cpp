// Communication supervision in practice: deadlock explanation for a
// ring of receives, and message-race detection on a self-scheduling
// task farm (the §4.4 analyses).

#include <iostream>

#include "analysis/deadlock.hpp"
#include "analysis/races.hpp"
#include "apps/taskfarm.hpp"
#include "debugger/debugger.hpp"

int main() {
  using namespace tdbg;

  std::cout << "=== deadlock: a ring of receives ===\n";
  {
    // Every rank first receives from its left neighbour: a 5-cycle.
    dbg::Debugger debugger(5, [](mpi::Comm& comm) {
      const int p = comm.size();
      const mpi::Rank left = (comm.rank() - 1 + p) % p;
      const mpi::Rank right = (comm.rank() + 1) % p;
      std::vector<std::byte> buf;
      comm.recv(buf, left, 0);
      comm.send(std::span<const std::byte>(), right, 0);
    });
    const auto& result = debugger.record();
    std::cout << "watchdog: " << result.abort_detail << "\n";
    const auto report = debugger.deadlock_report();
    std::cout << "analysis: " << report.description << "\n";
    std::cout << "cycle length: " << report.cycle.size() << "\n\n";
  }

  std::cout << "=== races: the self-scheduling task farm ===\n";
  {
    apps::taskfarm::Options opts;
    opts.num_tasks = 24;
    dbg::Debugger debugger(5, [opts](mpi::Comm& comm) {
      apps::taskfarm::rank_body(comm, opts);
    });
    const auto& result = debugger.record();
    std::cout << "run " << (result.completed ? "completed" : "failed")
              << "\n";
    const auto races = debugger.races();
    std::cout << races.races.size()
              << " wildcard receives raced (another message could have "
                 "matched):\n";
    std::size_t shown = 0;
    for (const auto& race : races.races) {
      if (shown++ == 5) {
        std::cout << "  ... and " << races.races.size() - 5 << " more\n";
        break;
      }
      const auto& recv = debugger.trace().event(race.recv_index);
      const auto& send = debugger.trace().event(race.matched_send);
      std::cout << "  recv #" << recv.marker << " on rank " << recv.rank
                << " matched a message from rank " << send.rank << "; "
                << race.candidates.size()
                << " other send(s) could have matched\n";
    }
    std::cout << "\nThese are exactly the matches the replay controller "
                 "pins down:\n"
                 "an uncontrolled re-execution may diverge, a controlled "
                 "replay cannot.\n";
  }
  return 0;
}
