// The paper's running example, end to end (Figures 3-7): debug the
// distributed Strassen matrix multiply whose send-destination bug
// deadlocks ranks 0 and 7.
//
// The session follows §4.1 of the paper:
//   1. the buggy program hangs; the watchdog unwinds it and we get a
//      trace to the point of the failure;
//   2. the time-space diagram and traffic analysis show rank 7
//      received one message where its peers received two, and one
//      send was never received (the "missed message" of Fig. 6);
//   3. a stopline before the distribution loop gives a consistent set
//      of breakpoints; replaying parks rank 0 there;
//   4. stepping through the MatrSend loop shows the wrong destination
//      (the paper's "jres should be replaced by jres+1", Fig. 7).
//
// Writes strassen_correct.svg / strassen_buggy.svg next to the binary.

#include <fstream>
#include <iostream>

#include "apps/strassen.hpp"
#include "debugger/debugger.hpp"
#include "graph/export.hpp"

namespace {

tdbg::mpi::RankBody strassen(bool buggy) {
  tdbg::apps::strassen::Options opts;
  opts.n = 64;
  opts.cutoff = 16;
  opts.buggy = buggy;
  return [opts](tdbg::mpi::Comm& comm) {
    tdbg::apps::strassen::rank_body(comm, opts);
  };
}

void save(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::cout << "  wrote " << path << "\n";
}

}  // namespace

int main() {
  using namespace tdbg;

  std::cout << "=== 1. the correct program (Fig. 3) ===\n";
  {
    dbg::Debugger good(8, strassen(false));
    const auto& result = good.record();
    std::cout << "run " << (result.completed ? "completed" : "FAILED")
              << "; " << good.comm_graph().nodes().size()
              << " messages (expect 21: 7 products x 2 operands + 7 "
                 "results)\n";
    save("strassen_correct.svg", good.diagram().to_svg());
    save("strassen_comm_graph.vcg",
         graph::to_vcg(good.comm_graph().to_export()));
  }

  std::cout << "\n=== 2. the buggy program hangs (Fig. 5) ===\n";
  dbg::Debugger debugger(8, strassen(true));
  const auto& result = debugger.record();
  std::cout << "watchdog: " << result.abort_detail << "\n";
  const auto deadlock = debugger.deadlock_report();
  std::cout << "analysis: " << deadlock.description << "\n";
  save("strassen_buggy.svg", debugger.diagram().to_svg());

  std::cout << "\n=== 3. what does the traffic look like? (Fig. 6) ===\n";
  const auto traffic = debugger.traffic();
  for (const auto& irr : traffic.irregularities) {
    std::cout << "  ! " << irr.description << "\n";
  }

  std::cout << "\n=== 4. stopline before the first send; replay ===\n";
  const auto& trace = debugger.trace();
  std::size_t first_send = 0;
  for (std::size_t i : trace.rank_events(0)) {
    const auto& e = trace.event(i);
    if (e.kind == trace::EventKind::kEnter &&
        trace.constructs().info(e.construct).name == "MatrSend") {
      first_send = i;
      break;
    }
  }
  replay::Stopline line;
  line.thresholds.assign(8, std::nullopt);
  line.thresholds[0] = trace.event(first_send).marker;
  const auto stops = debugger.replay_to(line);
  std::cout << "rank 0 parked at marker " << stops.at(0).marker
            << ", entering MatrSend\n";

  std::cout << "\n=== 5. step through the MatrSend loop (Fig. 7) ===\n";
  std::cout << "  dest of each send (pairs should go to the SAME worker; "
               "operand A then B):\n";
  int sends_seen = 0;
  auto* session = debugger.replay_session();
  const auto record_send = [&](const replay::StopInfo& stop) {
    if (stop.kind != trace::EventKind::kEnter) return;
    if (trace.constructs().info(stop.construct).name != "MatrSend") return;
    const auto dest = session->last_record(0).arg1;
    const auto tag = session->last_record(0).arg2;
    std::cout << "    MatrSend(dest=" << dest << ", tag=" << tag << ")"
              << (tag == apps::strassen::kTagOperandB ? "   <- operand B"
                                                      : "")
              << "\n";
    ++sends_seen;
  };
  record_send(stops.at(0));
  while (sends_seen < 6) {
    const auto stop = debugger.step(0);
    if (!stop) break;
    record_send(*stop);
  }
  std::cout << "  => operand B goes to worker jres instead of jres+1: the\n"
               "     bug is the destination index in the send loop.\n";

  const auto replay_result = debugger.end_replay();
  std::cout << "\nreplay ended ("
            << (replay_result && replay_result->deadlocked
                    ? "deadlocked again, as recorded"
                    : "unexpected outcome")
            << ")\n";
  return 0;
}
