// Post-mortem debugging from a trace file — the workflow the paper
// starts from (§2.1, AIMS is a post-mortem toolkit): one process
// records a run to disk with flush-on-demand; later (here: the same
// process, but nothing is shared) a debugger session loads the file
// and runs every history analysis without a target to execute.
//
// Writes postmortem_run.trc, postmortem.html next to the binary.

#include <iostream>

#include "analysis/critical_path.hpp"
#include "apps/lu.hpp"
#include "debugger/debugger.hpp"
#include "debugger/process_groups.hpp"
#include "instrument/session.hpp"
#include "trace/collector.hpp"
#include "trace/trace_io.hpp"
#include "viz/html_view.hpp"
#include "viz/profile.hpp"

int main() {
  using namespace tdbg;

  // --- Producer side: run instrumented, stream records to a file ----
  {
    auto registry = instr::global_constructs();
    trace::TraceCollector collector(8, registry);
    trace::TraceWriter writer("postmortem_run.trc", 8, registry);
    collector.attach_writer(&writer, /*threshold=*/1024);
    instr::Session session(8, &collector);

    apps::lu::Options opts;
    opts.px = 4;
    opts.py = 2;
    opts.nx = 16;
    opts.ny = 16;
    opts.iterations = 3;
    mpi::RunOptions options;
    options.hooks = &session;
    const auto result = mpi::run(
        8, [opts](mpi::Comm& comm) { apps::lu::rank_body(comm, opts); },
        options);
    collector.flush();  // flush-on-demand: drain the tail
    writer.finish();
    std::cout << "producer: run "
              << (result.completed ? "completed" : "failed") << ", wrote "
              << writer.events_written() << " records to postmortem_run.trc\n";
  }

  // --- Consumer side: load the file, analyze post-mortem ------------
  auto trace = trace::read_trace("postmortem_run.trc");
  auto debugger = dbg::Debugger::from_trace(std::move(trace));
  std::cout << "\nconsumer: loaded " << debugger.trace().size()
            << " records, " << debugger.trace().num_ranks() << " ranks; "
            << "can_replay=" << (debugger.can_replay() ? "yes" : "no")
            << " (no target — analysis only)\n\n";

  std::cout << "process groups: "
            << dbg::describe_groups(debugger.process_groups()) << "\n\n";

  const auto& path = debugger.session().critical_path();
  std::cout << path.to_string(debugger.trace(), 5) << "\n";

  std::cout << viz::profile_trace(debugger.trace())
                   .to_string(debugger.trace().constructs(), 6);

  viz::HtmlOptions html;
  html.title = "LU wavefront (post-mortem)";
  html.diagram.matches = &debugger.session().match_report();
  std::ofstream("postmortem.html") << viz::to_html(debugger.trace(), html);
  std::cout << "\nwrote postmortem.html — open in a browser to pan/zoom\n";
  return 0;
}
