#!/usr/bin/env bash
# Measures the PR-8 unified analysis pipeline and emits
# BENCH_pr8_session.json next to the sources: median times for the
# fused all-analyses sweep vs the pre-refactor N-scan baseline on a
# ~2.1M-event trace in the segmented on-disk store, and the full sweep
# recompute vs the incremental update after a 1% append, plus the
# resulting ratios.
#
# Exits nonzero if the binary's built-in contracts fail (best-of-5
# process-CPU-time, asserted before any timing):
#   - fused sweep < 2x cheaper than the N-scan baseline, or
#   - incremental update < 10x cheaper than a full recompute.
#
# Usage: scripts/bench_pr8_session.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr8_session.json"

[[ -x "$bdir/bench/abl_pass_fusion" ]] || {
  echo "missing $bdir/bench/abl_pass_fusion — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if either cpu-time contract fails — propagate
# that as our failure.  The gate numbers land on stderr.
"$bdir/bench/abl_pass_fusion" \
  --benchmark_min_time=0.2 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$tmp/fusion.json" 2>"$tmp/gates.txt"
cat "$tmp/gates.txt" >&2

python3 - "$tmp/fusion.json" "$tmp/gates.txt" "$out" <<'PY'
import json
import re
import sys

src, gates_txt, out = sys.argv[1], sys.argv[2], sys.argv[3]
with open(src) as f:
    data = json.load(f)

real_ms = {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["name"].removesuffix("_median")
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    real_ms[name] = b["real_time"] * scale

required = ["BM_FusedSweep", "BM_NScanBaseline", "BM_FullRecompute",
            "BM_IncrementalUpdate"]
missing = [n for n in required if n not in real_ms]
assert not missing, f"benchmark output missing {missing}"

# The authoritative gate numbers are the binary's best-of-5 process-CPU
# measurements, printed before the timed section.
gates = open(gates_txt).read()
fusion = re.search(
    r"fusion: fused sweep ([\d.]+) ms cpu, N-scan baseline ([\d.]+) ms "
    r"cpu -> ([\d.]+)x", gates)
incremental = re.search(
    r"incremental: full sweep ([\d.]+) ms cpu, update after 1% append "
    r"([\d.]+) ms cpu -> ([\d.]+)x", gates)
assert fusion and incremental, f"gate lines missing from stderr:\n{gates}"

doc = {
    "pr": 8,
    "description": "Unified analysis pipeline on a ~2.1M-event trace: "
                   "the fused all-analyses sweep vs five independent "
                   "per-consumer scans of the segmented store, and the "
                   "incremental sweep update after a 1% append vs a "
                   "from-scratch recompute; medians of 3 reps, times "
                   "in ms",
    "median_ms": {
        "fused_sweep": round(real_ms["BM_FusedSweep"], 2),
        "nscan_baseline": round(real_ms["BM_NScanBaseline"], 2),
        "full_recompute": round(real_ms["BM_FullRecompute"], 2),
        "incremental_update": round(real_ms["BM_IncrementalUpdate"], 2),
    },
    "speedup_wall": {
        "fusion": round(real_ms["BM_NScanBaseline"] /
                        real_ms["BM_FusedSweep"], 2),
        "incremental": round(real_ms["BM_FullRecompute"] /
                             real_ms["BM_IncrementalUpdate"], 2),
    },
    "gate_cpu": {
        "fused_sweep_ms": float(fusion.group(1)),
        "nscan_baseline_ms": float(fusion.group(2)),
        "fusion_x": float(fusion.group(3)),
        "full_recompute_ms": float(incremental.group(1)),
        "incremental_update_ms": float(incremental.group(2)),
        "incremental_x": float(incremental.group(3)),
    },
    "acceptance": {
        "required_fusion_x": 2.0,
        "required_incremental_x": 10.0,
        "gate": "enforced by abl_pass_fusion itself before timing "
                "(exit 1 below either threshold, best-of-5 cpu-time)",
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  fusion:      {doc['gate_cpu']['fusion_x']}x cpu "
      f"(gate >= 2x), wall median {doc['speedup_wall']['fusion']}x")
print(f"  incremental: {doc['gate_cpu']['incremental_x']}x cpu "
      f"(gate >= 10x), wall median {doc['speedup_wall']['incremental']}x")
PY
