#!/usr/bin/env bash
# Measures the PR-9 trace-analysis service and emits
# BENCH_pr9_server.json next to the sources: p50/p99 latency and
# requests/second for match_report over the real wire protocol, in
# three scenarios — cold open (every request loads a fresh session
# through a 1-entry cache), cached session (resident artifact reuse),
# and an 8-client concurrent fan-out over the cached session.
#
# Exits nonzero if the binary's built-in acceptance gate fails:
# cached-session match_report p50 must be >= 10x faster than the
# cold-open p50.
#
# Usage: scripts/bench_pr9_server.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr9_server.json"

[[ -x "$bdir/bench/abl_server_throughput" ]] || {
  echo "missing $bdir/bench/abl_server_throughput — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if the >= 10x gate fails — propagate that as our
# failure.  All numbers land on stderr.
"$bdir/bench/abl_server_throughput" 2>"$tmp/gates.txt"
cat "$tmp/gates.txt" >&2

python3 - "$tmp/gates.txt" "$out" <<'PY'
import json
import re
import sys

gates_txt, out = sys.argv[1], sys.argv[2]
gates = open(gates_txt).read()

cold = re.search(
    r"cold match_report p50 ([\d.]+) ms p99 ([\d.]+) ms, ([\d.]+) req/s "
    r"\((\d+) requests, (\d+) events\)", gates)
cached = re.search(
    r"cached match_report p50 ([\d.]+) ms p99 ([\d.]+) ms, ([\d.]+) req/s "
    r"\((\d+) requests\)", gates)
fanout = re.search(r"fanout 8 clients ([\d.]+) req/s", gates)
speedup = re.search(r"cached/cold p50 speedup ([\d.]+)x", gates)
assert cold and cached and fanout and speedup, \
    f"gate lines missing from stderr:\n{gates}"

doc = {
    "pr": 9,
    "description": "tdbg::server match_report over a Unix-domain socket "
                   "on a 120k-event 8-rank synthetic trace: cold open "
                   "(1-entry session cache, alternating fingerprints, so "
                   "every request pays fingerprint + open_trace + Session "
                   "build + first match compute) vs cached session "
                   "(resident artifact reuse) vs 8 concurrent clients on "
                   "the cached session; latencies in ms",
    "cold_open": {
        "p50_ms": float(cold.group(1)),
        "p99_ms": float(cold.group(2)),
        "req_per_s": float(cold.group(3)),
        "requests": int(cold.group(4)),
        "trace_events": int(cold.group(5)),
    },
    "cached_session": {
        "p50_ms": float(cached.group(1)),
        "p99_ms": float(cached.group(2)),
        "req_per_s": float(cached.group(3)),
        "requests": int(cached.group(4)),
    },
    "fanout_8_clients": {
        "req_per_s": float(fanout.group(1)),
    },
    "acceptance": {
        "cached_vs_cold_p50_x": float(speedup.group(1)),
        "required_x": 10.0,
        "gate": "enforced by abl_server_throughput itself "
                "(exit 1 below the threshold)",
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  cold open:      p50 {doc['cold_open']['p50_ms']} ms, "
      f"{doc['cold_open']['req_per_s']} req/s")
print(f"  cached session: p50 {doc['cached_session']['p50_ms']} ms, "
      f"{doc['cached_session']['req_per_s']} req/s")
print(f"  speedup:        {doc['acceptance']['cached_vs_cold_p50_x']}x "
      f"(gate >= 10x), fanout {doc['fanout_8_clients']['req_per_s']} req/s")
PY
