#!/usr/bin/env bash
# Build-and-test matrix for the repo. Run from anywhere; builds land in
# build-verify-<config> next to the sources so the default build/ tree is
# left alone.
#
# Matrix:
#   metrics-on   default config (TDBG_METRICS=ON)  — full test suite
#   metrics-off  -DTDBG_METRICS=OFF                — obs layer compiled to
#                no-ops; hammering tests GTEST_SKIP; everything else must
#                still pass
#   tsan         -DTDBG_TSAN=ON                    — ThreadSanitizer build;
#                runs the concurrency-heavy suites
#                (ctest -L "mpi|trace|perf|fault|telemetry|exec|session|server")
#                and must report zero races — the fault label covers the
#                injection seams, which perturb the hot path from extra
#                threadside angles; telemetry covers the flight-recorder
#                seqlock rings and the health heartbeat; exec covers the
#                analysis thread pool and the segmented store's shared
#                LRU cache under concurrent readers; server covers the
#                reader/dispatcher threads, the session cache, and the
#                8-client stress test
#   asan-ubsan   -DTDBG_ASAN=ON                    — Address+UB sanitizers;
#                runs the store/query-heavy suites
#                (ctest -L "trace|analysis|viz|fault|telemetry|exec|session|server")
#                and must report zero memory or UB findings (payload
#                corruption and held-message buffers live here; the
#                session label adds the AnalysisSession invalidation
#                and incremental-recompute contract; server adds the
#                wire codec's malformed-frame handling)
#
# Extras under metrics-on:
#   - grep gate           (matching / vector-clock computation confined
#                          to src/analysis; everything else consumes
#                          Session artifacts)
#   - ctest -L obs        (the obs label must select the obs suite)
#   - abl_pass_fusion     (asserts fused-sweep ≥2x cpu-time over the
#                          N-scan baseline and incremental ≥10x over
#                          full recompute; exits nonzero on drift)
#   - abl_metrics_cost    (asserts the disabled-metric ≤ relaxed-load
#                          budget contract; exits nonzero on drift)
#   - abl_fault_overhead  (asserts the null-injector pointer-test
#                          budget contract; exits nonzero on drift)
#   - abl_telemetry_overhead (asserts the suppressed-TDBG_LOG ≤
#                          relaxed-load budget contract; exits nonzero
#                          on drift)
#   - abl_parallel_analysis (asserts analysis reports are byte-identical
#                          at 1/2/4/8 threads, and the ≥3x speedup gate
#                          where 8 hardware threads exist)
#   - abl_columnar_store  (asserts v3-vs-v2 artifact byte-identity, the
#                          ≤0.35x on-disk size gate, the ≥2x cold-sweep
#                          gate, and the ≥4x rank-window gate)
#   - trace conversion round-trip smoke (v2 → v3 → v2 must be
#     byte-identical; converted v3 reports as binary-v3 in `info`)
#   - tdbg_cli ring4 --stats smoke (per-rank sends/recvs/bytes visible)
#   - tdbg_cli ring4 --fault-plan deadlock_ring smoke (injected hold
#     must deadlock the ring, flush a readable partial trace, auto-dump
#     a flight log naming the hold, and export a Chrome trace with app
#     events plus ≥4 distinct debugger self-span names)
#   - tdbg_client e2e smoke (serve the deadlock_ring partial trace with
#     `tdbg_cli serve`, then ping / match / deadlock (must report
#     STALLED, exit 3) / shutdown over the Unix socket, and the server
#     must drain cleanly)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local bdir="$repo/build-verify-$name"
  echo "=== config $name: cmake $* ==="
  cmake -B "$bdir" -S "$repo" "$@" >/dev/null
  cmake --build "$bdir" -j "$jobs"
  (cd "$bdir" && ctest --output-on-failure -j "$jobs")
}

run_config metrics-on
run_config metrics-off -DTDBG_METRICS=OFF

echo "=== config tsan: lock-free mailbox + trace paths under ThreadSanitizer ==="
tsan_bdir="$repo/build-verify-tsan"
cmake -B "$tsan_bdir" -S "$repo" -DTDBG_TSAN=ON >/dev/null
cmake --build "$tsan_bdir" -j "$jobs"
# halt_on_error so a race fails the test that triggered it instead of
# scrolling past; second_deadlock_stack for readable lock reports.
(cd "$tsan_bdir" && \
 TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
 ctest -L 'mpi|trace|perf|fault|telemetry|exec|session|server' --output-on-failure -j "$jobs")

echo "=== config asan-ubsan: trace store + query layers under ASan/UBSan ==="
asan_bdir="$repo/build-verify-asan-ubsan"
cmake -B "$asan_bdir" -S "$repo" -DTDBG_ASAN=ON >/dev/null
cmake --build "$asan_bdir" -j "$jobs"
# The segmented store's eviction + by-value event API is exactly the
# kind of code where a stale reference survives by luck: fail loudly.
(cd "$asan_bdir" && \
 ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
 UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
 ctest -L 'trace|analysis|viz|fault|telemetry|exec|session|server' --output-on-failure -j "$jobs")

bdir="$repo/build-verify-metrics-on"

echo "=== grep gate: matching/vector clocks computed only in src/analysis ==="
# The AnalysisSession owns the fused sweep artifacts.  No consumer
# outside src/analysis/ may invoke the pass-level compute entry points
# or construct a CausalOrder directly (src/causality implements the
# clock math the session invokes; everything else goes through
# Session::match_report()/causal_order()/...).
leaks="$(grep -rnE 'compute_match_report|compute_rank_index|compute_traffic|compute_sweep|extend_sweep|CausalOrder\(' \
         "$repo/src" "$repo/tools" "$repo/examples" \
         --include='*.cpp' --include='*.hpp' \
       | grep -vE "^$repo/src/(analysis|causality)/" || true)"
if [[ -n "$leaks" ]]; then
  echo "FAIL: matching/vector-clock computation outside src/analysis:" >&2
  echo "$leaks" >&2
  exit 1
fi
echo "grep gate OK"

echo "=== ctest -L obs ==="
(cd "$bdir" && ctest -L obs --output-on-failure)

echo "=== abl_metrics_cost contract ==="
"$bdir/bench/abl_metrics_cost" --benchmark_min_time=0.05

echo "=== abl_fault_overhead contract ==="
"$bdir/bench/abl_fault_overhead" --benchmark_min_time=0.05

echo "=== abl_telemetry_overhead contract ==="
"$bdir/bench/abl_telemetry_overhead" --benchmark_min_time=0.05

echo "=== abl_pass_fusion fusion + incremental contract ==="
# Asserts, on best-of-5 cpu-time: fused all-analyses sweep >= 2x
# cheaper than the pre-refactor N-scan baseline, and the incremental
# sweep update after a 1% append >= 10x cheaper than a full recompute
# (exit 1 on either failure; the contract runs in main()).
"$bdir/bench/abl_pass_fusion" --benchmark_filter='^$'

echo "=== abl_parallel_analysis determinism + speedup contract ==="
# The binary asserts byte-identical reports at 1/2/4/8 threads before
# any timing, and enforces the 3x gate where 8 hardware threads exist
# (exit 1 on either failure).  Filter out the timed section: the
# contract runs in main().
"$bdir/bench/abl_parallel_analysis" --benchmark_filter='^$'

echo "=== abl_columnar_store size + sweep + window contract ==="
# Asserts analysis artifacts over the v3 columnar store are
# byte-identical to v2 before any timing, then (best-of-reps) the on-
# disk gate (v3 <= 0.35x of v2), the cold full-sweep gate (>= 2x wall
# and cpu), and the rank-filtered window-query gate (>= 4x wall and
# cpu) on a ~2.1M-event trace; exit 1 on any miss.
"$bdir/bench/abl_columnar_store" --reps 5

echo "=== trace format conversion round-trip smoke ==="
# A v2 -> v3 -> v2 conversion chain must reproduce the original v2
# file byte for byte: the columnar encode/decode is lossless and the
# row writer is deterministic.
conv_tmp="$(mktemp -d)"
(cd "$conv_tmp" && \
 "$bdir/tools/tdbg_cli" ring4 --fault-seed 42 --fault-plan deadlock_ring \
   --auto-record </dev/null >/dev/null 2>&1) || true
[[ -f "$conv_tmp/tdbg_fault_partial.trc" ]] || {
  echo "FAIL: no recorded trace to convert" >&2; exit 1; }
"$bdir/tools/tdbg_trace" convert "$conv_tmp/tdbg_fault_partial.trc" \
  "$conv_tmp/trace.v2.trc" v2 >/dev/null
"$bdir/tools/tdbg_trace" convert "$conv_tmp/trace.v2.trc" \
  "$conv_tmp/trace.v3.trc" v3 >/dev/null
"$bdir/tools/tdbg_trace" convert "$conv_tmp/trace.v3.trc" \
  "$conv_tmp/trace.rt.trc" v2 >/dev/null
cmp "$conv_tmp/trace.v2.trc" "$conv_tmp/trace.rt.trc" || {
  echo "FAIL: v2 -> v3 -> v2 conversion is not byte-identical" >&2; exit 1; }
"$bdir/tools/tdbg_trace" info "$conv_tmp/trace.v3.trc" | grep -q 'binary-v3' || {
  echo "FAIL: converted v3 trace not reported as binary-v3" >&2; exit 1; }
rm -rf "$conv_tmp"
echo "conversion round-trip OK"

echo "=== tdbg_cli fault-plan smoke ==="
fault_tmp="$(mktemp -d)"
(cd "$fault_tmp" && \
 printf 'faults\nflightrec\nquit\n' | \
 "$bdir/tools/tdbg_cli" ring4 --fault-seed 42 --fault-plan deadlock_ring \
   --auto-record --chrome-trace chrome.json >cli.out 2>cli.err) || true
grep -q 'DEADLOCKED' "$fault_tmp/cli.out" || {
  echo "FAIL: deadlock_ring plan did not deadlock the ring" >&2; exit 1; }
grep -q 'fault plan' "$fault_tmp/cli.out" || {
  echo "FAIL: faults command missing from CLI output" >&2; exit 1; }
[[ -f "$fault_tmp/tdbg_fault_partial.trc" ]] || {
  echo "FAIL: hung faulted run did not flush a partial trace" >&2; exit 1; }
[[ -f "$fault_tmp/tdbg_flight.log" ]] || {
  echo "FAIL: hung faulted run did not auto-dump a flight log" >&2; exit 1; }
grep -q 'fault.hold' "$fault_tmp/tdbg_flight.log" || {
  echo "FAIL: flight log does not name the injected hold" >&2; exit 1; }
python3 - "$fault_tmp/chrome.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
app = [e for e in events if e.get("ph") == "X" and e.get("pid") == 1]
spans = {e["name"] for e in events if e.get("ph") == "X" and e.get("pid") == 2}
assert app, "chrome trace has no app events"
assert len(spans) >= 4, f"expected >=4 distinct self-span names, got {sorted(spans)}"
print(f"chrome trace OK: {len(app)} app events, self-spans {sorted(spans)}")
PY
rm -rf "$fault_tmp"

echo "=== tdbg_cli ring4 --stats smoke ==="
out="$(printf 'record\nquit\n' | "$bdir/tools/tdbg_cli" ring4 --stats)"
echo "$out" | grep -q 'runtime.calls.send' || {
  echo "FAIL: --stats output missing runtime.calls.send" >&2; exit 1; }
echo "$out" | grep -q 'runtime.bytes_sent' || {
  echo "FAIL: --stats output missing runtime.bytes_sent" >&2; exit 1; }
echo "smoke OK"

echo "=== tdbg_client e2e smoke: serve + query a deadlocked trace ==="
# Record a deadlock_ring partial trace, serve it with `tdbg_cli serve`,
# and drive the server over the wire: ping, match, deadlock (the held
# ring must come back STALLED, exit 3), then a clean drain.
srv_tmp="$(mktemp -d /tmp/tdbg_vfy_XXXXXX)"
(cd "$srv_tmp" && \
 "$bdir/tools/tdbg_cli" ring4 --fault-seed 42 --fault-plan deadlock_ring \
   --auto-record </dev/null >/dev/null 2>&1) || true
[[ -f "$srv_tmp/tdbg_fault_partial.trc" ]] || {
  echo "FAIL: no partial trace to serve" >&2; exit 1; }
sock="$srv_tmp/s.sock"
"$bdir/tools/tdbg_cli" serve --socket "$sock" >"$srv_tmp/serve.out" 2>&1 &
srv_pid=$!
for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.05; done
[[ -S "$sock" ]] || { echo "FAIL: server socket never appeared" >&2; exit 1; }
client="$bdir/tools/tdbg_client"
"$client" "unix:$sock" ping >/dev/null
"$client" "unix:$sock" match "$srv_tmp/tdbg_fault_partial.trc" \
  >"$srv_tmp/match.out"
grep -q 'unmatched' "$srv_tmp/match.out" || {
  echo "FAIL: served match report missing unmatched counts" >&2; exit 1; }
dl_rc=0
"$client" "unix:$sock" deadlock "$srv_tmp/tdbg_fault_partial.trc" \
  >"$srv_tmp/deadlock.out" || dl_rc=$?
[[ "$dl_rc" -eq 3 ]] || {
  echo "FAIL: deadlock op on held ring expected exit 3, got $dl_rc" >&2
  exit 1; }
grep -q 'STALLED' "$srv_tmp/deadlock.out" || {
  echo "FAIL: served deadlock report not STALLED" >&2; exit 1; }
"$client" "unix:$sock" shutdown >/dev/null
wait "$srv_pid" || {
  echo "FAIL: served tdbg_cli did not drain cleanly" >&2; exit 1; }
grep -q 'drained' "$srv_tmp/serve.out" || {
  echo "FAIL: serve mode missing drain summary" >&2; exit 1; }
rm -rf "$srv_tmp"
echo "server e2e smoke OK"

echo "=== verify: all configs green ==="
