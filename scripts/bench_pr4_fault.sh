#!/usr/bin/env bash
# Measures the PR-4 fault-injection seams and emits
# BENCH_pr4_fault.json next to the sources: medians of the three
# pipeline configurations (no injector / armed-but-empty engine /
# active delay plan), the per-message overhead of the empty engine,
# and the disabled-path contract result from abl_fault_overhead's
# built-in assert.
#
# Exits nonzero if:
#   - the binary's own disabled-cost contract fails (exit 1 from the
#     bench: the null-injector check is no longer a pointer test), or
#   - the armed-but-empty engine costs more than 2x the no-injector
#     pipeline per message (the seams must stay cheap even when a
#     session arms an engine with no matching rules).
#
# Usage: scripts/bench_pr4_fault.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr4_fault.json"

[[ -x "$bdir/bench/abl_fault_overhead" ]] || {
  echo "missing $bdir/bench/abl_fault_overhead — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if the null-injector check drifts past its
# relaxed-load budget — propagate that as our own failure.
"$bdir/bench/abl_fault_overhead" \
  --benchmark_min_time=0.2 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$tmp/fault.json"

python3 - "$tmp/fault.json" "$out" <<'PY'
import json
import sys

src, out = sys.argv[1], sys.argv[2]
with open(src) as f:
    data = json.load(f)

medians = {}
items_per_sec = {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["name"].removesuffix("_median")
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    medians[name] = b["real_time"] * scale  # normalize to ns
    if "items_per_second" in b:
        items_per_sec[name] = b["items_per_second"]

required = [
    "BM_PipelineNoInjector", "BM_PipelineEmptyEngine",
    "BM_PipelineDelayPlan",
]
missing = [n for n in required if n not in medians]
assert not missing, f"benchmark output missing {missing}"

# Per-message medians from wall-clock iteration time (the pipeline
# rows batch 20000 / 20000 / 2000 messages per iteration; the
# items_per_second counter uses CPU time, which undercounts a run
# whose work happens on rank threads).
batch = {
    "BM_PipelineNoInjector": 20000,
    "BM_PipelineEmptyEngine": 20000,
    "BM_PipelineDelayPlan": 2000,
}
ns_per_msg = {n: medians[n] / batch[n] for n in required}
empty_x = (ns_per_msg["BM_PipelineEmptyEngine"] /
           ns_per_msg["BM_PipelineNoInjector"])
delay_x = (ns_per_msg["BM_PipelineDelayPlan"] /
           ns_per_msg["BM_PipelineNoInjector"])

doc = {
    "pr": 4,
    "description": "Fault-injection seam overhead on a 2-rank eager "
                   "pipeline (medians of 3 reps): no injector vs "
                   "armed-but-empty FaultEngine vs active delay_storm "
                   "plan; times in ns per message",
    "median_ns_per_msg": {k: round(v, 1) for k, v in sorted(ns_per_msg.items())},
    "overhead_x": {
        "empty_engine": round(empty_x, 2),
        "delay_plan": round(delay_x, 2),
    },
    "acceptance": {
        "empty_engine_overhead_x": round(empty_x, 2),
        "max_allowed_x": 2.0,
        "disabled_path_contract": "asserted by abl_fault_overhead itself "
                                  "(exit 1 on drift)",
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  empty-engine overhead: {doc['overhead_x']['empty_engine']}x")
print(f"  delay-plan cost:       {doc['overhead_x']['delay_plan']}x")
sys.exit(0 if empty_x <= 2.0 else 1)
PY
