#!/usr/bin/env bash
# Measures the PR-7 parallel analysis engine and emits
# BENCH_pr7_parallel.json next to the sources: median times for the
# parallel analysis phases (match + traffic) and the full pipeline at
# 1/2/4/8 threads on a ~2.1M-event synthetic trace, the segmented
# store's cold-scan time with the prefetch pipeline off vs on, and the
# resulting speedups.
#
# Exits nonzero if:
#   - the binary's built-in determinism contract fails (analysis
#     reports not byte-identical across thread counts), or
#   - the host has >= 8 hardware threads and the parallel phases do
#     not reach a 3x speedup at 8 threads (below that core count the
#     gate is physically unreachable; the skip is recorded in the
#     JSON instead).
#
# Usage: scripts/bench_pr7_parallel.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr7_parallel.json"

[[ -x "$bdir/bench/abl_parallel_analysis" ]] || {
  echo "missing $bdir/bench/abl_parallel_analysis — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if any report differs across thread counts, or if
# the hardware-gated 3x check fails — propagate either as our failure.
"$bdir/bench/abl_parallel_analysis" \
  --benchmark_min_time=0.2 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$tmp/parallel.json"

nproc_hw="$(nproc 2>/dev/null || echo 1)"

python3 - "$tmp/parallel.json" "$out" "$nproc_hw" <<'PY'
import json
import sys

src, out, hw = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open(src) as f:
    data = json.load(f)

# Normalize medians to ms.  On machines with fewer cores than the
# requested thread count, wall time cannot improve, so speedups use
# CPU time as the fallback signal that the work actually spread; on a
# full 8-core host wall time is the honest number and is what the
# gate reads.
real_ms, cpu_ms = {}, {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["name"].removesuffix("_median")
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    real_ms[name] = b["real_time"] * scale
    cpu_ms[name] = b["cpu_time"] * scale

required = [
    "BM_MatchTraffic/1", "BM_MatchTraffic/2", "BM_MatchTraffic/4",
    "BM_MatchTraffic/8", "BM_FullPipeline/1", "BM_FullPipeline/8",
    "BM_SegmentedScan/0", "BM_SegmentedScan/1",
]
missing = [n for n in required if n not in real_ms]
assert not missing, f"benchmark output missing {missing}"

def speedups(table, base, keys):
    return {k.split("/")[1]: round(table[base] / table[k], 2) for k in keys}

mt_keys = [f"BM_MatchTraffic/{n}" for n in (1, 2, 4, 8)]
fp_keys = [f"BM_FullPipeline/{n}" for n in (1, 2, 4, 8) if f"BM_FullPipeline/{n}" in real_ms]

gate_enforced = hw >= 8
wall_speedup_8 = real_ms["BM_MatchTraffic/1"] / real_ms["BM_MatchTraffic/8"]

doc = {
    "pr": 7,
    "description": "Parallel analysis engine on a ~2.1M-event trace "
                   "(medians of 3 reps): match+traffic and the full "
                   "pipeline at 1/2/4/8 threads, plus the segmented "
                   "store's cold scan with prefetch off/on; times in ms",
    "hardware_threads": hw,
    "median_ms": {
        "match_traffic": {k.split("/")[1]: round(real_ms[k], 2) for k in mt_keys},
        "full_pipeline": {k.split("/")[1]: round(real_ms[k], 2) for k in fp_keys},
        "segmented_scan": {
            "prefetch_off": round(real_ms["BM_SegmentedScan/0"], 2),
            "prefetch_on": round(real_ms["BM_SegmentedScan/1"], 2),
        },
    },
    "speedup_wall": {
        "match_traffic": speedups(real_ms, "BM_MatchTraffic/1", mt_keys),
        "full_pipeline": speedups(real_ms, "BM_FullPipeline/1", fp_keys),
    },
    "speedup_cpu": {
        "match_traffic": speedups(cpu_ms, "BM_MatchTraffic/1", mt_keys),
        "full_pipeline": speedups(cpu_ms, "BM_FullPipeline/1", fp_keys),
    },
    "determinism": "asserted by abl_parallel_analysis itself before "
                   "timing (exit 1 when reports differ across 1/2/4/8 "
                   "threads)",
    "acceptance": {
        "required_speedup_x": 3.0,
        "measured_wall_speedup_8t": round(wall_speedup_8, 2),
        "gate": ("enforced" if gate_enforced else
                 f"speedup gate skipped: {hw} hardware thread(s) < 8"),
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  match+traffic wall speedup: "
      f"{doc['speedup_wall']['match_traffic']}")
print(f"  match+traffic cpu speedup:  "
      f"{doc['speedup_cpu']['match_traffic']}")
print(f"  prefetch cold scan: "
      f"{doc['median_ms']['segmented_scan']['prefetch_off']} ms -> "
      f"{doc['median_ms']['segmented_scan']['prefetch_on']} ms")
if gate_enforced and wall_speedup_8 < 3.0:
    print(f"FAIL: {wall_speedup_8:.2f}x at 8 threads is below the 3x gate",
          file=sys.stderr)
    sys.exit(1)
print(f"  gate: {doc['acceptance']['gate']}")
PY
