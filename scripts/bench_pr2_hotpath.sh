#!/usr/bin/env bash
# Re-measures the PR-2 hot paths (messaging fast path, trace append,
# Table 1 instrumentation overhead) and emits BENCH_pr2_hotpath.json
# next to the sources: per-benchmark medians, the pre-PR baselines
# measured on the same machine, and the resulting speedups.
#
# Exits nonzero if either acceptance criterion regresses below 2x:
#   - table1_overhead fine-grain overhead ratio (fib 28/30)
#   - abl_trace_flush buffered-append throughput
#
# Usage: scripts/bench_pr2_hotpath.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr2_hotpath.json"

for bin in abl_trace_flush abl_marker_cost abl_channel_throughput \
           table1_overhead; do
  [[ -x "$bdir/bench/$bin" ]] || {
    echo "missing $bdir/bench/$bin — build the bench targets first" >&2
    exit 1
  }
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

gbench_args=(--benchmark_min_time=0.2 --benchmark_repetitions=3
             --benchmark_report_aggregates_only=true)
"$bdir/bench/abl_trace_flush" "${gbench_args[@]}" \
  --benchmark_format=json >"$tmp/trace.json"
"$bdir/bench/abl_marker_cost" "${gbench_args[@]}" \
  --benchmark_format=json >"$tmp/marker.json"
"$bdir/bench/abl_channel_throughput" "${gbench_args[@]}" \
  --benchmark_format=json >"$tmp/channel.json"
"$bdir/bench/table1_overhead" >"$tmp/table1.txt"

python3 - "$tmp" "$out" <<'PY'
import json
import sys

tmp, out = sys.argv[1], sys.argv[2]

def medians(path):
    with open(f"{tmp}/{path}") as f:
        data = json.load(f)
    return {
        b["name"].removesuffix("_median"): b["real_time"]
        for b in data["benchmarks"]
        if b.get("aggregate_name") == "median"
    }

ns = {}
ns.update(medians("trace.json"))
ns.update(medians("marker.json"))
ns.update(medians("channel.json"))

# table1_overhead prints aligned columns: S256 S512 fib28 fib30.
uninstr = instr = None
with open(f"{tmp}/table1.txt") as f:
    for line in f:
        if line.startswith("Time (uninstr.)"):
            uninstr = [float(x) for x in line.split()[-4:]]
        elif line.startswith("Time (instr.)"):
            instr = [float(x) for x in line.split()[-4:]]
assert uninstr and instr, "table1_overhead output changed shape"
overhead = [i / u for i, u in zip(instr, uninstr)]

# Pre-PR medians, measured on this machine at the seed commit (the
# single-mutex mailbox, mutex-guarded trace buffer, steady_clock
# timestamps, unconditional clock reads on the non-recording path).
baseline = {
    "table1_overhead_fib28_x": 49.13,
    "table1_overhead_fib30_x": 47.65,
    "trace_append_buffered_ns": 125.0,
    "trace_autoflush_256_ns": 287.0,
    "trace_autoflush_4096_ns": 300.0,
    "trace_autoflush_65536_ns": 316.0,
    "writer_encode_binary_ns": 272.0,
    "function_scope_in_session_ns": 48.0,
    "msg_pingpong_ns": 3340.0,
    "msg_stream_1to1_ns": 336.0,
    "msg_wildcard_fanin4_ns": 504.0,
    "msg_wildcard_fanin8_ns": 417.0,
    "msg_ssend_rendezvous_ns": 4407.0,
    "msg_payload_stream_4k_ns": 830.0,
}

current = {
    "table1_overhead_fib28_x": overhead[2],
    "table1_overhead_fib30_x": overhead[3],
    "table1_overhead_strassen256_x": overhead[0],
    "table1_overhead_strassen512_x": overhead[1],
    "trace_append_buffered_ns": ns["BM_CollectorAppendBuffered"],
    "trace_autoflush_256_ns": ns["BM_CollectorAutoFlush/256"],
    "trace_autoflush_4096_ns": ns["BM_CollectorAutoFlush/4096"],
    "trace_autoflush_65536_ns": ns["BM_CollectorAutoFlush/65536"],
    "writer_encode_binary_ns": ns["BM_WriterEncodeBinary"],
    "function_scope_in_session_ns": ns["BM_FunctionScopeInSession"],
    "msg_pingpong_ns": ns["BM_PingPong"],
    "msg_stream_1to1_ns": ns["BM_StreamOneToOne"],
    "msg_wildcard_fanin4_ns": ns["BM_WildcardFanIn/4"],
    "msg_wildcard_fanin8_ns": ns["BM_WildcardFanIn/8"],
    "msg_ssend_rendezvous_ns": ns["BM_SsendRendezvous"],
    "msg_payload_stream_4k_ns": ns["BM_PayloadStream4k"],
}

speedup = {
    k: round(baseline[k] / current[k], 2)
    for k in baseline
    if current.get(k)
}

doc = {
    "pr": 2,
    "description": "PR-2 hot-path medians vs the pre-PR baseline "
                   "(same machine; lower raw numbers are better, "
                   "speedup = baseline/current)",
    "baseline_main": baseline,
    "current": {k: round(v, 2) for k, v in current.items()},
    "speedup_x": speedup,
    "acceptance": {
        "table1_fib28_speedup_x": speedup["table1_overhead_fib28_x"],
        "table1_fib30_speedup_x": speedup["table1_overhead_fib30_x"],
        "trace_append_speedup_x": speedup["trace_append_buffered_ns"],
        "required_x": 2.0,
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
for k, v in doc["acceptance"].items():
    print(f"  {k}: {v}")
ok = (doc["acceptance"]["table1_fib28_speedup_x"] >= 2.0
      and doc["acceptance"]["table1_fib30_speedup_x"] >= 2.0
      and doc["acceptance"]["trace_append_speedup_x"] >= 2.0)
sys.exit(0 if ok else 1)
PY
