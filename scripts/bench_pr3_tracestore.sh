#!/usr/bin/env bash
# Measures the PR-3 trace store (segmented v2 format + lazy
# SegmentedTraceStore) against the v1 full-load path on a >1M-event
# trace and emits BENCH_pr3_tracestore.json next to the sources:
# per-benchmark medians plus the speedups the PR claims.
#
# Exits nonzero if either acceptance criterion falls below 10x:
#   - open latency: BM_OpenLazyV2 vs BM_OpenEagerV1
#   - 1% window query: BM_WindowV2Cold vs BM_WindowV1LoadScan
#
# Usage: scripts/bench_pr3_tracestore.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr3_tracestore.json"

[[ -x "$bdir/bench/abl_trace_query" ]] || {
  echo "missing $bdir/bench/abl_trace_query — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bdir/bench/abl_trace_query" \
  --benchmark_min_time=0.2 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$tmp/query.json"

python3 - "$tmp/query.json" "$out" <<'PY'
import json
import sys

src, out = sys.argv[1], sys.argv[2]
with open(src) as f:
    data = json.load(f)

medians = {}
counters = {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["name"].removesuffix("_median")
    medians[name] = b["real_time"]  # in the benchmark's own time_unit
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    medians[name] = b["real_time"] * scale  # normalize to ns
    for key in ("resident_bytes", "resident_segments", "window_events"):
        if key in b:
            counters[key] = b[key]

required = [
    "BM_OpenEagerV1", "BM_OpenLazyV2",
    "BM_WindowV1LoadScan", "BM_WindowV2Cold", "BM_WindowV2Warm",
    "BM_FindMarkerLazy", "BM_LastEventLazy",
]
missing = [n for n in required if n not in medians]
assert not missing, f"benchmark output missing {missing}"

open_x = medians["BM_OpenEagerV1"] / medians["BM_OpenLazyV2"]
window_cold_x = medians["BM_WindowV1LoadScan"] / medians["BM_WindowV2Cold"]
window_warm_x = medians["BM_WindowV1LoadScan"] / medians["BM_WindowV2Warm"]

doc = {
    "pr": 3,
    "description": "Segmented v2 trace store vs v1 full-load on a "
                   "~2.1M-event, 8-rank trace (medians of 3 reps; "
                   "times in ns; speedup = v1/v2)",
    "median_ns": {k: round(v, 1) for k, v in sorted(medians.items())},
    "segment_cache": {k: counters[k] for k in sorted(counters)},
    "speedup_x": {
        "open": round(open_x, 1),
        "window_1pct_cold": round(window_cold_x, 1),
        "window_1pct_warm": round(window_warm_x, 1),
    },
    "acceptance": {
        "open_speedup_x": round(open_x, 1),
        "window_speedup_x": round(window_cold_x, 1),
        "required_x": 10.0,
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
for k, v in doc["speedup_x"].items():
    print(f"  {k}: {v}x")
sys.exit(0 if open_x >= 10.0 and window_cold_x >= 10.0 else 1)
PY
