#!/usr/bin/env bash
# Measures the PR-10 columnar trace store (TDBGTRC3) and emits
# BENCH_pr10_columnar.json next to the sources: on-disk size, cold
# full-sweep and rank-filtered window-query times for the v3 columnar
# format vs the v2 row format on a ~2.1M-event 8-rank trace, plus the
# resulting ratios.
#
# Exits nonzero if any of the binary's built-in gates fail (asserted
# before this script parses anything):
#   - analysis artifacts over v3 differ from v2 byte-for-byte, or
#   - v3 on-disk size > 0.35x of v2, or
#   - cold full sweep < 2x faster than v2 (wall or cpu), or
#   - rank-filtered window queries < 4x faster than v2 (wall or cpu).
#
# Usage: scripts/bench_pr10_columnar.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr10_columnar.json"

[[ -x "$bdir/bench/abl_columnar_store" ]] || {
  echo "missing $bdir/bench/abl_columnar_store — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if any gate fails — propagate that as our
# failure.  The gate numbers land on stderr.
"$bdir/bench/abl_columnar_store" --reps 5 2>"$tmp/gates.txt"
cat "$tmp/gates.txt" >&2

python3 - "$tmp/gates.txt" "$out" <<'PY'
import json
import re
import sys

gates_txt, out = sys.argv[1], sys.argv[2]
gates = open(gates_txt).read()

ident = re.search(
    r"columnar: artifacts byte-identical across v2/v3 \((\d+) events\)",
    gates)
size = re.search(
    r"columnar: size v2 (\d+) bytes, v3 (\d+) bytes -> ([\d.]+)x", gates)
sweep = re.search(
    r"columnar: cold full sweep v2 ([\d.]+) ms wall / ([\d.]+) ms cpu, "
    r"v3 ([\d.]+) ms wall / ([\d.]+) ms cpu -> ([\d.]+)x wall, "
    r"([\d.]+)x cpu", gates)
window = re.search(
    r"columnar: rank-window queries v2 ([\d.]+) ms wall / ([\d.]+) ms cpu, "
    r"v3 ([\d.]+) ms wall / ([\d.]+) ms cpu -> ([\d.]+)x wall, "
    r"([\d.]+)x cpu", gates)
assert ident and size and sweep and window, \
    f"gate lines missing from stderr:\n{gates}"

doc = {
    "pr": 10,
    "description": "TDBGTRC3 columnar trace store vs the v2 row format "
                   "on a ~2.1M-event 8-rank trace: on-disk bytes, cold "
                   "full-sweep time, and 64 narrow rank-filtered window "
                   "queries through the zone-map + column-pruning path; "
                   "best of 5 reps, times in ms",
    "events": int(ident.group(1)),
    "artifacts_byte_identical": True,
    "size_bytes": {
        "v2": int(size.group(1)),
        "v3": int(size.group(2)),
        "v3_over_v2": float(size.group(3)),
    },
    "cold_sweep_ms": {
        "v2_wall": float(sweep.group(1)),
        "v2_cpu": float(sweep.group(2)),
        "v3_wall": float(sweep.group(3)),
        "v3_cpu": float(sweep.group(4)),
        "speedup_wall": float(sweep.group(5)),
        "speedup_cpu": float(sweep.group(6)),
    },
    "rank_window_ms": {
        "v2_wall": float(window.group(1)),
        "v2_cpu": float(window.group(2)),
        "v3_wall": float(window.group(3)),
        "v3_cpu": float(window.group(4)),
        "speedup_wall": float(window.group(5)),
        "speedup_cpu": float(window.group(6)),
    },
    "acceptance": {
        "required_size_ratio": 0.35,
        "required_sweep_x": 2.0,
        "required_window_x": 4.0,
        "gate": "enforced by abl_columnar_store itself (exit 1 on any "
                "miss, after asserting v2/v3 artifact byte-identity)",
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  size:   {doc['size_bytes']['v3_over_v2']}x of v2 "
      f"(gate <= 0.35x)")
print(f"  sweep:  {doc['cold_sweep_ms']['speedup_wall']}x wall / "
      f"{doc['cold_sweep_ms']['speedup_cpu']}x cpu (gate >= 2x)")
print(f"  window: {doc['rank_window_ms']['speedup_wall']}x wall / "
      f"{doc['rank_window_ms']['speedup_cpu']}x cpu (gate >= 4x)")
PY
