#!/usr/bin/env bash
# Measures the PR-6 telemetry layer and emits BENCH_pr6_telemetry.json
# next to the sources: medians of the three pipeline configurations
# (no log statements / suppressed TDBG_LOG per message / flight
# recorder capturing per message), the disabled-path multiplier, and
# the suppressed-log contract result from abl_telemetry_overhead's
# built-in assert.
#
# Exits nonzero if:
#   - the binary's own disabled-cost contract fails (exit 1 from the
#     bench: a suppressed TDBG_LOG is no longer a single level check),
#     or
#   - the suppressed-log pipeline costs more than 1.05x the bare
#     pipeline per message (the acceptance bound: always-on telemetry
#     must be free when nothing is being recorded).
#
# Usage: scripts/bench_pr6_telemetry.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bdir="${1:-$repo/build}"
out="$repo/BENCH_pr6_telemetry.json"

[[ -x "$bdir/bench/abl_telemetry_overhead" ]] || {
  echo "missing $bdir/bench/abl_telemetry_overhead — build the bench targets first" >&2
  exit 1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The binary exits 1 if a suppressed TDBG_LOG drifts past its
# relaxed-load budget — propagate that as our own failure.
"$bdir/bench/abl_telemetry_overhead" \
  --benchmark_min_time=0.2 --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$tmp/telemetry.json"

python3 - "$tmp/telemetry.json" "$out" <<'PY'
import json
import sys

src, out = sys.argv[1], sys.argv[2]
with open(src) as f:
    data = json.load(f)

medians = {}
for b in data["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["name"].removesuffix("_median")
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    medians[name] = b["real_time"] * scale  # normalize to ns

required = [
    "BM_PipelineBare", "BM_PipelineDisabledLog",
    "BM_PipelineFlightRecorder",
]
missing = [n for n in required if n not in medians]
assert not missing, f"benchmark output missing {missing}"

# Per-message medians from wall-clock iteration time (every row
# batches 20000 messages per iteration; the items_per_second counter
# uses CPU time, which undercounts a run whose work happens on rank
# threads).
batch = 20000
ns_per_msg = {n: medians[n] / batch for n in required}
disabled_x = (ns_per_msg["BM_PipelineDisabledLog"] /
              ns_per_msg["BM_PipelineBare"])
recording_x = (ns_per_msg["BM_PipelineFlightRecorder"] /
               ns_per_msg["BM_PipelineBare"])

doc = {
    "pr": 6,
    "description": "Telemetry overhead on a 2-rank eager pipeline "
                   "(medians of 3 reps): no log statements vs one "
                   "suppressed TDBG_LOG per message vs the flight "
                   "recorder capturing per message; times in ns per "
                   "message",
    "median_ns_per_msg": {k: round(v, 1) for k, v in sorted(ns_per_msg.items())},
    "overhead_x": {
        "disabled_log": round(disabled_x, 3),
        "flight_recorder": round(recording_x, 3),
    },
    "acceptance": {
        "disabled_log_overhead_x": round(disabled_x, 3),
        "max_allowed_x": 1.05,
        "disabled_path_contract": "asserted by abl_telemetry_overhead "
                                  "itself (exit 1 on drift)",
    },
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out}")
print(f"  suppressed-log overhead: {doc['overhead_x']['disabled_log']}x")
print(f"  flight-recorder cost:    {doc['overhead_x']['flight_recorder']}x")
sys.exit(0 if disabled_x <= 1.05 else 1)
PY
