#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <sstream>

namespace tdbg::telemetry {

namespace {

/// JSON string escaping for names (site names are identifiers, but a
/// user-provided construct name could contain anything).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// ns -> µs with three decimals (keeps full ns precision in the µs
/// unit the format mandates).
std::string us(support::TimeNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? -(ns % 1000) : ns % 1000));
  return buf;
}

}  // namespace

void ChromeTraceWriter::set_process_name(int pid, std::string_view name) {
  std::ostringstream os;
  os << R"({"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"tid":0,"args":{"name":")" << escape(name) << R"("}})";
  events_.push_back(os.str());
}

void ChromeTraceWriter::set_thread_name(int pid, int tid,
                                        std::string_view name) {
  std::ostringstream os;
  os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
     << tid << R"(,"args":{"name":")" << escape(name) << R"("}})";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_complete(int pid, int tid, std::string_view name,
                                     support::TimeNs t_start,
                                     support::TimeNs dur_ns,
                                     std::string_view args_json) {
  if (t_start < 0) t_start = 0;
  if (dur_ns < 0) dur_ns = 0;
  std::ostringstream os;
  os << R"({"name":")" << escape(name) << R"(","ph":"X","ts":)" << us(t_start)
     << R"(,"dur":)" << us(dur_ns) << R"(,"pid":)" << pid << R"(,"tid":)"
     << tid;
  if (!args_json.empty()) os << R"(,"args":{)" << args_json << "}";
  os << "}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_instant(int pid, int tid, std::string_view name,
                                    support::TimeNs t,
                                    std::string_view args_json) {
  if (t < 0) t = 0;
  std::ostringstream os;
  os << R"({"name":")" << escape(name) << R"(","ph":"i","s":"t","ts":)"
     << us(t) << R"(,"pid":)" << pid << R"(,"tid":)" << tid;
  if (!args_json.empty()) os << R"(,"args":{)" << args_json << "}";
  os << "}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_spans(const std::vector<SpanRecord>& spans,
                                  int pid) {
  for (const auto& span : spans) {
    // Rank threads keep their rank as the tid; utility threads
    // (driver, watchdog, flusher) share row 99 below the ranks.
    const int tid = span.rank < 0 ? 99 : span.rank;
    add_complete(pid, tid, site_name(span.name), span.t_start,
                 span.t_end - span.t_start);
  }
}

std::string ChromeTraceWriter::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n" << events_[i];
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace tdbg::telemetry
