#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "support/clock.hpp"
#include "telemetry/log.hpp"

/// \file span.hpp
/// Span-based self-profiling: a `Span` is an RAII begin/end pair over
/// a named phase of the *debugger's own* machinery — record, replay,
/// analysis, checkpoint, fault injection, and the mini-MPI slow paths
/// (match wait, park, trace flush).  Completed spans land in a global
/// bounded collector and export to Chrome trace-event JSON
/// (`chrome_trace.hpp`), so a whole session opens in
/// chrome://tracing / Perfetto on a synthetic "tdbg" track next to the
/// application's message events.
///
/// Spans complement `obs::ScopedTimer`: the timer folds durations into
/// a histogram (cheap, aggregated); a span keeps the individual
/// begin/end pair (plottable).  Both share the cold-path contract —
/// when the collector is disabled, constructing a span is one relaxed
/// load and no clock read.

namespace tdbg::telemetry {

/// One completed span.  Times are run-relative (`run_time_ns`
/// display time), like trace events.
struct SpanRecord {
  std::uint32_t name = 0;  ///< interned site id (`site_name` decodes)
  int rank = -1;           ///< thread rank at begin; -1 = driver/util
  support::TimeNs t_start = 0;
  support::TimeNs t_end = 0;
};

/// Bounded global collector of completed spans.  Writers claim slots
/// with one fetch_add and never block; when full, further spans are
/// counted as dropped rather than overwriting (a self-profile wants
/// the session's *shape* from the start, unlike the flight recorder's
/// tail window).
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = kDefaultCapacity);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// The process-wide collector `Span` reports to.
  static SpanCollector& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Records one completed span (begin/end already measured).
  void add(std::uint32_t name, int rank, support::TimeNs t_start,
           support::TimeNs t_end);

  /// Copy of every completed span so far, in completion order.  Safe
  /// against concurrent writers (unpublished slots are skipped).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Spans rejected because the collector was full.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Forgets every span.  Callers must ensure no spans are completing
  /// concurrently (the recorder resets between runs, while the world
  /// is quiescent).
  void reset();

  static constexpr std::size_t kDefaultCapacity = 1 << 14;

 private:
  /// Words per slot: stamp + packed name/rank + t_start + t_end.
  static constexpr std::size_t kSlotWords = 4;

  std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

/// RAII span over the enclosing scope.  Construction with the
/// collector disabled reads no clock and records nothing.
class Span {
 public:
  /// Interns `name` on first use per call path (the lookup takes the
  /// site-registry mutex — fine for phase-granularity sites; hot call
  /// sites should cache `intern_site` in a static and use the id
  /// overload).
  explicit Span(std::string_view name)
      : Span(SpanCollector::global().enabled() ? intern_site(name) : 0u) {}

  /// Id overload: no interning, one relaxed load when disabled.
  explicit Span(std::uint32_t name_id) {
    if (!SpanCollector::global().enabled()) return;
    name_ = name_id;
    // Absolute start: a span can straddle a run-epoch reset (e.g.
    // debugger.record starts before mpi::run re-arms the epoch), so
    // the run-relative pair is derived at completion from the
    // duration instead of captured here.
    start_abs_ = support::now_ns();
    active_ = true;
  }

  ~Span() {
    if (!active_) return;
    const support::TimeNs end_run = support::run_time_ns();
    const support::TimeNs dur = support::now_ns() - start_abs_;
    support::TimeNs start_run = end_run - dur;
    if (start_run < 0) start_run = 0;  // began before this run's epoch
    SpanCollector::global().add(name_, thread_rank(), start_run, end_run);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::uint32_t name_ = 0;
  support::TimeNs start_abs_ = 0;
};

}  // namespace tdbg::telemetry
