#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "support/clock.hpp"

/// \file health.hpp
/// The live health surface: a heartbeat thread samples every rank's
/// progress — marker counter, mailbox depth, trace backlog, wait
/// state — through a caller-supplied probe, keeps the latest per-rank
/// picture for the debugger's `health` command, accumulates the
/// samples into an `obs::MetricsSeries`, and flags ranks that stop
/// making progress *before* the deadlock watchdog fires (a stalled
/// rank gets a WARN in the flight recorder the moment it crosses the
/// threshold, so the black box explains the hang).
///
/// The probe is a `std::function`, so this layer knows nothing about
/// the runtime: `replay::record` builds the probe from the live
/// world + session + collector and tears the monitor down before
/// they die; afterwards the cached snapshot stays readable.

namespace tdbg::telemetry {

/// One rank's sampled state.
struct HealthSample {
  enum class State : std::uint8_t {
    kRunning,
    kBlocked,   ///< in a recv/ssend wait
    kFinished,
    kUnknown,
  };

  State state = State::kUnknown;
  std::uint64_t marker = 0;       ///< execution-marker counter
  std::uint64_t mailbox_depth = 0;
  std::uint64_t trace_backlog = 0;  ///< unflushed collector records
  std::string detail;               ///< e.g. "recv <- rank 2 tag 5"
};

std::string_view health_state_name(HealthSample::State state);

/// Heartbeat configuration.
struct HealthOptions {
  std::chrono::milliseconds interval{25};
  /// A blocked rank whose marker has not moved for this long is
  /// flagged as stalled (well under the watchdog's quiescence
  /// verdict, which needs *global* stability).
  std::chrono::milliseconds stall_after{200};
  /// Rows kept in the metrics series (bounds memory on long runs).
  std::size_t max_series_rows = 4096;
};

/// Heartbeat sampler over `num_ranks` ranks.
class HealthMonitor {
 public:
  using Probe = std::function<HealthSample(int rank)>;

  HealthMonitor(int num_ranks, Probe probe, HealthOptions options = {});

  /// Joins the heartbeat thread.
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Starts the heartbeat.  No-op if already running.
  void start();

  /// Stops and joins the heartbeat; the last snapshot stays readable.
  /// After `stop`, the probe is never called again.
  void stop();

  /// Latest per-rank picture.
  struct RankHealth {
    HealthSample sample;
    support::TimeNs last_progress_ns = 0;  ///< when the marker last moved
    bool stalled = false;
  };

  [[nodiscard]] std::vector<RankHealth> snapshot() const;

  /// The accumulated heartbeat series (one row per tick).
  [[nodiscard]] const obs::MetricsSeries& series() const { return series_; }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// The `health` command's text: per-rank state, last progress age,
  /// queue depths, stall flags.
  [[nodiscard]] std::string report() const;

 private:
  void loop();
  void sample_once();

  int num_ranks_;
  Probe probe_;
  HealthOptions options_;

  mutable std::mutex mu_;  ///< guards states_, series_, ticks_
  std::vector<RankHealth> states_;
  obs::MetricsSeries series_;
  std::uint64_t ticks_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace tdbg::telemetry
