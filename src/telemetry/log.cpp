#include "telemetry/log.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace tdbg::telemetry {

namespace {

thread_local int tl_rank = -1;

/// Site registry: append-only, id = index.  Lookups by name take the
/// mutex; call sites cache ids in function-local statics so the lock
/// is paid once per site, not per record.
struct SiteRegistry {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> by_name;
};

SiteRegistry& sites() {
  static SiteRegistry* reg = new SiteRegistry();  // leaked: outlives TLS dtors
  return *reg;
}

constexpr std::uint64_t pack_meta(std::uint32_t site, int rank,
                                  LogLevel level) {
  return (static_cast<std::uint64_t>(site) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(
              static_cast<std::int16_t>(rank)))
          << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(level));
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::uint32_t intern_site(std::string_view name) {
  auto& reg = sites();
  std::lock_guard lk(reg.mu);
  const auto it = reg.by_name.find(std::string(name));
  if (it != reg.by_name.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(reg.names.size());
  reg.names.emplace_back(name);
  reg.by_name.emplace(reg.names.back(), id);
  return id;
}

std::string site_name(std::uint32_t id) {
  auto& reg = sites();
  std::lock_guard lk(reg.mu);
  if (id >= reg.names.size()) return "?";
  return reg.names[id];
}

void set_thread_rank(int rank) { tl_rank = rank; }

int thread_rank() { return tl_rank; }

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(capacity, 2))) {
  for (auto& ring : rings_) {
    ring.words =
        std::make_unique<std::atomic<std::uint64_t>[]>(capacity_ * kSlotWords);
    for (std::size_t i = 0; i < capacity_ * kSlotWords; ++i) {
      ring.words[i].store(0, std::memory_order_relaxed);
    }
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: see sites()
  return *recorder;
}

void FlightRecorder::log(LogLevel level, std::uint32_t site, std::uint64_t a0,
                         std::uint64_t a1) {
  log_rank(tl_rank, level, site, a0, a1);
}

void FlightRecorder::log_rank(int rank, LogLevel level, std::uint32_t site,
                              std::uint64_t a0, std::uint64_t a1) {
  if (!enabled(level)) return;
  Ring& ring = rings_[ring_of(rank)];
  // Claim a unique slot; concurrent writers on the no-rank ring get
  // disjoint indices, so only a wrapped overwriter can race a reader.
  const std::uint64_t idx = ring.cursor.fetch_add(1, std::memory_order_relaxed);
  auto* w = &ring.words[(idx & (capacity_ - 1)) * kSlotWords];
  // Seqlock over atomic words: invalidate the stamp, fence, write the
  // payload, publish.  A reader that still sees the *old* stamp after
  // its acquire fence cannot have observed any of these payload
  // writes (the release fence orders the invalidation before them).
  w[0].store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  // Absolute time: the recorder outlives run-epoch resets, and only
  // absolute stamps sort records from successive runs correctly.
  // `dump` converts to run-relative display time.
  w[1].store(static_cast<std::uint64_t>(support::now_ns()),
             std::memory_order_relaxed);
  w[2].store(a0, std::memory_order_relaxed);
  w[3].store(a1, std::memory_order_relaxed);
  w[4].store(pack_meta(site, rank, level), std::memory_order_relaxed);
  w[0].store(idx + 1, std::memory_order_release);
  appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LogRecord> FlightRecorder::dump() const {
  std::vector<LogRecord> out;
  const support::TimeNs epoch = support::run_epoch_ns();
  for (const auto& ring : rings_) {
    const std::uint64_t cursor = ring.cursor.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(cursor, capacity_);
    for (std::uint64_t i = 0; i < live; ++i) {
      const auto* w = &ring.words[i * kSlotWords];
      const std::uint64_t s1 = w[0].load(std::memory_order_acquire);
      if (s1 == 0) continue;  // invalidated mid-write
      LogRecord rec;
      rec.seq = s1 - 1;
      rec.t = static_cast<support::TimeNs>(
                  w[1].load(std::memory_order_relaxed)) -
              epoch;  // pre-run records come out negative (and old)
      rec.a0 = w[2].load(std::memory_order_relaxed);
      rec.a1 = w[3].load(std::memory_order_relaxed);
      const std::uint64_t meta = w[4].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (w[0].load(std::memory_order_relaxed) != s1) continue;  // torn
      rec.site = static_cast<std::uint32_t>(meta >> 32);
      rec.rank = static_cast<std::int16_t>((meta >> 16) & 0xFFFF);
      rec.level = static_cast<LogLevel>(meta & 0xFF);
      out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(), [](const LogRecord& a, const LogRecord& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  });
  return out;
}

std::string FlightRecorder::dump_text(std::size_t max_records) const {
  auto records = dump();
  std::size_t first = 0;
  if (max_records != 0 && records.size() > max_records) {
    first = records.size() - max_records;
  }
  std::ostringstream os;
  for (std::size_t i = first; i < records.size(); ++i) {
    const auto& r = records[i];
    os << "t=" << r.t << "ns rank=" << r.rank << " " << log_level_name(r.level)
       << " " << site_name(r.site);
    if (r.a0 != 0 || r.a1 != 0) os << " a0=" << r.a0;
    if (r.a1 != 0) os << " a1=" << r.a1;
    os << "\n";
  }
  return os.str();
}

}  // namespace tdbg::telemetry
