#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/clock.hpp"
#include "telemetry/span.hpp"

/// \file chrome_trace.hpp
/// Chrome `trace_event` JSON export.  The writer accumulates complete
/// events ("ph":"X") and instants ("ph":"i") plus process/thread
/// metadata, and renders the standard `{"traceEvents":[...]}` object
/// that chrome://tracing and Perfetto load directly.
///
/// Conventions used by the exporters in this repo:
///   pid 1 = the traced application (one tid per rank)
///   pid 2 = "tdbg" — the debugger/runtime self-spans
/// Timestamps are microseconds (the format's unit) with sub-µs
/// precision kept as decimals, converted from run-relative ns.

namespace tdbg::telemetry {

class ChromeTraceWriter {
 public:
  /// Names a process track ("process_name" metadata event).
  void set_process_name(int pid, std::string_view name);

  /// Names one thread row within a process track.
  void set_thread_name(int pid, int tid, std::string_view name);

  /// A complete event: `dur` nanoseconds starting at `t_start`
  /// (run-relative ns).  `args_json`, when non-empty, must be a valid
  /// JSON object body without braces (e.g. `"peer":3,"tag":7`).
  void add_complete(int pid, int tid, std::string_view name,
                    support::TimeNs t_start, support::TimeNs dur_ns,
                    std::string_view args_json = {});

  /// A zero-duration instant event (thread scope).
  void add_instant(int pid, int tid, std::string_view name,
                   support::TimeNs t, std::string_view args_json = {});

  /// Appends every span on the synthetic self-profile track.
  void add_spans(const std::vector<SpanRecord>& spans, int pid = kTdbgPid);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// The full `{"traceEvents":[...]}` document.
  [[nodiscard]] std::string str() const;
  void write(std::ostream& os) const;

  static constexpr int kAppPid = 1;
  static constexpr int kTdbgPid = 2;

 private:
  std::vector<std::string> events_;  ///< pre-rendered JSON objects
};

}  // namespace tdbg::telemetry
