#include "telemetry/span.hpp"

#include <algorithm>
#include <bit>

namespace tdbg::telemetry {

namespace {

constexpr std::uint64_t pack_name_rank(std::uint32_t name, int rank) {
  return (static_cast<std::uint64_t>(name) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank));
}

}  // namespace

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
      words_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity_ *
                                                            kSlotWords)) {
  for (std::size_t i = 0; i < capacity_ * kSlotWords; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

SpanCollector& SpanCollector::global() {
  static SpanCollector* collector = new SpanCollector();  // leaked on purpose
  return *collector;
}

void SpanCollector::add(std::uint32_t name, int rank, support::TimeNs t_start,
                        support::TimeNs t_end) {
  if (!enabled()) return;
  const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto* w = &words_[idx * kSlotWords];
  // Slots are written once (no wrap), so a release publish of the
  // stamp after the payload words is enough for readers.
  w[1].store(pack_name_rank(name, rank), std::memory_order_relaxed);
  w[2].store(static_cast<std::uint64_t>(t_start), std::memory_order_relaxed);
  w[3].store(static_cast<std::uint64_t>(t_end), std::memory_order_relaxed);
  w[0].store(1, std::memory_order_release);
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  const std::uint64_t claimed =
      std::min<std::uint64_t>(cursor_.load(std::memory_order_acquire),
                              capacity_);
  std::vector<SpanRecord> out;
  out.reserve(claimed);
  for (std::uint64_t i = 0; i < claimed; ++i) {
    const auto* w = &words_[i * kSlotWords];
    if (w[0].load(std::memory_order_acquire) == 0) continue;  // in flight
    const std::uint64_t packed = w[1].load(std::memory_order_relaxed);
    SpanRecord rec;
    rec.name = static_cast<std::uint32_t>(packed >> 32);
    rec.rank = static_cast<std::int32_t>(packed & 0xFFFFFFFF);
    rec.t_start =
        static_cast<support::TimeNs>(w[2].load(std::memory_order_relaxed));
    rec.t_end =
        static_cast<support::TimeNs>(w[3].load(std::memory_order_relaxed));
    out.push_back(rec);
  }
  return out;
}

void SpanCollector::reset() {
  const std::uint64_t claimed =
      std::min<std::uint64_t>(cursor_.load(std::memory_order_relaxed),
                              capacity_);
  for (std::uint64_t i = 0; i < claimed; ++i) {
    words_[i * kSlotWords].store(0, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
}

}  // namespace tdbg::telemetry
