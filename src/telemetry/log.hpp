#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/clock.hpp"

/// \file log.hpp
/// Structured logging + the flight recorder — the "black box" every
/// run carries.  `TDBG_LOG(level, "site", a0, a1)` writes one
/// fixed-size record (calibrated-TSC timestamp, rank, severity, an
/// interned site id, and two u64 arguments) into a per-rank lock-free
/// ring buffer.  The rings are always on: when a run crashes or the
/// watchdog declares deadlock, the last records explain what the
/// *system* — runtime, fault engine, debugger — was doing in the
/// moments before, and the debugger's `flightrec` command dumps them
/// on demand.
///
/// Design constraints (mirroring `obs::metrics.hpp`):
///
///  1. A *suppressed* log statement costs one relaxed atomic load
///     (asserted by `bench/abl_telemetry_overhead`).
///  2. Writers never block and never allocate: a record is one
///     fetch_add to claim a slot plus five relaxed word stores and a
///     release publish.  Concurrent writers on the same ring (the
///     no-rank ring collects driver/watchdog/flusher threads) claim
///     disjoint slots.
///  3. Readers (`dump`) are safe against concurrent writers: each
///     slot is a seqlock over atomic words — invalidate, fence,
///     payload, publish — so a torn read is detected and skipped, and
///     ThreadSanitizer sees only atomic accesses.

namespace tdbg::telemetry {

/// Record severities.  The recorder keeps records at or above its
/// minimum level; `set_min_level(LogLevel::kOff)` suppresses
/// everything (the measured disabled path).
enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 255,
};

std::string_view log_level_name(LogLevel level);

/// Interns a site name (the log message / span name), returning a
/// stable process-wide id.  Repeated calls with the same name return
/// the same id.  Takes a mutex — call sites cache the id in a
/// function-local static (the `TDBG_LOG` macro does this).
std::uint32_t intern_site(std::string_view name);

/// The name behind an interned id ("?" for an unknown id).
std::string site_name(std::uint32_t id);

/// Binds the calling thread to a rank for attribution (the mini-MPI
/// runtime binds each rank thread; unbound threads report rank -1 and
/// share the no-rank ring).
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// One decoded flight-recorder record.
struct LogRecord {
  std::uint64_t seq = 0;      ///< global claim order within its ring
  support::TimeNs t = 0;      ///< run-relative time (`run_time_ns`)
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint32_t site = 0;
  int rank = -1;
  LogLevel level = LogLevel::kInfo;
};

/// Fixed-capacity per-rank ring buffers of structured records; the
/// oldest records are overwritten once a ring is full, so the recorder
/// always holds the *last* window of activity.
class FlightRecorder {
 public:
  /// \param capacity records per ring (rounded up to a power of two)
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder `TDBG_LOG` writes to.
  static FlightRecorder& global();

  /// True when records at `level` are currently kept.  One relaxed
  /// load — the whole cost of a suppressed `TDBG_LOG`.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<std::uint8_t>(level),
                     std::memory_order_relaxed);
  }

  /// Appends one record to the calling thread's rank ring.  Wait-free.
  void log(LogLevel level, std::uint32_t site, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0);

  /// As `log`, with an explicit rank (for threads acting on behalf of
  /// a rank they are not bound to).
  void log_rank(int rank, LogLevel level, std::uint32_t site,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0);

  /// Snapshot of every ring's live records, merged and sorted by
  /// time.  Safe against concurrent writers (torn slots are skipped).
  [[nodiscard]] std::vector<LogRecord> dump() const;

  /// `dump()` rendered as text, one record per line, oldest first.
  /// With `max_records`, only the newest that many lines.
  [[nodiscard]] std::string dump_text(std::size_t max_records = 0) const;

  /// Records accepted since construction (including overwritten).
  [[nodiscard]] std::uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Rings: slot 0 collects unbound threads; ranks fold modulo like
  /// the obs per-rank cells.
  static constexpr std::size_t kRings = 33;

 private:
  /// Words per record slot: stamp + time + a0 + a1 + packed
  /// site/rank/level.
  static constexpr std::size_t kSlotWords = 5;

  struct alignas(64) Ring {
    std::atomic<std::uint64_t> cursor{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };

  static std::size_t ring_of(int rank) {
    return rank < 0 ? 0 : 1 + static_cast<std::size_t>(rank) % (kRings - 1);
  }

  std::size_t capacity_;  ///< power of two
  std::atomic<std::uint8_t> min_level_{
      static_cast<std::uint8_t>(LogLevel::kDebug)};
  std::atomic<std::uint64_t> appended_{0};
  std::array<Ring, kRings> rings_;
};

}  // namespace tdbg::telemetry

/// Logs one structured record to the global flight recorder.  The
/// site string is interned once per call site; a suppressed level
/// costs a single relaxed load.  Up to two u64 arguments ride along:
///
///   TDBG_LOG(tdbg::telemetry::LogLevel::kWarn, "mpi.abort", rank);
#define TDBG_LOG(level, site, ...)                                          \
  do {                                                                      \
    auto& tdbg_log_rec_ = ::tdbg::telemetry::FlightRecorder::global();      \
    if (tdbg_log_rec_.enabled(level)) {                                     \
      static const std::uint32_t tdbg_log_site_ =                           \
          ::tdbg::telemetry::intern_site(site);                             \
      tdbg_log_rec_.log((level), tdbg_log_site_ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                       \
  } while (0)
