#include "telemetry/health.hpp"

#include <sstream>

#include "telemetry/log.hpp"

namespace tdbg::telemetry {

std::string_view health_state_name(HealthSample::State state) {
  switch (state) {
    case HealthSample::State::kRunning: return "running";
    case HealthSample::State::kBlocked: return "blocked";
    case HealthSample::State::kFinished: return "finished";
    case HealthSample::State::kUnknown: return "unknown";
  }
  return "?";
}

HealthMonitor::HealthMonitor(int num_ranks, Probe probe, HealthOptions options)
    : num_ranks_(num_ranks), probe_(std::move(probe)),
      options_(options),
      states_(static_cast<std::size_t>(num_ranks)) {}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::start() {
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void HealthMonitor::stop() {
  if (!running_) return;
  {
    std::lock_guard lk(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  running_ = false;
}

void HealthMonitor::loop() {
  std::unique_lock lk(wake_mu_);
  for (;;) {
    if (wake_cv_.wait_for(lk, options_.interval,
                          [this] { return stop_requested_; })) {
      // One final sample on the way out, so even a sub-interval run
      // leaves a picture behind for the `health` command.
      lk.unlock();
      sample_once();
      return;
    }
    lk.unlock();
    sample_once();
    lk.lock();
  }
}

void HealthMonitor::sample_once() {
  const support::TimeNs now = support::run_time_ns();
  const support::TimeNs stall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.stall_after)
          .count();

  auto& registry = obs::MetricsRegistry::global();
  auto& depth_gauge = registry.gauge("telemetry.health.mailbox_depth");
  auto& backlog_gauge = registry.gauge("telemetry.health.trace_backlog");
  auto& stalled_counter = registry.counter("telemetry.health.stall_flags");

  std::lock_guard lk(mu_);
  for (int r = 0; r < num_ranks_; ++r) {
    auto& st = states_[static_cast<std::size_t>(r)];
    HealthSample sample = probe_(r);
    const bool progressed = ticks_ == 0 || sample.marker != st.sample.marker ||
                            sample.state != st.sample.state;
    if (progressed) {
      st.last_progress_ns = now;
      st.stalled = false;
    } else if (!st.stalled && sample.state == HealthSample::State::kBlocked &&
               now - st.last_progress_ns >= stall_ns) {
      st.stalled = true;
      stalled_counter.add(r);
      // The flight recorder hears about the stall the moment it is
      // flagged — long before the watchdog's global verdict.
      TDBG_LOG(LogLevel::kWarn, "health.stalled_rank",
               static_cast<std::uint64_t>(r), sample.marker);
    }
    depth_gauge.set(r, sample.mailbox_depth);
    backlog_gauge.set(r, sample.trace_backlog);
    st.sample = std::move(sample);
  }
  ++ticks_;
  if (series_.rows() < options_.max_series_rows) {
    series_.add(registry.snapshot());
  }
}

std::vector<HealthMonitor::RankHealth> HealthMonitor::snapshot() const {
  std::lock_guard lk(mu_);
  return states_;
}

std::string HealthMonitor::report() const {
  std::lock_guard lk(mu_);
  const support::TimeNs now = support::run_time_ns();
  std::ostringstream os;
  os << "heartbeat: " << ticks_ << " tick(s) @ "
     << options_.interval.count() << "ms, " << series_.rows()
     << " series row(s)\n";
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& st = states_[static_cast<std::size_t>(r)];
    os << "  rank " << r << ": " << health_state_name(st.sample.state);
    if (!st.sample.detail.empty()) os << " (" << st.sample.detail << ")";
    os << "  marker " << st.sample.marker << "  mailbox "
       << st.sample.mailbox_depth << "  backlog " << st.sample.trace_backlog;
    const auto age_ms = (now - st.last_progress_ns) / 1'000'000;
    os << "  last progress " << (age_ms < 0 ? 0 : age_ms) << "ms ago";
    if (st.stalled) os << "  STALLED";
    os << "\n";
  }
  return os.str();
}

}  // namespace tdbg::telemetry
