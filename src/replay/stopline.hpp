#pragma once

#include <optional>
#include <vector>

#include "causality/causal_order.hpp"
#include "trace/trace.hpp"

/// \file stopline.hpp
/// Stoplines — breakpoints in the timeline (paper §3.1, §4.1).
///
/// A stopline compiles to one execution-marker threshold per rank: on
/// replay, each rank stops right before generating that marker.  Three
/// placements are supported:
///
///  * **vertical** — the user clicks a time `t` in the time-space
///    diagram; each rank stops after its last event completed by `t`.
///    Consistency follows from message causality in the trace (no
///    receive completes before its send), with an explicit
///    `restrict_to_consistent` pass guarding the one racy edge case
///    (synchronous-send completion timestamps).
///
///  * **past frontier** — each rank stops "immediately after the point
///    where it could last affect the selected state" (§4.1).
///
///  * **future frontier** — each rank stops "immediately before the
///    point where it could first be affected by the selected state".

namespace tdbg::replay {

/// Compiled stopline: per-rank marker thresholds.  A rank with no
/// threshold runs to completion.
struct Stopline {
  std::vector<std::optional<std::uint64_t>> thresholds;

  friend bool operator==(const Stopline&, const Stopline&) = default;
};

/// Vertical stopline at display time `t` (consistent by construction;
/// see file comment).  `report` and `index` come from the trace's
/// `analysis::Session`.
Stopline stopline_at_time(const trace::Trace& trace,
                          const trace::MatchReport& report,
                          const trace::RankIndex& index, support::TimeNs t);

/// Stopline along the past frontier of event `e`.
Stopline stopline_past_frontier(const causality::CausalOrder& order,
                                std::size_t e);

/// Stopline along the future frontier of event `e`.
Stopline stopline_future_frontier(const causality::CausalOrder& order,
                                  std::size_t e);

/// Stopline from an explicit cut.
Stopline stopline_from_cut(const trace::Trace& trace,
                           const causality::Cut& cut);

}  // namespace tdbg::replay
