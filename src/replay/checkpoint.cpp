#include "replay/checkpoint.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "telemetry/span.hpp"

namespace tdbg::replay {

namespace {

struct CheckpointMetrics {
  obs::Counter& retained =
      obs::MetricsRegistry::global().counter("replay.checkpoints_retained");
  obs::Counter& bytes = obs::MetricsRegistry::global().counter(
      "replay.checkpoint_bytes_offered");
  obs::Histogram& save_ns = obs::MetricsRegistry::global().histogram(
      "replay.checkpoint_save_ns", obs::Unit::kNanoseconds);
};

CheckpointMetrics& checkpoint_metrics() {
  static CheckpointMetrics metrics;
  return metrics;
}

}  // namespace

CheckpointStore::CheckpointStore(int num_ranks, std::uint64_t interval)
    : interval_(std::max<std::uint64_t>(1, interval)),
      per_rank_(static_cast<std::size_t>(num_ranks)) {
  TDBG_CHECK(num_ranks > 0, "checkpoint store needs at least one rank");
}

bool CheckpointStore::offer(mpi::Rank rank, std::uint64_t marker,
                            std::vector<std::byte> state) {
  obs::ScopedTimer timer(checkpoint_metrics().save_ns, rank);
  static const std::uint32_t kSite = telemetry::intern_site("debugger.checkpoint");
  telemetry::Span span(kSite);
  std::lock_guard lk(mu_);
  auto& slot = per_rank_.at(static_cast<std::size_t>(rank));
  const std::uint64_t index = marker / interval_;
  if (slot.has_last) {
    TDBG_CHECK(marker >= slot.last_marker,
               "checkpoint markers must be offered in increasing order");
    if (index <= slot.last_index) return false;  // closer than the interval
  }
  slot.has_last = true;
  slot.last_index = index;
  slot.last_marker = marker;
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = checkpoint_metrics();
    metrics.retained.add(rank);
    metrics.bytes.add(rank, state.size());
  }

  // Binary-bucket retention: level k keeps the two most recent
  // snapshots whose index is a multiple of 2^k.  The retained set is
  // O(log span) snapshots, and the distance from any target marker
  // back to the nearest retained snapshot grows proportionally to the
  // target's age — the "logarithmic backlog" of paper §6.
  const auto shared = std::make_shared<const std::vector<std::byte>>(
      std::move(state));
  for (std::size_t k = 0; k < kLevels; ++k) {
    if (index % (std::uint64_t{1} << k) != 0) break;
    auto& level = slot.levels[k];
    level.push_back(Entry{marker, shared});
    if (level.size() > 2) level.pop_front();
  }
  return true;
}

std::optional<Checkpoint> CheckpointStore::best_before(
    mpi::Rank rank, std::uint64_t target) const {
  std::lock_guard lk(mu_);
  const auto& slot = per_rank_.at(static_cast<std::size_t>(rank));
  const Entry* best = nullptr;
  for (const auto& level : slot.levels) {
    for (const auto& e : level) {
      if (e.marker <= target && (best == nullptr || e.marker > best->marker)) {
        best = &e;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return Checkpoint{best->marker, *best->state};
}

std::size_t CheckpointStore::count(mpi::Rank rank) const {
  std::lock_guard lk(mu_);
  const auto& slot = per_rank_.at(static_cast<std::size_t>(rank));
  std::map<std::uint64_t, bool> distinct;
  for (const auto& level : slot.levels) {
    for (const auto& e : level) distinct[e.marker] = true;
  }
  return distinct.size();
}

std::size_t CheckpointStore::total_bytes() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& slot : per_rank_) {
    std::map<std::uint64_t, std::size_t> distinct;
    for (const auto& level : slot.levels) {
      for (const auto& e : level) distinct[e.marker] = e.state->size();
    }
    for (const auto& [marker, bytes] : distinct) n += bytes;
  }
  return n;
}

void CheckpointStore::clear() {
  std::lock_guard lk(mu_);
  for (auto& slot : per_rank_) slot = RankSlot{};
}

}  // namespace tdbg::replay
