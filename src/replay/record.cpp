#include "replay/record.hpp"

#include <sstream>

#include "fault/engine.hpp"
#include "mpi/world.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_hooks.hpp"
#include "telemetry/span.hpp"
#include "trace/collector.hpp"

namespace tdbg::replay {

namespace {

/// Maps one rank's wait-registry entry plus live queue depths to a
/// health sample.  Runs on the heartbeat thread; everything it reads
/// is an atomic or a mutex-guarded snapshot.
telemetry::HealthSample probe_rank(const mpi::World& world,
                                   const instr::Session& session,
                                   const trace::TraceCollector* collector,
                                   int rank) {
  telemetry::HealthSample s;
  s.marker = session.counter(rank);
  s.mailbox_depth = world.mailbox(rank).queued_count(/*user_only=*/true);
  if (collector != nullptr) {
    s.trace_backlog = collector->rank_buffered_count(rank);
  }
  for (const auto& w : world.shared().registry.snapshot()) {
    if (w.rank != rank) continue;
    switch (w.kind) {
      case mpi::WaitKind::kNone:
        s.state = telemetry::HealthSample::State::kRunning;
        break;
      case mpi::WaitKind::kFinished:
        s.state = telemetry::HealthSample::State::kFinished;
        break;
      case mpi::WaitKind::kRecv:
      case mpi::WaitKind::kSsend: {
        s.state = telemetry::HealthSample::State::kBlocked;
        std::ostringstream os;
        os << (w.kind == mpi::WaitKind::kRecv ? "recv <- " : "ssend -> ");
        if (w.peer == mpi::kAnySource) {
          os << "any";
        } else {
          os << "rank " << w.peer;
        }
        if (w.tag != mpi::kAnyTag) os << " tag " << w.tag;
        s.detail = os.str();
        break;
      }
    }
    break;
  }
  return s;
}

}  // namespace

RecordedRun record(int num_ranks, const mpi::RankBody& body,
                   const RecordOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer record_timer(
      registry.histogram("replay.record_ns", obs::Unit::kNanoseconds),
      /*rank=*/-1);
  // One recording = one self-profile: earlier spans belong to a
  // previous session and would double-expose in the Chrome trace.
  telemetry::SpanCollector::global().reset();
  telemetry::Span record_span("debugger.record");
  std::unique_ptr<trace::TraceCollector> collector;
  if (options.collect_trace) {
    collector = std::make_unique<trace::TraceCollector>(
        num_ranks, instr::global_constructs());
  }
  instr::Session session(num_ranks, collector.get(), options.session);
  MatchRecorder recorder(num_ranks);
  // Fault hooks (if any) first: an injected crash must unwind before
  // the call is observed by anything.  Then metrics: begin-side runs
  // before, end-side after, every other hook, so its timing windows
  // bracket the whole instrumented call.
  obs::MetricsHooks metrics_hooks;
  mpi::HookFanout hooks;
  if (options.fault_engine != nullptr) hooks.add(options.fault_engine->hooks());
  hooks.add(&metrics_hooks);
  hooks.add(&session);
  hooks.add(&recorder);

  mpi::RunOptions run_options = options.run;
  run_options.hooks = &hooks;
  run_options.controller = nullptr;
  if (options.fault_engine != nullptr) {
    run_options.fault_injector = options.fault_engine;
  }

  // The heartbeat needs the live world (wait registry, mailboxes),
  // which only exists inside `mpi::run` — so the monitor starts from
  // the world-ready callback and is stopped (thread joined, probe
  // retired) before the session and collector it samples go away.
  RecordedRun out;
  std::shared_ptr<telemetry::HealthMonitor> monitor;
  auto world_slot = std::make_shared<std::shared_ptr<const mpi::World>>();
  if (options.monitor_health) {
    const instr::Session* session_ptr = &session;
    const trace::TraceCollector* collector_ptr = collector.get();
    monitor = std::make_shared<telemetry::HealthMonitor>(
        num_ranks,
        [world_slot, session_ptr, collector_ptr](int rank) {
          return probe_rank(**world_slot, *session_ptr, collector_ptr, rank);
        },
        options.health);
    const auto user_ready = run_options.on_world_ready;
    run_options.on_world_ready =
        [world_slot, monitor,
         user_ready](std::shared_ptr<const mpi::World> world) {
          *world_slot = std::move(world);
          monitor->start();
          if (user_ready) user_ready((*world_slot));
        };
  }

  out.result = mpi::run(num_ranks, body, run_options);
  if (monitor != nullptr) {
    monitor->stop();
    world_slot->reset();  // release the world with the run, not later
    out.health = std::move(monitor);
  }
  if (collector != nullptr) out.trace = collector->build_trace();
  out.log = recorder.take_log();
  return out;
}

}  // namespace tdbg::replay
