#include "replay/record.hpp"

#include "fault/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_hooks.hpp"
#include "trace/collector.hpp"

namespace tdbg::replay {

RecordedRun record(int num_ranks, const mpi::RankBody& body,
                   const RecordOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer record_timer(
      registry.histogram("replay.record_ns", obs::Unit::kNanoseconds),
      /*rank=*/-1);
  std::unique_ptr<trace::TraceCollector> collector;
  if (options.collect_trace) {
    collector = std::make_unique<trace::TraceCollector>(
        num_ranks, instr::global_constructs());
  }
  instr::Session session(num_ranks, collector.get(), options.session);
  MatchRecorder recorder(num_ranks);
  // Fault hooks (if any) first: an injected crash must unwind before
  // the call is observed by anything.  Then metrics: begin-side runs
  // before, end-side after, every other hook, so its timing windows
  // bracket the whole instrumented call.
  obs::MetricsHooks metrics_hooks;
  mpi::HookFanout hooks;
  if (options.fault_engine != nullptr) hooks.add(options.fault_engine->hooks());
  hooks.add(&metrics_hooks);
  hooks.add(&session);
  hooks.add(&recorder);

  mpi::RunOptions run_options = options.run;
  run_options.hooks = &hooks;
  run_options.controller = nullptr;
  if (options.fault_engine != nullptr) {
    run_options.fault_injector = options.fault_engine;
  }

  RecordedRun out;
  out.result = mpi::run(num_ranks, body, run_options);
  if (collector != nullptr) out.trace = collector->build_trace();
  out.log = recorder.take_log();
  return out;
}

}  // namespace tdbg::replay
