#include "replay/record.hpp"

#include "obs/metrics.hpp"
#include "obs/metrics_hooks.hpp"
#include "trace/collector.hpp"

namespace tdbg::replay {

RecordedRun record(int num_ranks, const mpi::RankBody& body,
                   const RecordOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  obs::ScopedTimer record_timer(
      registry.histogram("replay.record_ns", obs::Unit::kNanoseconds),
      /*rank=*/-1);
  std::unique_ptr<trace::TraceCollector> collector;
  if (options.collect_trace) {
    collector = std::make_unique<trace::TraceCollector>(
        num_ranks, instr::global_constructs());
  }
  instr::Session session(num_ranks, collector.get(), options.session);
  MatchRecorder recorder(num_ranks);
  // Metrics first: begin-side runs before, end-side after, every other
  // hook, so its timing windows bracket the whole instrumented call.
  obs::MetricsHooks metrics_hooks;
  mpi::HookFanout hooks{&metrics_hooks, &session, &recorder};

  mpi::RunOptions run_options = options.run;
  run_options.hooks = &hooks;
  run_options.controller = nullptr;

  RecordedRun out;
  out.result = mpi::run(num_ranks, body, run_options);
  if (collector != nullptr) out.trace = collector->build_trace();
  out.log = recorder.take_log();
  return out;
}

}  // namespace tdbg::replay
