#include "replay/record.hpp"

#include "trace/collector.hpp"

namespace tdbg::replay {

RecordedRun record(int num_ranks, const mpi::RankBody& body,
                   const RecordOptions& options) {
  std::unique_ptr<trace::TraceCollector> collector;
  if (options.collect_trace) {
    collector = std::make_unique<trace::TraceCollector>(
        num_ranks, instr::global_constructs());
  }
  instr::Session session(num_ranks, collector.get(), options.session);
  MatchRecorder recorder(num_ranks);
  mpi::HookFanout hooks{&session, &recorder};

  mpi::RunOptions run_options = options.run;
  run_options.hooks = &hooks;
  run_options.controller = nullptr;

  RecordedRun out;
  out.result = mpi::run(num_ranks, body, run_options);
  if (collector != nullptr) out.trace = collector->build_trace();
  out.log = recorder.take_log();
  return out;
}

}  // namespace tdbg::replay
