#include "replay/stopline.hpp"

namespace tdbg::replay {

Stopline stopline_from_cut(const trace::Trace& trace,
                           const causality::Cut& cut) {
  Stopline line;
  line.thresholds = causality::cut_thresholds(trace, cut);
  return line;
}

Stopline stopline_at_time(const trace::Trace& trace,
                          const trace::MatchReport& report,
                          const trace::RankIndex& index, support::TimeNs t) {
  auto cut = causality::cut_at_time(trace, t);
  causality::restrict_to_consistent(trace, report, index, cut);
  return stopline_from_cut(trace, cut);
}

Stopline stopline_past_frontier(const causality::CausalOrder& order,
                                std::size_t e) {
  return stopline_from_cut(order.trace(), order.past_frontier_cut(e));
}

Stopline stopline_future_frontier(const causality::CausalOrder& order,
                                  std::size_t e) {
  return stopline_from_cut(order.trace(), order.future_frontier_cut(e));
}

}  // namespace tdbg::replay
