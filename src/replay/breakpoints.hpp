#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "instrument/session.hpp"

/// \file breakpoints.hpp
/// The control-point implementation of breakpoints: a
/// `BreakpointControl` installed on the instrumentation session blocks
/// each rank when it generates an execution marker the debugger armed
/// (the UserMonitor threshold test of paper §2.2/§4.1), and lets a
/// driver thread wait for the stop, inspect, re-arm, and resume.

namespace tdbg::replay {

/// Where a rank is currently stopped.
struct StopInfo {
  mpi::Rank rank = 0;
  std::uint64_t marker = 0;
  trace::ConstructId construct = trace::kNoConstruct;
  trace::EventKind kind = trace::EventKind::kEnter;
  int depth = 0;
  std::string watch;  ///< non-empty when a watchpoint triggered the stop
};

/// A watchpoint probe: runs on the rank's own thread at every
/// instrumented event, returns true when the watched state changed
/// since the last call.  Must only read memory (it runs under the
/// control lock).
struct WatchProbe {
  std::string name;
  std::function<bool()> changed;
};

/// A message breakpoint: stop a rank when it is about to perform a
/// matching message operation (Ariadne-style event breakpoints, paper
/// §5).  Wildcards (`kAnySource`/`kAnyTag`) match anything; for
/// receives the *requested* endpoints are tested (the operation has
/// not matched yet when the stop fires).
struct MessageBreak {
  bool on_send = true;
  bool on_recv = true;
  mpi::Rank peer = mpi::kAnySource;
  mpi::Tag tag = mpi::kAnyTag;
};

/// Control interface that stops ranks at armed markers (and,
/// optionally, at every event — single-step mode).
///
/// Thread model: rank threads call `at_event` (from inside
/// `UserMonitor`) and block there while stopped; one driver thread
/// arms markers, waits for stops with `wait_until_quiescent`, and
/// resumes ranks.  A stopped rank blocks *before* the marked construct
/// executes.
class BreakpointControl : public instr::ControlInterface {
 public:
  explicit BreakpointControl(int num_ranks);

  // --- called from rank threads (via the session) ----------------------
  void at_event(mpi::Rank rank, std::uint64_t marker,
                trace::ConstructId construct, trace::EventKind kind,
                int depth, bool threshold_hit,
                const instr::EventDetail& detail) override;

  /// Must be called when a rank's body finishes so the driver's
  /// quiescence wait can account for it (wire it to
  /// `ProfilingHooks::on_rank_finish`).
  void mark_finished(mpi::Rank rank);

  // --- called from the driver thread ------------------------------------

  /// Arms a stop at `marker` on `rank` (the UserMonitor threshold).
  void arm_marker(mpi::Rank rank, std::uint64_t marker);

  /// Arms a stop at the next event of `rank` (single step).
  void arm_step(mpi::Rank rank);

  /// Arms a stop at the next event of `rank` whose call depth is <=
  /// `max_depth` (step-over / step-out).
  void arm_step_depth(mpi::Rank rank, int max_depth);

  /// Arms a stop whenever `rank` generates an event at `construct`
  /// (a function breakpoint).  Multiple constructs may be armed.
  void arm_construct(mpi::Rank rank, trace::ConstructId construct);

  /// Arms a watchpoint: `rank` stops at the first instrumented event
  /// after the probe reports a change (the software-instruction-count
  /// watchpoint organization of Mellor-Crummey & LeBlanc, which the
  /// paper's §5 cites as [11]).
  void arm_watch(mpi::Rank rank, WatchProbe probe);

  /// Arms a message breakpoint on `rank`.
  void arm_message(mpi::Rank rank, MessageBreak spec);

  /// Clears every armed condition on `rank`.
  void disarm(mpi::Rank rank);

  /// Resumes `rank` if it is stopped (armed conditions stay armed).
  void resume(mpi::Rank rank);

  /// Resumes every stopped rank.
  void resume_all();

  /// Blocks until every rank is either stopped at a breakpoint or
  /// finished.  Returns the stop states (finished ranks excluded).
  /// This is how the driver knows a stopline has been reached: every
  /// armed rank is parked and the rest have run off the end.
  std::vector<StopInfo> wait_until_quiescent();

  /// Blocks until `rank` is stopped or finished; returns its stop
  /// state (nullopt when it finished).  The caller must ensure the
  /// rank can actually make progress (e.g. it is not waiting on a
  /// message from another stopped rank).
  std::optional<StopInfo> wait_rank(mpi::Rank rank);

  /// Stop state of one rank, if stopped.
  [[nodiscard]] std::optional<StopInfo> stopped_at(mpi::Rank rank) const;

  /// True when the rank's body has finished.
  [[nodiscard]] bool finished(mpi::Rank rank) const;

 private:
  struct RankState {
    // Armed conditions:
    std::uint64_t marker = instr::kNoThreshold;
    bool step = false;
    std::optional<int> step_depth;
    std::vector<trace::ConstructId> constructs;
    std::vector<WatchProbe> watches;
    std::vector<MessageBreak> message_breaks;
    // Current status:
    bool stopped = false;
    bool resume_requested = false;
    bool finished = false;
    StopInfo stop;
  };

  /// nullopt: keep running.  Otherwise stop; the value names the
  /// tripped watchpoint (empty for marker/step/construct stops).
  [[nodiscard]] std::optional<std::string> should_stop(
      RankState& s, std::uint64_t marker, trace::ConstructId construct,
      trace::EventKind kind, int depth, bool threshold_hit,
      const instr::EventDetail& detail) const;
  [[nodiscard]] bool quiescent_locked() const;

  mutable std::mutex mu_;
  std::condition_variable rank_cv_;    ///< wakes stopped rank threads
  std::condition_variable driver_cv_;  ///< wakes the waiting driver
  std::vector<RankState> states_;
};

}  // namespace tdbg::replay
