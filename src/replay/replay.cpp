#include "replay/replay.hpp"

#include <future>

#include "support/error.hpp"

namespace tdbg::replay {

ReplaySession::ReplaySession(int num_ranks, mpi::RankBody body, MatchLog log,
                             instr::SessionOptions session_options,
                             bool collect_trace, bool record_matches)
    : num_ranks_(num_ranks), body_(std::move(body)) {
  TDBG_CHECK(num_ranks > 0, "replay needs at least one rank");
  if (collect_trace) {
    collector_ = std::make_unique<trace::TraceCollector>(
        num_ranks, instr::global_constructs());
  }
  session_ = std::make_unique<instr::Session>(num_ranks, collector_.get(),
                                              session_options);
  controller_ = std::make_unique<ReplayController>(std::move(log));
  control_ = std::make_unique<BreakpointControl>(num_ranks);
  session_->set_control(control_.get());
  finish_hook_ = std::make_unique<FinishHook>(control_.get());
  if (record_matches) {
    recorder_ = std::make_unique<MatchRecorder>(num_ranks);
  }
  metrics_hooks_ = std::make_unique<obs::MetricsHooks>();
  hooks_ = std::make_unique<mpi::HookFanout>();
  // Metrics first so its begin/end windows bracket every other hook's
  // work (HookFanout runs end-side children in reverse order).
  hooks_->add(metrics_hooks_.get());
  hooks_->add(session_.get());
  hooks_->add(recorder_.get());
  hooks_->add(finish_hook_.get());
}

ReplaySession::~ReplaySession() {
  if (started_ && !finished_) {
    for (mpi::Rank r = 0; r < num_ranks_; ++r) control_->disarm(r);
    control_->resume_all();
    if (runner_.joinable()) runner_.join();
  }
}

void ReplaySession::start_if_needed() {
  if (started_) return;
  started_ = true;
  started_ns_ = support::now_ns();
  std::promise<std::shared_ptr<const mpi::World>> world_promise;
  auto world_future = world_promise.get_future();
  runner_ = std::thread([this, &world_promise] {
    mpi::RunOptions options;
    options.hooks = hooks_.get();
    options.controller = controller_.get();
    options.on_world_ready = [&world_promise](auto world) {
      world_promise.set_value(std::move(world));
    };
    result_ = mpi::run(num_ranks_, body_, options);
  });
  world_ = world_future.get();
}

std::vector<StopInfo> ReplaySession::wait_quiescent() {
  // Poll breakpoint stops and runtime wait states until two
  // consecutive stable all-idle observations.
  bool was_idle = false;
  std::uint64_t last_progress = 0;
  for (;;) {
    const auto waits = world_->shared().registry.snapshot();
    const auto progress =
        world_->shared().progress.load(std::memory_order_relaxed);
    bool all_idle = true;
    for (mpi::Rank r = 0; r < num_ranks_; ++r) {
      const auto kind = waits[static_cast<std::size_t>(r)].kind;
      const bool blocked_in_runtime =
          kind == mpi::WaitKind::kRecv || kind == mpi::WaitKind::kSsend ||
          kind == mpi::WaitKind::kFinished;
      if (!blocked_in_runtime && !control_->stopped_at(r).has_value() &&
          !control_->finished(r)) {
        all_idle = false;
        break;
      }
    }
    if (all_idle && was_idle && progress == last_progress) break;
    was_idle = all_idle;
    last_progress = progress;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<StopInfo> stops;
  for (mpi::Rank r = 0; r < num_ranks_; ++r) {
    if (auto stop = control_->stopped_at(r)) stops.push_back(*stop);
  }
  return stops;
}

std::vector<StopInfo> ReplaySession::run_to(const Stopline& stopline) {
  TDBG_CHECK(!finished_, "replay already finished");
  TDBG_CHECK(stopline.thresholds.size() == static_cast<std::size_t>(num_ranks_),
             "stopline rank count mismatch");
  for (mpi::Rank r = 0; r < num_ranks_; ++r) {
    const auto& t = stopline.thresholds[static_cast<std::size_t>(r)];
    if (t) {
      control_->arm_marker(r, *t);
    } else {
      control_->disarm(r);
    }
  }
  if (started_) {
    control_->resume_all();
  } else {
    start_if_needed();
  }
  return wait_quiescent();
}

std::optional<StopInfo> ReplaySession::wait_rank_or_blocked(mpi::Rank rank) {
  // Wait until the rank stops at an event, finishes, or blocks in the
  // message layer with no progress anywhere (it is then waiting on a
  // parked rank and cannot stop until something else is resumed).
  bool was_blocked = false;
  std::uint64_t last_progress = 0;
  for (;;) {
    if (auto stop = control_->stopped_at(rank)) return stop;
    if (control_->finished(rank)) return std::nullopt;
    const auto waits = world_->shared().registry.snapshot();
    const auto kind = waits[static_cast<std::size_t>(rank)].kind;
    const bool blocked =
        kind == mpi::WaitKind::kRecv || kind == mpi::WaitKind::kSsend;
    const auto progress =
        world_->shared().progress.load(std::memory_order_relaxed);
    if (blocked && was_blocked && progress == last_progress) {
      return std::nullopt;  // parked in the runtime, not at an event
    }
    was_blocked = blocked;
    last_progress = progress;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::optional<StopInfo> ReplaySession::step(mpi::Rank rank) {
  TDBG_CHECK(started_ && !finished_, "step needs a stopped replay");
  control_->arm_step(rank);
  control_->resume(rank);
  return wait_rank_or_blocked(rank);
}

std::optional<StopInfo> ReplaySession::step_to_depth(mpi::Rank rank,
                                                     int max_depth) {
  TDBG_CHECK(started_ && !finished_, "step needs a stopped replay");
  control_->arm_step_depth(rank, max_depth);
  control_->resume(rank);
  return wait_rank_or_blocked(rank);
}

std::optional<StopInfo> ReplaySession::continue_rank(mpi::Rank rank) {
  TDBG_CHECK(started_ && !finished_, "continue needs a stopped replay");
  // Clear a consumed stopline marker (">=" would re-trigger instantly)
  // but leave watches/message/construct breakpoints armed.
  control_->arm_marker(rank, instr::kNoThreshold);
  control_->resume(rank);
  return wait_rank_or_blocked(rank);
}

mpi::RunResult ReplaySession::finish() {
  TDBG_CHECK(!finished_, "replay already finished");
  start_if_needed();
  for (mpi::Rank r = 0; r < num_ranks_; ++r) control_->disarm(r);
  control_->resume_all();
  runner_.join();
  finished_ = true;
  if constexpr (obs::kMetricsEnabled) {
    // Wall time from first start to completion — interactive pauses
    // included, which is exactly the "replay overhead vs. record"
    // number the paper's Table 1 discussion cares about.
    obs::MetricsRegistry::global()
        .histogram("replay.replay_ns", obs::Unit::kNanoseconds)
        .record(-1, static_cast<std::uint64_t>(support::now_ns() -
                                               started_ns_));
  }
  return result_;
}

trace::Trace ReplaySession::trace() const {
  if (collector_ == nullptr) return {};
  return collector_->build_trace();
}

MatchLog ReplaySession::match_log() const {
  if (recorder_ == nullptr) return {};
  return recorder_->log();
}

}  // namespace tdbg::replay
