#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mpi/types.hpp"

/// \file checkpoint.hpp
/// Checkpoint store with a logarithmic backlog — the improvement the
/// paper sketches in §6: "Our current implementation of replay and
/// undo is done in a straightforward manner by re-executing until an
/// execution marker threshold is encountered.  We could improve on
/// this by periodically checkpointing program states and keeping a
/// logarithmic backlog of process states."
///
/// Applications opt in by serializing their state at convenient points
/// (e.g. once per outer iteration) and offering it to the store keyed
/// by the current execution marker.  The store keeps snapshots whose
/// spacing doubles with age, so the backlog is O(log span) snapshots
/// while the distance from any target marker back to the nearest
/// retained checkpoint stays proportional to its age.

namespace tdbg::replay {

/// One retained snapshot.
struct Checkpoint {
  std::uint64_t marker = 0;
  std::vector<std::byte> state;
};

/// Per-rank checkpoint backlog with logarithmic (binary-bucket)
/// retention: level k keeps the two most recent snapshots whose
/// marker index (marker / interval) is a multiple of 2^k.
/// Thread-safe (ranks offer concurrently).
class CheckpointStore {
 public:
  /// \param num_ranks world size
  /// \param interval  marker granularity: offers are accepted at most
  ///        once per `interval` markers
  explicit CheckpointStore(int num_ranks, std::uint64_t interval = 64);

  /// Offers a snapshot of `rank`'s state at `marker`.  Markers must be
  /// non-decreasing per rank.  Returns true if the snapshot was
  /// retained (offers closer than `interval` to the previous accepted
  /// one are ignored).
  bool offer(mpi::Rank rank, std::uint64_t marker,
             std::vector<std::byte> state);

  /// The newest retained checkpoint of `rank` with marker <= `target`,
  /// if any — the restart point for an undo/replay to `target`.
  [[nodiscard]] std::optional<Checkpoint> best_before(
      mpi::Rank rank, std::uint64_t target) const;

  /// Number of distinct retained checkpoints for `rank`.
  [[nodiscard]] std::size_t count(mpi::Rank rank) const;

  /// Bytes held across all ranks (distinct snapshots only).
  [[nodiscard]] std::size_t total_bytes() const;

  /// Drops everything.
  void clear();

 private:
  static constexpr std::size_t kLevels = 48;

  struct Entry {
    std::uint64_t marker = 0;
    std::shared_ptr<const std::vector<std::byte>> state;
  };

  struct RankSlot {
    std::array<std::deque<Entry>, kLevels> levels;
    bool has_last = false;
    std::uint64_t last_index = 0;
    std::uint64_t last_marker = 0;
  };

  std::uint64_t interval_;
  mutable std::mutex mu_;
  std::vector<RankSlot> per_rank_;
};

}  // namespace tdbg::replay
