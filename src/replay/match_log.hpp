#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mpi/hooks.hpp"
#include "mpi/match_controller.hpp"

/// \file match_log.hpp
/// Record/replay of message matching (paper §4.2 / §6).
///
/// During a recorded run, `MatchRecorder` logs, for every receive each
/// rank completes, the (source, channel-sequence) pair it matched.
/// During a replay, `ReplayController` forces receive number k on each
/// rank to match exactly the logged message, which pins down
/// `MPI_ANY_SOURCE` nondeterminism and guarantees "identical event
/// causality with the original program execution".
///
/// Deterministic receives (specific source) are forced too — it is
/// free, and it turns any divergence between the replayed program and
/// the log into an immediate, diagnosable error instead of a silent
/// drift.

namespace tdbg::replay {

/// Per-rank receive-match history: `per_rank[r][k]` is what receive
/// number k on rank r matched.
struct MatchLog {
  std::vector<std::vector<mpi::SourceSeq>> per_rank;

  [[nodiscard]] std::size_t total_receives() const {
    std::size_t n = 0;
    for (const auto& v : per_rank) n += v.size();
    return n;
  }

  friend bool operator==(const MatchLog&, const MatchLog&) = default;
};

/// Profiling hook that records the match log of a run.  Install it
/// (alongside the instrumentation session, via `mpi::HookFanout`) on
/// the recorded run.
class MatchRecorder : public mpi::ProfilingHooks {
 public:
  explicit MatchRecorder(int num_ranks);

  void on_call_end(const mpi::CallInfo& info,
                   const mpi::Status* status) override;

  /// The log recorded so far.  Call after the run has finished.
  [[nodiscard]] const MatchLog& log() const { return log_; }

  /// Moves the log out (the recorder is then empty).
  MatchLog take_log() { return std::move(log_); }

 private:
  MatchLog log_;
};

/// Match controller that forces a replayed run to follow a recorded
/// log.  Receives beyond the end of the log (possible when the
/// recorded run was cut short by a crash) fall back to free choice.
class ReplayController : public mpi::MatchController {
 public:
  explicit ReplayController(MatchLog log);

  std::optional<mpi::SourceSeq> force(mpi::Rank receiver,
                                      std::uint64_t recv_index) override;

  [[nodiscard]] const MatchLog& log() const { return log_; }

 private:
  MatchLog log_;
};

}  // namespace tdbg::replay
