#include "replay/breakpoints.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tdbg::replay {

BreakpointControl::BreakpointControl(int num_ranks)
    : states_(static_cast<std::size_t>(num_ranks)) {
  TDBG_CHECK(num_ranks > 0, "breakpoint control needs at least one rank");
}

namespace {

bool message_break_matches(const MessageBreak& spec, trace::EventKind kind,
                           const instr::EventDetail& detail) {
  const bool is_send = kind == trace::EventKind::kSend;
  const bool is_recv = kind == trace::EventKind::kRecv;
  if (!is_send && !is_recv) return false;
  if (is_send && !spec.on_send) return false;
  if (is_recv && !spec.on_recv) return false;
  if (spec.peer != mpi::kAnySource && detail.peer != spec.peer) return false;
  if (spec.tag != mpi::kAnyTag && detail.tag != spec.tag) return false;
  return true;
}

}  // namespace

std::optional<std::string> BreakpointControl::should_stop(
    RankState& s, std::uint64_t marker, trace::ConstructId construct,
    trace::EventKind kind, int depth, bool threshold_hit,
    const instr::EventDetail& detail) const {
  // Watch probes run at every event so their "last value" state tracks
  // execution even when another condition stops first.
  std::optional<std::string> tripped_watch;
  for (const auto& w : s.watches) {
    if (w.changed() && !tripped_watch) tripped_watch = w.name;
  }
  if (tripped_watch) return tripped_watch;

  for (const auto& mb : s.message_breaks) {
    if (message_break_matches(mb, kind, detail)) return std::string{};
  }

  if (threshold_hit) return std::string{};  // UserMonitor threshold (§2.2)
  // ">=": a marker armed at-or-below the current counter still stops at
  // the next event, so a slightly stale stopline parks the rank instead
  // of letting it run away.
  if (s.marker != instr::kNoThreshold && marker >= s.marker) {
    return std::string{};
  }
  if (s.step) return std::string{};
  if (s.step_depth && depth <= *s.step_depth) return std::string{};
  if (std::find(s.constructs.begin(), s.constructs.end(), construct) !=
      s.constructs.end()) {
    return std::string{};
  }
  return std::nullopt;
}

void BreakpointControl::at_event(mpi::Rank rank, std::uint64_t marker,
                                 trace::ConstructId construct,
                                 trace::EventKind kind, int depth,
                                 bool threshold_hit,
                                 const instr::EventDetail& detail) {
  std::unique_lock lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  const auto stop_reason =
      should_stop(s, marker, construct, kind, depth, threshold_hit, detail);
  if (!stop_reason) return;

  // One-shot conditions clear on hit; markers and construct
  // breakpoints stay armed until disarmed.
  s.step = false;
  s.step_depth.reset();

  s.stopped = true;
  s.resume_requested = false;
  s.stop = StopInfo{rank, marker, construct, kind, depth, *stop_reason};
  driver_cv_.notify_all();
  rank_cv_.wait(lk, [&] { return s.resume_requested; });
  s.resume_requested = false;
}

void BreakpointControl::mark_finished(mpi::Rank rank) {
  std::lock_guard lk(mu_);
  states_.at(static_cast<std::size_t>(rank)).finished = true;
  driver_cv_.notify_all();
}

void BreakpointControl::arm_marker(mpi::Rank rank, std::uint64_t marker) {
  std::lock_guard lk(mu_);
  states_.at(static_cast<std::size_t>(rank)).marker = marker;
}

void BreakpointControl::arm_step(mpi::Rank rank) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  // Stepping consumes the marker threshold: with the ">=" stop rule an
  // already-passed stopline marker would otherwise re-trigger at every
  // event and turn step-over into step.
  s.marker = instr::kNoThreshold;
  s.step = true;
}

void BreakpointControl::arm_step_depth(mpi::Rank rank, int max_depth) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  s.marker = instr::kNoThreshold;
  s.step_depth = max_depth;
}

void BreakpointControl::arm_construct(mpi::Rank rank,
                                      trace::ConstructId construct) {
  std::lock_guard lk(mu_);
  states_.at(static_cast<std::size_t>(rank)).constructs.push_back(construct);
}

void BreakpointControl::arm_watch(mpi::Rank rank, WatchProbe probe) {
  std::lock_guard lk(mu_);
  states_.at(static_cast<std::size_t>(rank)).watches.push_back(
      std::move(probe));
}

void BreakpointControl::arm_message(mpi::Rank rank, MessageBreak spec) {
  std::lock_guard lk(mu_);
  states_.at(static_cast<std::size_t>(rank)).message_breaks.push_back(spec);
}

void BreakpointControl::disarm(mpi::Rank rank) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  s.marker = instr::kNoThreshold;
  s.step = false;
  s.step_depth.reset();
  s.constructs.clear();
  s.watches.clear();
  s.message_breaks.clear();
}

void BreakpointControl::resume(mpi::Rank rank) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  if (s.stopped) {
    // Clear `stopped` here, not in the waking rank thread: a driver
    // that resumes and immediately waits again must not observe the
    // stale stop.
    s.stopped = false;
    s.resume_requested = true;
    rank_cv_.notify_all();
  }
}

void BreakpointControl::resume_all() {
  std::lock_guard lk(mu_);
  bool any = false;
  for (auto& s : states_) {
    if (s.stopped) {
      s.stopped = false;
      s.resume_requested = true;
      any = true;
    }
  }
  if (any) rank_cv_.notify_all();
}

bool BreakpointControl::quiescent_locked() const {
  for (const auto& s : states_) {
    if (!s.stopped && !s.finished) return false;
  }
  return true;
}

std::vector<StopInfo> BreakpointControl::wait_until_quiescent() {
  std::unique_lock lk(mu_);
  driver_cv_.wait(lk, [&] { return quiescent_locked(); });
  std::vector<StopInfo> stops;
  for (const auto& s : states_) {
    if (s.stopped) stops.push_back(s.stop);
  }
  return stops;
}

std::optional<StopInfo> BreakpointControl::wait_rank(mpi::Rank rank) {
  std::unique_lock lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  driver_cv_.wait(lk, [&] { return s.stopped || s.finished; });
  if (!s.stopped) return std::nullopt;
  return s.stop;
}

std::optional<StopInfo> BreakpointControl::stopped_at(mpi::Rank rank) const {
  std::lock_guard lk(mu_);
  const auto& s = states_.at(static_cast<std::size_t>(rank));
  if (!s.stopped) return std::nullopt;
  return s.stop;
}

bool BreakpointControl::finished(mpi::Rank rank) const {
  std::lock_guard lk(mu_);
  return states_.at(static_cast<std::size_t>(rank)).finished;
}

}  // namespace tdbg::replay
