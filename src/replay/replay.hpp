#pragma once

#include <memory>
#include <thread>

#include "instrument/session.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics_hooks.hpp"
#include "replay/breakpoints.hpp"
#include "replay/match_log.hpp"
#include "replay/stopline.hpp"
#include "trace/collector.hpp"

/// \file replay.hpp
/// Controlled re-execution (paper §4.1–4.2).
///
/// A `ReplaySession` re-runs a recorded program with the replay
/// controller forcing identical message matching, and a breakpoint
/// control parking each rank at the stopline's marker threshold.  The
/// driver thread can then inspect the stopped world, single-step
/// individual ranks (the Fig. 7 workflow that finds the wrong send
/// destination), move on to another stopline, or let the program run
/// to its end.

namespace tdbg::replay {

/// One controlled replay of a recorded run.
///
/// Lifecycle: construct → `run_to(stopline)` → inspect / `step` /
/// `run_to` again (markers only move forward) → `finish()`.  The
/// destructor cleans up (resumes and joins) if `finish` was not
/// called.
class ReplaySession {
 public:
  /// \param num_ranks       world size of the recorded run
  /// \param body            the target program (same binary/body as
  ///                        recorded — replay assumes determinism
  ///                        given the forced matching)
  /// \param log             the recorded match log.  An *empty* log
  ///                        (per-rank vectors empty) makes this a
  ///                        **live** session: matching is free, which
  ///                        is how breakpoints on a first execution
  ///                        work — pair with `record_matches` so the
  ///                        live run becomes replayable afterwards.
  /// \param session_options collection configuration for this replay
  /// \param collect_trace   collect a trace of the run as well
  /// \param record_matches  attach a match recorder (see `match_log`)
  ReplaySession(int num_ranks, mpi::RankBody body, MatchLog log,
                instr::SessionOptions session_options = {},
                bool collect_trace = false, bool record_matches = false);

  ~ReplaySession();

  ReplaySession(const ReplaySession&) = delete;
  ReplaySession& operator=(const ReplaySession&) = delete;

  /// Starts (or continues) execution until every rank is parked at the
  /// stopline or has finished.  Returns the stop states.
  std::vector<StopInfo> run_to(const Stopline& stopline);

  /// Single-steps `rank` to its next instrumented event and waits for
  /// it to stop there.  Returns nullopt when the rank finished or
  /// blocked in the message layer instead (it is then waiting for a
  /// message from a parked rank; resume another rank to feed it).
  std::optional<StopInfo> step(mpi::Rank rank);

  /// Steps `rank` until its call depth returns to at most `max_depth`
  /// — "step over" when given the current depth, "step out" when given
  /// depth-1.
  std::optional<StopInfo> step_to_depth(mpi::Rank rank, int max_depth);

  /// Resumes `rank` and waits for its next stop (armed watchpoint,
  /// message breakpoint, construct breakpoint, or marker) — nullopt
  /// when it finishes or durably blocks instead.
  std::optional<StopInfo> continue_rank(mpi::Rank rank);

  /// Resumes everything, disarms all breakpoints, and waits for the
  /// run to end.  Returns the run outcome.
  mpi::RunResult finish();

  /// The breakpoint control, for custom arming (function breakpoints).
  [[nodiscard]] BreakpointControl& control() { return *control_; }

  /// The instrumentation session (marker counters, monitor records).
  [[nodiscard]] instr::Session& session() { return *session_; }

  /// Trace of the replay (empty unless collect_trace was set; valid
  /// after `finish`).
  [[nodiscard]] trace::Trace trace() const;

  /// The match log recorded so far (empty unless record_matches was
  /// set).  Safe to read while ranks are stopped or after `finish`.
  [[nodiscard]] MatchLog match_log() const;

  [[nodiscard]] int num_ranks() const { return num_ranks_; }

 private:
  /// Adapter wiring rank-finish notifications into the control.
  class FinishHook : public mpi::ProfilingHooks {
   public:
    explicit FinishHook(BreakpointControl* control) : control_(control) {}
    void on_rank_finish(mpi::Rank rank) override {
      control_->mark_finished(rank);
    }

   private:
    BreakpointControl* control_;
  };

  void start_if_needed();

  /// Waits until the world is quiescent: every rank is parked at a
  /// breakpoint, finished, or blocked in the message layer waiting on
  /// a parked rank — with two stable observations so transient blocks
  /// (message in flight) don't count.  Returns breakpoint stops only.
  std::vector<StopInfo> wait_quiescent();

  /// Waits for one rank to stop, finish, or durably block.
  std::optional<StopInfo> wait_rank_or_blocked(mpi::Rank rank);

  int num_ranks_;
  mpi::RankBody body_;
  std::unique_ptr<trace::TraceCollector> collector_;
  std::unique_ptr<instr::Session> session_;
  std::unique_ptr<ReplayController> controller_;
  std::unique_ptr<MatchRecorder> recorder_;
  std::unique_ptr<BreakpointControl> control_;
  std::unique_ptr<FinishHook> finish_hook_;
  std::unique_ptr<obs::MetricsHooks> metrics_hooks_;
  std::unique_ptr<mpi::HookFanout> hooks_;

  std::thread runner_;
  std::shared_ptr<const mpi::World> world_;
  mpi::RunResult result_;
  support::TimeNs started_ns_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace tdbg::replay
