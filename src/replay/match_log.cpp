#include "replay/match_log.hpp"

#include "support/error.hpp"

namespace tdbg::replay {

MatchRecorder::MatchRecorder(int num_ranks) {
  TDBG_CHECK(num_ranks > 0, "recorder needs at least one rank");
  log_.per_rank.resize(static_cast<std::size_t>(num_ranks));
}

void MatchRecorder::on_call_end(const mpi::CallInfo& info,
                                const mpi::Status* status) {
  if (info.kind != mpi::CallKind::kRecv || status == nullptr) return;
  // Receives complete in program order on each rank, and this hook
  // runs on the receiving rank's own thread, so plain push_back per
  // rank is race-free and index-aligned with Comm's recv_index.
  log_.per_rank.at(static_cast<std::size_t>(info.rank))
      .push_back(mpi::SourceSeq{status->source, status->channel_seq});
}

ReplayController::ReplayController(MatchLog log) : log_(std::move(log)) {}

std::optional<mpi::SourceSeq> ReplayController::force(
    mpi::Rank receiver, std::uint64_t recv_index) {
  // A default-constructed (empty) log means a live run: nothing is
  // forced.  Ranks beyond the log (partial recordings) fall back to
  // free choice too.
  if (static_cast<std::size_t>(receiver) >= log_.per_rank.size()) {
    return std::nullopt;
  }
  const auto& v = log_.per_rank[static_cast<std::size_t>(receiver)];
  if (recv_index >= v.size()) return std::nullopt;
  return v[recv_index];
}

}  // namespace tdbg::replay
