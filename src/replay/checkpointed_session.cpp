#include "replay/checkpointed_session.hpp"

#include <atomic>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace tdbg::replay {

CheckpointedSession::CheckpointedSession(int num_ranks,
                                         SteppableFactory factory,
                                         std::uint64_t interval)
    : num_ranks_(num_ranks), factory_(std::move(factory)),
      interval_(std::max<std::uint64_t>(1, interval)),
      store_(num_ranks, interval_) {
  TDBG_CHECK(num_ranks > 0, "need at least one rank");
  TDBG_CHECK(static_cast<bool>(factory_), "need an app factory");
}

SteppedRun CheckpointedSession::run(std::uint64_t max_steps) {
  TDBG_CHECK(!ran_, "run() may only be called once");
  ran_ = true;

  std::atomic<std::uint64_t> total_steps{0};
  std::atomic<std::uint64_t> last_step{0};

  SteppedRun out;
  out.result = mpi::run(num_ranks_, [&](mpi::Comm& comm) {
    auto app = factory_(comm.rank());
    TDBG_CHECK(app != nullptr, "factory returned no app");
    app->init(comm);

    std::uint64_t idx = 0;
    for (; idx < max_steps; ++idx) {
      const bool more = app->step(comm, idx);
      total_steps.fetch_add(1, std::memory_order_relaxed);

      if (idx % interval_ == 0) {
        // Check quiescence and snapshot BEFORE the agreement
        // collective: at this point no rank can have entered superstep
        // idx+1 (they all still owe their agreement contribution), so
        // anything queued here is a message of step idx the app failed
        // to consume — a BSP-contract violation.
        TDBG_CHECK(comm.pending_messages() == 0,
                   "steppable target not quiescent at checkpoint boundary");
        store_.offer(comm.rank(), idx, app->snapshot());
      }
      // Agree globally on continuation so every rank checkpoints at
      // the same superstep boundaries.
      const int all_more = comm.allreduce_value<int>(
          more ? 1 : 0, [](int a, int b) { return a < b ? a : b; });
      if (all_more == 0) break;
    }
    if (comm.rank() == 0) {
      last_step.store(idx, std::memory_order_relaxed);
    }
  });
  out.steps_executed = total_steps.load();
  out.last_step = last_step.load();
  return out;
}

SteppedRun CheckpointedSession::rollback_to(
    std::uint64_t target_step, std::vector<std::vector<std::byte>>* states) {
  TDBG_CHECK(ran_, "rollback needs a completed run");
  if (states != nullptr) {
    states->assign(static_cast<std::size_t>(num_ranks_), {});
  }

  std::atomic<std::uint64_t> total_steps{0};
  SteppedRun out;
  out.result = mpi::run(num_ranks_, [&](mpi::Comm& comm) {
    auto app = factory_(comm.rank());
    app->init(comm);

    const auto cp = store_.best_before(comm.rank(), target_step);
    std::uint64_t base = 0;
    bool restored = false;
    if (cp) {
      base = cp->marker;
      restored = true;
    }
    // Every rank must restart from the SAME superstep — coordinated
    // offers guarantee it, but verify rather than trust.
    const auto base_min = comm.allreduce_value<std::uint64_t>(
        base, [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
    const auto base_max = comm.allreduce_value<std::uint64_t>(
        base, [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
    TDBG_CHECK(base_min == base_max,
               "ranks hold checkpoints from different supersteps");
    if (restored) {
      obs::ScopedTimer timer(obs::MetricsRegistry::global().histogram(
                                 "replay.checkpoint_restore_ns",
                                 obs::Unit::kNanoseconds),
                             comm.rank());
      app->restore(cp->state);
    }

    // Re-step from the boundary to the target.  A restored state is
    // "after superstep base", so the next step index is base + 1; a
    // fresh state starts at 0.
    for (std::uint64_t idx = restored ? base + 1 : 0; idx <= target_step;
         ++idx) {
      app->step(comm, idx);
      total_steps.fetch_add(1, std::memory_order_relaxed);
      // Keep the superstep barrier so message traffic from re-stepping
      // stays aligned across ranks.
      comm.barrier();
    }
    if (states != nullptr) {
      (*states)[static_cast<std::size_t>(comm.rank())] = app->snapshot();
    }
  });
  out.steps_executed = total_steps.load();
  out.last_step = target_step;
  return out;
}

}  // namespace tdbg::replay
