#pragma once

#include <memory>

#include "instrument/session.hpp"
#include "mpi/runtime.hpp"
#include "replay/match_log.hpp"
#include "telemetry/health.hpp"
#include "trace/trace.hpp"

/// \file record.hpp
/// The recorded-run driver: runs a target program with the full
/// instrumentation stack installed (session + match recorder) and
/// returns everything the trace-driven debugging features need — the
/// trace, the match log, and the run outcome.

namespace tdbg::fault {
class FaultEngine;
}

namespace tdbg::replay {

/// Configuration of a recorded run.
struct RecordOptions {
  /// Which record kinds the session collects.
  instr::SessionOptions session;

  /// Collect an in-memory trace (disable for overhead measurements
  /// where only markers should run).
  bool collect_trace = true;

  /// Optional fault engine: its hooks are installed first on the
  /// fanout (an injected crash unwinds before the call is observed)
  /// and its injector is threaded to the runtime, so the recorded
  /// trace carries the kFaultInjected records alongside the history
  /// they perturbed.
  fault::FaultEngine* fault_engine = nullptr;

  /// Forwarded to the runtime (hooks/controller fields are owned by
  /// the recorder and overwritten).
  mpi::RunOptions run;

  /// Run a health heartbeat alongside the recording: per-rank marker /
  /// mailbox-depth / trace-backlog samples into an `obs::MetricsSeries`
  /// and stall flags ahead of the watchdog.  The monitor is stopped
  /// before `record` returns; its last snapshot stays readable through
  /// `RecordedRun::health` (the debugger's `health` command).
  bool monitor_health = true;

  /// Heartbeat cadence and stall threshold (tests shorten these).
  telemetry::HealthOptions health;
};

/// Everything a recorded run produces.
struct RecordedRun {
  mpi::RunResult result;  ///< outcome (completed / deadlocked / failed)
  trace::Trace trace;     ///< execution history (empty if not collected)
  MatchLog log;           ///< receive-match log for replay

  /// Stopped heartbeat monitor (null when `monitor_health` was off);
  /// `health->report()` is the post-run per-rank health picture.
  std::shared_ptr<telemetry::HealthMonitor> health;
};

/// Runs `body` on `num_ranks` ranks with recording installed.
RecordedRun record(int num_ranks, const mpi::RankBody& body,
                   const RecordOptions& options = {});

}  // namespace tdbg::replay
