#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mpi/runtime.hpp"
#include "replay/checkpoint.hpp"

/// \file checkpointed_session.hpp
/// Checkpoint-accelerated rollback for steppable targets — the full
/// realization of the paper's §6 proposal ("periodically checkpointing
/// program states and keeping a logarithmic backlog of process
/// states") on top of `CheckpointStore`.
///
/// Scope: a *steppable* target is one structured as supersteps that
/// end quiescent — after `step` returns, no message sent during the
/// step is still undelivered-to-application (BSP-style: exchange, then
/// consume everything you were sent).  At a superstep boundary the
/// per-rank states alone are a consistent global state, so restoring
/// every rank's snapshot from the same boundary and re-stepping is a
/// correct rollback.  The session *verifies* quiescence at each
/// checkpoint (mailboxes empty) rather than trusting the caller.
///
/// Arbitrary (non-steppable) targets keep the general mechanism:
/// marker-threshold replay from the start (`ReplaySession` + `undo`),
/// which needs no cooperation but pays O(history) per rollback — the
/// trade quantified in `bench/abl_undo_checkpoint`.

namespace tdbg::replay {

/// A steppable, serializable per-rank computation.
class SteppableApp {
 public:
  virtual ~SteppableApp() = default;

  /// Fresh-state initialization (step 0 follows).
  virtual void init(mpi::Comm& comm) = 0;

  /// Runs superstep `index`; returns false when the computation is
  /// finished (no further steps).  Must end quiescent (see file
  /// comment).
  virtual bool step(mpi::Comm& comm, std::uint64_t index) = 0;

  /// Serializes the full per-rank state.
  [[nodiscard]] virtual std::vector<std::byte> snapshot() const = 0;

  /// Restores a state produced by `snapshot` on the same rank.
  virtual void restore(std::span<const std::byte> state) = 0;
};

/// Creates one app instance per rank (called on the rank's thread).
using SteppableFactory =
    std::function<std::unique_ptr<SteppableApp>(mpi::Rank)>;

/// Outcome of a checkpointed run or rollback.
struct SteppedRun {
  mpi::RunResult result;
  std::uint64_t steps_executed = 0;  ///< summed over ranks
  std::uint64_t last_step = 0;       ///< final superstep index reached
};

/// Runs steppable targets with coordinated checkpoints and rolls them
/// back through the logarithmic backlog.
class CheckpointedSession {
 public:
  /// \param num_ranks world size
  /// \param factory   builds each rank's app
  /// \param interval  checkpoint every `interval` supersteps
  CheckpointedSession(int num_ranks, SteppableFactory factory,
                      std::uint64_t interval = 16);

  /// Runs from a fresh state to completion (or `max_steps`), offering
  /// coordinated checkpoints.  May be called once.
  SteppedRun run(std::uint64_t max_steps = ~std::uint64_t{0});

  /// Rolls back: re-creates the world, restores every rank from the
  /// newest retained checkpoint at-or-before `target_step`, re-steps
  /// to exactly `target_step`, and returns (snapshotting nothing new).
  /// `steps_executed` measures the replay work — the quantity the
  /// backlog shrinks.  The restored state is returned per rank.
  SteppedRun rollback_to(std::uint64_t target_step,
                         std::vector<std::vector<std::byte>>* states = nullptr);

  /// The underlying store (for inspecting the backlog).
  [[nodiscard]] const CheckpointStore& store() const { return store_; }

 private:
  int num_ranks_;
  SteppableFactory factory_;
  std::uint64_t interval_;
  CheckpointStore store_;
  bool ran_ = false;
};

}  // namespace tdbg::replay
