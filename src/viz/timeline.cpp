#include "viz/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "analysis/session.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tdbg::viz {

namespace {

const char* color_of(trace::EventKind kind) {
  switch (kind) {
    case trace::EventKind::kCompute: return "#4caf50";     // green
    case trace::EventKind::kSend: return "#1e88e5";        // blue
    case trace::EventKind::kRecv: return "#fb8c00";        // orange
    case trace::EventKind::kCollective: return "#8e24aa";  // purple
    case trace::EventKind::kEnter:
    case trace::EventKind::kExit: return "#9e9e9e";        // grey ticks
    case trace::EventKind::kMark: return "#e53935";           // red
    case trace::EventKind::kFaultInjected: return "#b71c1c";  // dark red
  }
  return "#000000";
}

char ascii_of(trace::EventKind kind) {
  switch (kind) {
    case trace::EventKind::kCompute: return '=';
    case trace::EventKind::kSend: return 's';
    case trace::EventKind::kRecv: return 'r';
    case trace::EventKind::kCollective: return 'c';
    case trace::EventKind::kMark: return '!';
    case trace::EventKind::kFaultInjected: return 'x';
    case trace::EventKind::kEnter:
    case trace::EventKind::kExit: return '.';
  }
  return '?';
}

}  // namespace

TimeSpaceDiagram::TimeSpaceDiagram(const trace::Trace& trace,
                                   DiagramOptions options)
    : trace_(&trace), options_(options) {
  t0_ = options.window_t0 >= 0 ? options.window_t0 : trace.t_min();
  t1_ = options.window_t1 >= 0 ? options.window_t1 : trace.t_max();
  if (t1_ <= t0_) t1_ = t0_ + 1;
}

double TimeSpaceDiagram::x_of(support::TimeNs t) const {
  const double span = static_cast<double>(t1_ - t0_);
  const double clamped =
      std::clamp(static_cast<double>(t - t0_), 0.0, span);
  return clamped / span * static_cast<double>(options_.width);
}

std::optional<std::size_t> TimeSpaceDiagram::hit_test(support::TimeNs t,
                                                      mpi::Rank rank) const {
  return trace_->last_event_at_or_before(rank, t);
}

std::string TimeSpaceDiagram::to_svg(const Overlay& overlay) const {
  const int rows = trace_->num_ranks();
  const int rh = options_.row_height;
  const int label_w = 60;
  const int width = options_.width + label_w + 10;
  const int height = rows * rh + 30;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" font-family=\"monospace\" "
     << "font-size=\"11\">\n";
  os << "<rect width=\"" << width << "\" height=\"" << height
     << "\" fill=\"white\"/>\n";

  const auto row_y = [&](mpi::Rank r) {
    // NTV draws process 0 at the bottom (Fig. 3 caption); match it.
    return 15 + (rows - 1 - r) * rh;
  };

  for (mpi::Rank r = 0; r < rows; ++r) {
    const int y = row_y(r);
    os << "<text x=\"2\" y=\"" << y + rh / 2 + 4 << "\">P" << r
       << "</text>\n";
    os << "<line x1=\"" << label_w << "\" y1=\"" << y + rh / 2 << "\" x2=\""
       << label_w + options_.width << "\" y2=\"" << y + rh / 2
       << "\" stroke=\"#e0e0e0\"/>\n";
  }

  // Shared matching from the caller's session when provided; a
  // throwaway session otherwise (standalone renders).
  std::optional<analysis::Session> fallback;
  if (options_.matches == nullptr) fallback.emplace(*trace_);
  const auto& matches =
      options_.matches ? *options_.matches : fallback->match_report();

  // Construct bars: only the segments the window intersects are
  // touched on a lazy store.
  trace_->for_each_in_window(t0_, t1_, [&](std::size_t, const trace::Event& e) {
    const bool tick = e.kind == trace::EventKind::kEnter ||
                      e.kind == trace::EventKind::kExit ||
                      e.kind == trace::EventKind::kMark;
    if (tick && !options_.show_enter_exit) return;
    const double x0 = label_w + x_of(e.t_start);
    const double x1 = label_w + x_of(e.t_end);
    const double w = std::max(1.0, x1 - x0);
    const int y = row_y(e.rank) + 4;
    os << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << w
       << "\" height=\"" << rh - 8 << "\" fill=\"" << color_of(e.kind)
       << "\"><title>"
       << support::escape_label(
              trace::event_kind_name(e.kind))
       << " marker=" << e.marker << "</title></rect>\n";
  });

  // Message lines: (time_sent, source) -> (time_received, destination).
  if (options_.show_messages) {
    for (const auto& m : matches.matches) {
      const auto s = trace_->event(m.send_index);
      const auto r = trace_->event(m.recv_index);
      if (s.t_start > t1_ || r.t_end < t0_) continue;
      os << "<line x1=\"" << label_w + x_of(s.t_start) << "\" y1=\""
         << row_y(s.rank) + options_.row_height / 2 << "\" x2=\""
         << label_w + x_of(r.t_end) << "\" y2=\""
         << row_y(r.rank) + options_.row_height / 2
         << "\" stroke=\"#555\" stroke-width=\"0.8\"/>\n";
    }
    // Unmatched (missed) messages render dashed red to the margin —
    // the Fig. 6 "missed message".
    for (std::size_t i : matches.unmatched_sends) {
      const auto s = trace_->event(i);
      if (s.t_start > t1_) continue;
      os << "<line x1=\"" << label_w + x_of(s.t_start) << "\" y1=\""
         << row_y(s.rank) + rh / 2 << "\" x2=\""
         << label_w + x_of(s.t_start) + 40 << "\" y2=\""
         << row_y(s.peer) + rh / 2
         << "\" stroke=\"red\" stroke-dasharray=\"4 2\"/>\n";
    }
  }

  // Overlays.
  if (overlay.stopline) {
    const double x = label_w + x_of(*overlay.stopline);
    os << "<line x1=\"" << x << "\" y1=\"10\" x2=\"" << x << "\" y2=\""
       << rows * rh + 15
       << "\" stroke=\"red\" stroke-width=\"2\"/>\n";
  }
  if (overlay.selected_event) {
    const auto& e = trace_->event(*overlay.selected_event);
    os << "<circle cx=\"" << label_w + x_of(e.t_start) << "\" cy=\""
       << row_y(e.rank) + rh / 2
       << "\" r=\"8\" fill=\"none\" stroke=\"black\" stroke-width=\"2\"/>\n";
  }
  const auto draw_frontier = [&](const causality::Frontier& frontier,
                                 const char* color, bool use_end) {
    if (frontier.empty()) return;
    std::ostringstream points;
    for (mpi::Rank r = 0; r < rows; ++r) {
      const auto& f = frontier[static_cast<std::size_t>(r)];
      if (!f) continue;
      const auto& e = trace_->event(*f);
      points << label_w + x_of(use_end ? e.t_end : e.t_start) << ","
             << row_y(r) + rh / 2 << " ";
    }
    os << "<polyline points=\"" << points.str()
       << "\" fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.5\"/>\n";
  };
  draw_frontier(overlay.past_frontier, "black", /*use_end=*/true);
  draw_frontier(overlay.future_frontier, "black", /*use_end=*/false);

  os << "</svg>\n";
  return os.str();
}

std::string TimeSpaceDiagram::to_ascii(int columns,
                                       const Overlay& overlay) const {
  TDBG_CHECK(columns > 10, "ascii diagram needs at least 11 columns");
  const int rows = trace_->num_ranks();
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(columns),
                                            ' '));
  const auto col_of = [&](support::TimeNs t) {
    const double span = static_cast<double>(t1_ - t0_);
    const double c =
        std::clamp(static_cast<double>(t - t0_), 0.0, span) / span *
        (columns - 1);
    return static_cast<int>(c);
  };

  trace_->for_each_in_window(t0_, t1_, [&](std::size_t, const trace::Event& e) {
    if ((e.kind == trace::EventKind::kEnter ||
         e.kind == trace::EventKind::kExit) &&
        !options_.show_enter_exit) {
      return;
    }
    const int c0 = col_of(e.t_start);
    const int c1 = std::max(c0, col_of(e.t_end));
    auto& row = grid[static_cast<std::size_t>(e.rank)];
    for (int c = c0; c <= c1; ++c) {
      row[static_cast<std::size_t>(c)] = ascii_of(e.kind);
    }
  });

  if (overlay.stopline) {
    const int c = col_of(*overlay.stopline);
    for (auto& row : grid) row[static_cast<std::size_t>(c)] = '|';
  }

  std::ostringstream os;
  for (mpi::Rank r = rows - 1; r >= 0; --r) {  // process 0 at the bottom
    os << "P" << r << (r < 10 ? " " : "") << " |"
       << grid[static_cast<std::size_t>(r)] << "|\n";
  }
  os << "     " << std::string(static_cast<std::size_t>(columns), '-')
     << "\n     t=" << support::human_duration(t0_) << " ... "
     << support::human_duration(t1_) << "\n";
  return os.str();
}

}  // namespace tdbg::viz
