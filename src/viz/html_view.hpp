#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "telemetry/span.hpp"
#include "viz/timeline.hpp"

/// \file html_view.hpp
/// Self-contained interactive HTML rendering of a trace — the modern
/// stand-in for NTV's "selective zooming and panning" (§3.1): one
/// file, no dependencies, wheel-zooms the time axis, drag-pans, and
/// clicking a construct bar shows its details (rank, marker, kind,
/// construct, interval) — the click → execution-marker mapping the
/// Ben library provided to p2d2.

namespace tdbg::viz {

/// Options for the HTML view.
struct HtmlOptions {
  std::string title = "tdbg trace";
  DiagramOptions diagram;
  /// Optional metrics snapshot to render as the per-rank stats strip
  /// (sends / recvs / bytes / recv-block time).  When null the strip
  /// is derived from the trace events instead (counts only).
  const obs::Snapshot* metrics = nullptr;
  /// Optional telemetry self-spans: rendered as an aggregate strip
  /// (per-phase count and total time) under the stats table, so the
  /// page shows what the *debugger* spent alongside the target's
  /// history.  Null hides the strip.
  const std::vector<telemetry::SpanRecord>* self_spans = nullptr;
};

/// Renders the trace as one self-contained HTML page.
std::string to_html(const trace::Trace& trace, const HtmlOptions& options = {},
                    const Overlay& overlay = {});

}  // namespace tdbg::viz
