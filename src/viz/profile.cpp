#include "viz/profile.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace tdbg::viz {

Profile profile_trace(const trace::Trace& trace) {
  Profile out;
  out.ranks.resize(static_cast<std::size_t>(trace.num_ranks()));
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    out.ranks[static_cast<std::size_t>(r)].rank = r;
  }

  std::map<std::tuple<mpi::Rank, trace::ConstructId, trace::EventKind>,
           ProfileRow>
      rows;
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    auto& rank = out.ranks[static_cast<std::size_t>(e.rank)];
    const auto span = e.t_end - e.t_start;
    switch (e.kind) {
      case trace::EventKind::kCompute: rank.compute += span; break;
      case trace::EventKind::kSend:
      case trace::EventKind::kRecv: rank.messaging += span; break;
      case trace::EventKind::kCollective: rank.collective += span; break;
      case trace::EventKind::kEnter: ++rank.calls; break;
      default: break;
    }
    if (e.kind == trace::EventKind::kExit ||
        e.kind == trace::EventKind::kMark) {
      return;
    }
    auto& row = rows[{e.rank, e.construct, e.kind}];
    row.rank = e.rank;
    row.construct = e.construct;
    row.kind = e.kind;
    ++row.count;
    row.total += span;
    row.max = std::max(row.max, span);
  });
  out.rows.reserve(rows.size());
  for (auto& [key, row] : rows) out.rows.push_back(row);
  std::sort(out.rows.begin(), out.rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.count > b.count;
            });
  return out;
}

std::string Profile::to_string(const trace::ConstructRegistry& constructs,
                               std::size_t max_rows) const {
  std::ostringstream os;
  os << "per-rank rollup:\n";
  for (const auto& r : ranks) {
    os << "  rank " << r.rank << ": compute "
       << support::human_duration(r.compute) << ", messaging "
       << support::human_duration(r.messaging) << ", collectives "
       << support::human_duration(r.collective) << ", " << r.calls
       << " calls\n";
  }
  os << "hottest constructs:\n";
  std::size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ == max_rows) break;
    os << "  rank " << row.rank << "  "
       << trace::event_kind_name(row.kind) << "  "
       << (row.construct == trace::kNoConstruct
               ? std::string("?")
               : constructs.info(row.construct).name)
       << "  x" << row.count << "  total "
       << support::human_duration(row.total) << "  max "
       << support::human_duration(row.max) << "\n";
  }
  return os.str();
}

}  // namespace tdbg::viz
