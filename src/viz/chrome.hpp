#pragma once

#include <ostream>
#include <vector>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/span.hpp"
#include "trace/trace.hpp"

/// \file chrome.hpp
/// Bridges a recorded `trace::Trace` and the telemetry self-spans into
/// one Chrome trace_event JSON document: the application's events on
/// pid 1 (one thread row per rank, message sends/receives carrying
/// peer/tag/marker args) and the debugger's own phases on the
/// synthetic "tdbg" track (pid 2).  Load the output in
/// chrome://tracing or Perfetto.

namespace tdbg::viz {

/// Renders `trace` plus `self_spans` as trace_event JSON to `os`.
/// Either input may be empty.  Returns the number of events written.
std::size_t write_chrome_trace(
    std::ostream& os, const trace::Trace& trace,
    const std::vector<telemetry::SpanRecord>& self_spans);

}  // namespace tdbg::viz
