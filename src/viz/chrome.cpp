#include "viz/chrome.hpp"

#include <set>
#include <sstream>
#include <string>

#include "support/executor.hpp"
#include "trace/event.hpp"

namespace tdbg::viz {

namespace {

/// Display name of one app event: the construct when known, the kind
/// otherwise ("send", "recv", "fault_injected", ...).
std::string event_name(const trace::Trace& trace, const trace::Event& e) {
  if (e.construct != trace::kNoConstruct) {
    return trace.constructs().info(e.construct).name;
  }
  return std::string(trace::event_kind_name(e.kind));
}

std::string event_args(const trace::Event& e) {
  std::ostringstream os;
  os << "\"kind\":\"" << trace::event_kind_name(e.kind) << "\",\"marker\":"
     << e.marker;
  if (e.is_message() || e.kind == trace::EventKind::kFaultInjected) {
    os << ",\"peer\":" << e.peer << ",\"tag\":" << e.tag
       << ",\"seq\":" << e.channel_seq;
  }
  if (e.bytes != 0) os << ",\"bytes\":" << e.bytes;
  return os.str();
}

}  // namespace

std::size_t write_chrome_trace(
    std::ostream& os, const trace::Trace& trace,
    const std::vector<telemetry::SpanRecord>& self_spans) {
  telemetry::ChromeTraceWriter writer;
  writer.set_process_name(telemetry::ChromeTraceWriter::kAppPid, "app");
  writer.set_process_name(telemetry::ChromeTraceWriter::kTdbgPid, "tdbg");
  for (int r = 0; r < trace.num_ranks(); ++r) {
    writer.set_thread_name(telemetry::ChromeTraceWriter::kAppPid, r,
                           "rank " + std::to_string(r));
  }
  // Spans recorded on executor workers carry synthetic ranks at or
  // above kWorkerRankBase; name those tracks so the tdbg process shows
  // one row per pool worker.
  std::set<int> worker_ranks;
  for (const auto& span : self_spans) {
    if (span.rank >= static_cast<int>(exec::kWorkerRankBase)) {
      worker_ranks.insert(span.rank);
    }
  }
  for (int tid : worker_ranks) {
    writer.set_thread_name(
        telemetry::ChromeTraceWriter::kTdbgPid, tid,
        "exec worker " +
            std::to_string(tid - static_cast<int>(exec::kWorkerRankBase)));
  }

  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    // Enter/exit pairs already surface as the enclosing construct's
    // phase elsewhere; as Chrome events every record is a complete
    // slice (instant-like when t_end == t_start).
    writer.add_complete(telemetry::ChromeTraceWriter::kAppPid, e.rank,
                        event_name(trace, e), e.t_start,
                        e.t_end - e.t_start, event_args(e));
  });

  writer.add_spans(self_spans);
  writer.write(os);
  return writer.event_count();
}

}  // namespace tdbg::viz
