#pragma once

#include <optional>
#include <string>
#include <vector>

#include "causality/causal_order.hpp"
#include "trace/trace.hpp"

/// \file timeline.hpp
/// Time-space diagrams (paper §3.1, Figures 2, 3, 5, 6, 8).
///
/// "Each construct is represented by a bar positioned according to its
/// process number and start/end times.  The bar is colored depending
/// on the type of the construct.  Each message is represented by a
/// straight line segment connecting (time_sent, source) and
/// (time_received, destination)."
///
/// Two renderings are provided: SVG (the NTV/VK display analog) and
/// ASCII (for terminals and the bench harness output).  Overlays carry
/// the debugger decorations: the vertical stopline indicator, the
/// selected event, and the past/future frontier polylines of Fig. 8.

namespace tdbg::viz {

/// Display decorations layered over the diagram.
struct Overlay {
  /// Vertical stopline position (display time), as in Figs. 2 and 6.
  std::optional<support::TimeNs> stopline;

  /// Event circled as "selected" (Fig. 8's user click).
  std::optional<std::size_t> selected_event;

  /// Past frontier: per rank, the last event causally before the
  /// selected one (drawn as the left slanted line of Fig. 8).
  causality::Frontier past_frontier;

  /// Future frontier (the right slanted line).
  causality::Frontier future_frontier;
};

/// Rendering options.
struct DiagramOptions {
  int width = 1200;              ///< SVG pixel width of the time axis
  int row_height = 26;           ///< SVG pixels per process row
  support::TimeNs window_t0 = -1;  ///< zoom window start (-1 = trace start)
  support::TimeNs window_t1 = -1;  ///< zoom window end (-1 = trace end)
  bool show_messages = true;
  bool show_enter_exit = false;  ///< draw zero-width ticks for enter/exit
  /// The trace's matching, normally shared from the caller's
  /// `analysis::Session` (the debugger wires it automatically).  When
  /// null the renderer builds a throwaway session itself.
  const trace::MatchReport* matches = nullptr;
};

/// A time-space diagram over one trace.
class TimeSpaceDiagram {
 public:
  explicit TimeSpaceDiagram(const trace::Trace& trace,
                            DiagramOptions options = {});

  /// SVG rendering with optional overlays.
  [[nodiscard]] std::string to_svg(const Overlay& overlay = {}) const;

  /// ASCII rendering (one row per rank, `columns` characters of time
  /// axis).  Bars render as '=' (compute), 's' (send), 'r' (recv),
  /// 'c' (collective); the stopline as '|'.
  [[nodiscard]] std::string to_ascii(int columns = 100,
                                     const Overlay& overlay = {}) const;

  /// Maps a display click (time, rank) to the nearest event of that
  /// rank starting at or before `t` — the Ben-library service p2d2
  /// uses to learn "what the execution markers are at the point of a
  /// mouse click in the time line" (§3.1).
  [[nodiscard]] std::optional<std::size_t> hit_test(support::TimeNs t,
                                                    mpi::Rank rank) const;

  /// The effective window (after defaulting to the trace extent).
  [[nodiscard]] support::TimeNs window_t0() const { return t0_; }
  [[nodiscard]] support::TimeNs window_t1() const { return t1_; }

 private:
  [[nodiscard]] double x_of(support::TimeNs t) const;

  const trace::Trace* trace_;
  DiagramOptions options_;
  support::TimeNs t0_ = 0;
  support::TimeNs t1_ = 1;
};

}  // namespace tdbg::viz
