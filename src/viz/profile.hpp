#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

/// \file profile.hpp
/// Per-construct time profile of a trace — the AIMS heritage (the
/// paper's trace source was a *performance* toolkit; the same records
/// that drive debugging also answer "where did the time go?").
///
/// Durations come from record intervals: sends/receives/collectives
/// and compute scopes carry [t_start, t_end]; enter/exit records are
/// points and contribute call counts only.

namespace tdbg::viz {

/// Aggregate for one (construct, kind) pair on one rank.
struct ProfileRow {
  mpi::Rank rank = 0;
  trace::ConstructId construct = trace::kNoConstruct;
  trace::EventKind kind = trace::EventKind::kCompute;
  std::uint64_t count = 0;
  support::TimeNs total = 0;
  support::TimeNs max = 0;
};

/// Per-rank rollup.
struct RankProfile {
  mpi::Rank rank = 0;
  support::TimeNs compute = 0;   ///< time in compute scopes
  support::TimeNs messaging = 0; ///< time in sends+receives
  support::TimeNs collective = 0;
  std::uint64_t calls = 0;       ///< function entries
};

/// The full profile.
struct Profile {
  std::vector<ProfileRow> rows;     ///< sorted by total time, descending
  std::vector<RankProfile> ranks;   ///< indexed by rank

  /// Text rendering (top `max_rows` construct rows).
  [[nodiscard]] std::string to_string(const trace::ConstructRegistry& constructs,
                                      std::size_t max_rows = 20) const;
};

/// Builds the profile of a trace.
Profile profile_trace(const trace::Trace& trace);

}  // namespace tdbg::viz
