#include "viz/html_view.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "analysis/session.hpp"
#include "support/strings.hpp"

namespace tdbg::viz {

namespace {

const char* color_of_kind(trace::EventKind kind) {
  switch (kind) {
    case trace::EventKind::kCompute: return "#4caf50";
    case trace::EventKind::kSend: return "#1e88e5";
    case trace::EventKind::kRecv: return "#fb8c00";
    case trace::EventKind::kCollective: return "#8e24aa";
    default: return "#9e9e9e";
  }
}

/// Per-rank stats strip under the rank labels.  With a metrics
/// snapshot: sends / recvs / bytes / recv-block time from the obs
/// registry; without one: send/recv counts derived from the trace.
std::string metrics_strip(const trace::Trace& trace,
                          const obs::Snapshot* metrics) {
  std::ostringstream os;
  os << "<table id='stats'><tr><th>rank</th><th>sends</th><th>recvs</th>";
  if (metrics != nullptr) {
    os << "<th>bytes out</th><th>bytes in</th><th>recv block</th>";
  }
  os << "</tr>\n";
  const auto* sends =
      metrics != nullptr ? metrics->find("runtime.calls.send") : nullptr;
  const auto* recvs =
      metrics != nullptr ? metrics->find("runtime.calls.recv") : nullptr;
  const auto* bytes_out =
      metrics != nullptr ? metrics->find("runtime.bytes_sent") : nullptr;
  const auto* bytes_in =
      metrics != nullptr ? metrics->find("runtime.bytes_received") : nullptr;
  const auto* block =
      metrics != nullptr ? metrics->find("runtime.recv_block_ns") : nullptr;
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    const auto slot = obs::slot_of(r);
    std::uint64_t n_send = 0;
    std::uint64_t n_recv = 0;
    if (metrics != nullptr) {
      if (sends != nullptr) n_send = sends->per_rank[slot];
      if (recvs != nullptr) n_recv = recvs->per_rank[slot];
    } else {
      trace.for_each_rank_event(r, [&](std::size_t, const trace::Event& e) {
        if (e.kind == trace::EventKind::kSend) ++n_send;
        if (e.kind == trace::EventKind::kRecv) ++n_recv;
      });
    }
    os << "<tr><td>P" << r << "</td><td>" << n_send << "</td><td>" << n_recv
       << "</td>";
    if (metrics != nullptr) {
      os << "<td>" << (bytes_out != nullptr ? bytes_out->per_rank[slot] : 0)
         << "</td><td>"
         << (bytes_in != nullptr ? bytes_in->per_rank[slot] : 0)
         << "</td><td>"
         << (block != nullptr ? block->per_rank[slot] : 0) << " blocks</td>";
    }
    os << "</tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

/// Aggregate self-profile strip: one row per span name with count and
/// total time — the page-sized summary of the Chrome-trace export.
std::string spans_strip(const std::vector<telemetry::SpanRecord>& spans) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::uint32_t, Agg> by_name;
  for (const auto& s : spans) {
    auto& agg = by_name[s.name];
    ++agg.count;
    if (s.t_end > s.t_start) {
      agg.total_ns += static_cast<std::uint64_t>(s.t_end - s.t_start);
    }
  }
  std::ostringstream os;
  os << "<table id='stats'><tr><th>tdbg phase</th><th>count</th>"
        "<th>total</th></tr>\n";
  for (const auto& [name, agg] : by_name) {
    os << "<tr><td>" << support::escape_label(
              std::string(telemetry::site_name(name)))
       << "</td><td>" << agg.count << "</td><td>"
       << agg.total_ns / 1000 << " &micro;s</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

}  // namespace

std::string to_html(const trace::Trace& trace, const HtmlOptions& options,
                    const Overlay& overlay) {
  const auto t0 = trace.t_min();
  const auto t1 = std::max(trace.t_max(), t0 + 1);
  const int rows = trace.num_ranks();
  const double width = 1000.0;
  const int row_h = 26;
  const int height = rows * row_h + 20;
  const auto x_of = [&](support::TimeNs t) {
    return static_cast<double>(t - t0) / static_cast<double>(t1 - t0) * width;
  };
  const auto row_y = [&](mpi::Rank r) { return 10 + (rows - 1 - r) * row_h; };

  std::ostringstream svg;
  // Shared matching from the caller's session when provided
  // (options.diagram.matches); a throwaway session otherwise.
  std::optional<analysis::Session> fallback;
  if (options.diagram.matches == nullptr) fallback.emplace(trace);
  const auto& matches = options.diagram.matches ? *options.diagram.matches
                                                : fallback->match_report();
  for (const auto& m : matches.matches) {
    const auto s = trace.event(m.send_index);
    const auto r = trace.event(m.recv_index);
    svg << "<line class='msg' x1='" << x_of(s.t_start) << "' y1='"
        << row_y(s.rank) + row_h / 2 << "' x2='" << x_of(r.t_end) << "' y2='"
        << row_y(r.rank) + row_h / 2 << "'/>\n";
  }
  trace.for_each_event([&](std::size_t, const trace::Event& e) {
    if (e.kind == trace::EventKind::kEnter ||
        e.kind == trace::EventKind::kExit) {
      return;
    }
    const double x = x_of(e.t_start);
    const double w = std::max(1.0, x_of(e.t_end) - x);
    const auto& name = e.construct == trace::kNoConstruct
                           ? std::string("?")
                           : trace.constructs().info(e.construct).name;
    svg << "<rect class='ev' x='" << x << "' y='" << row_y(e.rank) + 4
        << "' width='" << w << "' height='" << row_h - 8 << "' fill='"
        << color_of_kind(e.kind) << "' data-rank='" << e.rank
        << "' data-marker='" << e.marker << "' data-kind='"
        << trace::event_kind_name(e.kind) << "' data-construct='"
        << support::escape_label(name) << "' data-t0='" << e.t_start
        << "' data-t1='" << e.t_end << "'/>\n";
  });
  if (overlay.stopline) {
    svg << "<line x1='" << x_of(*overlay.stopline) << "' y1='0' x2='"
        << x_of(*overlay.stopline) << "' y2='" << height
        << "' stroke='red' stroke-width='2'/>\n";
  }

  std::ostringstream os;
  os << "<!doctype html>\n<html><head><meta charset='utf-8'>\n<title>"
     << support::escape_label(options.title) << "</title>\n<style>\n"
     << "body{font-family:monospace;margin:12px;background:#fafafa}\n"
     << "#viewport{border:1px solid #ccc;background:white;cursor:grab}\n"
     << ".msg{stroke:#555;stroke-width:0.8}\n"
     << ".ev:hover{stroke:black;stroke-width:1.5}\n"
     << "#detail{margin-top:8px;padding:6px;background:#eee;"
        "min-height:2.5em;white-space:pre}\n"
     << "#labels span{margin-right:1em}\n"
     << "#stats{border-collapse:collapse;margin:6px 0;font-size:12px}\n"
     << "#stats td,#stats th{border:1px solid #ccc;padding:2px 8px;"
        "text-align:right}\n"
     << "</style></head><body>\n"
     << "<h3>" << support::escape_label(options.title) << " &mdash; "
     << rows << " ranks, " << trace.size()
     << " records (wheel: zoom, drag: pan, click: inspect)</h3>\n"
     << "<div id='labels'>";
  for (mpi::Rank r = rows - 1; r >= 0; --r) os << "<span>P" << r << "</span>";
  os << "</div>\n"
     << metrics_strip(trace, options.metrics);
  if (options.self_spans != nullptr && !options.self_spans->empty()) {
    os << spans_strip(*options.self_spans);
  }
  os << "<svg id='viewport' width='100%' height='" << height
     << "' viewBox='0 0 " << width << " " << height << "'>\n"
     << svg.str() << "</svg>\n"
     << "<div id='detail'>click a bar for details</div>\n"
     << R"(<script>
const svg = document.getElementById('viewport');
const detail = document.getElementById('detail');
let vb = {x: 0, y: 0, w: )" << width << R"(, h: )" << height << R"(};
function apply() {
  svg.setAttribute('viewBox', vb.x + ' ' + vb.y + ' ' + vb.w + ' ' + vb.h);
}
svg.addEventListener('wheel', (ev) => {
  ev.preventDefault();
  const scale = ev.deltaY > 0 ? 1.2 : 1 / 1.2;
  const frac = ev.offsetX / svg.clientWidth;
  const cx = vb.x + frac * vb.w;
  vb.w = Math.min()" << width << R"(, vb.w * scale);
  vb.x = Math.max(0, cx - frac * vb.w);
  apply();
});
let drag = null;
svg.addEventListener('mousedown', (ev) => { drag = {x: ev.clientX, vx: vb.x}; });
window.addEventListener('mouseup', () => { drag = null; });
window.addEventListener('mousemove', (ev) => {
  if (!drag) return;
  const dx = (ev.clientX - drag.x) / svg.clientWidth * vb.w;
  vb.x = Math.max(0, drag.vx - dx);
  apply();
});
svg.addEventListener('click', (ev) => {
  const t = ev.target;
  if (!t.classList.contains('ev')) return;
  detail.textContent =
      'rank ' + t.dataset.rank + '  marker ' + t.dataset.marker +
      '  ' + t.dataset.kind + '  ' + t.dataset.construct +
      '\nt = [' + t.dataset.t0 + ' .. ' + t.dataset.t1 + '] ns' +
      '\n(a stopline here would arm marker ' + t.dataset.marker +
      ' on rank ' + t.dataset.rank + ')';
});
</script>
</body></html>
)";
  return os.str();
}

}  // namespace tdbg::viz
