#pragma once

#include <cstddef>
#include <vector>

namespace tdbg::mpi {

/// Recycler for message payload buffers.
///
/// Eager delivery copies every payload into the destination mailbox;
/// without pooling that is one heap allocation per send and one free
/// per receive — the dominant cost of small-message traffic once the
/// mailbox itself is lock-free.  The pool keeps freed buffers on a
/// small thread-local cache with a mutex-protected shared spillover,
/// so buffers migrate back from receiver threads to sender threads
/// (sends allocate on one rank's thread, receives free on another's)
/// and steady-state traffic hits the allocator not at all.
///
/// Only buffers with at least `kMinPooledCapacity` bytes of capacity
/// are retained: tiny payloads live inline in `Message` (see
/// message.hpp) and never reach the pool.
class PayloadPool {
 public:
  /// Process-wide pool instance.
  static PayloadPool& global();

  /// Returns a buffer with `size() == n`, reusing a pooled buffer's
  /// capacity when one is available.
  std::vector<std::byte> acquire(std::size_t n);

  /// Returns `buf` to the pool (or frees it, if it is too small to be
  /// worth keeping or the pool is full).  `buf` is left empty.
  void release(std::vector<std::byte>&& buf);

  /// Buffers handed out that reused pooled storage (for tests).
  [[nodiscard]] std::size_t reuse_count() const;

  /// Smallest buffer capacity worth pooling; below this the SBO path
  /// in `Message` applies anyway.
  static constexpr std::size_t kMinPooledCapacity = 64;

  /// Per-thread cache size; overflow spills to the shared freelist.
  static constexpr std::size_t kLocalCacheCap = 16;

  /// Shared freelist bound, so a fan-in burst cannot pin unbounded
  /// memory after the burst drains.
  static constexpr std::size_t kSharedCap = 256;
};

}  // namespace tdbg::mpi
