#include "mpi/subcomm.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "support/error.hpp"
#include "support/serialize.hpp"

namespace tdbg::mpi {

namespace {

/// Context tag banding: each context owns a stride of tag values above
/// the collective band.
constexpr Tag kContextTagBase = kMaxUserTag + 1024;
constexpr Tag kContextStride = 1 << 20;
constexpr int kMaxContexts = 1500;  // keeps wire tags within int range

}  // namespace

Tag SubComm::wire_tag(Tag tag) const {
  TDBG_CHECK(tag >= 0 && tag < kContextStride,
             "subcomm tag out of range");
  return kContextTagBase + static_cast<Tag>(context_) * kContextStride + tag;
}

void SubComm::send(std::span<const std::byte> data, int dest, Tag tag,
                   const char* site) {
  comm_->context_send(data, world_rank(dest), wire_tag(tag), tag, site);
}

Status SubComm::recv(std::vector<std::byte>& out, int source, Tag tag,
                     const char* site) {
  TDBG_CHECK(source >= 0 && source < size(), "subcomm source out of range");
  auto st = comm_->context_recv(out, world_rank(source), wire_tag(tag), tag,
                                site);
  // Translate the source back into subgroup numbering.
  st.source = source;
  return st;
}

void SubComm::barrier(const char* site) {
  const int p = size();
  const std::byte token{0};
  Tag round = 0;
  for (int dist = 1; dist < p; dist *= 2, ++round) {
    const int to = (sub_rank_ + dist) % p;
    const int from = (sub_rank_ - dist % p + p) % p;
    send(std::span(&token, 1), to, kContextStride - 1 - round, site);
    std::vector<std::byte> dummy;
    recv(dummy, from, kContextStride - 1 - round, site);
  }
}

void SubComm::bcast(std::vector<std::byte>& data, int root,
                    const char* site) {
  TDBG_CHECK(root >= 0 && root < size(), "subcomm root out of range");
  const int p = size();
  const int vrank = (sub_rank_ - root + p) % p;
  const Tag tag = kContextStride - 16;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      recv(data, ((vrank - mask) + root) % p, tag, site);
      break;
    }
    mask <<= 1;
  }
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (vrank + mask < p) {
      send(std::span<const std::byte>(data), (vrank + mask + root) % p, tag,
           site);
    }
  }
}

SubComm split(Comm& comm, int color, int key) {
  // Gather every rank's (color, key) at world rank 0.
  struct Entry {
    int color;
    int key;
  };
  const Entry mine{color, key};
  const auto gathered =
      comm.gather(std::as_bytes(std::span<const Entry>(&mine, 1)), 0,
                  "MPI_Comm_split");

  // Rank 0 forms the subgroups and allocates one context per color.
  // The assignment sent to each rank: context, sub_rank, members.
  std::vector<std::vector<std::byte>> assignments;
  if (comm.rank() == 0) {
    std::map<int, std::vector<std::pair<int, Rank>>> by_color;  // key,rank
    for (Rank r = 0; r < comm.size(); ++r) {
      Entry e;
      TDBG_CHECK(gathered[static_cast<std::size_t>(r)].size() == sizeof e,
                 "split gather corrupted");
      std::memcpy(&e, gathered[static_cast<std::size_t>(r)].data(), sizeof e);
      by_color[e.color].emplace_back(e.key, r);
    }
    const int base =
        comm.allocate_contexts(static_cast<int>(by_color.size()));
    TDBG_CHECK(base + static_cast<int>(by_color.size()) <= kMaxContexts,
               "communicator contexts exhausted");

    assignments.assign(static_cast<std::size_t>(comm.size()), {});
    int ctx = base;
    for (auto& [c, members] : by_color) {
      std::sort(members.begin(), members.end());
      for (int sub = 0; sub < static_cast<int>(members.size()); ++sub) {
        const Rank world = members[static_cast<std::size_t>(sub)].second;
        support::BinaryWriter w;
        w.put<std::int32_t>(ctx);
        w.put<std::int32_t>(sub);
        w.put<std::int32_t>(static_cast<std::int32_t>(members.size()));
        for (const auto& [k, r] : members) w.put<std::int32_t>(r);
        assignments[static_cast<std::size_t>(world)] = w.bytes();
      }
      ++ctx;
    }
  }
  const auto packed = comm.scatter(assignments, 0, "MPI_Comm_split");

  support::BinaryReader r(packed);
  const int context = r.get<std::int32_t>();
  const int sub_rank = r.get<std::int32_t>();
  const int count = r.get<std::int32_t>();
  std::vector<Rank> members;
  members.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) members.push_back(r.get<std::int32_t>());
  return SubComm(&comm, color, context, std::move(members), sub_rank);
}

}  // namespace tdbg::mpi
