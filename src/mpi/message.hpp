#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/types.hpp"
#include "support/clock.hpp"

namespace tdbg::mpi {

/// Completion handle for a synchronous send: the sender blocks on it
/// until the receiver matches the message.
struct SyncHandle {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
};

/// A buffered message in flight between two ranks.
///
/// The runtime uses eager (buffered) delivery: `send` copies the
/// payload into the destination mailbox and returns.  `ssend` blocks
/// until the matching receive completes (via `sync`), which is what
/// allows the analysis module to exercise send-side deadlocks as well.
struct Message {
  Rank source = 0;
  Rank dest = 0;
  Tag tag = 0;
  ChannelSeq seq = 0;                 ///< per-(source,dest) FIFO position
  std::uint64_t arrival = 0;          ///< mailbox-wide arrival counter
  support::TimeNs delivered_ns = 0;   ///< delivery stamp for match-latency
                                      ///< metrics; 0 when metrics are off
  bool synchronous = false;           ///< true for ssend: sender is blocked
  std::shared_ptr<SyncHandle> sync;   ///< set iff synchronous
  std::vector<std::byte> payload;
};

}  // namespace tdbg::mpi
