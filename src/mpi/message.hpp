#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "mpi/payload.hpp"
#include "mpi/types.hpp"
#include "support/clock.hpp"

namespace tdbg::mpi {

/// A buffered message in flight between two ranks.
///
/// The runtime uses eager (buffered) delivery: `send` copies the
/// payload into the destination mailbox and returns.  `ssend` blocks
/// until the matching receive completes, signalled through the
/// sender's per-rank rendezvous slot in `MailboxShared` (identified
/// here by `sync_seq`) — no heap-allocated completion handle is
/// involved; see DESIGN.md "Hot paths".
///
/// Payload storage is small-buffer optimized: payloads up to
/// `kInlinePayload` bytes live inside the message (the common case —
/// scalars, barrier tokens, collective rounds), larger ones borrow a
/// buffer from the `PayloadPool`.  Either way a steady-state send
/// performs zero heap allocations.
class Message {
 public:
  static constexpr std::size_t kInlinePayload = 64;

  Rank source = 0;
  Rank dest = 0;
  Tag tag = 0;
  ChannelSeq seq = 0;                ///< per-(source,dest) FIFO position
  std::uint64_t arrival = 0;         ///< receiver-side arrival stamp
  support::TimeNs delivered_ns = 0;  ///< delivery stamp for match-latency
                                     ///< metrics; 0 when metrics are off
  bool synchronous = false;          ///< true for ssend: sender is blocked
  std::uint64_t sync_seq = 0;        ///< sender's rendezvous ticket (ssend)

  Message() = default;
  // Moves copy only the used prefix of the inline buffer — messages
  // pass through the transport ring by move, so this keeps a 4-byte
  // payload from costing a 64-byte copy per hop.
  Message(Message&& other) noexcept { move_from(other); }
  Message& operator=(Message&& other) noexcept {
    if (this != &other) {
      if (inline_size_ == kNotInline && !heap_.empty()) {
        PayloadPool::global().release(std::move(heap_));
      }
      move_from(other);
    }
    return *this;
  }
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;

  ~Message() {
    if (inline_size_ == kNotInline && !heap_.empty()) {
      PayloadPool::global().release(std::move(heap_));
    }
  }

  /// Copies `data` into the message (inline if it fits, pooled buffer
  /// otherwise).
  void set_payload(std::span<const std::byte> data) {
    if (data.size() <= kInlinePayload) {
      inline_size_ = static_cast<std::uint32_t>(data.size());
      if (!data.empty()) std::memcpy(inline_.data(), data.data(), data.size());
      if (!heap_.empty()) {
        PayloadPool::global().release(std::move(heap_));
        heap_.clear();
      }
    } else {
      inline_size_ = kNotInline;
      heap_ = PayloadPool::global().acquire(data.size());
      std::memcpy(heap_.data(), data.data(), data.size());
    }
  }

  [[nodiscard]] std::span<const std::byte> payload() const {
    if (inline_size_ != kNotInline) {
      return {inline_.data(), static_cast<std::size_t>(inline_size_)};
    }
    return {heap_.data(), heap_.size()};
  }

  [[nodiscard]] std::size_t payload_size() const {
    return inline_size_ != kNotInline ? inline_size_ : heap_.size();
  }

  /// Hands the payload to `out`.  Inline payloads are copied (reusing
  /// `out`'s capacity); pooled payloads are swapped in — zero copy —
  /// and `out`'s previous buffer is recycled into the pool, so a
  /// receive loop's buffer circulates back to the senders.
  void take_payload(std::vector<std::byte>& out) {
    if (inline_size_ != kNotInline) {
      out.resize(inline_size_);
      if (inline_size_ != 0) {
        std::memcpy(out.data(), inline_.data(), inline_size_);
      }
    } else {
      out.swap(heap_);
      PayloadPool::global().release(std::move(heap_));
      heap_.clear();
      inline_size_ = 0;
    }
  }

 private:
  static constexpr std::uint32_t kNotInline = ~std::uint32_t{0};

  void move_from(Message& other) noexcept {
    source = other.source;
    dest = other.dest;
    tag = other.tag;
    seq = other.seq;
    arrival = other.arrival;
    delivered_ns = other.delivered_ns;
    synchronous = other.synchronous;
    sync_seq = other.sync_seq;
    inline_size_ = other.inline_size_;
    if (inline_size_ != kNotInline) {
      if (inline_size_ != 0) {
        std::memcpy(inline_.data(), other.inline_.data(), inline_size_);
      }
    } else {
      heap_ = std::move(other.heap_);
      other.inline_size_ = 0;
    }
  }

  std::uint32_t inline_size_ = 0;  ///< kNotInline => payload in heap_
  std::array<std::byte, kInlinePayload> inline_;
  std::vector<std::byte> heap_;
};

}  // namespace tdbg::mpi
