#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "mpi/fault_injector.hpp"
#include "mpi/hooks.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/match_controller.hpp"

namespace tdbg::mpi {

/// Why a run was aborted.
enum class AbortCause : std::uint8_t {
  kNone,
  kDeadlock,     ///< watchdog observed stable global quiescence
  kRankFailure,  ///< a rank body threw
  kExternal,     ///< Runtime caller requested abort
};

/// Details of an abort, including the wait snapshot taken at the
/// moment of the abort (this is what Figure 5's "who is blocked on
/// whom" view is built from).
struct AbortInfo {
  AbortCause cause = AbortCause::kNone;
  std::string detail;
  std::vector<WaitInfo> waits;
};

/// Shared state for one run: the mailboxes, the wait registry, the
/// installed hooks and match controller.  Owned by `Runtime::run`;
/// ranks hold a pointer through their `Comm`.
class World {
 public:
  World(int size, ProfilingHooks* hooks, MatchController* controller,
        FaultInjector* fault_injector = nullptr);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return size_; }

  [[nodiscard]] Mailbox& mailbox(Rank rank) {
    return *mailboxes_.at(static_cast<std::size_t>(rank));
  }

  [[nodiscard]] const Mailbox& mailbox(Rank rank) const {
    return *mailboxes_.at(static_cast<std::size_t>(rank));
  }

  [[nodiscard]] ProfilingHooks* hooks() const { return hooks_; }
  [[nodiscard]] MatchController* controller() const { return controller_; }
  [[nodiscard]] FaultInjector* fault_injector() const {
    return fault_injector_;
  }
  [[nodiscard]] MailboxShared& shared() { return shared_; }
  [[nodiscard]] const MailboxShared& shared() const { return shared_; }

  /// Aborts the run: records the cause (first abort wins), snapshots
  /// the wait registry, sets the abort flag, and wakes every blocked
  /// rank.  Safe to call from any thread, idempotent.
  void abort(AbortCause cause, std::string detail);

  /// Valid after the run stops; cause `kNone` if never aborted.
  [[nodiscard]] const AbortInfo& abort_info() const { return abort_; }

  /// Allocates a block of `count` fresh communicator contexts (used by
  /// `split`; contexts isolate subcommunicator traffic in tag space).
  int allocate_contexts(int count) {
    return next_context_.fetch_add(count, std::memory_order_relaxed);
  }

 private:
  int size_;
  ProfilingHooks* hooks_;
  MatchController* controller_;
  FaultInjector* fault_injector_;
  MailboxShared shared_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex abort_mu_;
  AbortInfo abort_;
  std::atomic<int> next_context_{0};
};

}  // namespace tdbg::mpi
