#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mpi/match_controller.hpp"
#include "mpi/message.hpp"
#include "mpi/types.hpp"
#include "mpi/wait_registry.hpp"

namespace tdbg::mpi {

/// Thrown in a blocked rank when the run is aborted (deadlock detected
/// by the watchdog, or another rank failed).  The runtime catches it
/// at the top of the rank body; application code should not.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override { return "tdbg::mpi run aborted"; }
};

/// One rank's ssend rendezvous slot: receivers store the sender's
/// rendezvous ticket here when they match a synchronous message.  The
/// slot outlives any individual ssend (it is owned by the world), so
/// the sender needs no heap-allocated completion handle — the blocked
/// `pmpi_ssend` just waits for `done_seq` to reach its ticket.
/// Padded so neighbouring ranks' slots don't share a cache line.
struct alignas(64) SsendSlot {
  std::atomic<std::uint64_t> done_seq{0};
};

/// Shared world state the mailboxes need: abort flag, progress
/// counter, ssend rendezvous slots, and the wait registry.  Owned by
/// the runtime.
struct MailboxShared {
  explicit MailboxShared(int world_size)
      : registry(world_size),
        ssend_slots(static_cast<std::size_t>(world_size)) {}

  std::atomic<bool> aborted{false};
  std::atomic<std::uint64_t> progress{0};  ///< delivers + matches, for the watchdog
  WaitRegistry registry;
  std::vector<SsendSlot> ssend_slots;  ///< indexed by *sender* rank
};

/// Per-rank incoming-message store implementing MPI matching rules.
///
/// Transport is one SPSC channel per source rank: a bounded lock-free
/// ring for the fast path with a mutex-protected overflow deque behind
/// it, so eager sends never block (the alltoall send phase and the
/// deadlock watchdog both rely on that).  The owning rank drains
/// channels into private per-channel `pending` deques — the only place
/// matching and removal happen — guided by an atomic dirty-channel
/// bitmask so a drain touches only channels with new traffic.
///
/// Matching semantics are unchanged from the locked design: a receive
/// posted with a specific source matches the earliest message from
/// that source with a compatible tag (the MPI non-overtaking rule the
/// paper relies on to uniquely match send and receive arcs, §3.2); a
/// wildcard-source receive matches, among the first tag-compatible
/// message of each channel, the one with the earliest arrival stamp —
/// unless a `MatchController` forces a specific (source, seq), which
/// is how replay pins down wildcard nondeterminism (§4.2).  Arrival
/// stamps are assigned when the owner drains a message (drain order =
/// observation order); the match log records whichever choice results,
/// so record→replay equivalence is unaffected.
///
/// Blocking uses a park/notify protocol instead of holding a lock:
/// the receiver publishes a sleeper count (seq_cst), re-drains, and
/// only then waits on the condition variable; senders push, fence, and
/// notify only when a sleeper is visible.  Either the receiver's
/// re-drain sees the push or the sender sees the sleeper — a lost
/// wakeup would require both seq_cst orderings to fail.
class Mailbox {
 public:
  Mailbox(Rank owner, int world_size, MailboxShared* shared);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message (called from the sender's thread; one sender
  /// thread per source rank).  Assigns the per-channel sequence
  /// number.  Never blocks.
  void deliver(Message msg);

  /// Blocks until a message matching (source, tag) — or the
  /// controller-forced message — is available, removes it, and copies
  /// its payload into `out`.  Owner thread only.  Throws `Aborted` if
  /// the run aborts while waiting and `tdbg::Error` on replay
  /// divergence.
  Status receive(Rank source, Tag tag, std::vector<std::byte>& out,
                 MatchController* controller, std::uint64_t recv_index);

  /// Blocks until a matching message is available; returns its status
  /// without removing it.  Owner thread only.
  Status probe(Rank source, Tag tag);

  /// Non-blocking probe.  Owner thread only.
  std::optional<Status> iprobe(Rank source, Tag tag);

  /// Wakes any thread blocked in this mailbox (used on abort).
  void notify_abort();

  /// Number of queued (undelivered-to-app) messages; used by tests and
  /// the traffic analyzer.  With `user_only`, messages on internal
  /// (collective) tags are excluded — a rank that raced ahead into a
  /// collective must not count as traffic for quiescence checks.
  /// Callable from any thread (reads atomic counters).
  [[nodiscard]] std::size_t queued_count(bool user_only = false) const;

  /// Ring capacity per channel; beyond this, deliveries spill to the
  /// overflow deque (still non-blocking, just slower).
  static constexpr std::size_t kRingCapacity = 32;

 private:
  /// Cached result of the last first-compatible scan of a pending
  /// deque, so repeated wakeups with the same posted tag don't re-walk
  /// the queue (satellite of PR 2; see DESIGN.md "Hot paths").
  struct MatchCache {
    bool valid = false;
    Tag tag = kAnyTag;
    std::size_t index = 0;  ///< kNoMatch when no compatible message
  };
  static constexpr std::size_t kNoMatch = ~std::size_t{0};

  struct Channel {
    // --- SPSC transport: producer = source rank's thread ------------
    alignas(64) std::atomic<std::uint64_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer cursor
    std::array<Message, kRingCapacity> ring;

    std::mutex overflow_mu;
    std::deque<Message> overflow;
    std::atomic<std::uint32_t> overflow_count{0};

    /// Producer-only: seq to assign to the next delivery.
    ChannelSeq next_seq = 0;

    // --- Consumer-private (owner thread only) -----------------------
    std::deque<Message> pending;  ///< drained, matchable messages
    MatchCache cache;
  };

  struct Pick {
    Rank source;
    std::size_t index;  ///< position within the channel's pending deque
  };

  /// Moves every message out of dirty channels' rings/overflows into
  /// the pending deques, stamping arrival order.  Owner thread only.
  void drain_transport();
  void drain_channel(Channel& ch);

  /// Finds the message the posted receive should match right now, or
  /// nullopt if it must keep waiting.  Owner thread only (operates on
  /// pending deques).
  std::optional<Pick> try_match(Rank source, Tag tag,
                                MatchController* controller,
                                std::uint64_t recv_index);

  /// First tag-compatible message in `channel.pending`, or kNoMatch;
  /// memoized in `channel.cache`.
  std::size_t first_match(Channel& channel, Tag tag);

  /// Removes the picked message and completes the receive (payload,
  /// metrics, counters, rendezvous signal).
  Status consume(const Pick& pick, std::vector<std::byte>& out);

  /// Bounded busy-wait for new transport traffic; true if any arrived.
  bool spin_for_traffic() const;

  const Message& picked(const Pick& pick) const;

  void check_aborted() const;

  Rank owner_;
  MailboxShared* shared_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< indexed by source

  /// Bitmask of channels with undrained transport traffic.  Producers
  /// set their bit after pushing; the owner exchanges it to zero
  /// before draining.  Worlds larger than 64 ranks share bits
  /// (source % 64), which only widens the drain, never skips one.
  std::atomic<std::uint64_t> dirty_{0};

  /// Bitmask of channels with non-empty pending deques (owner-private)
  /// so wildcard matching scans only active channels.
  std::uint64_t pending_mask_ = 0;

  std::uint64_t arrivals_ = 0;  ///< owner-side arrival stamp counter

  /// Delivered-but-not-received counts, readable from any thread.
  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> queued_user_{0};

  // Park/notify state (see class comment).
  std::mutex park_mu_;
  std::condition_variable cv_;
  std::atomic<int> sleepers_{0};

  [[nodiscard]] std::uint64_t bit_of(Rank source) const {
    return std::uint64_t{1} << (static_cast<unsigned>(source) % 64u);
  }
};

}  // namespace tdbg::mpi
