#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mpi/match_controller.hpp"
#include "mpi/message.hpp"
#include "mpi/types.hpp"
#include "mpi/wait_registry.hpp"

namespace tdbg::mpi {

/// Thrown in a blocked rank when the run is aborted (deadlock detected
/// by the watchdog, or another rank failed).  The runtime catches it
/// at the top of the rank body; application code should not.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override { return "tdbg::mpi run aborted"; }
};

/// Shared world state the mailboxes need: abort flag, progress
/// counter, and the wait registry.  Owned by the runtime.
struct MailboxShared {
  explicit MailboxShared(int world_size) : registry(world_size) {}

  std::atomic<bool> aborted{false};
  std::atomic<std::uint64_t> progress{0};  ///< delivers + matches, for the watchdog
  WaitRegistry registry;
};

/// Per-rank incoming-message store implementing MPI matching rules.
///
/// Messages are held in per-source FIFO channels.  A receive posted
/// with a specific source matches the earliest message from that
/// source with a compatible tag (the MPI non-overtaking rule the paper
/// relies on to uniquely match send and receive arcs, §3.2).  A
/// wildcard-source receive matches, among the first tag-compatible
/// message of each channel, the one that arrived earliest — unless a
/// `MatchController` forces a specific (source, seq), which is how
/// replay pins down wildcard nondeterminism (§4.2).
class Mailbox {
 public:
  Mailbox(Rank owner, int world_size, MailboxShared* shared);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message (called from the sender's thread).  Assigns
  /// the per-channel sequence number and the arrival stamp.
  void deliver(Message msg);

  /// Blocks until a message matching (source, tag) — or the
  /// controller-forced message — is available, removes it, and copies
  /// its payload into `out`.  Throws `Aborted` if the run aborts while
  /// waiting and `tdbg::Error` on replay divergence.
  Status receive(Rank source, Tag tag, std::vector<std::byte>& out,
                 MatchController* controller, std::uint64_t recv_index);

  /// Blocks until a matching message is available; returns its status
  /// without removing it.
  Status probe(Rank source, Tag tag);

  /// Non-blocking probe.
  std::optional<Status> iprobe(Rank source, Tag tag);

  /// Wakes any thread blocked in this mailbox (used on abort).
  void notify_abort();

  /// Number of queued (undelivered-to-app) messages; used by tests and
  /// the traffic analyzer.  With `user_only`, messages on internal
  /// (collective) tags are excluded — a rank that raced ahead into a
  /// collective must not count as traffic for quiescence checks.
  [[nodiscard]] std::size_t queued_count(bool user_only = false) const;

 private:
  struct Channel {
    std::deque<Message> queue;
    ChannelSeq next_seq = 0;  ///< seq to assign to the next delivery
  };

  struct Pick {
    Rank source;
    std::size_t index;  ///< position within the channel deque
  };

  /// Finds the message the posted receive should match right now, or
  /// nullopt if it must keep waiting.  Caller holds `mu_`.
  std::optional<Pick> try_match(Rank source, Tag tag,
                                MatchController* controller,
                                std::uint64_t recv_index) const;

  /// First tag-compatible message in `channel`, or nullopt.
  static std::optional<std::size_t> first_match(const Channel& channel,
                                                Tag tag);

  void check_aborted() const;

  Rank owner_;
  MailboxShared* shared_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Channel> channels_;  ///< indexed by source rank
  std::uint64_t arrivals_ = 0;
  std::size_t queued_now_ = 0;  ///< live queued total, for the HWM gauge
};

}  // namespace tdbg::mpi
