#include "mpi/mailbox.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"

namespace tdbg::mpi {

namespace {

bool tag_matches(Tag posted, Tag actual) {
  return posted == kAnyTag || posted == actual;
}

/// Mailbox-family instruments, interned once per process.  Per-rank
/// slots keep concurrent mailboxes off each other's cache lines.
struct MailboxMetrics {
  obs::Counter& delivered =
      obs::MetricsRegistry::global().counter("runtime.msgs_delivered");
  obs::Gauge& queue_hwm =
      obs::MetricsRegistry::global().gauge("runtime.mailbox_queue_hwm");
  obs::Histogram& match_latency = obs::MetricsRegistry::global().histogram(
      "runtime.match_latency_ns", obs::Unit::kNanoseconds);
};

MailboxMetrics& mailbox_metrics() {
  static MailboxMetrics metrics;
  return metrics;
}

}  // namespace

Mailbox::Mailbox(Rank owner, int world_size, MailboxShared* shared)
    : owner_(owner), shared_(shared),
      channels_(static_cast<std::size_t>(world_size)) {
  TDBG_CHECK(shared != nullptr, "mailbox needs shared world state");
}

void Mailbox::deliver(Message msg) {
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = mailbox_metrics();
    metrics.delivered.add(owner_);
    if (metrics.match_latency.hot()) msg.delivered_ns = support::now_ns();
  }
  {
    std::lock_guard lk(mu_);
    auto& ch = channels_.at(static_cast<std::size_t>(msg.source));
    msg.seq = ch.next_seq++;
    msg.arrival = arrivals_++;
    ch.queue.push_back(std::move(msg));
    ++queued_now_;
    if constexpr (obs::kMetricsEnabled) {
      mailbox_metrics().queue_hwm.record_max(owner_, queued_now_);
    }
    shared_->progress.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

std::optional<std::size_t> Mailbox::first_match(const Channel& channel,
                                                Tag tag) {
  for (std::size_t i = 0; i < channel.queue.size(); ++i) {
    if (tag_matches(tag, channel.queue[i].tag)) return i;
  }
  return std::nullopt;
}

std::optional<Mailbox::Pick> Mailbox::try_match(
    Rank source, Tag tag, MatchController* controller,
    std::uint64_t recv_index) const {
  if (controller != nullptr) {
    if (auto forced = controller->force(owner_, recv_index)) {
      // Replay: wait for exactly (forced->source, forced->seq).
      TDBG_CHECK(source == kAnySource || source == forced->source,
                 "replay divergence: posted receive source differs from "
                 "recorded match");
      const auto& ch = channels_.at(static_cast<std::size_t>(forced->source));
      auto idx = first_match(ch, tag);
      if (!idx) return std::nullopt;  // not arrived yet
      const Message& m = ch.queue[*idx];
      if (m.seq < forced->seq) {
        // A tag-compatible message precedes the recorded one and only
        // this (single-threaded) rank could consume it — the replayed
        // program's receives diverge from the log.
        throw Error(
            "replay divergence: an earlier tag-compatible message (seq " +
            std::to_string(m.seq) + ") precedes the recorded match (seq " +
            std::to_string(forced->seq) + ") and nothing can consume it");
      }
      if (m.seq > forced->seq) {
        throw Error(
            "replay divergence: recorded message already consumed "
            "(wanted seq " + std::to_string(forced->seq) + ", first match is " +
            std::to_string(m.seq) + ")");
      }
      return Pick{forced->source, *idx};
    }
  }

  if (source != kAnySource) {
    const auto& ch = channels_.at(static_cast<std::size_t>(source));
    if (auto idx = first_match(ch, tag)) return Pick{source, *idx};
    return std::nullopt;
  }

  // Wildcard: among the first tag-compatible message of every channel,
  // take the earliest arrival.  This is the default (recorded-run)
  // nondeterminism policy.
  std::optional<Pick> best;
  std::uint64_t best_arrival = std::numeric_limits<std::uint64_t>::max();
  for (Rank s = 0; s < static_cast<Rank>(channels_.size()); ++s) {
    const auto& ch = channels_[static_cast<std::size_t>(s)];
    if (auto idx = first_match(ch, tag)) {
      const auto arrival = ch.queue[*idx].arrival;
      if (arrival < best_arrival) {
        best_arrival = arrival;
        best = Pick{s, *idx};
      }
    }
  }
  return best;
}

Status Mailbox::receive(Rank source, Tag tag, std::vector<std::byte>& out,
                        MatchController* controller,
                        std::uint64_t recv_index) {
  std::unique_lock lk(mu_);
  for (;;) {
    check_aborted();
    if (auto pick = try_match(source, tag, controller, recv_index)) {
      auto& ch = channels_.at(static_cast<std::size_t>(pick->source));
      Message msg = std::move(ch.queue[pick->index]);
      ch.queue.erase(ch.queue.begin() +
                     static_cast<std::ptrdiff_t>(pick->index));
      if (queued_now_ > 0) --queued_now_;
      shared_->progress.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();

      if constexpr (obs::kMetricsEnabled) {
        auto& metrics = mailbox_metrics();
        if (msg.delivered_ns != 0 && metrics.match_latency.hot()) {
          metrics.match_latency.record(
              owner_, static_cast<std::uint64_t>(support::now_ns() -
                                                 msg.delivered_ns));
        }
      }
      out = std::move(msg.payload);
      if (msg.synchronous && msg.sync) {
        std::lock_guard slk(msg.sync->mu);
        msg.sync->done = true;
        msg.sync->cv.notify_all();
      }
      return Status{msg.source, msg.tag, out.size(), msg.seq};
    }

    shared_->registry.enter_wait(owner_, WaitKind::kRecv, source, tag);
    cv_.wait(lk);
    shared_->registry.exit_wait(owner_);
  }
}

Status Mailbox::probe(Rank source, Tag tag) {
  std::unique_lock lk(mu_);
  for (;;) {
    check_aborted();
    if (auto pick = try_match(source, tag, nullptr, 0)) {
      const Message& m =
          channels_.at(static_cast<std::size_t>(pick->source)).queue[pick->index];
      return Status{m.source, m.tag, m.payload.size(), m.seq};
    }
    shared_->registry.enter_wait(owner_, WaitKind::kRecv, source, tag);
    cv_.wait(lk);
    shared_->registry.exit_wait(owner_);
  }
}

std::optional<Status> Mailbox::iprobe(Rank source, Tag tag) {
  std::lock_guard lk(mu_);
  check_aborted();
  if (auto pick = try_match(source, tag, nullptr, 0)) {
    const Message& m =
        channels_.at(static_cast<std::size_t>(pick->source)).queue[pick->index];
    return Status{m.source, m.tag, m.payload.size(), m.seq};
  }
  return std::nullopt;
}

void Mailbox::notify_abort() {
  // Taking the lock orders the notify after any in-flight check of the
  // abort flag: a waiter either saw the flag before sleeping or is
  // asleep when this notify fires.
  std::lock_guard lk(mu_);
  cv_.notify_all();
}

std::size_t Mailbox::queued_count(bool user_only) const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& ch : channels_) {
    if (!user_only) {
      n += ch.queue.size();
      continue;
    }
    for (const auto& m : ch.queue) {
      if (m.tag <= kMaxUserTag) ++n;
    }
  }
  return n;
}

void Mailbox::check_aborted() const {
  if (shared_->aborted.load(std::memory_order_acquire)) throw Aborted{};
}

}  // namespace tdbg::mpi
