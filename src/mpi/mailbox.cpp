#include "mpi/mailbox.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>

#include "obs/metrics.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "telemetry/span.hpp"

namespace tdbg::mpi {

namespace {

bool tag_matches(Tag posted, Tag actual) {
  return posted == kAnyTag || posted == actual;
}

/// Mailbox-family instruments, interned once per process.  Per-rank
/// slots keep concurrent mailboxes off each other's cache lines.
struct MailboxMetrics {
  obs::Counter& delivered =
      obs::MetricsRegistry::global().counter("runtime.msgs_delivered");
  obs::Gauge& queue_hwm =
      obs::MetricsRegistry::global().gauge("runtime.mailbox_queue_hwm");
  obs::Histogram& match_latency = obs::MetricsRegistry::global().histogram(
      "runtime.match_latency_ns", obs::Unit::kNanoseconds);
};

MailboxMetrics& mailbox_metrics() {
  static MailboxMetrics metrics;
  return metrics;
}

/// Bounded spin before parking: a blocked receive first watches the
/// dirty mask for a few microseconds, because rendezvous with an
/// imminent sender is far cheaper caught spinning than through a
/// futex sleep/wake.  Bounded, so a genuinely idle rank still parks
/// (and the deadlock watchdog still sees it go idle).
///
/// Two hard-won caveats (see DESIGN.md "Hot paths"):
///  * no PAUSE/YIELD instruction in the loop — under virtualization
///    those can trap (pause-loop exiting) and cost microseconds each;
///    a relaxed load of a resident cache line is ~1 ns and the loop
///    is strictly bounded anyway;
///  * spinning is disabled entirely on single-CPU hosts, where the
///    sender cannot make progress until the receiver yields the core —
///    there, parking immediately IS the fast path.
int spin_iterations() {
  static const int n =
      std::thread::hardware_concurrency() > 1 ? 4000 : 0;
  return n;
}

/// Balances the park-side sleeper count even when matching throws
/// (replay divergence unwinds through the parked receive).
struct SleeperGuard {
  std::atomic<int>& sleepers;
  explicit SleeperGuard(std::atomic<int>& s) : sleepers(s) {
    sleepers.fetch_add(1, std::memory_order_seq_cst);
  }
  ~SleeperGuard() { sleepers.fetch_sub(1, std::memory_order_relaxed); }
};

}  // namespace

Mailbox::Mailbox(Rank owner, int world_size, MailboxShared* shared)
    : owner_(owner), shared_(shared) {
  TDBG_CHECK(shared != nullptr, "mailbox needs shared world state");
  channels_.reserve(static_cast<std::size_t>(world_size));
  for (int s = 0; s < world_size; ++s) {
    channels_.push_back(std::make_unique<Channel>());
  }
}

void Mailbox::deliver(Message msg) {
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = mailbox_metrics();
    metrics.delivered.add(owner_);
    if (metrics.match_latency.hot()) msg.delivered_ns = support::now_ns();
  }
  auto& ch = *channels_[static_cast<std::size_t>(msg.source)];
  msg.seq = ch.next_seq++;  // producer-only field: one sender per channel
  const bool user = msg.tag <= kMaxUserTag;
  const std::size_t total =
      queued_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (user) queued_user_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    mailbox_metrics().queue_hwm.record_max(owner_, total);
  }

  const auto bit = bit_of(msg.source);
  // Fast path: SPSC ring push.  Spill to the overflow deque when the
  // ring is full or older spilled messages exist (the latter keeps the
  // channel FIFO: ring entries must always predate overflow entries).
  const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
  if (ch.overflow_count.load(std::memory_order_relaxed) == 0 &&
      t - ch.head.load(std::memory_order_acquire) < kRingCapacity) {
    ch.ring[t % kRingCapacity] = std::move(msg);
    ch.tail.store(t + 1, std::memory_order_release);
  } else {
    std::lock_guard lk(ch.overflow_mu);
    ch.overflow.push_back(std::move(msg));
    ch.overflow_count.fetch_add(1, std::memory_order_release);
  }
  shared_->progress.fetch_add(1, std::memory_order_relaxed);

  // Wakeup protocol (Dekker-style; see class comment): the seq_cst
  // RMW on dirty_ orders the push before the sleeper check, and the
  // receiver's seq_cst sleeper increment orders its publication before
  // its re-drain.  Whichever ordered first is seen by the other side.
  dirty_.fetch_or(bit, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard lk(park_mu_); }  // order notify after wait entry
    cv_.notify_all();
  }
}

void Mailbox::drain_channel(Channel& ch) {
  const std::size_t before = ch.pending.size();
  // Ring first: its entries always predate overflow entries.
  std::uint64_t h = ch.head.load(std::memory_order_relaxed);
  const std::uint64_t t = ch.tail.load(std::memory_order_acquire);
  while (h != t) {
    ch.pending.push_back(std::move(ch.ring[h % kRingCapacity]));
    ch.pending.back().arrival = arrivals_++;
    ++h;
    ch.head.store(h, std::memory_order_release);
  }
  if (ch.overflow_count.load(std::memory_order_acquire) > 0) {
    std::lock_guard lk(ch.overflow_mu);
    while (!ch.overflow.empty()) {
      Message msg = std::move(ch.overflow.front());
      ch.overflow.pop_front();
      msg.arrival = arrivals_++;
      ch.pending.push_back(std::move(msg));
    }
    ch.overflow_count.store(0, std::memory_order_release);
  }
  if (ch.pending.size() == before) return;
  // New messages can only create a first match where none existed.
  if (ch.cache.valid && ch.cache.index == kNoMatch) {
    for (std::size_t i = before; i < ch.pending.size(); ++i) {
      if (tag_matches(ch.cache.tag, ch.pending[i].tag)) {
        ch.cache.index = i;
        break;
      }
    }
  }
}

void Mailbox::drain_transport() {
  std::uint64_t dirty = dirty_.exchange(0, std::memory_order_seq_cst);
  if (dirty == 0) return;
  const std::size_t n = channels_.size();
  if (n <= 64) {
    while (dirty != 0) {
      const auto s = static_cast<std::size_t>(std::countr_zero(dirty));
      dirty &= dirty - 1;
      drain_channel(*channels_[s]);
      if (!channels_[s]->pending.empty()) {
        pending_mask_ |= std::uint64_t{1} << s;
      }
    }
  } else {
    // Bits are shared between sources (source % 64): any dirt means a
    // full sweep.  Worlds this large are outside the bitmask's design
    // point; correctness is kept, O(active) is not.
    for (auto& ch : channels_) drain_channel(*ch);
  }
}

std::size_t Mailbox::first_match(Channel& ch, Tag tag) {
  if (ch.cache.valid && ch.cache.tag == tag) return ch.cache.index;
  std::size_t found = kNoMatch;
  for (std::size_t i = 0; i < ch.pending.size(); ++i) {
    if (tag_matches(tag, ch.pending[i].tag)) {
      found = i;
      break;
    }
  }
  ch.cache = MatchCache{true, tag, found};
  return found;
}

std::optional<Mailbox::Pick> Mailbox::try_match(Rank source, Tag tag,
                                                MatchController* controller,
                                                std::uint64_t recv_index) {
  if (controller != nullptr) {
    if (auto forced = controller->force(owner_, recv_index)) {
      // Replay: wait for exactly (forced->source, forced->seq).
      TDBG_CHECK(source == kAnySource || source == forced->source,
                 "replay divergence: posted receive source differs from "
                 "recorded match");
      auto& ch = *channels_[static_cast<std::size_t>(forced->source)];
      const auto idx = first_match(ch, tag);
      if (idx == kNoMatch) return std::nullopt;  // not arrived yet
      const Message& m = ch.pending[idx];
      if (m.seq < forced->seq) {
        // A tag-compatible message precedes the recorded one and only
        // this (single-threaded) rank could consume it — the replayed
        // program's receives diverge from the log.
        throw Error(
            "replay divergence: an earlier tag-compatible message (seq " +
            std::to_string(m.seq) + ") precedes the recorded match (seq " +
            std::to_string(forced->seq) + ") and nothing can consume it");
      }
      if (m.seq > forced->seq) {
        throw Error(
            "replay divergence: recorded message already consumed "
            "(wanted seq " + std::to_string(forced->seq) + ", first match is " +
            std::to_string(m.seq) + ")");
      }
      return Pick{forced->source, idx};
    }
  }

  if (source != kAnySource) {
    auto& ch = *channels_[static_cast<std::size_t>(source)];
    const auto idx = first_match(ch, tag);
    if (idx != kNoMatch) return Pick{source, idx};
    return std::nullopt;
  }

  // Wildcard: among the first tag-compatible message of every active
  // channel, take the earliest arrival.  This is the default
  // (recorded-run) nondeterminism policy.  The pending mask keeps the
  // scan O(active channels).
  std::optional<Pick> best;
  std::uint64_t best_arrival = std::numeric_limits<std::uint64_t>::max();
  const auto consider = [&](Rank s) {
    auto& ch = *channels_[static_cast<std::size_t>(s)];
    if (ch.pending.empty()) return;
    const auto idx = first_match(ch, tag);
    if (idx == kNoMatch) return;
    const auto arrival = ch.pending[idx].arrival;
    if (arrival < best_arrival) {
      best_arrival = arrival;
      best = Pick{s, idx};
    }
  };
  if (channels_.size() <= 64) {
    std::uint64_t mask = pending_mask_;
    while (mask != 0) {
      consider(static_cast<Rank>(std::countr_zero(mask)));
      mask &= mask - 1;
    }
  } else {
    for (Rank s = 0; s < static_cast<Rank>(channels_.size()); ++s) consider(s);
  }
  return best;
}

const Message& Mailbox::picked(const Pick& pick) const {
  return channels_[static_cast<std::size_t>(pick.source)]->pending[pick.index];
}

Status Mailbox::consume(const Pick& pick, std::vector<std::byte>& out) {
  auto& ch = *channels_[static_cast<std::size_t>(pick.source)];
  Message msg = std::move(ch.pending[pick.index]);
  ch.pending.erase(ch.pending.begin() +
                   static_cast<std::ptrdiff_t>(pick.index));
  // Keep the first-match cache consistent across the removal.
  if (ch.cache.valid && ch.cache.index != kNoMatch) {
    if (ch.cache.index == pick.index) {
      ch.cache.valid = false;
    } else if (ch.cache.index > pick.index) {
      --ch.cache.index;
    }
  }
  if (ch.pending.empty() && channels_.size() <= 64) {
    pending_mask_ &= ~(std::uint64_t{1} << static_cast<unsigned>(pick.source));
  }
  queued_total_.fetch_sub(1, std::memory_order_relaxed);
  if (msg.tag <= kMaxUserTag) {
    queued_user_.fetch_sub(1, std::memory_order_relaxed);
  }
  shared_->progress.fetch_add(1, std::memory_order_relaxed);

  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = mailbox_metrics();
    if (msg.delivered_ns != 0 && metrics.match_latency.hot()) {
      metrics.match_latency.record(
          owner_,
          static_cast<std::uint64_t>(support::now_ns() - msg.delivered_ns));
    }
  }
  msg.take_payload(out);
  if (msg.synchronous) {
    // Rendezvous completion: the sender's slot outlives the ssend, so
    // no heap-allocated handle is needed (see DESIGN.md "Hot paths").
    shared_->ssend_slots[static_cast<std::size_t>(msg.source)]
        .done_seq.store(msg.sync_seq, std::memory_order_release);
  }
  return Status{msg.source, msg.tag, out.size(), msg.seq};
}

namespace {

/// Span site ids, interned once (the mailbox slow path must not take
/// the site-registry mutex per blocked receive).
std::uint32_t match_span_site() {
  static const std::uint32_t id = telemetry::intern_site("mpi.match");
  return id;
}
std::uint32_t park_span_site() {
  static const std::uint32_t id = telemetry::intern_site("mpi.park");
  return id;
}

}  // namespace

Status Mailbox::receive(Rank source, Tag tag, std::vector<std::byte>& out,
                        MatchController* controller,
                        std::uint64_t recv_index) {
  // Fast path: the message is already here — no span, no clock read.
  check_aborted();
  drain_transport();
  if (auto pick = try_match(source, tag, controller, recv_index)) {
    return consume(*pick, out);
  }
  // Slow path: the whole match wait is one "mpi.match" self-span, with
  // each futex sleep inside it an "mpi.park" span — so a Chrome-trace
  // view shows how long a rank waited and how much of that was parked
  // versus spinning.
  telemetry::Span match_span(match_span_site());
  for (;;) {
    check_aborted();
    drain_transport();
    if (auto pick = try_match(source, tag, controller, recv_index)) {
      return consume(*pick, out);
    }
    if (spin_for_traffic()) continue;
    std::unique_lock lk(park_mu_);
    SleeperGuard guard(sleepers_);
    // Re-drain with the sleeper count published: either this sees the
    // racing delivery, or the sender sees the sleeper and notifies.
    drain_transport();
    if (auto pick = try_match(source, tag, controller, recv_index)) {
      lk.unlock();
      return consume(*pick, out);
    }
    check_aborted();
    shared_->registry.enter_wait(owner_, WaitKind::kRecv, source, tag);
    {
      telemetry::Span park_span(park_span_site());
      cv_.wait(lk);
    }
    shared_->registry.exit_wait(owner_);
  }
}

Status Mailbox::probe(Rank source, Tag tag) {
  for (;;) {
    check_aborted();
    drain_transport();
    if (auto pick = try_match(source, tag, nullptr, 0)) {
      const Message& m = picked(*pick);
      return Status{m.source, m.tag, m.payload_size(), m.seq};
    }
    if (spin_for_traffic()) continue;
    std::unique_lock lk(park_mu_);
    SleeperGuard guard(sleepers_);
    drain_transport();
    if (auto pick = try_match(source, tag, nullptr, 0)) {
      const Message& m = picked(*pick);
      return Status{m.source, m.tag, m.payload_size(), m.seq};
    }
    check_aborted();
    shared_->registry.enter_wait(owner_, WaitKind::kRecv, source, tag);
    cv_.wait(lk);
    shared_->registry.exit_wait(owner_);
  }
}

std::optional<Status> Mailbox::iprobe(Rank source, Tag tag) {
  check_aborted();
  drain_transport();
  if (auto pick = try_match(source, tag, nullptr, 0)) {
    const Message& m = picked(*pick);
    return Status{m.source, m.tag, m.payload_size(), m.seq};
  }
  return std::nullopt;
}

bool Mailbox::spin_for_traffic() const {
  const int budget = spin_iterations();
  for (int i = 0; i < budget; ++i) {
    if (dirty_.load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

void Mailbox::notify_abort() {
  // Taking the lock orders the notify after any in-flight check of the
  // abort flag: a waiter either saw the flag before sleeping or is
  // asleep when this notify fires.
  { std::lock_guard lk(park_mu_); }
  cv_.notify_all();
}

std::size_t Mailbox::queued_count(bool user_only) const {
  return user_only ? queued_user_.load(std::memory_order_relaxed)
                   : queued_total_.load(std::memory_order_relaxed);
}

void Mailbox::check_aborted() const {
  if (shared_->aborted.load(std::memory_order_acquire)) throw Aborted{};
}

}  // namespace tdbg::mpi
