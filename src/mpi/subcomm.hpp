#pragma once

#include <functional>
#include <vector>

#include "mpi/comm.hpp"

/// \file subcomm.hpp
/// Subgroup communicators (`MPI_Comm_split`).
///
/// `split(comm, color, key)` is collective over the world: ranks with
/// the same color form a subgroup, ordered by (key, world rank).  Each
/// subgroup gets a fresh *context*: its traffic travels on a reserved
/// tag band, so subgroup messages can never match world-communicator
/// receives or another subgroup's — MPI's communicator-isolation
/// guarantee.
///
/// Restriction (kept deliberately): subgroup receives must name their
/// source — no `ANY_SOURCE` inside a subcommunicator.  Context-banded
/// tags live outside the user tag space the replay controller forces,
/// so allowing wildcards here would reintroduce uncontrolled
/// nondeterminism; with named sources, subgroup matching is FIFO-
/// deterministic and replays exactly.

namespace tdbg::mpi {

/// A communicator over a subset of the world's ranks.
class SubComm {
 public:
  /// This rank's position within the subgroup.
  [[nodiscard]] int rank() const { return sub_rank_; }

  /// Subgroup size.
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  /// The subgroup's color (as passed to split).
  [[nodiscard]] int color() const { return color_; }

  /// World rank of subgroup member `sub_rank`.
  [[nodiscard]] Rank world_rank(int sub_rank) const {
    return members_.at(static_cast<std::size_t>(sub_rank));
  }

  /// Sends to subgroup rank `dest` (profiled like MPI_Send; the trace
  /// shows world ranks and the user tag).
  void send(std::span<const std::byte> data, int dest, Tag tag,
            const char* site = nullptr);

  /// Receives from subgroup rank `source` (must be concrete; see file
  /// comment).  The returned status holds the *subgroup* source rank.
  Status recv(std::vector<std::byte>& out, int source, Tag tag,
              const char* site = nullptr);

  /// Typed conveniences.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(const T& value, int dest, Tag tag,
                  const char* site = nullptr) {
    send(std::as_bytes(std::span<const T>(&value, 1)), dest, tag, site);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int source, Tag tag, const char* site = nullptr) {
    std::vector<std::byte> buf;
    recv(buf, source, tag, site);
    TDBG_CHECK(buf.size() == sizeof(T), "subcomm recv_value size mismatch");
    T value;
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  /// Dissemination barrier over the subgroup.
  void barrier(const char* site = nullptr);

  /// Binomial broadcast from subgroup rank `root`.
  void bcast(std::vector<std::byte>& data, int root,
             const char* site = nullptr);

  /// Elementwise allreduce over the subgroup.
  template <typename T, typename Op>
    requires std::is_arithmetic_v<T>
  T allreduce_value(T value, Op op, const char* site = nullptr) {
    // Reduce to subgroup rank 0 up a binomial tree, broadcast back.
    const int p = size();
    const Tag tag = 1;
    for (int mask = 1; mask < p; mask <<= 1) {
      if ((sub_rank_ & mask) != 0) {
        send_value<T>(value, sub_rank_ & ~mask, tag, site);
        break;
      }
      const int child = sub_rank_ | mask;
      if (child < p) value = op(value, recv_value<T>(child, tag, site));
    }
    std::vector<std::byte> buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    bcast(buf, 0, site);
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

 private:
  friend SubComm split(Comm& comm, int color, int key);

  SubComm(Comm* comm, int color, int context, std::vector<Rank> members,
          int sub_rank)
      : comm_(comm), color_(color), context_(context),
        members_(std::move(members)), sub_rank_(sub_rank) {}

  /// Maps a user tag into this context's reserved band.
  [[nodiscard]] Tag wire_tag(Tag tag) const;

  Comm* comm_;
  int color_;
  int context_;
  std::vector<Rank> members_;
  int sub_rank_;
};

/// Collective over the whole world: every rank calls `split` with its
/// color and key; ranks sharing a color receive a `SubComm` over that
/// subgroup (ordered by key, ties by world rank).
SubComm split(Comm& comm, int color, int key = 0);

}  // namespace tdbg::mpi
