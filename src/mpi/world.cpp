#include "mpi/world.hpp"

#include "support/error.hpp"
#include "telemetry/log.hpp"

namespace tdbg::mpi {

World::World(int size, ProfilingHooks* hooks, MatchController* controller,
             FaultInjector* fault_injector)
    : size_(size), hooks_(hooks), controller_(controller),
      fault_injector_(fault_injector), shared_(size) {
  TDBG_CHECK(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (Rank r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(r, size, &shared_));
  }
}

void World::abort(AbortCause cause, std::string detail) {
  TDBG_LOG(telemetry::LogLevel::kError, "mpi.abort",
           static_cast<std::uint64_t>(cause));
  {
    std::lock_guard lk(abort_mu_);
    if (abort_.cause == AbortCause::kNone) {
      abort_.cause = cause;
      abort_.detail = std::move(detail);
      abort_.waits = shared_.registry.snapshot();
    }
  }
  shared_.aborted.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb->notify_abort();
}

}  // namespace tdbg::mpi
