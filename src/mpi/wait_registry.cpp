#include "mpi/wait_registry.hpp"

#include "support/error.hpp"

namespace tdbg::mpi {

WaitRegistry::WaitRegistry(int world_size) : states_(world_size) {
  for (int r = 0; r < world_size; ++r) {
    states_[r].rank = r;
  }
}

void WaitRegistry::enter_wait(Rank rank, WaitKind kind, Rank peer, Tag tag) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  TDBG_CHECK(s.kind == WaitKind::kNone, "rank entered wait twice");
  s.kind = kind;
  s.peer = peer;
  s.tag = tag;
  ++idle_count_;
}

void WaitRegistry::exit_wait(Rank rank) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  TDBG_CHECK(s.kind != WaitKind::kNone && s.kind != WaitKind::kFinished,
             "rank exited wait it never entered");
  s.kind = WaitKind::kNone;
  s.peer = kAnySource;
  s.tag = kAnyTag;
  --idle_count_;
}

void WaitRegistry::mark_finished(Rank rank) {
  std::lock_guard lk(mu_);
  auto& s = states_.at(static_cast<std::size_t>(rank));
  TDBG_CHECK(s.kind == WaitKind::kNone, "finished rank was still waiting");
  s.kind = WaitKind::kFinished;
  ++idle_count_;
}

bool WaitRegistry::all_idle() const {
  std::lock_guard lk(mu_);
  return idle_count_ == static_cast<int>(states_.size());
}

std::vector<WaitInfo> WaitRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  return states_;
}

}  // namespace tdbg::mpi
