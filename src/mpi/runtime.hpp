#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/hooks.hpp"
#include "mpi/match_controller.hpp"
#include "mpi/wait_registry.hpp"
#include "mpi/world.hpp"

/// \file runtime.hpp
/// Entry point of the message-passing substrate: spawn N single-
/// threaded ranks, run a body on each, join, and report what happened
/// (including deadlocks, which the watchdog detects and unwinds so a
/// buggy target program terminates instead of hanging the debugger).

namespace tdbg::mpi {

/// Per-run configuration.
struct RunOptions {
  /// Profiling hooks — the "instrumented MPI library" of paper §2.3.
  ProfilingHooks* hooks = nullptr;

  /// Match controller — installed by the replay engine (§4.2).
  MatchController* controller = nullptr;

  /// Fault injector — installed by the `tdbg::fault` engine to perturb
  /// user-level message traffic at the delivery and receive-post
  /// seams.  Null (the default) costs one pointer test per send/recv.
  FaultInjector* fault_injector = nullptr;

  /// Detect stable global quiescence and abort the run.
  bool deadlock_watchdog = true;

  /// Watchdog sampling period.  Wider under ThreadSanitizer: its
  /// 10-20x slowdown stretches genuine scheduling gaps past the normal
  /// stability window, which would read as false deadlocks.
#if defined(__SANITIZE_THREAD__)
  std::chrono::milliseconds watchdog_interval{20};
#else
  std::chrono::milliseconds watchdog_interval{2};
#endif

  /// Called once, before ranks start, with shared ownership of the
  /// run's world.  The debugger and replay engine use this to inspect
  /// live wait states (who is blocked in a receive) while ranks are
  /// parked at breakpoints; holding the pointer keeps introspection
  /// safe after the run ends.
  std::function<void(std::shared_ptr<const World>)> on_world_ready;
};

/// One rank's uncaught exception.
struct RankFailure {
  Rank rank = 0;
  std::string what;
};

/// Outcome of a run.
struct RunResult {
  /// Every rank body returned normally.
  bool completed = false;

  /// The watchdog declared deadlock.
  bool deadlocked = false;

  /// Rank bodies that threw (excluding `Aborted` unwinds).
  std::vector<RankFailure> failures;

  /// Wait snapshot at abort time; empty if the run completed.  For a
  /// deadlock this is the "who is blocked on whom" picture of Fig. 5.
  std::vector<WaitInfo> final_waits;

  /// Human-readable abort reason, empty if none.
  std::string abort_detail;
};

/// The rank body: runs once per rank, on its own thread.
using RankBody = std::function<void(Comm&)>;

/// Runs `body` on `num_ranks` ranks and blocks until the run ends.
///
/// Hooks observe `on_rank_start`/`on_rank_finish` on the rank's own
/// thread, so thread-local instrumentation state can be set up there.
RunResult run(int num_ranks, const RankBody& body, const RunOptions& options = {});

/// The calling thread's rank, or -1 outside a rank body.  Used by the
/// instrumentation layer (`UserMonitor`) to find its per-rank context
/// without threading a handle through application code.
Rank this_rank();

}  // namespace tdbg::mpi
