#include "mpi/runtime.hpp"

#include <atomic>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>

#include "support/clock.hpp"
#include "support/error.hpp"
#include "telemetry/log.hpp"

namespace tdbg::mpi {

namespace {

thread_local Rank tl_rank = -1;

/// Scope guard for the thread-local rank — also binds the telemetry
/// layer's rank, so flight-recorder records and self-spans written on
/// this thread attribute to the rank.
class RankScope {
 public:
  explicit RankScope(Rank rank) {
    tl_rank = rank;
    telemetry::set_thread_rank(rank);
  }
  ~RankScope() {
    tl_rank = -1;
    telemetry::set_thread_rank(-1);
  }
};

std::string describe_waits(const std::vector<WaitInfo>& waits) {
  std::ostringstream os;
  bool first = true;
  for (const auto& w : waits) {
    if (w.kind == WaitKind::kNone || w.kind == WaitKind::kFinished) continue;
    if (!first) os << "; ";
    first = false;
    os << "rank " << w.rank
       << (w.kind == WaitKind::kRecv ? " blocked in recv(src=" :
                                       " blocked in ssend(dst=");
    if (w.peer == kAnySource) {
      os << "ANY";
    } else {
      os << w.peer;
    }
    os << ", tag=";
    if (w.tag == kAnyTag) {
      os << "ANY";
    } else {
      os << w.tag;
    }
    os << ")";
  }
  return os.str();
}

/// Watches for stable global quiescence: every rank waiting or
/// finished, and no mailbox progress between two consecutive samples.
/// With eager sends there are no messages in flight outside mailbox
/// queues, so a stable all-idle world can never make progress again.
class Watchdog {
 public:
  Watchdog(World& world, std::chrono::milliseconds interval)
      : world_(world), interval_(interval),
        thread_([this] { loop(); }) {}

  ~Watchdog() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  void loop() {
    // A rank that has been notified but not yet scheduled still shows
    // as waiting, so on an oversubscribed host a single stable sample
    // is not proof of deadlock.  Require several consecutive stable
    // all-idle samples before aborting; a real deadlock is stable
    // forever, so this only delays detection by (kStableSamples-1)
    // intervals.
    static constexpr int kStableSamples = 3;
    int stable = 0;
    std::uint64_t last_progress = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(interval_);
      if (world_.shared().aborted.load(std::memory_order_acquire)) return;

      const std::uint64_t progress =
          world_.shared().progress.load(std::memory_order_relaxed);
      const auto waits = world_.shared().registry.snapshot();
      bool all_idle = true;
      bool any_blocked = false;
      for (const auto& w : waits) {
        if (w.kind == WaitKind::kNone) all_idle = false;
        if (w.kind == WaitKind::kRecv || w.kind == WaitKind::kSsend) {
          any_blocked = true;
        }
      }
      if (all_idle && any_blocked && progress == last_progress) {
        if (++stable >= kStableSamples) {
          TDBG_LOG(telemetry::LogLevel::kError, "mpi.watchdog.deadlock",
                   progress);
          world_.abort(AbortCause::kDeadlock,
                       "deadlock: " + describe_waits(waits));
          return;
        }
      } else {
        stable = 0;
      }
      last_progress = progress;
    }
  }

  World& world_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

Rank this_rank() { return tl_rank; }

RunResult run(int num_ranks, const RankBody& body, const RunOptions& options) {
  TDBG_CHECK(num_ranks > 0, "need at least one rank");
  TDBG_CHECK(static_cast<bool>(body), "rank body must be callable");

  support::reset_run_epoch();
  const auto world_ptr =
      std::make_shared<World>(num_ranks, options.hooks, options.controller,
                              options.fault_injector);
  World& world = *world_ptr;
  if (options.on_world_ready) options.on_world_ready(world_ptr);

  std::mutex failures_mu;
  std::vector<RankFailure> failures;

  {
    // Watchdog is scoped inside the thread lifetime: it must be
    // destroyed (joined) before we inspect results, and it must exist
    // while ranks can block.
    std::optional<Watchdog> watchdog;
    if (options.deadlock_watchdog) {
      watchdog.emplace(world, options.watchdog_interval);
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks));
    for (Rank r = 0; r < num_ranks; ++r) {
      threads.emplace_back([&, r] {
        RankScope scope(r);
        Comm comm(&world, r);
        if (options.hooks != nullptr) options.hooks->on_rank_start(r);
        try {
          body(comm);
          world.shared().registry.mark_finished(r);
        } catch (const Aborted&) {
          // Unwound by an abort elsewhere; not a failure of this rank.
          world.shared().registry.mark_finished(r);
        } catch (const std::exception& e) {
          TDBG_LOG(telemetry::LogLevel::kError, "mpi.rank_failed",
                   static_cast<std::uint64_t>(r));
          {
            std::lock_guard lk(failures_mu);
            failures.push_back(RankFailure{r, e.what()});
          }
          world.shared().registry.mark_finished(r);
          world.abort(AbortCause::kRankFailure,
                      "rank " + std::to_string(r) + " failed: " + e.what());
        }
        if (options.hooks != nullptr) options.hooks->on_rank_finish(r);
      });
    }
    for (auto& t : threads) t.join();
  }

  RunResult result;
  result.failures = std::move(failures);
  const AbortInfo& abort = world.abort_info();
  result.deadlocked = abort.cause == AbortCause::kDeadlock;
  result.completed = abort.cause == AbortCause::kNone && result.failures.empty();
  result.final_waits = abort.waits;
  result.abort_detail = abort.detail;
  return result;
}

}  // namespace tdbg::mpi
