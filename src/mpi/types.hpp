#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file types.hpp
/// Basic vocabulary types for the message-passing runtime.
///
/// The runtime (`tdbg::mpi`) is an in-process stand-in for the MPI
/// library the paper's target programs run on.  Ranks are threads; the
/// semantics reproduced are the ones the debugger features depend on:
/// FIFO non-overtaking matching per (source, dest) channel, tag
/// selection, and `ANY_SOURCE` / `ANY_TAG` wildcard nondeterminism
/// (MPI standard §3.5, cited by the paper for its matching argument).

namespace tdbg::mpi {

/// Process rank within the world communicator.
using Rank = int;

/// Message tag.  User tags must be non-negative; the collective
/// implementation reserves an internal tag space above `kMaxUserTag`.
using Tag = int;

/// Wildcard: receive from any source (`MPI_ANY_SOURCE`).
inline constexpr Rank kAnySource = -1;

/// Wildcard: receive any tag (`MPI_ANY_TAG`).
inline constexpr Tag kAnyTag = -1;

/// Largest tag available to user code; tags above this are reserved
/// for internal collective rounds.
inline constexpr Tag kMaxUserTag = (1 << 28) - 1;

/// Per-channel sequence number: position of a message in the FIFO
/// stream from one source to one destination (starting at 0).  The
/// pair (source, seq) uniquely identifies a message at a receiver and
/// is the unit the replay log records.
using ChannelSeq = std::uint64_t;

/// Identifies the message a receive matched: the sending rank plus the
/// per-channel sequence number.  This is what the record log stores
/// and what the replay controller forces (paper §4.2, nondeterminism
/// control).
struct SourceSeq {
  Rank source = kAnySource;
  ChannelSeq seq = 0;

  friend bool operator==(const SourceSeq&, const SourceSeq&) = default;
};

/// Completion information for a receive (mirrors `MPI_Status`).
struct Status {
  Rank source = kAnySource;      ///< actual sending rank
  Tag tag = kAnyTag;             ///< actual message tag
  std::size_t bytes = 0;         ///< payload size
  ChannelSeq channel_seq = 0;    ///< per-(source,dest) sequence number
};

/// Which library call a profiling hook is observing.  These are the
/// "constructs" that appear in trace records (paper §3).
enum class CallKind : std::uint8_t {
  kSend,
  kSsend,
  kRecv,
  kProbe,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAlltoall,
  kInit,
  kFinalize,
};

/// Human-readable name of a call kind ("MPI_Send", ...).  Used in
/// trace text dumps and visualizer labels.
std::string_view call_kind_name(CallKind kind);

/// Description of one profiled library call, passed to hooks before
/// and after the underlying (PMPI-level) primitive runs.
struct CallInfo {
  CallKind kind = CallKind::kSend;
  Rank rank = 0;          ///< calling rank
  Rank peer = kAnySource; ///< dest for sends, requested source for recvs,
                          ///< root for rooted collectives
  Tag tag = kAnyTag;      ///< message tag (user calls only)
  std::size_t bytes = 0;  ///< payload bytes (0 for barrier/probe)
  const char* call_site = nullptr;  ///< optional source location label
};

}  // namespace tdbg::mpi
