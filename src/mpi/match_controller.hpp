#pragma once

#include <optional>

#include "mpi/types.hpp"

namespace tdbg::mpi {

/// Decides which queued message a receive matches.
///
/// During a *recorded* run no controller is installed and wildcard
/// receives use the default policy (earliest arrival).  During a
/// *replay* the replay engine installs a controller that forces each
/// receive to match the same (source, seq) as in the recorded run —
/// the paper's §4.2 mechanism for controlling `MPI_ANY_SOURCE`
/// nondeterminism so that "the replay has identical event causality
/// with the original program execution".
///
/// `force` is called from the receiving rank's thread every time the
/// mailbox attempts to complete a receive, with `recv_index` the
/// 0-based count of receives completed so far by that rank.  Returning
/// a SourceSeq makes the receive wait until exactly that message is
/// available; returning nullopt leaves the choice to the default
/// policy.  Implementations must be thread-safe across ranks.
class MatchController {
 public:
  virtual ~MatchController() = default;

  /// The message receive number `recv_index` on `receiver` must match,
  /// or nullopt for free choice.
  virtual std::optional<SourceSeq> force(Rank receiver,
                                         std::uint64_t recv_index) = 0;
};

}  // namespace tdbg::mpi
