#include "mpi/payload.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

namespace tdbg::mpi {

namespace {

/// Shared (cross-thread) freelist.  Touched only when a thread-local
/// cache under- or overflows, i.e. roughly once every
/// `kLocalCacheCap / 2` messages in steady state.
struct SharedFreelist {
  std::mutex mu;
  std::vector<std::vector<std::byte>> buffers;
};

SharedFreelist& shared_freelist() {
  static SharedFreelist list;
  return list;
}

std::atomic<std::size_t> g_reuse_count{0};

/// Thread-local cache.  Destroyed with the thread; the destructor
/// deliberately frees rather than spilling, to avoid touching the
/// shared list during thread teardown.
struct LocalCache {
  std::vector<std::vector<std::byte>> buffers;
};

LocalCache& local_cache() {
  thread_local LocalCache cache;
  return cache;
}

}  // namespace

PayloadPool& PayloadPool::global() {
  static PayloadPool pool;
  return pool;
}

std::vector<std::byte> PayloadPool::acquire(std::size_t n) {
  auto& cache = local_cache();
  if (cache.buffers.empty()) {
    // Refill half a cache's worth from the shared list in one trip.
    auto& shared = shared_freelist();
    std::lock_guard lk(shared.mu);
    const std::size_t take =
        std::min(shared.buffers.size(), kLocalCacheCap / 2);
    for (std::size_t i = 0; i < take; ++i) {
      cache.buffers.push_back(std::move(shared.buffers.back()));
      shared.buffers.pop_back();
    }
  }
  if (!cache.buffers.empty()) {
    std::vector<std::byte> buf = std::move(cache.buffers.back());
    cache.buffers.pop_back();
    buf.resize(n);
    g_reuse_count.fetch_add(1, std::memory_order_relaxed);
    return buf;
  }
  std::vector<std::byte> buf;
  buf.resize(n);
  return buf;
}

void PayloadPool::release(std::vector<std::byte>&& buf) {
  if (buf.capacity() < kMinPooledCapacity) return;  // not worth keeping
  buf.clear();
  auto& cache = local_cache();
  cache.buffers.push_back(std::move(buf));
  if (cache.buffers.size() <= kLocalCacheCap) return;
  // Spill half to the shared list so sender threads can refill.
  auto& shared = shared_freelist();
  std::lock_guard lk(shared.mu);
  while (cache.buffers.size() > kLocalCacheCap / 2) {
    if (shared.buffers.size() >= kSharedCap) {
      cache.buffers.pop_back();  // pool full: free outright
    } else {
      shared.buffers.push_back(std::move(cache.buffers.back()));
      cache.buffers.pop_back();
    }
  }
}

std::size_t PayloadPool::reuse_count() const {
  return g_reuse_count.load(std::memory_order_relaxed);
}

}  // namespace tdbg::mpi
