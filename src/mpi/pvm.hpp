#pragma once

#include <cstring>
#include <vector>

#include "mpi/comm.hpp"

/// \file pvm.hpp
/// PVM-style message passing façade (the paper's p2d2 "supports
/// debugging of PVM and MPI programs").
///
/// PVM's programming model differs from MPI's in two ways this façade
/// reproduces: messages are *assembled* (`initsend` + a sequence of
/// `pk*` packing calls) before being sent, and the receive side
/// unpacks incrementally from the current receive buffer
/// (`recv` + `upk*`).  Underneath, each assembled buffer travels as
/// one message through the instrumented runtime, so PVM-style programs
/// get the full trace/replay/analysis treatment with no extra work —
/// exactly the paper's situation, where the wrapper level is per
/// library but the debugger machinery is shared.

namespace tdbg::pvm {

/// PVM wildcard: any task / any tag.
inline constexpr int kAny = -1;

/// A rank's PVM endpoint.  Wraps the rank's `Comm`; task ids are
/// ranks.
class Task {
 public:
  explicit Task(mpi::Comm& comm) : comm_(&comm) {}

  /// This task's id (`pvm_mytid`).
  [[nodiscard]] int mytid() const { return comm_->rank(); }

  /// Number of tasks in the (static) group.
  [[nodiscard]] int ntasks() const { return comm_->size(); }

  /// Clears the send buffer (`pvm_initsend`).
  void initsend() { send_buf_.clear(); }

  /// Packs values into the send buffer (`pvm_pk*`).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pk(std::span<const T> values) {
    const auto old = send_buf_.size();
    send_buf_.resize(old + values.size_bytes());
    std::memcpy(send_buf_.data() + old, values.data(), values.size_bytes());
  }

  /// Packs one value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pk_value(const T& value) {
    pk(std::span<const T>(&value, 1));
  }

  /// Sends the assembled buffer (`pvm_send`).  The buffer survives, so
  /// the same content can be sent to several tasks (PVM idiom).
  void send(int tid, int tag) {
    comm_->send(std::span<const std::byte>(send_buf_), tid, tag, "pvm_send");
  }

  /// Blocking receive (`pvm_recv`); `kAny` wildcards both fields.
  /// Returns the byte count and resets the unpack cursor.
  std::size_t recv(int tid, int tag) {
    const auto st = comm_->recv(
        recv_buf_, tid == kAny ? mpi::kAnySource : tid,
        tag == kAny ? mpi::kAnyTag : tag, "pvm_recv");
    last_ = st;
    cursor_ = 0;
    return st.bytes;
  }

  /// Sender/tag/bytes of the last received message (`pvm_bufinfo`).
  [[nodiscard]] mpi::Status bufinfo() const { return last_; }

  /// Unpacks values from the receive buffer (`pvm_upk*`).  Throws when
  /// the buffer runs short.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void upk(std::span<T> out) {
    TDBG_CHECK(cursor_ + out.size_bytes() <= recv_buf_.size(),
               "pvm unpack past end of message");
    std::memcpy(out.data(), recv_buf_.data() + cursor_, out.size_bytes());
    cursor_ += out.size_bytes();
  }

  /// Unpacks one value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T upk_value() {
    T value;
    upk(std::span<T>(&value, 1));
    return value;
  }

 private:
  mpi::Comm* comm_;
  std::vector<std::byte> send_buf_;
  std::vector<std::byte> recv_buf_;
  mpi::Status last_;
  std::size_t cursor_ = 0;
};

}  // namespace tdbg::pvm
