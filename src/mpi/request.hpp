#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mpi/types.hpp"

/// \file request.hpp
/// Nonblocking operation handles (`MPI_Isend` / `MPI_Irecv` /
/// `MPI_Wait` / `MPI_Waitall`).
///
/// Semantics follow the restrictions the paper's replay technique
/// assumes (§6): `MPI_WAITANY` is deliberately *not* provided — wait
/// order is the program order of the `wait` calls, which keeps
/// matching deterministic under the replay controller.  With eager
/// buffered sends, an isend is complete at creation; an irecv is a
/// *posted* receive whose matching work happens in `wait` (legal
/// because single-threaded ranks cannot observe the difference without
/// WAITANY/test, neither of which is offered).

namespace tdbg::mpi {

class Comm;

/// What a request stands for.
enum class RequestKind : std::uint8_t { kSend, kRecv };

/// State shared between a request handle and the communicator.
struct RequestState {
  RequestKind kind = RequestKind::kSend;
  bool complete = false;
  // Recv bookkeeping:
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::vector<std::byte>* sink = nullptr;  ///< destination buffer
  Status status;
};

/// Handle on a nonblocking operation.  Move-only; must be waited on
/// (or explicitly cancelled via `Comm::request_free`) before
/// destruction — a destroyed incomplete receive would silently drop a
/// posted buffer, so it aborts instead.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True when the operation has completed (sends: immediately).
  [[nodiscard]] bool complete() const {
    return state_ == nullptr || state_->complete;
  }

  /// True for a default-constructed or consumed handle.
  [[nodiscard]] bool empty() const { return state_ == nullptr; }

  /// Internal: the shared state (used by Comm::wait).
  [[nodiscard]] const std::shared_ptr<RequestState>& state() const {
    return state_;
  }

  /// Internal: consumes the handle.
  std::shared_ptr<RequestState> take() { return std::move(state_); }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace tdbg::mpi
