#pragma once

#include <initializer_list>
#include <vector>

#include "mpi/types.hpp"

namespace tdbg::mpi {

/// The profiling interface of the runtime — the analog of MPI's
/// PMPI shadow-name mechanism (paper §2.3).
///
/// Every public `Comm` operation is a thin wrapper: it invokes
/// `on_call_begin`, runs the PMPI-level primitive (`Comm::pmpi_*`),
/// then invokes `on_call_end`.  Installing hooks is the moral
/// equivalent of "linking with the debugging version of the MPI
/// library": the application source is unchanged and history
/// collection becomes automatic.
///
/// Hooks are invoked on the calling rank's thread, outside any runtime
/// lock, and must be thread-safe across ranks.
class ProfilingHooks {
 public:
  virtual ~ProfilingHooks() = default;

  /// Observes a call about to enter the PMPI-level primitive.
  virtual void on_call_begin(const CallInfo& info) { (void)info; }

  /// Observes a completed call.  `status` is non-null for receives
  /// (and probes) and carries the actual matched source/tag/seq.
  virtual void on_call_end(const CallInfo& info, const Status* status) {
    (void)info;
    (void)status;
  }

  /// Observes rank lifecycle: body entered (after Init).
  virtual void on_rank_start(Rank rank) { (void)rank; }

  /// Observes rank lifecycle: body returned or threw.
  virtual void on_rank_finish(Rank rank) { (void)rank; }
};

/// Forwards every hook to a list of children.  Lets a run install both
/// the instrumentation session and e.g. the replay recorder at once.
///
/// Ordering contract: begin-side hooks (`on_call_begin`,
/// `on_rank_start`) run in installation order; end-side hooks
/// (`on_call_end`, `on_rank_finish`) run in *reverse* installation
/// order.  Children therefore nest like scopes — a child that starts a
/// timer in `on_call_begin` sees every later-installed child's begin
/// and end *inside* its own measurement window, never straddling it.
/// Without the reversal, a slow later child's end-side work would be
/// charged to an earlier child's timer on some calls and not others,
/// skewing latency histograms nondeterministically.
class HookFanout : public ProfilingHooks {
 public:
  HookFanout() = default;
  explicit HookFanout(std::initializer_list<ProfilingHooks*> hooks)
      : hooks_(hooks) {}

  /// Appends a child (ignored if null).
  void add(ProfilingHooks* hooks) {
    if (hooks != nullptr) hooks_.push_back(hooks);
  }

  void on_call_begin(const CallInfo& info) override {
    for (auto* h : hooks_) h->on_call_begin(info);
  }
  void on_call_end(const CallInfo& info, const Status* status) override {
    for (auto it = hooks_.rbegin(); it != hooks_.rend(); ++it) {
      (*it)->on_call_end(info, status);
    }
  }
  void on_rank_start(Rank rank) override {
    for (auto* h : hooks_) h->on_rank_start(rank);
  }
  void on_rank_finish(Rank rank) override {
    for (auto it = hooks_.rbegin(); it != hooks_.rend(); ++it) {
      (*it)->on_rank_finish(rank);
    }
  }

 private:
  std::vector<ProfilingHooks*> hooks_;
};

}  // namespace tdbg::mpi
