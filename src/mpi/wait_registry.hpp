#pragma once

#include <mutex>
#include <vector>

#include "mpi/types.hpp"

namespace tdbg::mpi {

/// What a rank is currently blocked on (if anything).
enum class WaitKind : std::uint8_t {
  kNone,      ///< running
  kRecv,      ///< blocked in a receive
  kSsend,     ///< blocked in a synchronous send awaiting its match
  kFinished,  ///< rank body returned; will never send again
};

/// One rank's wait state.  `peer`/`tag` describe what it is waiting
/// for (requested source and tag for receives, destination for
/// ssends); wildcards appear as `kAnySource`/`kAnyTag`.
struct WaitInfo {
  Rank rank = 0;
  WaitKind kind = WaitKind::kNone;
  Rank peer = kAnySource;
  Tag tag = kAnyTag;
};

/// Tracks which ranks are blocked and on what.
///
/// This is the runtime's introspection surface: the deadlock watchdog
/// uses it to decide global quiescence, and the analysis module reads
/// the final snapshot to explain *who* was waiting on *whom* — the
/// information behind Figure 5 ("processes 0 and 7 are blocked in
/// receives waiting for data from each other").
class WaitRegistry {
 public:
  explicit WaitRegistry(int world_size);

  /// Marks `rank` as blocked; called immediately before a condition
  /// wait.
  void enter_wait(Rank rank, WaitKind kind, Rank peer, Tag tag);

  /// Marks `rank` as running again; called after the wait returns.
  void exit_wait(Rank rank);

  /// Marks `rank` as finished for the rest of the run.
  void mark_finished(Rank rank);

  /// True when every rank is blocked or finished — a necessary
  /// condition for deadlock (with eager sends there are no messages in
  /// flight outside mailbox queues).
  [[nodiscard]] bool all_idle() const;

  /// Copy of the current per-rank wait states.
  [[nodiscard]] std::vector<WaitInfo> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<WaitInfo> states_;
  int idle_count_ = 0;  ///< ranks currently waiting or finished
};

}  // namespace tdbg::mpi
