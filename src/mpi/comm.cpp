#include "mpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "mpi/world.hpp"
#include "support/error.hpp"

namespace tdbg::mpi {

std::string_view call_kind_name(CallKind kind) {
  switch (kind) {
    case CallKind::kSend: return "MPI_Send";
    case CallKind::kSsend: return "MPI_Ssend";
    case CallKind::kRecv: return "MPI_Recv";
    case CallKind::kProbe: return "MPI_Probe";
    case CallKind::kBarrier: return "MPI_Barrier";
    case CallKind::kBcast: return "MPI_Bcast";
    case CallKind::kReduce: return "MPI_Reduce";
    case CallKind::kAllreduce: return "MPI_Allreduce";
    case CallKind::kGather: return "MPI_Gather";
    case CallKind::kScatter: return "MPI_Scatter";
    case CallKind::kAlltoall: return "MPI_Alltoall";
    case CallKind::kInit: return "MPI_Init";
    case CallKind::kFinalize: return "MPI_Finalize";
  }
  return "MPI_?";
}

namespace {

/// Reserved tag space for collective rounds: disjoint from user tags
/// so collective traffic can never match a user receive.
constexpr Tag kCollectiveTagBase = kMaxUserTag + 1;

/// RAII wrapper so a wait registration is undone even if the wait
/// throws `Aborted`.
class WaitScope {
 public:
  WaitScope(WaitRegistry& reg, Rank rank, WaitKind kind, Rank peer, Tag tag)
      : reg_(reg), rank_(rank) {
    reg_.enter_wait(rank_, kind, peer, tag);
  }
  ~WaitScope() { reg_.exit_wait(rank_); }

  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  WaitRegistry& reg_;
  Rank rank_;
};

void check_user_tag(Tag tag) {
  TDBG_CHECK(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
             "user tag out of range");
}

void check_rank(Rank rank, int size, bool allow_any) {
  TDBG_CHECK((allow_any && rank == kAnySource) || (rank >= 0 && rank < size),
             "rank out of range");
}

}  // namespace

Comm::Comm(World* world, Rank rank) : world_(world), rank_(rank) {
  TDBG_CHECK(world != nullptr, "Comm needs a world");
  check_rank(rank, world->size(), /*allow_any=*/false);
}

int Comm::size() const { return world_->size(); }

std::size_t Comm::pending_messages() const {
  return world_->mailbox(rank_).queued_count(/*user_only=*/true);
}

// --- PMPI layer -----------------------------------------------------------

void Comm::pmpi_send(std::span<const std::byte> data, Rank dest, Tag tag) {
  check_rank(dest, size(), /*allow_any=*/false);
  Message msg;
  msg.source = rank_;
  msg.dest = dest;
  msg.tag = tag;
  msg.set_payload(data);
  // Fault-injection seam: user-tag deliveries route through the
  // injector (which may delay, hold, reorder, or corrupt); collective
  // traffic and the injector-free path go straight to the mailbox.
  FaultInjector* inj = world_->fault_injector();
  if (inj != nullptr && tag <= kMaxUserTag) {
    inj->deliver(world_->mailbox(dest), std::move(msg));
  } else {
    world_->mailbox(dest).deliver(std::move(msg));
  }
}

void Comm::pmpi_ssend(std::span<const std::byte> data, Rank dest, Tag tag) {
  check_rank(dest, size(), /*allow_any=*/false);
  // A rank has at most one ssend outstanding (the call blocks), so the
  // rendezvous needs no per-message completion handle: the receiver
  // stores this ticket into the sender's world-owned slot, and the
  // sender waits for the slot to catch up.  No allocation, and no
  // lifetime race on abort — the slot outlives the call.
  const std::uint64_t ticket = ++ssend_seq_;
  Message msg;
  msg.source = rank_;
  msg.dest = dest;
  msg.tag = tag;
  msg.synchronous = true;
  msg.sync_seq = ticket;
  msg.set_payload(data);
  // Same seam as pmpi_send.  The injector sees `synchronous` and must
  // not hold or reorder a rendezvous message (the sender is blocked on
  // it below); delay and corruption remain fair game.
  FaultInjector* inj = world_->fault_injector();
  if (inj != nullptr && tag <= kMaxUserTag) {
    inj->deliver(world_->mailbox(dest), std::move(msg));
  } else {
    world_->mailbox(dest).deliver(std::move(msg));
  }

  auto& slot =
      world_->shared().ssend_slots[static_cast<std::size_t>(rank_)].done_seq;
  // Fast path: rendezvous with an already-posted (or spinning)
  // receiver completes in a few microseconds — spin before paying for
  // a sleep/wake cycle.  On a single-CPU host spinning is useless
  // (the receiver cannot run concurrently), so the budget drops to
  // zero and we go straight to yielding, which hands the core to the
  // receiver.  (No PAUSE in the loop — see the mailbox spin note;
  // under virtualization PAUSE can trap and cost microseconds.)
  static const int kSpin =
      std::thread::hardware_concurrency() > 1 ? 8192 : 0;
  for (int i = 0; i < kSpin; ++i) {
    if (slot.load(std::memory_order_acquire) >= ticket) return;
  }
  for (int i = 0; i < 64; ++i) {
    std::this_thread::yield();
    if (slot.load(std::memory_order_acquire) >= ticket) return;
  }
  // Slow path: poll with backoff.  The abort flag is checked each
  // round so a deadlocked ssend can be unwound by the watchdog.
  WaitScope ws(world_->shared().registry, rank_, WaitKind::kSsend, dest, tag);
  auto delay = std::chrono::microseconds(10);
  while (slot.load(std::memory_order_acquire) < ticket) {
    if (world_->shared().aborted.load(std::memory_order_acquire)) {
      throw Aborted{};
    }
    std::this_thread::sleep_for(delay);
    if (delay < std::chrono::microseconds(500)) delay *= 2;
  }
}

Status Comm::pmpi_recv(std::vector<std::byte>& out, Rank source, Tag tag) {
  check_rank(source, size(), /*allow_any=*/true);
  return internal_recv(out, source, tag);
}

Status Comm::pmpi_probe(Rank source, Tag tag) {
  check_rank(source, size(), /*allow_any=*/true);
  return world_->mailbox(rank_).probe(source, tag);
}

std::optional<Status> Comm::pmpi_iprobe(Rank source, Tag tag) {
  check_rank(source, size(), /*allow_any=*/true);
  return world_->mailbox(rank_).iprobe(source, tag);
}

void Comm::internal_send(std::span<const std::byte> data, Rank dest, Tag tag) {
  Message msg;
  msg.source = rank_;
  msg.dest = dest;
  msg.tag = tag;
  msg.set_payload(data);
  world_->mailbox(dest).deliver(std::move(msg));
}

Status Comm::internal_recv(std::vector<std::byte>& out, Rank source, Tag tag) {
  // Collective-internal receives pass a null controller: they always
  // name a specific source and internal tag, so matching is already
  // deterministic and they do not consume replay recv indices.
  const bool user_level = tag <= kMaxUserTag;
  MatchController* ctl = user_level ? world_->controller() : nullptr;
  const std::uint64_t index = user_level ? recv_index_ : 0;
  const Status st = world_->mailbox(rank_).receive(source, tag, out, ctl, index);
  if (user_level) ++recv_index_;
  return st;
}

// --- Profiled (MPI_) layer -------------------------------------------------

template <typename Body>
auto Comm::profiled(CallInfo info, Body&& body) {
  ProfilingHooks* hooks = world_->hooks();
  if (hooks != nullptr) hooks->on_call_begin(info);
  if constexpr (std::is_void_v<decltype(body())>) {
    body();
    if (hooks != nullptr) hooks->on_call_end(info, nullptr);
  } else {
    Status st = body();
    if (hooks != nullptr) hooks->on_call_end(info, &st);
    return st;
  }
}

void Comm::send(std::span<const std::byte> data, Rank dest, Tag tag,
                const char* site) {
  check_user_tag(tag);
  TDBG_CHECK(tag != kAnyTag, "send needs a concrete tag");
  profiled(CallInfo{CallKind::kSend, rank_, dest, tag, data.size(), site},
           [&] { pmpi_send(data, dest, tag); });
}

void Comm::ssend(std::span<const std::byte> data, Rank dest, Tag tag,
                 const char* site) {
  check_user_tag(tag);
  TDBG_CHECK(tag != kAnyTag, "ssend needs a concrete tag");
  profiled(CallInfo{CallKind::kSsend, rank_, dest, tag, data.size(), site},
           [&] { pmpi_ssend(data, dest, tag); });
}

Status Comm::recv(std::vector<std::byte>& out, Rank source, Tag tag,
                  const char* site) {
  check_user_tag(tag);
  // Fault-injection seam: match widening rewrites a specific source to
  // kAnySource *before* the CallInfo is built, so the hooks (and the
  // trace record they produce) see a genuine wildcard receive — the
  // race detector must not be able to tell a widened receive from one
  // the program wrote.
  if (FaultInjector* inj = world_->fault_injector(); inj != nullptr) {
    source = inj->post_receive(rank_, source, tag, recv_index_);
  }
  return profiled(CallInfo{CallKind::kRecv, rank_, source, tag, 0, site},
                  [&] { return pmpi_recv(out, source, tag); });
}

Status Comm::probe(Rank source, Tag tag, const char* site) {
  check_user_tag(tag);
  return profiled(CallInfo{CallKind::kProbe, rank_, source, tag, 0, site},
                  [&] { return pmpi_probe(source, tag); });
}

// --- SubComm internal surface ------------------------------------------------

void Comm::context_send(std::span<const std::byte> data, Rank dest, Tag wire,
                        Tag display, const char* site) {
  TDBG_CHECK(wire > kMaxUserTag, "context tag must be banded");
  profiled(CallInfo{CallKind::kSend, rank_, dest, display, data.size(), site},
           [&] { internal_send(data, dest, wire); });
}

Status Comm::context_recv(std::vector<std::byte>& out, Rank source, Tag wire,
                          Tag display, const char* site) {
  TDBG_CHECK(wire > kMaxUserTag, "context tag must be banded");
  TDBG_CHECK(source != kAnySource,
             "subcommunicator receives must name their source");
  Status st = profiled(
      CallInfo{CallKind::kRecv, rank_, source, display, 0, site}, [&] {
        Status inner = internal_recv(out, source, wire);
        inner.tag = display;  // surface the user-visible tag
        return inner;
      });
  return st;
}

int Comm::allocate_contexts(int count) {
  return world_->allocate_contexts(count);
}

// --- Nonblocking operations --------------------------------------------------

Request Comm::isend(std::span<const std::byte> data, Rank dest, Tag tag,
                    const char* site) {
  check_user_tag(tag);
  TDBG_CHECK(tag != kAnyTag, "isend needs a concrete tag");
  profiled(CallInfo{CallKind::kSend, rank_, dest, tag, data.size(), site},
           [&] { pmpi_send(data, dest, tag); });
  auto state = std::make_shared<RequestState>();
  state->kind = RequestKind::kSend;
  state->complete = true;
  return Request(std::move(state));
}

Request Comm::irecv(std::vector<std::byte>& sink, Rank source, Tag tag,
                    const char* site) {
  check_user_tag(tag);
  check_rank(source, size(), /*allow_any=*/true);
  auto state = std::make_shared<RequestState>();
  state->kind = RequestKind::kRecv;
  state->source = source;
  state->tag = tag;
  state->sink = &sink;
  (void)site;  // profiled at completion (wait), where the match is known
  return Request(std::move(state));
}

Status Comm::wait(Request& request) {
  TDBG_CHECK(!request.empty(), "wait on an empty request");
  auto state = request.take();
  if (state->complete) return state->status;
  TDBG_CHECK(state->kind == RequestKind::kRecv,
             "only receives can be incomplete");
  // The posted receive completes here, profiled like MPI_Recv (the
  // marker and control point attach to the completion, which is the
  // point the replay controller must order).
  const Status st = recv(*state->sink, state->source, state->tag, "MPI_Wait");
  state->status = st;
  state->complete = true;
  return st;
}

std::vector<Status> Comm::waitall(std::span<Request> requests) {
  std::vector<Status> statuses;
  statuses.reserve(requests.size());
  for (auto& r : requests) statuses.push_back(wait(r));
  return statuses;
}

// --- Collectives ------------------------------------------------------------

void Comm::barrier(const char* site) {
  profiled(
      CallInfo{CallKind::kBarrier, rank_, kAnySource, kAnyTag, 0, site}, [&] {
        // Dissemination barrier: in round k, rank r signals
        // (r + 2^k) mod P and waits for (r - 2^k) mod P.
        const int p = size();
        const std::byte token{0};
        int round = 0;
        for (int dist = 1; dist < p; dist *= 2, ++round) {
          const Rank to = (rank_ + dist) % p;
          const Rank from = (rank_ - dist % p + p) % p;
          const Tag tag = kCollectiveTagBase + round;
          internal_send(std::span(&token, 1), to, tag);
          std::vector<std::byte> dummy;
          internal_recv(dummy, from, tag);
        }
      });
}

void Comm::bcast(std::vector<std::byte>& data, Rank root, const char* site) {
  check_rank(root, size(), /*allow_any=*/false);
  profiled(
      CallInfo{CallKind::kBcast, rank_, root, kAnyTag, data.size(), site},
      [&] {
        // Classic binomial tree rooted at `root`, on ranks relabeled
        // so the root is virtual rank 0.
        const int p = size();
        const int vrank = (rank_ - root + p) % p;
        const Tag tag = kCollectiveTagBase + 64;
        int mask = 1;
        while (mask < p) {
          if ((vrank & mask) != 0) {
            const Rank parent = ((vrank - mask) + root) % p;
            internal_recv(data, parent, tag);
            break;
          }
          mask <<= 1;
        }
        for (mask >>= 1; mask > 0; mask >>= 1) {
          if (vrank + mask < p) {
            const Rank child = (vrank + mask + root) % p;
            internal_send(std::span<const std::byte>(data), child, tag);
          }
        }
      });
}

void Comm::reduce(
    std::vector<std::byte>& data, Rank root,
    const std::function<void(std::span<std::byte>, std::span<const std::byte>)>&
        combine,
    const char* site) {
  check_rank(root, size(), /*allow_any=*/false);
  profiled(
      CallInfo{CallKind::kReduce, rank_, root, kAnyTag, data.size(), site},
      [&] {
        const int p = size();
        const int vrank = (rank_ - root + p) % p;
        const Tag tag = kCollectiveTagBase + 65;
        // Binomial-tree fold: in round k, vranks with bit k set send
        // their partial to vrank & ~(2^k) and leave.
        for (int mask = 1; mask < p; mask <<= 1) {
          if ((vrank & mask) != 0) {
            const Rank parent = ((vrank & ~mask) + root) % p;
            internal_send(std::span<const std::byte>(data), parent, tag);
            return;
          }
          const int vchild = vrank | mask;
          if (vchild < p) {
            std::vector<std::byte> incoming;
            internal_recv(incoming, (vchild + root) % p, tag);
            TDBG_CHECK(incoming.size() == data.size(),
                       "reduce payload size mismatch");
            combine(std::span(data), std::span<const std::byte>(incoming));
          }
        }
      });
}

void Comm::allreduce(
    std::vector<std::byte>& data,
    const std::function<void(std::span<std::byte>, std::span<const std::byte>)>&
        combine,
    const char* site) {
  profiled(
      CallInfo{CallKind::kAllreduce, rank_, kAnySource, kAnyTag, data.size(),
               site},
      [&] {
        // reduce-to-0 followed by bcast, expressed with the internal
        // primitives so the whole thing profiles as one construct.
        const int p = size();
        const Tag rtag = kCollectiveTagBase + 66;
        const Tag btag = kCollectiveTagBase + 67;
        for (int mask = 1; mask < p; mask <<= 1) {
          if ((rank_ & mask) != 0) {
            internal_send(std::span<const std::byte>(data), rank_ & ~mask,
                          rtag);
            break;
          }
          const int child = rank_ | mask;
          if (child < p) {
            std::vector<std::byte> incoming;
            internal_recv(incoming, child, rtag);
            TDBG_CHECK(incoming.size() == data.size(),
                       "allreduce payload size mismatch");
            combine(std::span(data), std::span<const std::byte>(incoming));
          }
        }
        // Broadcast the result back down a binomial tree rooted at 0.
        int mask = 1;
        while (mask < p) {
          if ((rank_ & mask) != 0) {
            internal_recv(data, rank_ - mask, btag);
            break;
          }
          mask <<= 1;
        }
        for (mask >>= 1; mask > 0; mask >>= 1) {
          if (rank_ + mask < p) {
            internal_send(std::span<const std::byte>(data), rank_ + mask, btag);
          }
        }
      });
}

std::vector<std::vector<std::byte>> Comm::gather(
    std::span<const std::byte> data, Rank root, const char* site) {
  check_rank(root, size(), /*allow_any=*/false);
  std::vector<std::vector<std::byte>> out;
  profiled(
      CallInfo{CallKind::kGather, rank_, root, kAnyTag, data.size(), site},
      [&] {
        const Tag tag = kCollectiveTagBase + 68;
        if (rank_ == root) {
          out.resize(static_cast<std::size_t>(size()));
          out[static_cast<std::size_t>(root)].assign(data.begin(), data.end());
          for (Rank r = 0; r < size(); ++r) {
            if (r == root) continue;
            internal_recv(out[static_cast<std::size_t>(r)], r, tag);
          }
        } else {
          internal_send(data, root, tag);
        }
      });
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoall(
    const std::vector<std::vector<std::byte>>& parts, const char* site) {
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  profiled(
      CallInfo{CallKind::kAlltoall, rank_, kAnySource, kAnyTag,
               parts.empty() ? 0 : parts[0].size(), site},
      [&] {
        TDBG_CHECK(parts.size() == static_cast<std::size_t>(size()),
                   "alltoall needs one part per rank");
        const Tag tag = kCollectiveTagBase + 70;
        // Send phase first (eager sends cannot block), then receive
        // from everyone in rank order.
        for (Rank r = 0; r < size(); ++r) {
          if (r == rank_) {
            out[static_cast<std::size_t>(r)] =
                parts[static_cast<std::size_t>(r)];
            continue;
          }
          internal_send(
              std::span<const std::byte>(parts[static_cast<std::size_t>(r)]),
              r, tag);
        }
        for (Rank r = 0; r < size(); ++r) {
          if (r == rank_) continue;
          internal_recv(out[static_cast<std::size_t>(r)], r, tag);
        }
      });
  return out;
}

Status Comm::sendrecv(std::span<const std::byte> send_data, Rank dest,
                      Tag send_tag, std::vector<std::byte>& recv_data,
                      Rank source, Tag recv_tag, const char* site) {
  send(send_data, dest, send_tag, site);
  return recv(recv_data, source, recv_tag, site);
}

std::vector<std::byte> Comm::scatter(
    const std::vector<std::vector<std::byte>>& parts, Rank root,
    const char* site) {
  check_rank(root, size(), /*allow_any=*/false);
  std::vector<std::byte> mine;
  profiled(
      CallInfo{CallKind::kScatter, rank_, root, kAnyTag,
               rank_ == root && !parts.empty() ? parts[0].size() : 0, site},
      [&] {
        const Tag tag = kCollectiveTagBase + 69;
        if (rank_ == root) {
          TDBG_CHECK(parts.size() == static_cast<std::size_t>(size()),
                     "scatter needs one part per rank");
          for (Rank r = 0; r < size(); ++r) {
            if (r == root) continue;
            internal_send(std::span<const std::byte>(parts[static_cast<std::size_t>(r)]),
                          r, tag);
          }
          mine = parts[static_cast<std::size_t>(root)];
        } else {
          internal_recv(mine, root, tag);
        }
      });
  return mine;
}

}  // namespace tdbg::mpi
