#pragma once

#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "mpi/mailbox.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "support/error.hpp"

namespace tdbg::mpi {

class World;

/// A rank's handle on the world communicator.  One `Comm` lives on
/// each rank's thread for the duration of `Runtime::run`.
///
/// The API is layered exactly like MPI's profiling interface (paper
/// §2.3):
///
///  * `pmpi_*` methods are the underlying primitives (the `PMPI_`
///    names);
///  * the unprefixed methods are the profiled wrappers (the `MPI_`
///    names): they call the installed `ProfilingHooks` before and
///    after delegating to the `pmpi_*` primitive.
///
/// Applications call the unprefixed methods; installing hooks on the
/// runtime is the equivalent of linking against the instrumented
/// library, and history collection becomes automatic.
class Comm {
 public:
  Comm(World* world, Rank rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// This rank's id in [0, size()).
  [[nodiscard]] Rank rank() const { return rank_; }

  /// Number of ranks in the world.
  [[nodiscard]] int size() const;

  // --- PMPI layer: unprofiled primitives -------------------------------

  /// Buffered (eager) send: enqueues at the destination and returns.
  void pmpi_send(std::span<const std::byte> data, Rank dest, Tag tag);

  /// Synchronous send: returns only after the matching receive
  /// completes.
  void pmpi_ssend(std::span<const std::byte> data, Rank dest, Tag tag);

  /// Blocking receive.  `source` may be `kAnySource`, `tag` may be
  /// `kAnyTag`.
  Status pmpi_recv(std::vector<std::byte>& out, Rank source, Tag tag);

  /// Blocking probe: waits until a matching message is queued.
  Status pmpi_probe(Rank source, Tag tag);

  /// Non-blocking probe.
  std::optional<Status> pmpi_iprobe(Rank source, Tag tag);

  // --- MPI layer: profiled wrappers -------------------------------------

  /// Profiled buffered send.  `site` optionally labels the source
  /// location for trace records.
  void send(std::span<const std::byte> data, Rank dest, Tag tag,
            const char* site = nullptr);

  /// Profiled synchronous send.
  void ssend(std::span<const std::byte> data, Rank dest, Tag tag,
             const char* site = nullptr);

  /// Profiled blocking receive.
  Status recv(std::vector<std::byte>& out, Rank source, Tag tag,
              const char* site = nullptr);

  /// Profiled blocking probe.
  Status probe(Rank source, Tag tag, const char* site = nullptr);

  // --- Nonblocking operations (no WAITANY — see request.hpp) -----------

  /// Nonblocking send.  With eager delivery the message is buffered
  /// immediately; the returned request is already complete, but the
  /// call is profiled (and counts a marker) like `MPI_Isend`.
  Request isend(std::span<const std::byte> data, Rank dest, Tag tag,
                const char* site = nullptr);

  /// Posts a nonblocking receive into `sink`.  The buffer must stay
  /// alive until the request is waited on.  Matching (and the marker
  /// for the receive construct) happens at `wait`, in program order.
  Request irecv(std::vector<std::byte>& sink, Rank source, Tag tag,
                const char* site = nullptr);

  /// Completes one request.  For receives this blocks until a message
  /// matches; for sends it returns immediately.  Consumes the handle.
  Status wait(Request& request);

  /// Completes every request, in order (the WAITALL the paper's §6
  /// restrictions allow, as opposed to WAITANY which they exclude).
  std::vector<Status> waitall(std::span<Request> requests);

  // --- Typed conveniences (on top of the profiled layer) ---------------

  /// Sends one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(const T& value, Rank dest, Tag tag,
                  const char* site = nullptr) {
    send(std::as_bytes(std::span<const T>(&value, 1)), dest, tag, site);
  }

  /// Receives one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(Rank source, Tag tag, Status* status = nullptr,
               const char* site = nullptr) {
    std::vector<std::byte> buf;
    const Status st = recv(buf, source, tag, site);
    if (status != nullptr) *status = st;
    if (buf.size() != sizeof(T)) {
      throw Error("recv_value: payload size mismatch (got " +
                  std::to_string(buf.size()) + ", want " +
                  std::to_string(sizeof(T)) + ")");
    }
    T value;
    std::memcpy(&value, buf.data(), sizeof(T));
    return value;
  }

  /// Sends a contiguous range of trivially-copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_span(std::span<const T> data, Rank dest, Tag tag,
                 const char* site = nullptr) {
    send(std::as_bytes(data), dest, tag, site);
  }

  /// Receives into a vector of trivially-copyable elements, resizing
  /// it to the received element count.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Status recv_into(std::vector<T>& out, Rank source, Tag tag,
                   Status* status = nullptr, const char* site = nullptr) {
    std::vector<std::byte> buf;
    const Status st = recv(buf, source, tag, site);
    if (buf.size() % sizeof(T) != 0) {
      throw Error("recv_into: payload not a whole number of elements");
    }
    out.resize(buf.size() / sizeof(T));
    std::memcpy(out.data(), buf.data(), buf.size());
    if (status != nullptr) *status = st;
    return st;
  }

  // --- Collectives (profiled as a single construct each) ---------------

  /// Dissemination barrier: O(log P) rounds of pairwise messages.
  void barrier(const char* site = nullptr);

  /// Binomial-tree broadcast of `data` from `root`; on non-root ranks
  /// `data` is replaced by the root's payload.
  void bcast(std::vector<std::byte>& data, Rank root,
             const char* site = nullptr);

  /// Binomial-tree reduction to `root`.  `combine(acc, in)` folds a
  /// child's contribution into the accumulator; both spans have the
  /// caller's payload size.
  void reduce(std::vector<std::byte>& data, Rank root,
              const std::function<void(std::span<std::byte>,
                                       std::span<const std::byte>)>& combine,
              const char* site = nullptr);

  /// Reduction followed by broadcast; every rank ends with the result.
  void allreduce(std::vector<std::byte>& data,
                 const std::function<void(std::span<std::byte>,
                                          std::span<const std::byte>)>& combine,
                 const char* site = nullptr);

  /// Gathers every rank's payload at `root`, ordered by rank.  Returns
  /// the gathered payloads on the root, empty elsewhere.
  std::vector<std::vector<std::byte>> gather(std::span<const std::byte> data,
                                             Rank root,
                                             const char* site = nullptr);

  /// Scatters `parts[r]` from `root` to each rank `r`; returns this
  /// rank's part.
  std::vector<std::byte> scatter(
      const std::vector<std::vector<std::byte>>& parts, Rank root,
      const char* site = nullptr);

  /// All-to-all personalized exchange: sends `parts[r]` to each rank r
  /// and returns what every rank sent here, indexed by source.
  std::vector<std::vector<std::byte>> alltoall(
      const std::vector<std::vector<std::byte>>& parts,
      const char* site = nullptr);

  /// Combined send+receive (`MPI_Sendrecv`).  With eager sends the
  /// send half cannot block, so send-then-receive is free of the
  /// head-to-head deadlock Sendrecv exists to avoid; the two halves
  /// are profiled as their own constructs.
  Status sendrecv(std::span<const std::byte> send_data, Rank dest,
                  Tag send_tag, std::vector<std::byte>& recv_data,
                  Rank source, Tag recv_tag, const char* site = nullptr);

  /// Typed elementwise allreduce over arithmetic values.
  template <typename T, typename Op>
    requires std::is_arithmetic_v<T>
  T allreduce_value(T value, Op op, const char* site = nullptr) {
    std::vector<std::byte> buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    allreduce(
        buf,
        [&op](std::span<std::byte> acc, std::span<const std::byte> in) {
          T a, b;
          std::memcpy(&a, acc.data(), sizeof(T));
          std::memcpy(&b, in.data(), sizeof(T));
          a = op(a, b);
          std::memcpy(acc.data(), &a, sizeof(T));
        },
        site);
    T out;
    std::memcpy(&out, buf.data(), sizeof(T));
    return out;
  }

  /// Number of receives this rank has completed so far (the replay
  /// controller's `recv_index` space).
  [[nodiscard]] std::uint64_t recv_count() const { return recv_index_; }

  /// User-tag messages queued in this rank's mailbox, delivered but
  /// not yet received by the application (internal collective traffic
  /// is excluded).  Zero at a quiescent point — what the checkpointed
  /// session verifies at superstep boundaries.
  [[nodiscard]] std::size_t pending_messages() const;

  // --- Internal surface for SubComm (see subcomm.hpp) ------------------

  /// Sends on a context-banded wire tag; profiled with the
  /// user-visible `display` tag.
  void context_send(std::span<const std::byte> data, Rank dest, Tag wire,
                    Tag display, const char* site);

  /// Receives on a context-banded wire tag (concrete source only);
  /// the returned status carries the `display` tag.
  Status context_recv(std::vector<std::byte>& out, Rank source, Tag wire,
                      Tag display, const char* site);

  /// Allocates fresh communicator contexts (collective callers only).
  int allocate_contexts(int count);

 private:
  /// Runs `body` bracketed by the profiling hooks, if any.
  template <typename Body>
  auto profiled(CallInfo info, Body&& body);

  void internal_send(std::span<const std::byte> data, Rank dest, Tag tag);
  Status internal_recv(std::vector<std::byte>& out, Rank source, Tag tag);

  World* world_;
  Rank rank_;
  std::uint64_t recv_index_ = 0;
  std::uint64_t ssend_seq_ = 0;  ///< rendezvous tickets (see pmpi_ssend)
};

}  // namespace tdbg::mpi
