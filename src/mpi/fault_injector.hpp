#pragma once

#include "mpi/types.hpp"

namespace tdbg::mpi {

class Mailbox;
class Message;

/// Seam through which a fault-injection engine perturbs the runtime
/// without the runtime depending on it (`tdbg::fault` implements this;
/// `src/mpi` sees only the interface).  Two injection points cover
/// what the PMPI hooks cannot reach:
///
///   - `deliver` replaces the direct `mailbox.deliver(msg)` call on
///     the *sender's* thread for user-tag point-to-point traffic, so
///     an implementation can delay, hold, reorder, or corrupt the
///     message before (or instead of) enqueueing it.  Implementations
///     that do not act MUST forward the message unchanged.
///
///   - `post_receive` runs on the *receiver's* thread as a blocking
///     user-level receive is posted, before the call is profiled or
///     traced; returning `kAnySource` widens a tagged receive into a
///     wildcard (manufacturing a real message race), returning
///     `source` unchanged leaves the receive alone.
///
/// Both points are called from exactly one rank's own thread, so an
/// implementation keyed on per-rank state needs no synchronization for
/// decision-making.  A null injector on the `World` means the checks
/// compile down to one pointer test on the hot path (asserted by
/// `bench/abl_fault_overhead`).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Sender-side delivery seam (user tags only; collectives bypass).
  virtual void deliver(Mailbox& mailbox, Message&& msg) = 0;

  /// Receiver-side posting seam; returns the (possibly widened)
  /// source the receive should be posted with.
  virtual Rank post_receive(Rank receiver, Rank source, Tag tag,
                            std::uint64_t recv_index) = 0;
};

}  // namespace tdbg::mpi
