#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mpi/hooks.hpp"
#include "trace/collector.hpp"
#include "instrument/user_monitor.hpp"

/// \file session.hpp
/// The instrumentation session ties the paper's three history-
/// acquisition strategies (§2) to one run of a target program:
///
///  * §2.1 source-level (AIMS-like): `mark`, `ComputeScope` — explicit
///    annotations in the program source;
///  * §2.2 compiler-level (uinst/UserMonitor): `TDBG_FUNCTION()` scope
///    guards at function entries, counting execution markers;
///  * §2.3 library wrappers (PMPI): the session implements
///    `mpi::ProfilingHooks`, so installing it on a run instruments
///    every message-passing call with no source changes.
///
/// All three feed the same `UserMonitor` counters (so execution
/// markers are totally ordered per rank across strategies) and the
/// same `TraceCollector`.

namespace tdbg::instr {

/// Message-level detail available at a control point (zeroed for
/// non-message events).  For receives this is the *requested*
/// source/tag — the control point fires before the receive matches.
struct EventDetail {
  mpi::Rank peer = mpi::kAnySource;
  mpi::Tag tag = mpi::kAnyTag;
  std::uint64_t bytes = 0;
};

/// Implemented by the debugger/replay engine: a *control point*.  The
/// session calls `at_event` on the rank's own thread at every
/// instrumented event, right after the marker counter is incremented
/// and *before* the construct executes — so an implementation that
/// blocks stops the rank exactly at that marker, which is how
/// threshold breakpoints, stoplines, and single-stepping are built.
class ControlInterface {
 public:
  virtual ~ControlInterface() = default;

  /// \param rank          the executing rank
  /// \param marker        the just-generated execution marker value
  /// \param construct     the instrumented construct
  /// \param kind          event kind (enter / send / recv / ...)
  /// \param depth         current function-call depth on this rank
  /// \param threshold_hit true when `marker` equals the rank's armed
  ///                      UserMonitor threshold
  /// \param detail        message endpoints for send/recv events
  virtual void at_event(mpi::Rank rank, std::uint64_t marker,
                        trace::ConstructId construct, trace::EventKind kind,
                        int depth, bool threshold_hit,
                        const EventDetail& detail) = 0;
};

/// Session configuration: which record kinds are *collected*.  (The
/// marker counter runs regardless; see user_monitor.hpp.)
struct SessionOptions {
  bool record_function_events = true;  ///< enter/exit records
  bool record_mpi_events = true;       ///< send/recv/collective records
  bool record_compute_events = true;   ///< compute blocks and marks
};

/// One instrumented run.  Install with `RunOptions::hooks = &session`
/// and the PMPI-level wrappers are live; the `TDBG_FUNCTION` /
/// `mark` / `ComputeScope` entry points find the session through a
/// thread-local context that `on_rank_start` sets up.
class Session : public mpi::ProfilingHooks {
 public:
  /// \param collector destination for trace records (may be null:
  ///        markers still count, nothing is recorded — the paper's
  ///        "instrumented but not tracing" configuration used for the
  ///        Table 1 overhead measurement)
  Session(int num_ranks, trace::TraceCollector* collector,
          SessionOptions options = {});

  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- mpi::ProfilingHooks ------------------------------------------------
  void on_call_begin(const mpi::CallInfo& info) override;
  void on_call_end(const mpi::CallInfo& info,
                   const mpi::Status* status) override;
  void on_rank_start(mpi::Rank rank) override;
  void on_rank_finish(mpi::Rank rank) override;

  // --- Debugger-facing surface ---------------------------------------------

  /// Installs (or clears, with nullptr) the control interface.  Must
  /// not change while ranks are running events.
  void set_control(ControlInterface* control) { control_ = control; }

  /// Arms the UserMonitor threshold of `rank` (paper §4.1: the
  /// debugger "stores the execution markers in the UserMonitor
  /// threshold variables").
  void set_threshold(mpi::Rank rank, std::uint64_t marker);

  /// Disarms a rank's threshold.
  void clear_threshold(mpi::Rank rank);

  /// Current marker counter of `rank`.
  [[nodiscard]] std::uint64_t counter(mpi::Rank rank) const;

  /// Last UserMonitor call record of `rank`.
  [[nodiscard]] MonitorRecord last_record(mpi::Rank rank) const;

  /// The trace collector (may be null).
  [[nodiscard]] trace::TraceCollector* collector() const { return collector_; }

  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(states_.size());
  }

  // --- Entry points used by the instrumentation guards --------------------
  // (public so the free functions in api.hpp can reach them; not meant
  // to be called by applications directly)

  /// The session bound to the calling thread, or null outside an
  /// instrumented rank.  Defined inline (with the thread-local itself)
  /// so the no-session early-out and the per-call lookups in the
  /// instrumentation guards cost a TLS read, not a function call.
  static Session* current();

  /// Rank bound to the calling thread (valid when current() != null).
  static mpi::Rank current_rank();

  /// UserMonitor entry: counts a marker at `site`, notifies the
  /// control interface, optionally records an event of `kind`.
  /// Returns the marker value.  Inline: this is the per-construct hot
  /// path of the Table 1 overhead measurement.
  std::uint64_t user_monitor(mpi::Rank rank, trace::ConstructId site,
                             trace::EventKind kind, std::uint64_t arg1,
                             std::uint64_t arg2, bool record,
                             support::TimeNs t_start, support::TimeNs t_end,
                             const EventDetail& detail = {});

  /// Appends a non-counting record (function exit, compute end).
  void record_event(const trace::Event& event);

  /// Function-depth bookkeeping for `at_event`'s `depth` argument.
  int enter_function(mpi::Rank rank);
  int exit_function(mpi::Rank rank);

  /// Interns a construct in the global table, caching by site pointer.
  trace::ConstructId intern_site(const void* key, std::string_view name,
                                 std::string_view file, int line);

  // --- Exposed variables (watchpoint support) ---------------------------

  /// A view of an application variable a rank exposed to the debugger.
  struct VariableView {
    const void* address = nullptr;
    std::size_t bytes = 0;
  };

  /// Registers an application variable under `name` for `rank` (used
  /// by `instr::expose_variable`, called on the rank's own thread).
  /// The storage must outlive the run.
  void expose_variable(mpi::Rank rank, std::string name, const void* address,
                       std::size_t bytes);

  /// Looks up an exposed variable; empty view when unknown.  Reading
  /// the pointed-to bytes is safe from the rank's own thread (watch
  /// probes at control points) or while the rank is stopped.
  [[nodiscard]] VariableView variable(mpi::Rank rank,
                                      std::string_view name) const;

  [[nodiscard]] const SessionOptions& options() const { return options_; }

 private:
  struct RankContext {
    MonitorState monitor;
    int depth = 0;  // touched only by the owning rank thread
    // Pending profiled MPI call (calls cannot nest within one rank):
    support::TimeNs call_start = 0;
    std::uint64_t call_marker = 0;
    trace::ConstructId call_construct = trace::kNoConstruct;
  };

  trace::TraceCollector* collector_;
  SessionOptions options_;
  std::vector<std::unique_ptr<RankContext>> states_;
  ControlInterface* control_ = nullptr;

  std::mutex sites_mu_;
  std::unordered_map<const void*, trace::ConstructId> site_cache_;
  std::array<trace::ConstructId, 16> mpi_sites_{};  // per CallKind

  mutable std::mutex variables_mu_;
  std::unordered_map<std::string, VariableView> variables_;  // "rank\x1fname"
};

namespace detail {
/// Thread-local session binding, set by Session::on_rank_start.
/// Header-inline so Session::current() compiles to a TLS load.
inline thread_local Session* tl_session = nullptr;
inline thread_local mpi::Rank tl_rank = -1;
}  // namespace detail

inline Session* Session::current() { return detail::tl_session; }

inline mpi::Rank Session::current_rank() { return detail::tl_rank; }

inline std::uint64_t Session::user_monitor(
    mpi::Rank rank, trace::ConstructId site, trace::EventKind kind,
    std::uint64_t arg1, std::uint64_t arg2, bool record,
    support::TimeNs t_start, support::TimeNs t_end, const EventDetail& detail) {
  auto& ctx = *states_[static_cast<std::size_t>(rank)];
  bool threshold_hit = false;
  const auto marker = ctx.monitor.tick(site, arg1, arg2, &threshold_hit);
  if (control_ != nullptr) {
    control_->at_event(rank, marker, site, kind, ctx.depth, threshold_hit,
                       detail);
  }
  if (record && collector_ != nullptr) {
    trace::Event e;
    e.kind = kind;
    e.rank = rank;
    e.marker = marker;
    e.construct = site;
    e.t_start = t_start;
    e.t_end = t_end;
    collector_->append(e);
  }
  return marker;
}

inline void Session::record_event(const trace::Event& event) {
  if (collector_ != nullptr) collector_->append(event);
}

inline int Session::enter_function(mpi::Rank rank) {
  return ++states_[static_cast<std::size_t>(rank)]->depth;
}

inline int Session::exit_function(mpi::Rank rank) {
  return --states_[static_cast<std::size_t>(rank)]->depth;
}

/// The process-wide construct table.  Shared by every session so that
/// `TDBG_FUNCTION`'s per-call-site `static` id cache stays valid
/// across sessions; traces reference it via shared_ptr.
const std::shared_ptr<trace::ConstructRegistry>& global_constructs();

/// Interns a construct in the global table (used by TDBG_FUNCTION's
/// static initializer).
trace::ConstructId intern_construct(std::string_view name,
                                    std::string_view file, int line);

}  // namespace tdbg::instr
