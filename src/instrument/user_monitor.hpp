#pragma once

#include <atomic>
#include <cstdint>

#include "mpi/types.hpp"
#include "trace/event.hpp"

/// \file user_monitor.hpp
/// The `UserMonitor` mechanism of paper §2.2.
///
/// The paper's prototype replaces the `mcount` call gcc emits under
/// `-p` with a call to `UserMonitor`, which "increments a single
/// global counter, records the address it was called from together
/// with the first two arguments passed to it, and tests to see if the
/// global counter has reached a threshold value which can be set by
/// the debugger".
///
/// Here the counter is per rank (each rank is a thread of one
/// process), which is the same observable contract: a (rank, counter)
/// pair is an *execution marker* that labels a point in that rank's
/// execution, and the threshold test is how a replay recognizes a
/// marker of interest at the moment it is regenerated.
///
/// The counter always counts — collection toggles only affect trace
/// *records* — so marker values are stable across recording
/// configurations and across replays of a deterministic run.

namespace tdbg::instr {

/// Sentinel: no threshold armed.
inline constexpr std::uint64_t kNoThreshold = ~std::uint64_t{0};

/// What `UserMonitor` remembered about its most recent call: the call
/// site and the first two arguments (paper §2.2).
struct MonitorRecord {
  trace::ConstructId site = trace::kNoConstruct;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
};

/// Per-rank monitor state: the marker counter, the armed threshold,
/// and the last call record.  The owning rank thread writes; the
/// debugger thread reads (and writes the threshold), hence atomics.
struct MonitorState {
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::uint64_t> threshold{kNoThreshold};
  std::atomic<std::uint32_t> last_site{trace::kNoConstruct};
  std::atomic<std::uint64_t> last_arg1{0};
  std::atomic<std::uint64_t> last_arg2{0};

  /// The UserMonitor hot path: increments the counter, records the
  /// call, and returns the new marker value.  `threshold_hit` is set
  /// when the new value equals the armed threshold.
  std::uint64_t tick(trace::ConstructId site, std::uint64_t arg1,
                     std::uint64_t arg2, bool* threshold_hit) {
    // Single-writer counter (only the owning rank ticks): a load+store
    // pair avoids the lock-prefixed fetch_add on the hot path.
    const auto marker = counter.load(std::memory_order_relaxed) + 1;
    counter.store(marker, std::memory_order_relaxed);
    last_site.store(site, std::memory_order_relaxed);
    last_arg1.store(arg1, std::memory_order_relaxed);
    last_arg2.store(arg2, std::memory_order_relaxed);
    *threshold_hit =
        marker == threshold.load(std::memory_order_relaxed);
    return marker;
  }

  /// Snapshot of the last call record.
  [[nodiscard]] MonitorRecord last_record() const {
    MonitorRecord r;
    r.site = last_site.load(std::memory_order_relaxed);
    r.arg1 = last_arg1.load(std::memory_order_relaxed);
    r.arg2 = last_arg2.load(std::memory_order_relaxed);
    return r;
  }
};

}  // namespace tdbg::instr
