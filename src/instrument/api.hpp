#pragma once

#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "instrument/session.hpp"
#include "support/clock.hpp"

/// \file api.hpp
/// Application-facing instrumentation entry points.
///
/// * `TDBG_FUNCTION()` — the compiler-level strategy of paper §2.2: a
///   statement placed at the top of a function body (by hand or by the
///   `uinst` rewriter in tools/uinst) that calls `UserMonitor` on
///   entry.  The construct id is interned once per call site via a
///   function-local static, mirroring how the assembly-level `ucount`
///   thunk paid no per-call symbol cost.
///
/// * `ComputeScope` / `mark` — the source-level (AIMS-like) strategy
///   of §2.1: explicit annotations with arbitrary resolution.
///
/// All entry points are no-ops when the calling thread is not inside
/// an instrumented run (no `Session` bound), so instrumented sources
/// run unmodified — and at full speed — outside the debugger.

namespace tdbg::instr {

/// RAII guard for an instrumented function activation: counts a marker
/// and emits an enter record on construction, an exit record on
/// destruction.
class FunctionScope {
 public:
  /// \param cid  construct id (from `intern_construct`)
  /// \param arg1 first argument of the instrumented function, if the
  ///             caller chose to expose it (paper: UserMonitor records
  ///             "the first two arguments passed to it")
  explicit FunctionScope(trace::ConstructId cid, std::uint64_t arg1 = 0,
                         std::uint64_t arg2 = 0) {
    Session* s = Session::current();
    if (s == nullptr) return;
    session_ = s;
    rank_ = Session::current_rank();
    cid_ = cid;
    // Only pay for the clock when an event is actually recorded: in
    // the paper's Table 1 "instrumented but not tracing" configuration
    // the monitor is just a counter and a threshold test, and reading
    // a (virtualized) TSC would dominate it.
    const bool recording =
        s->options().record_function_events && s->collector() != nullptr;
    const auto now = recording ? support::run_time_ns() : 0;
    s->enter_function(rank_);
    s->user_monitor(rank_, cid, trace::EventKind::kEnter, arg1, arg2,
                    recording, now, now);
  }

  ~FunctionScope() {
    if (session_ == nullptr) return;
    session_->exit_function(rank_);
    if (session_->options().record_function_events &&
        session_->collector() != nullptr) {
      const auto now = support::run_time_ns();
      trace::Event e;
      e.kind = trace::EventKind::kExit;
      e.rank = rank_;
      e.marker = session_->counter(rank_);
      e.construct = cid_;
      e.t_start = now;
      e.t_end = now;
      session_->record_event(e);
    }
  }

  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

 private:
  Session* session_ = nullptr;
  mpi::Rank rank_ = -1;
  trace::ConstructId cid_ = trace::kNoConstruct;
};

/// RAII guard for an explicit computation block (source-level
/// instrumentation): one `kCompute` record spanning the scope.
class ComputeScope {
 public:
  explicit ComputeScope(std::string_view name) {
    Session* s = Session::current();
    if (s == nullptr) return;
    session_ = s;
    rank_ = Session::current_rank();
    cid_ = intern_construct(name, {}, 0);
    if (s->options().record_compute_events && s->collector() != nullptr) {
      t_start_ = support::run_time_ns();
    }
    marker_ = s->user_monitor(rank_, cid_, trace::EventKind::kCompute, 0, 0,
                              /*record=*/false, t_start_, t_start_);
  }

  ~ComputeScope() {
    if (session_ == nullptr) return;
    if (session_->options().record_compute_events &&
        session_->collector() != nullptr) {
      trace::Event e;
      e.kind = trace::EventKind::kCompute;
      e.rank = rank_;
      e.marker = marker_;
      e.construct = cid_;
      e.t_start = t_start_;
      e.t_end = support::run_time_ns();
      session_->record_event(e);
    }
  }

  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

 private:
  Session* session_ = nullptr;
  mpi::Rank rank_ = -1;
  trace::ConstructId cid_ = trace::kNoConstruct;
  std::uint64_t marker_ = 0;
  support::TimeNs t_start_ = 0;
};

/// Exposes an application variable to the debugger under `name` (for
/// watchpoints).  Call from the owning rank; the storage must outlive
/// the run.  No-op outside an instrumented run.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void expose_variable(std::string name, const T& variable) {
  Session* s = Session::current();
  if (s == nullptr) return;
  s->expose_variable(Session::current_rank(), std::move(name), &variable,
                     sizeof(T));
}

/// Source-level point annotation: one `kMark` record.
inline void mark(std::string_view name) {
  Session* s = Session::current();
  if (s == nullptr) return;
  const auto rank = Session::current_rank();
  const auto cid = intern_construct(name, {}, 0);
  const bool recording =
      s->options().record_compute_events && s->collector() != nullptr;
  const auto now = recording ? support::run_time_ns() : 0;
  s->user_monitor(rank, cid, trace::EventKind::kMark, 0, 0, recording, now,
                  now);
}

}  // namespace tdbg::instr

/// Instruments the enclosing function (paper §2.2).  Place as the
/// first statement of the body; `tools/uinst` inserts these
/// automatically.
#define TDBG_FUNCTION()                                                    \
  static const ::tdbg::trace::ConstructId tdbg_cid_ =                      \
      ::tdbg::instr::intern_construct(__func__, __FILE__, __LINE__);       \
  ::tdbg::instr::FunctionScope tdbg_fn_scope_ { tdbg_cid_ }

/// Like TDBG_FUNCTION but also records the first two (integral)
/// arguments in the UserMonitor record.
#define TDBG_FUNCTION_ARGS(a1, a2)                                         \
  static const ::tdbg::trace::ConstructId tdbg_cid_ =                      \
      ::tdbg::instr::intern_construct(__func__, __FILE__, __LINE__);       \
  ::tdbg::instr::FunctionScope tdbg_fn_scope_ {                            \
    tdbg_cid_, static_cast<std::uint64_t>(a1), static_cast<std::uint64_t>(a2) \
  }
