#include "instrument/session.hpp"

#include "support/clock.hpp"
#include "support/error.hpp"

namespace tdbg::instr {

const std::shared_ptr<trace::ConstructRegistry>& global_constructs() {
  static const auto registry = std::make_shared<trace::ConstructRegistry>();
  return registry;
}

trace::ConstructId intern_construct(std::string_view name,
                                    std::string_view file, int line) {
  return global_constructs()->intern(name, file, line);
}

Session::Session(int num_ranks, trace::TraceCollector* collector,
                 SessionOptions options)
    : collector_(collector), options_(options) {
  TDBG_CHECK(num_ranks > 0, "session needs at least one rank");
  states_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    states_.push_back(std::make_unique<RankContext>());
  }
  for (std::size_t k = 0; k < mpi_sites_.size(); ++k) {
    if (k <= static_cast<std::size_t>(mpi::CallKind::kFinalize)) {
      mpi_sites_[k] = intern_construct(
          mpi::call_kind_name(static_cast<mpi::CallKind>(k)), {}, 0);
    } else {
      mpi_sites_[k] = trace::kNoConstruct;
    }
  }
}

Session::~Session() = default;

void Session::on_rank_start(mpi::Rank rank) {
  detail::tl_session = this;
  detail::tl_rank = rank;
}

void Session::on_rank_finish(mpi::Rank rank) {
  (void)rank;
  detail::tl_session = nullptr;
  detail::tl_rank = -1;
}

void Session::set_threshold(mpi::Rank rank, std::uint64_t marker) {
  states_.at(static_cast<std::size_t>(rank))
      ->monitor.threshold.store(marker, std::memory_order_relaxed);
}

void Session::clear_threshold(mpi::Rank rank) {
  set_threshold(rank, kNoThreshold);
}

std::uint64_t Session::counter(mpi::Rank rank) const {
  return states_.at(static_cast<std::size_t>(rank))
      ->monitor.counter.load(std::memory_order_relaxed);
}

MonitorRecord Session::last_record(mpi::Rank rank) const {
  return states_.at(static_cast<std::size_t>(rank))->monitor.last_record();
}

void Session::expose_variable(mpi::Rank rank, std::string name,
                              const void* address, std::size_t bytes) {
  std::lock_guard lk(variables_mu_);
  variables_[std::to_string(rank) + '\x1f' + std::move(name)] =
      VariableView{address, bytes};
}

Session::VariableView Session::variable(mpi::Rank rank,
                                        std::string_view name) const {
  std::lock_guard lk(variables_mu_);
  const auto it =
      variables_.find(std::to_string(rank) + '\x1f' + std::string(name));
  return it == variables_.end() ? VariableView{} : it->second;
}

trace::ConstructId Session::intern_site(const void* key, std::string_view name,
                                        std::string_view file, int line) {
  std::lock_guard lk(sites_mu_);
  auto it = site_cache_.find(key);
  if (it != site_cache_.end()) return it->second;
  const auto id = intern_construct(name, file, line);
  site_cache_.emplace(key, id);
  return id;
}

void Session::on_call_begin(const mpi::CallInfo& info) {
  auto& ctx = *states_.at(static_cast<std::size_t>(info.rank));
  trace::ConstructId site;
  if (info.call_site != nullptr) {
    site = intern_site(info.call_site, info.call_site, {}, 0);
  } else {
    site = mpi_sites_[static_cast<std::size_t>(info.kind)];
  }
  ctx.call_start = support::run_time_ns();
  ctx.call_construct = site;

  trace::EventKind kind;
  switch (info.kind) {
    case mpi::CallKind::kSend:
    case mpi::CallKind::kSsend: kind = trace::EventKind::kSend; break;
    case mpi::CallKind::kRecv: kind = trace::EventKind::kRecv; break;
    default: kind = trace::EventKind::kCollective; break;
  }
  // Tick the marker and hit the control point *before* the call runs
  // (record later, at call end, when the duration and — for receives —
  // the matched source are known).
  ctx.call_marker =
      user_monitor(info.rank, site, kind,
                   static_cast<std::uint64_t>(info.peer),
                   static_cast<std::uint64_t>(info.tag),
                   /*record=*/false, ctx.call_start, ctx.call_start,
                   EventDetail{info.peer, info.tag, info.bytes});
}

void Session::on_call_end(const mpi::CallInfo& info,
                          const mpi::Status* status) {
  if (collector_ == nullptr || !options_.record_mpi_events) return;
  if (info.kind == mpi::CallKind::kProbe) return;  // counted, not recorded

  auto& ctx = *states_.at(static_cast<std::size_t>(info.rank));
  trace::Event e;
  e.rank = info.rank;
  e.marker = ctx.call_marker;
  e.construct = ctx.call_construct;
  e.t_start = ctx.call_start;
  e.t_end = support::run_time_ns();
  e.tag = info.tag;
  e.bytes = info.bytes;
  switch (info.kind) {
    case mpi::CallKind::kSend:
    case mpi::CallKind::kSsend:
      e.kind = trace::EventKind::kSend;
      e.peer = info.peer;
      break;
    case mpi::CallKind::kRecv:
      e.kind = trace::EventKind::kRecv;
      TDBG_CHECK(status != nullptr, "recv completion without status");
      e.peer = status->source;
      e.tag = status->tag;
      e.bytes = status->bytes;
      e.channel_seq = status->channel_seq;
      e.wildcard = info.peer == mpi::kAnySource;
      break;
    default:
      e.kind = trace::EventKind::kCollective;
      e.peer = info.peer;
      break;
  }
  collector_->append(e);
}

}  // namespace tdbg::instr
