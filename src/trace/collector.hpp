#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/construct_registry.hpp"
#include "trace/trace.hpp"

namespace tdbg::trace {

class TraceWriter;

/// Collects trace records from all ranks during a run.
///
/// This is the debugger-side monitor of paper §2.1: per-rank buffers
/// filled by the instrumentation, with two additions the paper had to
/// make to AIMS: the records can be *flushed on demand* while the
/// program is still executing (p2d2 needs history during execution,
/// not post-mortem), and collection can be toggled — globally or per
/// record kind — to control trace size (§3: "the size of trace file
/// can be controlled by selectively instrumenting constructs and by
/// toggling the collection on and off in the monitor").
class TraceCollector {
 public:
  /// \param num_ranks  world size of the run being traced
  /// \param constructs shared construct table (created if null)
  explicit TraceCollector(
      int num_ranks,
      std::shared_ptr<ConstructRegistry> constructs = nullptr);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Appends a record (called from the owning rank's thread).  Drops
  /// the record if collection is disabled globally or for its kind.
  void append(const Event& event);

  /// Globally enables/disables collection.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Enables/disables one record kind (e.g. drop enter/exit records
  /// but keep message records).
  void set_kind_enabled(EventKind kind, bool enabled);

  /// Attaches a writer; once attached, `flush` drains buffered records
  /// to it, and buffers auto-flush when they exceed `threshold`
  /// records.
  void attach_writer(TraceWriter* writer, std::size_t threshold = 4096);

  /// Flush-on-demand: drains every rank's buffer to the attached
  /// writer.  No-op without a writer.
  void flush();

  /// Number of records currently buffered (all ranks).
  [[nodiscard]] std::size_t buffered_count() const;

  /// Total records accepted since construction (including flushed).
  [[nodiscard]] std::uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Builds an in-memory `Trace` from the buffered records (leaves the
  /// buffers intact).  Requires that no writer flushing has happened,
  /// otherwise the early records are on disk, not here.
  [[nodiscard]] Trace build_trace() const;

  /// The shared construct table.
  [[nodiscard]] const std::shared_ptr<ConstructRegistry>& constructs() const {
    return constructs_;
  }

  [[nodiscard]] int num_ranks() const { return num_ranks_; }

 private:
  struct RankBuffer {
    mutable std::mutex mu;
    std::vector<Event> events;
  };

  void flush_rank(RankBuffer& buffer);

  int num_ranks_;
  std::shared_ptr<ConstructRegistry> constructs_;
  std::vector<std::unique_ptr<RankBuffer>> buffers_;
  std::atomic<bool> enabled_{true};
  std::array<std::atomic<bool>, 8> kind_enabled_;
  std::atomic<std::uint64_t> total_{0};

  std::mutex writer_mu_;
  TraceWriter* writer_ = nullptr;
  std::size_t flush_threshold_ = 4096;
};

}  // namespace tdbg::trace
