#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/construct_registry.hpp"
#include "trace/trace.hpp"

namespace tdbg::trace {

class TraceWriter;

/// Collects trace records from all ranks during a run.
///
/// This is the debugger-side monitor of paper §2.1: per-rank buffers
/// filled by the instrumentation, with two additions the paper had to
/// make to AIMS: the records can be *flushed on demand* while the
/// program is still executing (p2d2 needs history during execution,
/// not post-mortem), and collection can be toggled — globally or per
/// record kind — to control trace size (§3: "the size of trace file
/// can be controlled by selectively instrumenting constructs and by
/// toggling the collection on and off in the monitor").
///
/// Each rank's buffer is a single-producer single-consumer chunked
/// log: the owning rank appends into fixed-size chunks with stable
/// addresses and publishes progress through a release-stored counter,
/// so an append is a slot write plus a store — wait-free, no lock, no
/// fence, and no reallocation ever moves published records (see
/// DESIGN.md "Hot paths").  A flusher walks the chunk list behind the
/// counter, hands whole chunk spans to `TraceWriter::write_events`
/// (one writer-lock acquisition per span instead of per record), and
/// recycles drained chunks through a pool so steady-state tracing
/// allocates nothing.  An optional background flusher thread
/// (`start_background_flush`) moves flushing off the traced program's
/// threads entirely, so append never blocks on I/O.
class TraceCollector {
 public:
  /// Records per chunk; also the granularity of flush batching.
  static constexpr std::size_t kChunkEvents = 1024;

  /// \param num_ranks  world size of the run being traced
  /// \param constructs shared construct table (created if null)
  explicit TraceCollector(
      int num_ranks,
      std::shared_ptr<ConstructRegistry> constructs = nullptr);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Stops the background flusher if running (without a final flush —
  /// call `stop_background_flush` yourself to drain first).
  ~TraceCollector();

  /// Appends a record (called from the owning rank's thread).  Drops
  /// the record if collection is disabled globally or for its kind.
  void append(const Event& event);

  /// Globally enables/disables collection.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Enables/disables one record kind (e.g. drop enter/exit records
  /// but keep message records).
  void set_kind_enabled(EventKind kind, bool enabled);

  /// Attaches a writer; once attached, `flush` drains buffered records
  /// to it, and buffers auto-flush when they exceed `threshold`
  /// records.
  void attach_writer(TraceWriter* writer, std::size_t threshold = 4096);

  /// Flush-on-demand: drains every rank's buffer to the attached
  /// writer.  No-op without a writer.
  void flush();

  /// Starts a thread that flushes every `interval` and whenever an
  /// append pushes a rank's buffer past the flush threshold.  While it
  /// runs, appends never flush inline — the traced program's threads
  /// stay wait-free even with a writer attached.
  void start_background_flush(
      std::chrono::milliseconds interval = std::chrono::milliseconds(2));

  /// Stops the background flusher after one final flush.  Idempotent.
  /// Call this (or `attach_writer(nullptr)`) before destroying the
  /// attached writer.
  void stop_background_flush();

  /// Number of records currently buffered (all ranks).  Callable from
  /// any thread.
  [[nodiscard]] std::size_t buffered_count() const;

  /// Number of records currently buffered for one rank — the "trace
  /// backlog" the health heartbeat samples.  Callable from any thread.
  [[nodiscard]] std::size_t rank_buffered_count(int rank) const;

  /// Total records accepted since construction (including flushed).
  [[nodiscard]] std::uint64_t total_count() const;

  /// Builds an in-memory `Trace` from the buffered records (leaves the
  /// buffers intact).  Requires that no writer flushing has happened,
  /// otherwise the early records are on disk, not here.
  [[nodiscard]] Trace build_trace() const;

  /// The shared construct table.
  [[nodiscard]] const std::shared_ptr<ConstructRegistry>& constructs() const {
    return constructs_;
  }

  [[nodiscard]] int num_ranks() const { return num_ranks_; }

 private:
  struct Chunk {
    std::array<Event, kChunkEvents> events;
    std::atomic<Chunk*> next{nullptr};
  };

  /// One rank's SPSC chunked log.  The owning rank's thread is the
  /// only writer of the owner-side cursors and of `appended`; flushers
  /// (serialized by `writer_mu_`) own the read-side cursors and
  /// `harvested`.  Publication order is: write slot, link chunk
  /// (release), store `appended` (release); readers load `appended`
  /// (acquire) first, so every record at an index below it is stable.
  struct alignas(64) RankBuffer {
    // --- owner side (rank thread only) ------------------------------
    Chunk* write_chunk = nullptr;
    std::atomic<std::uint64_t> appended{0};
    std::uint64_t hwm_shadow = 0;   ///< owner-local high-watermark cache
    std::uint64_t unpublished = 0;  ///< appends since last metric publish

    // --- shared -----------------------------------------------------
    std::atomic<Chunk*> first{nullptr};  ///< head of the chunk list
    std::mutex pool_mu;                  ///< guards owned + free_list
    std::vector<std::unique_ptr<Chunk>> owned;  ///< every chunk allocated
    std::vector<Chunk*> free_list;              ///< drained, reusable

    // --- flusher side (under writer_mu_) ----------------------------
    Chunk* read_chunk = nullptr;
    std::size_t read_offset = 0;  ///< kChunkEvents => chunk consumed
    std::atomic<std::uint64_t> harvested{0};
  };

  /// Pops a recycled chunk or allocates one (owner thread, amortized
  /// once per kChunkEvents appends).
  Chunk* acquire_chunk(RankBuffer& buf);

  /// Drains one rank to the writer, one chunk span per write.  Caller
  /// must hold `writer_mu_` and have checked `writer_ != nullptr`.
  void flush_rank_locked(RankBuffer& buf);

  /// Auto-flush entry from `append`: re-checks the writer under lock.
  void flush_rank(RankBuffer& buf);

  void background_loop(std::chrono::milliseconds interval);

  int num_ranks_;
  std::shared_ptr<ConstructRegistry> constructs_;
  std::vector<std::unique_ptr<RankBuffer>> buffers_;
  std::atomic<bool> enabled_{true};
  std::array<std::atomic<bool>, 8> kind_enabled_;

  /// Guards writer_ and all read-side cursors (flushers and
  /// build_trace's walk).
  mutable std::mutex writer_mu_;
  TraceWriter* writer_ = nullptr;
  std::atomic<bool> has_writer_{false};
  std::atomic<std::size_t> flush_threshold_{4096};

  // Background flusher (see start_background_flush).
  std::thread bg_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::atomic<bool> bg_active_{false};
};

}  // namespace tdbg::trace
