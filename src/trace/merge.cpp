#include "trace/merge.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {

Trace merge_traces(const std::vector<Trace>& parts) {
  TDBG_CHECK(!parts.empty(), "nothing to merge");
  auto registry = std::make_shared<ConstructRegistry>();
  std::vector<Event> events;
  int num_ranks = 0;
  for (const auto& part : parts) {
    num_ranks = std::max(num_ranks, part.num_ranks());
    // Remap this part's construct ids into the shared table.
    const auto table = part.constructs().snapshot();
    std::vector<ConstructId> remap(table.size());
    for (std::size_t id = 0; id < table.size(); ++id) {
      remap[id] =
          registry->intern(table[id].name, table[id].file, table[id].line);
    }
    part.for_each_event([&](std::size_t, const Event& ev) {
      Event e = ev;
      if (e.construct != kNoConstruct) {
        TDBG_CHECK(e.construct < remap.size(),
                   "event references a construct missing from its table");
        e.construct = remap[e.construct];
      }
      events.push_back(e);
    });
  }
  return Trace(num_ranks, std::move(events), std::move(registry));
}

Trace read_merged(const std::vector<std::filesystem::path>& paths) {
  std::vector<Trace> parts;
  parts.reserve(paths.size());
  for (const auto& path : paths) parts.push_back(read_trace(path));
  return merge_traces(parts);
}

std::vector<Trace> split_by_rank(const Trace& trace) {
  std::vector<Trace> parts;
  parts.reserve(static_cast<std::size_t>(trace.num_ranks()));
  for (mpi::Rank r = 0; r < trace.num_ranks(); ++r) {
    std::vector<Event> events;
    events.reserve(trace.rank_size(r));
    trace.for_each_rank_event(
        r, [&](std::size_t, const Event& e) { events.push_back(e); });
    parts.emplace_back(trace.num_ranks(), std::move(events),
                       trace.constructs_ptr());
  }
  return parts;
}

}  // namespace tdbg::trace
