#pragma once

#include <cstdint>
#include <vector>

#include "support/clock.hpp"
#include "support/serialize.hpp"
#include "trace/construct_registry.hpp"
#include "trace/event.hpp"

/// \file wire.hpp
/// Shared on-disk encoding of trace files (internal to `src/trace`).
///
/// Two binary versions coexist:
///
///   v1  TDBGTRC1 | i32 num_ranks | event records... | end record
///       end record = u8 kRecordEnd + construct table
///
///   v2  TDBGTRC2 | i32 num_ranks | event records... | footer | trailer
///       footer  = u8 kRecordEnd + construct table
///               + u8 kRecordDirectory + flags + segment directory
///       trailer = u64 footer_offset + "TDBGIDX2"
///
///   v3  TDBGTRC3 | i32 num_ranks | segment blocks... | footer | trailer
///       segment block = u8 kRecordSegment + columnar header + column
///                       payloads (see columnar.hpp)
///       footer  = u8 kRecordEnd + construct table
///               + u8 kRecordDirectoryV3 + flags + extended directory
///                 (per-segment kind/rank presence masks + per-column
///                 zone maps on top of the v2 entry)
///       trailer = u64 footer_offset + "TDBGIDX3"
///
/// Event records are fixed width (kEventRecordBytes, tag byte included)
/// in v1/v2, so the k-th record of a file lives at
/// `kHeaderBytes + k * kEventRecordBytes` — that is what lets the v2
/// directory address segments without any per-event index.  v3 drops
/// the fixed width in favor of per-segment column blocks; its
/// directory carries explicit byte offsets instead.  The v2/v3 trailer
/// is at a fixed distance from the end of the file, so a reader finds
/// the footer in O(1) without scanning the event stream; a file
/// missing the trailer (crash, flush-on-demand snapshot) still parses
/// as a record-stream prefix.

namespace tdbg::trace::wire {

inline constexpr char kMagicV1[8] = {'T', 'D', 'B', 'G', 'T', 'R', 'C', '1'};
inline constexpr char kMagicV2[8] = {'T', 'D', 'B', 'G', 'T', 'R', 'C', '2'};
inline constexpr char kMagicV3[8] = {'T', 'D', 'B', 'G', 'T', 'R', 'C', '3'};
inline constexpr char kFooterMagic[8] = {'T', 'D', 'B', 'G', 'I', 'D', 'X', '2'};
inline constexpr char kFooterMagicV3[8] = {'T', 'D', 'B', 'G',
                                           'I', 'D', 'X', '3'};

inline constexpr std::uint8_t kRecordEvent = 0;
inline constexpr std::uint8_t kRecordEnd = 1;
inline constexpr std::uint8_t kRecordDirectory = 2;
inline constexpr std::uint8_t kRecordSegment = 3;      ///< v3 column block
inline constexpr std::uint8_t kRecordDirectoryV3 = 4;  ///< v3 directory

/// Number of event columns in the v3 layout, in storage order: kind,
/// rank, marker, construct, t_start, t_end, peer, tag, channel_seq,
/// bytes, wildcard.
inline constexpr std::size_t kNumColumnsV3 = 11;

/// magic (8) + i32 num_ranks.
inline constexpr std::uint64_t kHeaderBytes = 12;

/// One event record: tag(1) kind(1) rank(4) marker(8) construct(4)
/// t_start(8) t_end(8) peer(4) tag(4) channel_seq(8) bytes(8)
/// wildcard(1).
inline constexpr std::uint64_t kEventRecordBytes = 59;

/// u64 footer offset + footer magic.
inline constexpr std::uint64_t kTrailerBytes = 16;

/// Events are in global display order: (t_start, rank, marker)
/// nondecreasing over the whole stream.  Required for the segmented
/// store's directory binary searches.
inline constexpr std::uint32_t kFlagDisplaySorted = 1u << 0;

/// Each rank's markers are nondecreasing in stream order.  Required
/// for per-rank marker binary searches on the segmented store.
inline constexpr std::uint32_t kFlagRankMarkersMonotone = 1u << 1;

/// Encodes one event record, tag byte included.
inline void encode_event(support::BinaryWriter& w, const Event& e) {
  w.put<std::uint8_t>(kRecordEvent);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(e.kind));
  w.put<std::int32_t>(e.rank);
  w.put<std::uint64_t>(e.marker);
  w.put<std::uint32_t>(e.construct);
  w.put<std::int64_t>(e.t_start);
  w.put<std::int64_t>(e.t_end);
  w.put<std::int32_t>(e.peer);
  w.put<std::int32_t>(e.tag);
  w.put<std::uint64_t>(e.channel_seq);
  w.put<std::uint64_t>(e.bytes);
  w.put<std::uint8_t>(e.wildcard ? 1 : 0);
}

/// Highest EventKind value the wire format knows.  Readers must treat
/// any kind byte above this as corruption (FormatError naming the
/// offset), never cast it through — a misparsed kind would silently
/// poison every downstream analysis.
inline constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(EventKind::kFaultInjected);

[[nodiscard]] inline constexpr bool valid_event_kind(std::uint8_t kind) {
  return kind <= kMaxEventKind;
}

/// Decodes one event record; the caller has already consumed the tag.
inline Event decode_event(support::BinaryReader& r) {
  Event e;
  e.kind = static_cast<EventKind>(r.get<std::uint8_t>());
  e.rank = r.get<std::int32_t>();
  e.marker = r.get<std::uint64_t>();
  e.construct = r.get<std::uint32_t>();
  e.t_start = r.get<std::int64_t>();
  e.t_end = r.get<std::int64_t>();
  e.peer = r.get<std::int32_t>();
  e.tag = r.get<std::int32_t>();
  e.channel_seq = r.get<std::uint64_t>();
  e.bytes = r.get<std::uint64_t>();
  e.wildcard = r.get<std::uint8_t>() != 0;
  return e;
}

/// Directory entry for one rank within one segment.
struct SegmentRankMeta {
  std::uint64_t count = 0;
  std::uint64_t marker_lo = 0;
  std::uint64_t marker_hi = 0;
};

/// Logical [min, max] of one column's values within one segment (v3
/// zone map).  Signed fields compare as signed; unsigned fields fit
/// because the runtime's counters stay far below 2^63.
struct ColumnZone {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Directory entry for one segment of the event stream.
struct SegmentMeta {
  std::uint64_t offset = 0;    ///< file offset of the first record
  std::uint64_t byte_len = 0;  ///< v2: count * kEventRecordBytes;
                               ///< v3: whole column block, tag included
  std::uint64_t count = 0;     ///< events in the segment
  support::TimeNs t_min = 0;   ///< min t_start
  support::TimeNs t_max = 0;   ///< max t_end
  std::vector<SegmentRankMeta> ranks;  ///< one entry per rank

  // v3 zone maps (empty `zones` on a v2 directory):
  std::uint32_t kind_mask = 0;  ///< bit k set iff EventKind k occurs
  std::uint64_t rank_mask = 0;  ///< bit min(rank, 63) set iff rank occurs
  std::vector<ColumnZone> zones;  ///< kNumColumnsV3 entries
};

/// Parsed v2/v3 footer.
struct Footer {
  std::uint32_t version = 2;  ///< 2 or 3, from the file magic
  std::uint32_t flags = 0;
  std::uint32_t segment_events = 0;  ///< the writer's segment size
  std::uint64_t event_count = 0;
  std::vector<SegmentMeta> segments;
  std::vector<ConstructInfo> constructs;

  [[nodiscard]] bool display_sorted() const {
    return (flags & kFlagDisplaySorted) != 0;
  }
  [[nodiscard]] bool rank_markers_monotone() const {
    return (flags & kFlagRankMarkersMonotone) != 0;
  }
};

/// Encodes the construct-table end record shared by v1 and v2.
inline void encode_construct_table(support::BinaryWriter& w,
                                   const std::vector<ConstructInfo>& table) {
  w.put<std::uint8_t>(kRecordEnd);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(table.size()));
  for (const auto& c : table) {
    w.put_string(c.name);
    w.put_string(c.file);
    w.put<std::int32_t>(c.line);
  }
}

/// Decodes the construct table; the caller has consumed the kRecordEnd
/// tag.
inline std::vector<ConstructInfo> decode_construct_table(
    support::BinaryReader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<ConstructInfo> table;
  table.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ConstructInfo c;
    c.name = r.get_string();
    c.file = r.get_string();
    c.line = r.get<std::int32_t>();
    table.push_back(std::move(c));
  }
  return table;
}

/// Encodes the v2 directory record (after the construct table).
inline void encode_directory(support::BinaryWriter& w, const Footer& footer) {
  w.put<std::uint8_t>(kRecordDirectory);
  w.put<std::uint32_t>(footer.flags);
  w.put<std::uint32_t>(footer.segment_events);
  w.put<std::uint64_t>(footer.event_count);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(footer.segments.size()));
  for (const auto& seg : footer.segments) {
    w.put<std::uint64_t>(seg.offset);
    w.put<std::uint64_t>(seg.byte_len);
    w.put<std::uint64_t>(seg.count);
    w.put<std::int64_t>(seg.t_min);
    w.put<std::int64_t>(seg.t_max);
    for (const auto& rk : seg.ranks) {
      w.put<std::uint64_t>(rk.count);
      w.put<std::uint64_t>(rk.marker_lo);
      w.put<std::uint64_t>(rk.marker_hi);
    }
  }
}

/// Decodes the v2 directory record; the caller has consumed the
/// kRecordDirectory tag.  `num_ranks` fixes the per-segment rank-table
/// width.
inline void decode_directory(support::BinaryReader& r, int num_ranks,
                             Footer* footer) {
  footer->flags = r.get<std::uint32_t>();
  footer->segment_events = r.get<std::uint32_t>();
  footer->event_count = r.get<std::uint64_t>();
  const auto n = r.get<std::uint32_t>();
  footer->segments.clear();
  footer->segments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SegmentMeta seg;
    seg.offset = r.get<std::uint64_t>();
    seg.byte_len = r.get<std::uint64_t>();
    seg.count = r.get<std::uint64_t>();
    seg.t_min = r.get<std::int64_t>();
    seg.t_max = r.get<std::int64_t>();
    seg.ranks.resize(static_cast<std::size_t>(num_ranks));
    for (auto& rk : seg.ranks) {
      rk.count = r.get<std::uint64_t>();
      rk.marker_lo = r.get<std::uint64_t>();
      rk.marker_hi = r.get<std::uint64_t>();
    }
    footer->segments.push_back(std::move(seg));
  }
}

/// Encodes the v3 directory record: the v2 entry plus the per-segment
/// kind/rank presence masks and the per-column zone maps.
inline void encode_directory_v3(support::BinaryWriter& w,
                                const Footer& footer) {
  w.put<std::uint8_t>(kRecordDirectoryV3);
  w.put<std::uint32_t>(footer.flags);
  w.put<std::uint32_t>(footer.segment_events);
  w.put<std::uint64_t>(footer.event_count);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(footer.segments.size()));
  for (const auto& seg : footer.segments) {
    w.put<std::uint64_t>(seg.offset);
    w.put<std::uint64_t>(seg.byte_len);
    w.put<std::uint64_t>(seg.count);
    w.put<std::int64_t>(seg.t_min);
    w.put<std::int64_t>(seg.t_max);
    w.put<std::uint32_t>(seg.kind_mask);
    w.put<std::uint64_t>(seg.rank_mask);
    for (const auto& rk : seg.ranks) {
      w.put<std::uint64_t>(rk.count);
      w.put<std::uint64_t>(rk.marker_lo);
      w.put<std::uint64_t>(rk.marker_hi);
    }
    for (std::size_t c = 0; c < kNumColumnsV3; ++c) {
      const ColumnZone z =
          c < seg.zones.size() ? seg.zones[c] : ColumnZone{};
      w.put<std::int64_t>(z.lo);
      w.put<std::int64_t>(z.hi);
    }
  }
}

/// Decodes the v3 directory record; the caller has consumed the
/// kRecordDirectoryV3 tag.
inline void decode_directory_v3(support::BinaryReader& r, int num_ranks,
                                Footer* footer) {
  footer->version = 3;
  footer->flags = r.get<std::uint32_t>();
  footer->segment_events = r.get<std::uint32_t>();
  footer->event_count = r.get<std::uint64_t>();
  const auto n = r.get<std::uint32_t>();
  footer->segments.clear();
  footer->segments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SegmentMeta seg;
    seg.offset = r.get<std::uint64_t>();
    seg.byte_len = r.get<std::uint64_t>();
    seg.count = r.get<std::uint64_t>();
    seg.t_min = r.get<std::int64_t>();
    seg.t_max = r.get<std::int64_t>();
    seg.kind_mask = r.get<std::uint32_t>();
    seg.rank_mask = r.get<std::uint64_t>();
    seg.ranks.resize(static_cast<std::size_t>(num_ranks));
    for (auto& rk : seg.ranks) {
      rk.count = r.get<std::uint64_t>();
      rk.marker_lo = r.get<std::uint64_t>();
      rk.marker_hi = r.get<std::uint64_t>();
    }
    seg.zones.resize(kNumColumnsV3);
    for (auto& z : seg.zones) {
      z.lo = r.get<std::int64_t>();
      z.hi = r.get<std::int64_t>();
    }
    footer->segments.push_back(std::move(seg));
  }
}

}  // namespace tdbg::trace::wire
