#pragma once

#include <cstdint>
#include <string_view>

#include "mpi/types.hpp"
#include "support/clock.hpp"

/// \file event.hpp
/// The trace record model (paper §3): one record per execution of an
/// instrumented construct, identifying the construct (program
/// location), the executing process, start/end times, and — for
/// message-passing constructs — the message tag and endpoints.

namespace tdbg::trace {

/// Identifies an instrumented program construct (a function or a call
/// site); resolved to name/file/line through the `ConstructRegistry`.
using ConstructId = std::uint32_t;

/// Sentinel for "no construct" (events synthesized by the runtime).
inline constexpr ConstructId kNoConstruct = 0xffffffffu;

/// Record types.  Function entry/exit come from `UserMonitor`-level
/// instrumentation (§2.2); send/recv/collective from the PMPI wrappers
/// (§2.3); compute blocks and marks from the source-level (AIMS-like)
/// API (§2.1).
enum class EventKind : std::uint8_t {
  kEnter,       ///< function entry
  kExit,        ///< function exit
  kSend,        ///< completed (buffered or synchronous) send
  kRecv,        ///< completed receive
  kCollective,  ///< completed collective operation
  kCompute,        ///< explicit computation block
  kMark,           ///< user annotation
  kFaultInjected,  ///< a fault the `tdbg::fault` engine injected here
                   ///< (rank = injecting rank, peer/tag/channel_seq =
                   ///< affected message, bytes = packed kind + param;
                   ///< see DESIGN.md "Fault injection")
};

/// Human-readable kind name ("enter", "send", ...).
std::string_view event_kind_name(EventKind kind);

/// An execution marker: a tag identifying a point in one process's
/// execution (paper §2).  The counter is incremented by `UserMonitor`
/// at every instrumented event, so (rank, count) maps a trace record
/// back to the point of its generation — and, during replay, lets the
/// monitor recognize that point when it is generated again.
struct ExecutionMarker {
  mpi::Rank rank = 0;
  std::uint64_t count = 0;

  friend bool operator==(const ExecutionMarker&,
                         const ExecutionMarker&) = default;
  friend auto operator<=>(const ExecutionMarker&,
                          const ExecutionMarker&) = default;
};

/// One trace record.
///
/// Message matching: a receive record stores the *actual* source in
/// `peer` and the per-(source,dest) FIFO position in `channel_seq`.
/// Send records do not carry a sequence number on the wire; because
/// channels are FIFO (the MPI non-overtaking rule), the k-th send
/// record from rank s to dest d corresponds to channel_seq k, which is
/// how `Trace::match_messages` pairs sends with receives uniquely —
/// the same argument the paper makes in §3.2.
struct Event {
  EventKind kind = EventKind::kMark;
  mpi::Rank rank = 0;
  std::uint64_t marker = 0;         ///< execution-marker counter at the event
  ConstructId construct = kNoConstruct;
  support::TimeNs t_start = 0;
  support::TimeNs t_end = 0;

  // Message fields (send/recv/collective only):
  mpi::Rank peer = mpi::kAnySource;  ///< dest (send) / actual source (recv) /
                                     ///< root (collective)
  mpi::Tag tag = mpi::kAnyTag;
  mpi::ChannelSeq channel_seq = 0;   ///< recv: matched FIFO position
  std::uint64_t bytes = 0;
  bool wildcard = false;  ///< recv: was posted with ANY_SOURCE (the
                          ///< nondeterministic receives §4.2 controls and
                          ///< the race detector §4.4 inspects)

  /// True for kinds that describe point-to-point messages.
  [[nodiscard]] bool is_message() const {
    return kind == EventKind::kSend || kind == EventKind::kRecv;
  }

  /// The execution marker of this record.
  [[nodiscard]] ExecutionMarker execution_marker() const {
    return ExecutionMarker{rank, marker};
  }
};

}  // namespace tdbg::trace
