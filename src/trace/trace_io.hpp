#pragma once

#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "support/serialize.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"

namespace tdbg::trace {

/// On-disk encodings of a trace.
enum class TraceFormat : std::uint8_t {
  kBinary,    ///< segmented + indexed, row-major records (v2, default)
  kBinaryV1,  ///< flat record stream (pre-segment format)
  kText,      ///< tab-separated, human-greppable
  kBinaryV3,  ///< segmented, columnar compressed, zone-mapped (v3)
};

/// Default events per v2/v3 segment (~64Ki; ~3.7 MiB of v2 records).
inline constexpr std::uint32_t kDefaultSegmentEvents = 1u << 16;

/// Streams trace records to a file.
///
/// The event stream is written incrementally — this is what makes the
/// collector's flush-on-demand useful: the debugger can read a
/// consistent prefix of the history while the program is still
/// running.  The footer (construct table, and for v2 the segment
/// directory + trailer) is appended by `finish()` (or the destructor).
///
/// For v2 the writer accumulates one directory entry per
/// `segment_events` records — byte offset, count, [t_min, t_max], and
/// per-rank counts/marker ranges — and tracks whether the stream it
/// saw was in display order with monotone per-rank markers; the
/// resulting footer flags decide whether `open_trace` may use the
/// lazy segmented store.
///
/// For v3 the writer buffers the open segment and seals it as one
/// columnar block (see columnar.hpp) when it reaches `segment_events`
/// records; the directory entry additionally carries the segment's
/// kind/rank presence masks and per-column zone maps.  Because whole
/// segments are buffered, a mid-segment crash loses the buffered tail
/// — the collector's flush-on-demand partial traces therefore stay on
/// v2, where every written record is durable.
///
/// Stream failures (full disk, failed flush) throw `IoError` naming
/// the path.
class TraceWriter {
 public:
  TraceWriter(const std::filesystem::path& path, int num_ranks,
              std::shared_ptr<const ConstructRegistry> constructs,
              TraceFormat format = TraceFormat::kBinary,
              std::uint32_t segment_events = kDefaultSegmentEvents);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Flushes and closes, writing the footer if needed.
  ~TraceWriter();

  /// Appends one record.  Thread-safe.
  void write_event(const Event& event);

  /// Appends a batch of records under a single lock acquisition,
  /// encoding them into one reused scratch buffer and writing them
  /// with one stream call.  This is the collector's flush path; the
  /// per-record cost is a fraction of `write_event`'s.  Thread-safe.
  void write_events(std::span<const Event> events);

  /// Writes the construct table, segment directory (v2), and
  /// end-of-stream trailer, then closes.  Idempotent.
  void finish();

  /// Records written so far.
  [[nodiscard]] std::uint64_t events_written() const { return count_; }

 private:
  void note_event(const Event& e);   ///< directory bookkeeping, under mu_
  void close_segment();              ///< seals the open segment, under mu_
  void close_segment_v3();           ///< encodes + writes a v3 block, under mu_
  void check_stream(const char* op); ///< throws IoError on failure

  std::filesystem::path path_;
  std::shared_ptr<const ConstructRegistry> constructs_;
  TraceFormat format_;
  int num_ranks_ = 0;
  std::uint32_t segment_events_ = kDefaultSegmentEvents;
  std::ofstream out_;
  std::mutex mu_;
  support::BinaryWriter scratch_;  ///< reused encode buffer (under mu_)
  std::uint64_t count_ = 0;
  bool finished_ = false;

  // v2/v3 directory state (under mu_).
  std::vector<wire::SegmentMeta> segments_;
  wire::SegmentMeta cur_;
  bool display_sorted_ = true;
  bool markers_monotone_ = true;
  Event prev_;                      ///< last event seen (display order check)
  std::vector<std::uint64_t> last_marker_;  ///< per rank, monotonicity check
  std::vector<bool> rank_seen_;

  // v3 state (under mu_): the open segment's buffered events and the
  // running file offset (v3 blocks are variable-width, so offsets
  // cannot be derived from the record count).
  std::vector<Event> seg_buf_;
  std::uint64_t file_bytes_ = 0;
};

/// Reads a trace file eagerly (any format, detected by magic) into an
/// in-memory trace.  Throws `IoError` / `FormatError` on problems; a
/// file truncated mid-record is rejected with a `FormatError` naming
/// the path and offset, while a file cut at a record boundary before
/// the footer (flush-on-demand snapshot) still yields the event
/// prefix.
Trace read_trace(const std::filesystem::path& path);

/// Options for `open_trace`.
struct TraceOpenOptions {
  /// Max segments the lazy store keeps resident (LRU).
  std::size_t cache_segments = 8;
  /// Read-ahead pipeline: while a sequential cursor consumes segment
  /// k, segment k+1 is loaded and decoded on the analysis pool.  A
  /// no-op when the pool is serial.
  bool prefetch = true;
};

/// Opens a trace for querying.  A v2 file whose footer marks the
/// stream as display-sorted with monotone per-rank markers is opened
/// lazily through a `SegmentedTraceStore` in O(footer) time; anything
/// else falls back to `read_trace`.
Trace open_trace(const std::filesystem::path& path,
                 const TraceOpenOptions& options = {});

/// Footer-level description of a trace file, for `tdbg_trace info`.
/// For a v2/v3 file this comes from the footer alone (no event data
/// is read); for v1/text the event region is scanned for counts and
/// the time span is left unset.
struct TraceFileInfo {
  std::string format;  ///< "binary-v3", "binary-v2", "binary-v1", or "text"
  int num_ranks = 0;
  std::uint64_t event_count = 0;
  std::uint64_t file_bytes = 0;
  std::size_t construct_count = 0;
  bool has_footer = false;        ///< v2/v3 directory present
  std::uint64_t segment_count = 0;    ///< v2/v3 only
  std::uint32_t segment_events = 0;   ///< v2/v3 only
  bool display_sorted = false;        ///< v2/v3 only
  bool rank_markers_monotone = false; ///< v2/v3 only
  bool has_time_span = false;
  support::TimeNs t_min = 0;  ///< valid when has_time_span
  support::TimeNs t_max = 0;  ///< valid when has_time_span
};

/// Describes `path` without building a `Trace`.
TraceFileInfo inspect_trace(const std::filesystem::path& path);

/// A v2/v3 footer together with the file-header rank count.
struct TraceFooter {
  int num_ranks = 0;
  wire::Footer footer;  ///< `footer.version` distinguishes v2 from v3
};

/// Reads the v2/v3 footer of `path` via the end-of-file trailer,
/// touching only the header and footer bytes.  Returns nullopt when
/// the file has neither magic or carries no (complete) trailer.
/// Throws `IoError` if the file cannot be opened.
std::optional<TraceFooter> try_read_footer(const std::filesystem::path& path);

/// Aggregated storage description of one v3 column across all
/// segments, for `tdbg_trace info`.
struct ColumnStorageInfo {
  std::string name;          ///< column name ("kind", "t_start", ...)
  std::uint64_t bytes = 0;   ///< payload bytes across all segments
  /// (encoding name, number of segments using it), most-used first.
  std::vector<std::pair<std::string, std::size_t>> encodings;
};

/// Reads the per-segment column headers of a v3 file (one small read
/// per segment) and aggregates them per column.  Returns an empty
/// vector unless `footer.footer.version == 3`.
std::vector<ColumnStorageInfo> inspect_columns(
    const std::filesystem::path& path, const TraceFooter& footer);

/// Writes a complete trace to `path`.  Events are emitted in display
/// order, so a v2/v3 file written here always earns the sorted footer
/// flags (and thus lazy reopening).
void write_trace(const std::filesystem::path& path, const Trace& trace,
                 TraceFormat format = TraceFormat::kBinary,
                 std::uint32_t segment_events = kDefaultSegmentEvents);

}  // namespace tdbg::trace
