#pragma once

#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>

#include "support/serialize.hpp"
#include "trace/trace.hpp"

namespace tdbg::trace {

/// On-disk encodings of a trace.
enum class TraceFormat : std::uint8_t {
  kBinary,  ///< compact fixed-width records (default)
  kText,    ///< tab-separated, human-greppable
};

/// Streams trace records to a file.
///
/// The event stream is written incrementally — this is what makes the
/// collector's flush-on-demand useful: the debugger can read a
/// consistent prefix of the history while the program is still
/// running.  The construct table is appended by `finish()` (or the
/// destructor).
class TraceWriter {
 public:
  TraceWriter(const std::filesystem::path& path, int num_ranks,
              std::shared_ptr<const ConstructRegistry> constructs,
              TraceFormat format = TraceFormat::kBinary);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Flushes and closes, writing the footer if needed.
  ~TraceWriter();

  /// Appends one record.  Thread-safe.
  void write_event(const Event& event);

  /// Appends a batch of records under a single lock acquisition,
  /// encoding them into one reused scratch buffer and writing them
  /// with one stream call.  This is the collector's flush path; the
  /// per-record cost is a fraction of `write_event`'s.  Thread-safe.
  void write_events(std::span<const Event> events);

  /// Writes the construct table and end-of-stream marker, then closes.
  /// Idempotent.
  void finish();

  /// Records written so far.
  [[nodiscard]] std::uint64_t events_written() const { return count_; }

 private:
  void write_text_construct_table();

  std::shared_ptr<const ConstructRegistry> constructs_;
  TraceFormat format_;
  std::ofstream out_;
  std::mutex mu_;
  support::BinaryWriter scratch_;  ///< reused encode buffer (under mu_)
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Reads a trace file (either format, detected by magic).  Throws
/// `IoError` / `FormatError` on problems.
Trace read_trace(const std::filesystem::path& path);

/// Writes a complete in-memory trace to `path`.
void write_trace(const std::filesystem::path& path, const Trace& trace,
                 TraceFormat format = TraceFormat::kBinary);

}  // namespace tdbg::trace
