#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/error.hpp"

namespace tdbg::trace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kExit: return "exit";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "coll";
    case EventKind::kCompute: return "compute";
    case EventKind::kMark: return "mark";
    case EventKind::kFaultInjected: return "fault";
  }
  return "?";
}

Trace::Trace(int num_ranks, std::vector<Event> events,
             std::shared_ptr<const ConstructRegistry> constructs)
    : Trace(std::make_shared<InMemoryTraceStore>(num_ranks, std::move(events),
                                                 std::move(constructs))) {}

Trace::Trace(std::shared_ptr<const TraceStore> store)
    : store_(std::move(store)),
      inmem_(dynamic_cast<const InMemoryTraceStore*>(store_.get())),
      caches_(std::make_shared<Caches>()) {
  TDBG_CHECK(store_ != nullptr, "trace store must not be null");
}

Event Trace::event(std::size_t i) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->event(i);
}

const ConstructRegistry& Trace::constructs() const {
  TDBG_CHECK(store_ != nullptr && store_->constructs() != nullptr,
             "trace has no construct table");
  return *store_->constructs();
}

std::shared_ptr<const ConstructRegistry> Trace::constructs_ptr() const {
  return store_ ? store_->constructs() : nullptr;
}

std::size_t Trace::rank_size(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_size(rank);
}

std::size_t Trace::rank_event(mpi::Rank rank, std::size_t pos) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_event(rank, pos);
}

void Trace::for_each_event(const EventVisitor& visit) const {
  if (store_) store_->for_each(visit);
}

void Trace::for_each_rank_event(mpi::Rank rank,
                                const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_rank_event(rank, visit);
}

void Trace::for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                               const EventVisitor& visit) const {
  if (store_) store_->for_each_in_window(t0, t1, visit);
}

std::optional<std::size_t> Trace::find_marker(mpi::Rank rank,
                                              std::uint64_t marker) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->find_marker(rank, marker);
}

std::optional<std::size_t> Trace::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->last_event_at_or_before(rank, t);
}

std::vector<std::size_t> Trace::events_in_window(support::TimeNs t0,
                                                 support::TimeNs t1) const {
  std::vector<std::size_t> out;
  for_each_in_window(t0, t1,
                     [&out](std::size_t i, const Event&) { out.push_back(i); });
  return out;
}

std::pair<std::size_t, std::size_t> Trace::segment_range(
    std::size_t seg) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->segment_range(seg);
}

void Trace::for_each_in_segment(std::size_t seg,
                                const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_in_segment(seg, visit);
}

void Trace::parallel_for_each_segment(
    std::string_view site,
    const std::function<void(std::size_t seg)>& body) const {
  if (!store_) return;
  exec::Executor::global().parallel_for(store_->segment_count(), site, body);
}

const MatchReport& Trace::match_report() const {
  static const MatchReport kEmptyReport;
  if (!store_) return kEmptyReport;
  std::lock_guard lk(caches_->mu);
  if (caches_->match) return *caches_->match;

  // Phase 1 — gather, one map task per segment: sends and receives
  // per (source, dest) channel.  Concatenating the per-segment lists
  // in segment order reproduces display order exactly, so the result
  // is independent of how tasks interleave.
  using ChannelKey = std::pair<mpi::Rank, mpi::Rank>;  // (src, dst)
  struct SendRec {
    std::uint64_t marker;
    support::TimeNs t_start;
    std::size_t index;
  };
  struct RecvRec {
    mpi::ChannelSeq seq;
    std::size_t index;
  };
  struct Channel {
    std::vector<SendRec> sends;
    std::vector<RecvRec> recvs;  ///< display order
  };
  using ChannelMap = std::map<ChannelKey, Channel>;
  const ChannelMap channels = map_reduce<ChannelMap>(
      "trace.match.gather",
      [&](std::size_t seg, ChannelMap& part) {
        store_->for_each_in_segment(seg, [&](std::size_t i, const Event& e) {
          if (e.kind == EventKind::kSend) {
            part[ChannelKey(e.rank, e.peer)].sends.push_back(
                SendRec{e.marker, e.t_start, i});
          } else if (e.kind == EventKind::kRecv) {
            part[ChannelKey(e.peer, e.rank)].recvs.push_back(
                RecvRec{e.channel_seq, i});
          }
        });
      },
      [](ChannelMap& acc, ChannelMap&& part) {
        for (auto& [key, ch] : part) {
          auto& dst = acc[key];
          dst.sends.insert(dst.sends.end(), ch.sends.begin(), ch.sends.end());
          dst.recvs.insert(dst.recvs.end(), ch.recvs.begin(), ch.recvs.end());
        }
      });

  // Phase 2 — match, one task per channel.  Sends take FIFO sequence
  // numbers in the sender's program order — (marker, t_start), all
  // sends of a channel share one rank; receives carry their sequence
  // numbers explicitly.  Channels are independent, so each task works
  // on its own slot and the merge below just walks slots in key order.
  std::vector<const ChannelMap::value_type*> flat;
  flat.reserve(channels.size());
  for (const auto& entry : channels) flat.push_back(&entry);

  struct ChannelResult {
    std::vector<MessageMatch> matches;  ///< recv display order
    std::vector<std::size_t> unmatched_sends;
    std::vector<std::size_t> unmatched_recvs;
  };
  std::vector<ChannelResult> per_channel(flat.size());
  exec::Executor::global().parallel_for(
      flat.size(), "trace.match.pair", [&](std::size_t c) {
        auto sends = flat[c]->second.sends;  // copy: sort locally
        const auto& recvs = flat[c]->second.recvs;
        auto& out = per_channel[c];
        std::stable_sort(sends.begin(), sends.end(),
                         [](const SendRec& a, const SendRec& b) {
                           if (a.marker != b.marker) return a.marker < b.marker;
                           return a.t_start < b.t_start;
                         });
        std::vector<bool> used(sends.size(), false);
        for (const RecvRec& rv : recvs) {
          if (rv.seq >= sends.size() || used[rv.seq]) {
            out.unmatched_recvs.push_back(rv.index);
            continue;
          }
          used[rv.seq] = true;
          out.matches.push_back(MessageMatch{sends[rv.seq].index, rv.index});
        }
        for (std::size_t s = 0; s < sends.size(); ++s) {
          if (!used[s]) out.unmatched_sends.push_back(sends[s].index);
        }
      });

  // Phase 3 — canonicalize: the serial algorithm emitted matches and
  // orphan receives in global recv display order and unmatched sends
  // sorted by index; sorting the per-channel concatenation restores
  // exactly that.
  MatchReport report;
  for (const auto& cr : per_channel) {
    report.matches.insert(report.matches.end(), cr.matches.begin(),
                          cr.matches.end());
    report.unmatched_sends.insert(report.unmatched_sends.end(),
                                  cr.unmatched_sends.begin(),
                                  cr.unmatched_sends.end());
    report.unmatched_recvs.insert(report.unmatched_recvs.end(),
                                  cr.unmatched_recvs.begin(),
                                  cr.unmatched_recvs.end());
  }
  std::sort(report.matches.begin(), report.matches.end(),
            [](const MessageMatch& a, const MessageMatch& b) {
              return a.recv_index < b.recv_index;
            });
  std::sort(report.unmatched_sends.begin(), report.unmatched_sends.end());
  std::sort(report.unmatched_recvs.begin(), report.unmatched_recvs.end());

  caches_->match = std::move(report);
  return *caches_->match;
}

const std::vector<Event>& Trace::events() const {
  static const std::vector<Event> kNoEvents;
  if (!store_) return kNoEvents;
  if (inmem_) return inmem_->events_vector();
  std::lock_guard lk(caches_->mu);
  if (!caches_->events) {
    std::vector<Event> all;
    all.reserve(store_->size());
    store_->for_each(
        [&all](std::size_t, const Event& e) { all.push_back(e); });
    caches_->events = std::move(all);
  }
  return *caches_->events;
}

const std::vector<std::size_t>& Trace::rank_events(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  if (inmem_) return inmem_->rank_index(rank);
  TDBG_CHECK(rank >= 0 && rank < store_->num_ranks(), "rank out of range");
  std::lock_guard lk(caches_->mu);
  auto& slots = caches_->rank_index;
  if (slots.size() < static_cast<std::size_t>(store_->num_ranks())) {
    slots.resize(static_cast<std::size_t>(store_->num_ranks()));
  }
  auto& slot = slots[static_cast<std::size_t>(rank)];
  if (!slot) {
    std::vector<std::size_t> idx;
    idx.reserve(store_->rank_size(rank));
    store_->for_each_rank_event(
        rank, [&idx](std::size_t i, const Event&) { idx.push_back(i); });
    slot = std::move(idx);
  }
  return *slot;
}

}  // namespace tdbg::trace
