#include "trace/trace.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace tdbg::trace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kExit: return "exit";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "coll";
    case EventKind::kCompute: return "compute";
    case EventKind::kMark: return "mark";
  }
  return "?";
}

Trace::Trace(int num_ranks, std::vector<Event> events,
             std::shared_ptr<const ConstructRegistry> constructs)
    : num_ranks_(num_ranks), events_(std::move(events)),
      constructs_(std::move(constructs)) {
  TDBG_CHECK(num_ranks_ > 0, "trace needs at least one rank");
  if (constructs_ == nullptr) {
    constructs_ = std::make_shared<ConstructRegistry>();
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.t_start != b.t_start) return a.t_start < b.t_start;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.marker < b.marker;
                   });
  by_rank_.assign(static_cast<std::size_t>(num_ranks_), {});
  t_min_ = events_.empty() ? 0 : events_.front().t_start;
  t_max_ = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    TDBG_CHECK(e.rank >= 0 && e.rank < num_ranks_, "event rank out of range");
    by_rank_[static_cast<std::size_t>(e.rank)].push_back(i);
    t_max_ = std::max(t_max_, e.t_end);
  }
  // Global sorting by start time can reorder same-rank events that
  // share a timestamp; restore per-rank program order by marker (the
  // marker counter is nondecreasing within a rank).
  for (auto& idx : by_rank_) {
    std::stable_sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
      if (events_[a].marker != events_[b].marker) {
        return events_[a].marker < events_[b].marker;
      }
      return events_[a].t_start < events_[b].t_start;
    });
  }
}

const ConstructRegistry& Trace::constructs() const {
  TDBG_CHECK(constructs_ != nullptr, "trace has no construct table");
  return *constructs_;
}

const std::vector<std::size_t>& Trace::rank_events(mpi::Rank r) const {
  TDBG_CHECK(r >= 0 && r < num_ranks_, "rank out of range");
  return by_rank_[static_cast<std::size_t>(r)];
}

std::optional<std::size_t> Trace::find_marker(mpi::Rank rank,
                                              std::uint64_t marker) const {
  for (std::size_t i : rank_events(rank)) {
    if (events_[i].marker == marker) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Trace::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  std::optional<std::size_t> best;
  for (std::size_t i : rank_events(rank)) {
    if (events_[i].t_start <= t) {
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> Trace::events_in_window(support::TimeNs t0,
                                                 support::TimeNs t1) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.t_start > t1) break;  // sorted by start time
    if (e.t_end >= t0) out.push_back(i);
  }
  return out;
}

MatchReport Trace::match_report() const {
  MatchReport report;

  // Per (source, dest) channel: assign sends FIFO sequence numbers in
  // the sender's program order; receives carry theirs explicitly.
  using ChannelKey = std::pair<mpi::Rank, mpi::Rank>;  // (src, dst)
  std::map<ChannelKey, std::uint64_t> next_send_seq;
  std::map<std::tuple<mpi::Rank, mpi::Rank, mpi::ChannelSeq>, std::size_t>
      send_by_seq;

  for (mpi::Rank r = 0; r < num_ranks_; ++r) {
    for (std::size_t i : rank_events(r)) {
      const Event& e = events_[i];
      if (e.kind != EventKind::kSend) continue;
      const auto seq = next_send_seq[ChannelKey(e.rank, e.peer)]++;
      send_by_seq[{e.rank, e.peer, seq}] = i;
    }
  }

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.kind != EventKind::kRecv) continue;
    const auto it = send_by_seq.find({e.peer, e.rank, e.channel_seq});
    if (it == send_by_seq.end()) {
      report.unmatched_recvs.push_back(i);
      continue;
    }
    report.matches.push_back(MessageMatch{it->second, i});
    send_by_seq.erase(it);
  }

  report.unmatched_sends.reserve(send_by_seq.size());
  for (const auto& [key, idx] : send_by_seq) {
    report.unmatched_sends.push_back(idx);
  }
  std::sort(report.unmatched_sends.begin(), report.unmatched_sends.end());
  return report;
}

}  // namespace tdbg::trace
