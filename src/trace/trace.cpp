#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/error.hpp"

namespace tdbg::trace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kExit: return "exit";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "coll";
    case EventKind::kCompute: return "compute";
    case EventKind::kMark: return "mark";
    case EventKind::kFaultInjected: return "fault";
  }
  return "?";
}

Trace::Trace(int num_ranks, std::vector<Event> events,
             std::shared_ptr<const ConstructRegistry> constructs)
    : Trace(std::make_shared<InMemoryTraceStore>(num_ranks, std::move(events),
                                                 std::move(constructs))) {}

Trace::Trace(std::shared_ptr<const TraceStore> store)
    : store_(std::move(store)),
      inmem_(dynamic_cast<const InMemoryTraceStore*>(store_.get())),
      caches_(std::make_shared<Caches>()) {
  TDBG_CHECK(store_ != nullptr, "trace store must not be null");
}

Event Trace::event(std::size_t i) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->event(i);
}

const ConstructRegistry& Trace::constructs() const {
  TDBG_CHECK(store_ != nullptr && store_->constructs() != nullptr,
             "trace has no construct table");
  return *store_->constructs();
}

std::shared_ptr<const ConstructRegistry> Trace::constructs_ptr() const {
  return store_ ? store_->constructs() : nullptr;
}

std::size_t Trace::rank_size(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_size(rank);
}

std::size_t Trace::rank_event(mpi::Rank rank, std::size_t pos) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_event(rank, pos);
}

void Trace::for_each_event(const EventVisitor& visit) const {
  if (store_) store_->for_each(visit);
}

void Trace::for_each_rank_event(mpi::Rank rank,
                                const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_rank_event(rank, visit);
}

void Trace::for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                               const EventVisitor& visit) const {
  if (store_) store_->for_each_in_window(t0, t1, visit);
}

std::optional<std::size_t> Trace::find_marker(mpi::Rank rank,
                                              std::uint64_t marker) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->find_marker(rank, marker);
}

std::optional<std::size_t> Trace::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->last_event_at_or_before(rank, t);
}

std::vector<std::size_t> Trace::events_in_window(support::TimeNs t0,
                                                 support::TimeNs t1) const {
  std::vector<std::size_t> out;
  for_each_in_window(t0, t1,
                     [&out](std::size_t i, const Event&) { out.push_back(i); });
  return out;
}

const MatchReport& Trace::match_report() const {
  static const MatchReport kEmptyReport;
  if (!store_) return kEmptyReport;
  std::lock_guard lk(caches_->mu);
  if (caches_->match) return *caches_->match;

  MatchReport report;

  // Single pass in display order (one sweep over the segments on a
  // lazy backend): gather sends per (source, dest) channel and
  // receives in display order.
  using ChannelKey = std::pair<mpi::Rank, mpi::Rank>;  // (src, dst)
  struct SendRec {
    std::uint64_t marker;
    support::TimeNs t_start;
    std::size_t index;
  };
  struct RecvRec {
    mpi::Rank src;
    mpi::Rank dst;
    mpi::ChannelSeq seq;
    std::size_t index;
  };
  std::map<ChannelKey, std::vector<SendRec>> channel_sends;
  std::vector<RecvRec> recvs;
  store_->for_each([&](std::size_t i, const Event& e) {
    if (e.kind == EventKind::kSend) {
      channel_sends[ChannelKey(e.rank, e.peer)].push_back(
          SendRec{e.marker, e.t_start, i});
    } else if (e.kind == EventKind::kRecv) {
      recvs.push_back(RecvRec{e.peer, e.rank, e.channel_seq, i});
    }
  });

  // Per channel: assign sends FIFO sequence numbers in the sender's
  // program order — (marker, t_start), all sends of a channel share
  // one rank.  Receives carry their sequence numbers explicitly.
  std::map<std::tuple<mpi::Rank, mpi::Rank, mpi::ChannelSeq>, std::size_t>
      send_by_seq;
  for (auto& [key, sends] : channel_sends) {
    std::stable_sort(sends.begin(), sends.end(),
                     [](const SendRec& a, const SendRec& b) {
                       if (a.marker != b.marker) return a.marker < b.marker;
                       return a.t_start < b.t_start;
                     });
    for (std::size_t seq = 0; seq < sends.size(); ++seq) {
      send_by_seq[{key.first, key.second, seq}] = sends[seq].index;
    }
  }

  for (const RecvRec& rv : recvs) {
    const auto it = send_by_seq.find({rv.src, rv.dst, rv.seq});
    if (it == send_by_seq.end()) {
      report.unmatched_recvs.push_back(rv.index);
      continue;
    }
    report.matches.push_back(MessageMatch{it->second, rv.index});
    send_by_seq.erase(it);
  }

  report.unmatched_sends.reserve(send_by_seq.size());
  for (const auto& [key, idx] : send_by_seq) {
    report.unmatched_sends.push_back(idx);
  }
  std::sort(report.unmatched_sends.begin(), report.unmatched_sends.end());

  caches_->match = std::move(report);
  return *caches_->match;
}

const std::vector<Event>& Trace::events() const {
  static const std::vector<Event> kNoEvents;
  if (!store_) return kNoEvents;
  if (inmem_) return inmem_->events_vector();
  std::lock_guard lk(caches_->mu);
  if (!caches_->events) {
    std::vector<Event> all;
    all.reserve(store_->size());
    store_->for_each(
        [&all](std::size_t, const Event& e) { all.push_back(e); });
    caches_->events = std::move(all);
  }
  return *caches_->events;
}

const std::vector<std::size_t>& Trace::rank_events(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  if (inmem_) return inmem_->rank_index(rank);
  TDBG_CHECK(rank >= 0 && rank < store_->num_ranks(), "rank out of range");
  std::lock_guard lk(caches_->mu);
  auto& slots = caches_->rank_index;
  if (slots.size() < static_cast<std::size_t>(store_->num_ranks())) {
    slots.resize(static_cast<std::size_t>(store_->num_ranks()));
  }
  auto& slot = slots[static_cast<std::size_t>(rank)];
  if (!slot) {
    std::vector<std::size_t> idx;
    idx.reserve(store_->rank_size(rank));
    store_->for_each_rank_event(
        rank, [&idx](std::size_t i, const Event&) { idx.push_back(i); });
    slot = std::move(idx);
  }
  return *slot;
}

}  // namespace tdbg::trace
