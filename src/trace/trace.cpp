#include "trace/trace.hpp"

#include "support/error.hpp"

namespace tdbg::trace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kExit: return "exit";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "coll";
    case EventKind::kCompute: return "compute";
    case EventKind::kMark: return "mark";
    case EventKind::kFaultInjected: return "fault";
  }
  return "?";
}

Trace::Trace(int num_ranks, std::vector<Event> events,
             std::shared_ptr<const ConstructRegistry> constructs)
    : Trace(std::make_shared<InMemoryTraceStore>(num_ranks, std::move(events),
                                                 std::move(constructs))) {}

Trace::Trace(std::shared_ptr<const TraceStore> store)
    : store_(std::move(store)),
      inmem_(dynamic_cast<const InMemoryTraceStore*>(store_.get())),
      caches_(std::make_shared<Caches>()) {
  TDBG_CHECK(store_ != nullptr, "trace store must not be null");
}

Event Trace::event(std::size_t i) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->event(i);
}

const ConstructRegistry& Trace::constructs() const {
  TDBG_CHECK(store_ != nullptr && store_->constructs() != nullptr,
             "trace has no construct table");
  return *store_->constructs();
}

std::shared_ptr<const ConstructRegistry> Trace::constructs_ptr() const {
  return store_ ? store_->constructs() : nullptr;
}

std::size_t Trace::rank_size(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_size(rank);
}

std::size_t Trace::rank_event(mpi::Rank rank, std::size_t pos) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->rank_event(rank, pos);
}

void Trace::for_each_event(const EventVisitor& visit) const {
  if (store_) store_->for_each(visit);
}

void Trace::for_each_rank_event(mpi::Rank rank,
                                const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_rank_event(rank, visit);
}

void Trace::for_each_in_window(support::TimeNs t0, support::TimeNs t1,
                               const EventVisitor& visit) const {
  if (store_) store_->for_each_in_window(t0, t1, visit);
}

std::optional<std::size_t> Trace::find_marker(mpi::Rank rank,
                                              std::uint64_t marker) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->find_marker(rank, marker);
}

std::optional<std::size_t> Trace::last_event_at_or_before(
    mpi::Rank rank, support::TimeNs t) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->last_event_at_or_before(rank, t);
}

std::vector<std::size_t> Trace::events_in_window(support::TimeNs t0,
                                                 support::TimeNs t1) const {
  std::vector<std::size_t> out;
  for_each_in_window(t0, t1,
                     [&out](std::size_t i, const Event&) { out.push_back(i); });
  return out;
}

std::pair<std::size_t, std::size_t> Trace::segment_range(
    std::size_t seg) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->segment_range(seg);
}

void Trace::for_each_in_segment(std::size_t seg,
                                const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_in_segment(seg, visit);
}

void Trace::for_each_in_segment_cols(std::size_t seg, ColumnSet cols,
                                     const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_in_segment_cols(seg, cols, visit);
}

std::optional<SegmentZones> Trace::segment_zones(std::size_t seg) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  return store_->segment_zones(seg);
}

void Trace::for_each_rank_in_window(mpi::Rank rank, support::TimeNs t0,
                                    support::TimeNs t1,
                                    const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_rank_in_window(rank, t0, t1, visit);
}

void Trace::for_each_rank_in_window_cols(mpi::Rank rank, support::TimeNs t0,
                                         support::TimeNs t1, ColumnSet cols,
                                         const EventVisitor& visit) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  store_->for_each_rank_in_window_cols(rank, t0, t1, cols, visit);
}

void Trace::parallel_for_each_segment(
    std::string_view site,
    const std::function<void(std::size_t seg)>& body) const {
  if (!store_) return;
  exec::Executor::global().parallel_for(store_->segment_count(), site, body);
}

const std::vector<Event>& Trace::events() const {
  static const std::vector<Event> kNoEvents;
  if (!store_) return kNoEvents;
  if (inmem_) return inmem_->events_vector();
  std::lock_guard lk(caches_->mu);
  if (!caches_->events) {
    std::vector<Event> all;
    all.reserve(store_->size());
    store_->for_each(
        [&all](std::size_t, const Event& e) { all.push_back(e); });
    caches_->events = std::move(all);
  }
  return *caches_->events;
}

const std::vector<std::size_t>& Trace::rank_events(mpi::Rank rank) const {
  TDBG_CHECK(store_ != nullptr, "empty trace");
  if (inmem_) return inmem_->rank_index(rank);
  TDBG_CHECK(rank >= 0 && rank < store_->num_ranks(), "rank out of range");
  std::lock_guard lk(caches_->mu);
  auto& slots = caches_->rank_index;
  if (slots.size() < static_cast<std::size_t>(store_->num_ranks())) {
    slots.resize(static_cast<std::size_t>(store_->num_ranks()));
  }
  auto& slot = slots[static_cast<std::size_t>(rank)];
  if (!slot) {
    std::vector<std::size_t> idx;
    idx.reserve(store_->rank_size(rank));
    store_->for_each_rank_event(
        rank, [&idx](std::size_t i, const Event&) { idx.push_back(i); });
    slot = std::move(idx);
  }
  return *slot;
}

}  // namespace tdbg::trace
