#include "trace/collector.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {

namespace {

/// Collector-family instruments (interned once; see DESIGN.md
/// "Observability").  Appends are per-rank; flush timing is charged to
/// the flushing thread's rank slot via the driver slot (-1).
struct CollectorMetrics {
  obs::Counter& appended =
      obs::MetricsRegistry::global().counter("collector.events_appended");
  obs::Counter& dropped =
      obs::MetricsRegistry::global().counter("collector.events_dropped");
  obs::Counter& flushes =
      obs::MetricsRegistry::global().counter("collector.flushes");
  obs::Gauge& buffer_hwm =
      obs::MetricsRegistry::global().gauge("collector.buffer_hwm");
  obs::Histogram& flush_ns = obs::MetricsRegistry::global().histogram(
      "collector.flush_ns", obs::Unit::kNanoseconds);
};

CollectorMetrics& collector_metrics() {
  static CollectorMetrics metrics;
  return metrics;
}

}  // namespace

TraceCollector::TraceCollector(int num_ranks,
                               std::shared_ptr<ConstructRegistry> constructs)
    : num_ranks_(num_ranks), constructs_(std::move(constructs)) {
  TDBG_CHECK(num_ranks > 0, "collector needs at least one rank");
  if (constructs_ == nullptr) {
    constructs_ = std::make_shared<ConstructRegistry>();
  }
  buffers_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    buffers_.push_back(std::make_unique<RankBuffer>());
  }
  for (auto& flag : kind_enabled_) flag.store(true, std::memory_order_relaxed);
}

void TraceCollector::set_kind_enabled(EventKind kind, bool enabled) {
  kind_enabled_.at(static_cast<std::size_t>(kind))
      .store(enabled, std::memory_order_relaxed);
}

void TraceCollector::append(const Event& event) {
  if (!enabled_.load(std::memory_order_relaxed) ||
      !kind_enabled_[static_cast<std::size_t>(event.kind)].load(
          std::memory_order_relaxed)) {
    // The monitor is toggled off (paper §2: trace-size control) — the
    // record is intentionally not collected.
    if constexpr (obs::kMetricsEnabled) {
      collector_metrics().dropped.add(event.rank);
    }
    return;
  }
  auto& buf = *buffers_.at(static_cast<std::size_t>(event.rank));
  bool should_flush = false;
  std::size_t buffered = 0;
  {
    std::lock_guard lk(buf.mu);
    buf.events.push_back(event);
    buffered = buf.events.size();
    should_flush = writer_ != nullptr && buffered >= flush_threshold_;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    auto& metrics = collector_metrics();
    metrics.appended.add(event.rank);
    metrics.buffer_hwm.record_max(event.rank, buffered);
  }
  if (should_flush) flush_rank(buf);
}

void TraceCollector::attach_writer(TraceWriter* writer,
                                   std::size_t threshold) {
  std::lock_guard lk(writer_mu_);
  writer_ = writer;
  flush_threshold_ = threshold == 0 ? 1 : threshold;
}

void TraceCollector::flush_rank(RankBuffer& buffer) {
  obs::ScopedTimer timer(collector_metrics().flush_ns, /*rank=*/-1);
  if constexpr (obs::kMetricsEnabled) collector_metrics().flushes.add(-1);
  std::vector<Event> drained;
  {
    std::lock_guard lk(buffer.mu);
    drained.swap(buffer.events);
  }
  std::lock_guard wlk(writer_mu_);
  if (writer_ == nullptr) {
    // Writer detached between the check and now: put the records back.
    std::lock_guard lk(buffer.mu);
    buffer.events.insert(buffer.events.begin(), drained.begin(),
                         drained.end());
    return;
  }
  for (const Event& e : drained) writer_->write_event(e);
}

void TraceCollector::flush() {
  {
    std::lock_guard lk(writer_mu_);
    if (writer_ == nullptr) return;
  }
  for (auto& buf : buffers_) flush_rank(*buf);
}

std::size_t TraceCollector::buffered_count() const {
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

Trace TraceCollector::build_trace() const {
  std::vector<Event> all;
  all.reserve(buffered_count());
  for (const auto& buf : buffers_) {
    std::lock_guard lk(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return Trace(num_ranks_, std::move(all), constructs_);
}

}  // namespace tdbg::trace
