#include "trace/collector.hpp"

#include "support/error.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {

TraceCollector::TraceCollector(int num_ranks,
                               std::shared_ptr<ConstructRegistry> constructs)
    : num_ranks_(num_ranks), constructs_(std::move(constructs)) {
  TDBG_CHECK(num_ranks > 0, "collector needs at least one rank");
  if (constructs_ == nullptr) {
    constructs_ = std::make_shared<ConstructRegistry>();
  }
  buffers_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    buffers_.push_back(std::make_unique<RankBuffer>());
  }
  for (auto& flag : kind_enabled_) flag.store(true, std::memory_order_relaxed);
}

void TraceCollector::set_kind_enabled(EventKind kind, bool enabled) {
  kind_enabled_.at(static_cast<std::size_t>(kind))
      .store(enabled, std::memory_order_relaxed);
}

void TraceCollector::append(const Event& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (!kind_enabled_[static_cast<std::size_t>(event.kind)].load(
          std::memory_order_relaxed)) {
    return;
  }
  auto& buf = *buffers_.at(static_cast<std::size_t>(event.rank));
  bool should_flush = false;
  {
    std::lock_guard lk(buf.mu);
    buf.events.push_back(event);
    should_flush = writer_ != nullptr && buf.events.size() >= flush_threshold_;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  if (should_flush) flush_rank(buf);
}

void TraceCollector::attach_writer(TraceWriter* writer,
                                   std::size_t threshold) {
  std::lock_guard lk(writer_mu_);
  writer_ = writer;
  flush_threshold_ = threshold == 0 ? 1 : threshold;
}

void TraceCollector::flush_rank(RankBuffer& buffer) {
  std::vector<Event> drained;
  {
    std::lock_guard lk(buffer.mu);
    drained.swap(buffer.events);
  }
  std::lock_guard wlk(writer_mu_);
  if (writer_ == nullptr) {
    // Writer detached between the check and now: put the records back.
    std::lock_guard lk(buffer.mu);
    buffer.events.insert(buffer.events.begin(), drained.begin(),
                         drained.end());
    return;
  }
  for (const Event& e : drained) writer_->write_event(e);
}

void TraceCollector::flush() {
  {
    std::lock_guard lk(writer_mu_);
    if (writer_ == nullptr) return;
  }
  for (auto& buf : buffers_) flush_rank(*buf);
}

std::size_t TraceCollector::buffered_count() const {
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

Trace TraceCollector::build_trace() const {
  std::vector<Event> all;
  all.reserve(buffered_count());
  for (const auto& buf : buffers_) {
    std::lock_guard lk(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return Trace(num_ranks_, std::move(all), constructs_);
}

}  // namespace tdbg::trace
