#include "trace/collector.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "telemetry/span.hpp"
#include "trace/trace_io.hpp"

namespace tdbg::trace {

namespace {

/// Collector-family instruments (interned once; see DESIGN.md
/// "Observability").  Appends are per-rank; flush timing is charged to
/// the flushing thread's rank slot via the driver slot (-1).
struct CollectorMetrics {
  obs::Counter& appended =
      obs::MetricsRegistry::global().counter("collector.events_appended");
  obs::Counter& dropped =
      obs::MetricsRegistry::global().counter("collector.events_dropped");
  obs::Counter& flushes =
      obs::MetricsRegistry::global().counter("collector.flushes");
  obs::Gauge& buffer_hwm =
      obs::MetricsRegistry::global().gauge("collector.buffer_hwm");
  obs::Histogram& flush_ns = obs::MetricsRegistry::global().histogram(
      "collector.flush_ns", obs::Unit::kNanoseconds);
};

CollectorMetrics& collector_metrics() {
  static CollectorMetrics metrics;
  return metrics;
}

}  // namespace

TraceCollector::TraceCollector(int num_ranks,
                               std::shared_ptr<ConstructRegistry> constructs)
    : num_ranks_(num_ranks), constructs_(std::move(constructs)) {
  TDBG_CHECK(num_ranks > 0, "collector needs at least one rank");
  if (constructs_ == nullptr) {
    constructs_ = std::make_shared<ConstructRegistry>();
  }
  buffers_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    buffers_.push_back(std::make_unique<RankBuffer>());
  }
  for (auto& flag : kind_enabled_) flag.store(true, std::memory_order_relaxed);
}

TraceCollector::~TraceCollector() {
  if (bg_active_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard lk(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_one();
    bg_thread_.join();
  }
}

void TraceCollector::set_kind_enabled(EventKind kind, bool enabled) {
  kind_enabled_.at(static_cast<std::size_t>(kind))
      .store(enabled, std::memory_order_relaxed);
}

TraceCollector::Chunk* TraceCollector::acquire_chunk(RankBuffer& buf) {
  std::lock_guard lk(buf.pool_mu);
  if (!buf.free_list.empty()) {
    Chunk* c = buf.free_list.back();
    buf.free_list.pop_back();
    c->next.store(nullptr, std::memory_order_relaxed);
    return c;
  }
  buf.owned.push_back(std::make_unique<Chunk>());
  return buf.owned.back().get();
}

void TraceCollector::append(const Event& event) {
  if (!enabled_.load(std::memory_order_relaxed) ||
      !kind_enabled_[static_cast<std::size_t>(event.kind)].load(
          std::memory_order_relaxed)) {
    // The monitor is toggled off (paper §2: trace-size control) — the
    // record is intentionally not collected.
    if constexpr (obs::kMetricsEnabled) {
      collector_metrics().dropped.add(event.rank);
    }
    return;
  }
  auto& buf = *buffers_.at(static_cast<std::size_t>(event.rank));

  const std::uint64_t appended = buf.appended.load(std::memory_order_relaxed);
  const std::size_t offset = appended % kChunkEvents;
  if (offset == 0) {
    // Chunk boundary (including the very first append): link a fresh
    // chunk before any of its records are published.  The shared
    // metrics are also published here — batching the counter/gauge
    // updates per chunk keeps the per-append path free of RMWs (the
    // surfaces lag by at most one chunk).
    if constexpr (obs::kMetricsEnabled) {
      if (buf.unpublished != 0) {
        auto& metrics = collector_metrics();
        metrics.appended.add(event.rank, buf.unpublished);
        metrics.buffer_hwm.record_max(event.rank, buf.hwm_shadow);
        buf.unpublished = 0;
      }
    }
    Chunk* c = acquire_chunk(buf);
    if (buf.write_chunk == nullptr) {
      buf.first.store(c, std::memory_order_release);
    } else {
      buf.write_chunk->next.store(c, std::memory_order_release);
    }
    buf.write_chunk = c;
  }
  buf.write_chunk->events[offset] = event;
  // Publish: everything below `appended` is stable from here on.
  buf.appended.store(appended + 1, std::memory_order_release);

  const std::uint64_t buffered =
      appended + 1 - buf.harvested.load(std::memory_order_acquire);
  if constexpr (obs::kMetricsEnabled) {
    if (buffered > buf.hwm_shadow) buf.hwm_shadow = buffered;
    ++buf.unpublished;
  }

  if (has_writer_.load(std::memory_order_relaxed) &&
      buffered >= flush_threshold_.load(std::memory_order_relaxed)) {
    if (bg_active_.load(std::memory_order_relaxed)) {
      // Kick the background flusher; the interval timeout backstops a
      // notify that races with it going to sleep.
      bg_cv_.notify_one();
    } else {
      flush_rank(buf);
    }
  }
}

void TraceCollector::attach_writer(TraceWriter* writer,
                                   std::size_t threshold) {
  std::lock_guard lk(writer_mu_);
  writer_ = writer;
  has_writer_.store(writer != nullptr, std::memory_order_relaxed);
  flush_threshold_.store(threshold == 0 ? 1 : threshold,
                         std::memory_order_relaxed);
}

void TraceCollector::flush_rank_locked(RankBuffer& buf) {
  std::uint64_t harvested = buf.harvested.load(std::memory_order_relaxed);
  const std::uint64_t appended = buf.appended.load(std::memory_order_acquire);
  if (harvested == appended) return;
  obs::ScopedTimer timer(collector_metrics().flush_ns, /*rank=*/-1);
  if constexpr (obs::kMetricsEnabled) collector_metrics().flushes.add(-1);
  if (buf.read_chunk == nullptr) {
    buf.read_chunk = buf.first.load(std::memory_order_acquire);
    buf.read_offset = 0;
  }
  while (harvested < appended) {
    if (buf.read_offset == kChunkEvents) {
      // More records exist, so the owner has linked the next chunk
      // (link happens-before the appended store we acquired).  The
      // drained chunk goes back to the pool for reuse.
      Chunk* done = buf.read_chunk;
      buf.read_chunk = done->next.load(std::memory_order_acquire);
      buf.read_offset = 0;
      std::lock_guard lk(buf.pool_mu);
      buf.free_list.push_back(done);
    }
    const std::size_t n =
        std::min(kChunkEvents - buf.read_offset,
                 static_cast<std::size_t>(appended - harvested));
    writer_->write_events({&buf.read_chunk->events[buf.read_offset], n});
    buf.read_offset += n;
    harvested += n;
  }
  buf.harvested.store(harvested, std::memory_order_release);
}

void TraceCollector::flush_rank(RankBuffer& buf) {
  std::lock_guard lk(writer_mu_);
  if (writer_ == nullptr) return;  // detached since the threshold check
  flush_rank_locked(buf);
}

void TraceCollector::flush() {
  static const std::uint32_t kFlushSite = telemetry::intern_site("trace.flush");
  telemetry::Span span(kFlushSite);
  std::lock_guard lk(writer_mu_);
  if (writer_ == nullptr) return;
  for (auto& buf : buffers_) flush_rank_locked(*buf);
}

void TraceCollector::start_background_flush(
    std::chrono::milliseconds interval) {
  TDBG_CHECK(!bg_active_.load(std::memory_order_relaxed),
             "background flusher already running");
  bg_stop_ = false;
  bg_active_.store(true, std::memory_order_relaxed);
  bg_thread_ = std::thread([this, interval] { background_loop(interval); });
}

void TraceCollector::stop_background_flush() {
  if (!bg_active_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard lk(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_one();
  bg_thread_.join();
  bg_active_.store(false, std::memory_order_relaxed);
  flush();  // drain whatever arrived after the thread's last pass
}

void TraceCollector::background_loop(std::chrono::milliseconds interval) {
  std::unique_lock lk(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lk, interval);
    if (bg_stop_) break;
    lk.unlock();
    flush();
    lk.lock();
  }
}

std::size_t TraceCollector::buffered_count() const {
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->appended.load(std::memory_order_acquire) -
         buf->harvested.load(std::memory_order_acquire);
  }
  return static_cast<std::size_t>(n);
}

std::size_t TraceCollector::rank_buffered_count(int rank) const {
  if (rank < 0 || rank >= num_ranks_) return 0;
  const auto& buf = *buffers_[static_cast<std::size_t>(rank)];
  return static_cast<std::size_t>(
      buf.appended.load(std::memory_order_acquire) -
      buf.harvested.load(std::memory_order_acquire));
}

std::uint64_t TraceCollector::total_count() const {
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->appended.load(std::memory_order_acquire);
  }
  return n;
}

Trace TraceCollector::build_trace() const {
  // Walk the unharvested suffix of each rank's log without disturbing
  // the flusher cursors (writer_mu_ keeps them still while we read).
  std::lock_guard lk(writer_mu_);
  std::vector<Event> all;
  all.reserve(buffered_count());
  for (const auto& buf : buffers_) {
    std::uint64_t pos = buf->harvested.load(std::memory_order_relaxed);
    const std::uint64_t end = buf->appended.load(std::memory_order_acquire);
    const Chunk* chunk = buf->read_chunk != nullptr
                             ? buf->read_chunk
                             : buf->first.load(std::memory_order_acquire);
    std::size_t offset =
        buf->read_chunk != nullptr ? buf->read_offset : 0;
    while (pos < end) {
      if (offset == kChunkEvents) {
        chunk = chunk->next.load(std::memory_order_acquire);
        offset = 0;
      }
      const std::size_t n = std::min(kChunkEvents - offset,
                                     static_cast<std::size_t>(end - pos));
      all.insert(all.end(), &chunk->events[offset], &chunk->events[offset] + n);
      offset += n;
      pos += n;
    }
  }
  return Trace(num_ranks_, std::move(all), constructs_);
}

}  // namespace tdbg::trace
