#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace tdbg::trace {

/// Source-location description of an instrumented construct.
struct ConstructInfo {
  std::string name;  ///< function or call-site label ("MatrSend", "MPI_Send")
  std::string file;  ///< source file, may be empty
  int line = 0;      ///< 1-based line, 0 if unknown
};

/// Interns construct descriptions and hands out stable ids.
///
/// Both trace visualizers in the paper relate constructs back to the
/// source program ("clicking on a bar ... can identify the location of
/// the send or receive in the source code"); this table is what makes
/// that mapping possible in a trace file.
///
/// Thread-safe: instrumentation on every rank interns concurrently.
class ConstructRegistry {
 public:
  ConstructRegistry() = default;

  /// Returns the id for (name, file, line), creating it if new.
  ConstructId intern(std::string_view name, std::string_view file = {},
                     int line = 0);

  /// Looks up a construct (by value: the table may grow concurrently);
  /// throws `UsageError` for unknown ids.
  [[nodiscard]] ConstructInfo info(ConstructId id) const;

  /// Number of interned constructs.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of all constructs, indexed by id.  Used by the trace
  /// writer to emit the construct table.
  [[nodiscard]] std::vector<ConstructInfo> snapshot() const;

  /// Rebuilds the registry from a snapshot (trace reader).
  void restore(std::vector<ConstructInfo> table);

 private:
  mutable std::mutex mu_;
  std::vector<ConstructInfo> table_;
  std::unordered_map<std::string, ConstructId> index_;

  static std::string key(std::string_view name, std::string_view file,
                         int line);
};

}  // namespace tdbg::trace
