#pragma once

#include <filesystem>
#include <vector>

#include "trace/trace.hpp"

/// \file merge.hpp
/// Merging per-process trace files.
///
/// AIMS writes one trace per process and merges them for analysis; the
/// same workflow is supported here: each rank's records can be written
/// to its own file (same or different construct tables) and merged
/// into one `Trace`, with construct ids remapped into a shared table.

namespace tdbg::trace {

/// Merges traces into one.  Construct ids are re-interned, so inputs
/// with different (or partially overlapping) construct tables combine
/// correctly.  The result spans `max(num_ranks)` ranks; events keep
/// their rank/marker/timestamps.
Trace merge_traces(const std::vector<Trace>& parts);

/// Reads and merges several trace files.
Trace read_merged(const std::vector<std::filesystem::path>& paths);

/// Splits a trace into per-rank traces (each keeps the full construct
/// table) — the inverse, for writing per-process files.
std::vector<Trace> split_by_rank(const Trace& trace);

}  // namespace tdbg::trace
