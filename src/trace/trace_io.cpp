#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "support/error.hpp"
#include "support/serialize.hpp"
#include "support/strings.hpp"
#include "trace/columnar.hpp"
#include "trace/store.hpp"

namespace tdbg::trace {

namespace {

std::string text_event_line(const Event& e) {
  std::ostringstream os;
  os << "E\t" << static_cast<int>(e.kind) << '\t' << e.rank << '\t'
     << e.marker << '\t' << e.construct << '\t' << e.t_start << '\t'
     << e.t_end << '\t' << e.peer << '\t' << e.tag << '\t' << e.channel_seq
     << '\t' << e.bytes << '\t' << (e.wildcard ? 1 : 0);
  return os.str();
}

bool display_before_or_equal(const Event& a, const Event& b) {
  if (a.t_start != b.t_start) return a.t_start < b.t_start;
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.marker <= b.marker;
}

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path, int num_ranks,
                         std::shared_ptr<const ConstructRegistry> constructs,
                         TraceFormat format, std::uint32_t segment_events)
    : path_(path), constructs_(std::move(constructs)), format_(format),
      num_ranks_(num_ranks),
      segment_events_(std::max<std::uint32_t>(1, segment_events)),
      out_(path, format == TraceFormat::kText
                     ? std::ios::trunc
                     : std::ios::binary | std::ios::trunc) {
  TDBG_CHECK(constructs_ != nullptr, "trace writer needs a construct table");
  if (!out_) {
    throw IoError("cannot open trace file for writing: " + path_.string());
  }
  if (format_ == TraceFormat::kText) {
    out_ << "#tdbg-trace v1\n";
    out_ << "R\t" << num_ranks << "\n";
  } else {
    const char* magic = wire::kMagicV1;
    if (format_ == TraceFormat::kBinary) magic = wire::kMagicV2;
    if (format_ == TraceFormat::kBinaryV3) magic = wire::kMagicV3;
    out_.write(magic, sizeof wire::kMagicV2);
    support::BinaryWriter w;
    w.put<std::int32_t>(num_ranks);
    out_.write(reinterpret_cast<const char*>(w.bytes().data()),
               static_cast<std::streamsize>(w.size()));
  }
  check_stream("header write");
  if (format_ == TraceFormat::kBinary || format_ == TraceFormat::kBinaryV3) {
    TDBG_CHECK(num_ranks_ > 0, "trace needs at least one rank");
    cur_.offset = wire::kHeaderBytes;
    cur_.ranks.assign(static_cast<std::size_t>(num_ranks_), {});
    last_marker_.assign(static_cast<std::size_t>(num_ranks_), 0);
    rank_seen_.assign(static_cast<std::size_t>(num_ranks_), false);
    file_bytes_ = wire::kHeaderBytes;
    if (format_ == TraceFormat::kBinaryV3) {
      seg_buf_.reserve(segment_events_);
    }
  }
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; a failed footer leaves a truncated
    // but detectable file.
  }
}

void TraceWriter::check_stream(const char* op) {
  if (!out_) {
    throw IoError(std::string("trace ") + op + " failed: " + path_.string());
  }
}

void TraceWriter::note_event(const Event& e) {
  TDBG_CHECK(e.rank >= 0 && e.rank < num_ranks_, "event rank out of range");
  const auto r = static_cast<std::size_t>(e.rank);
  if (count_ > 0 && !display_before_or_equal(prev_, e)) {
    display_sorted_ = false;
  }
  if (rank_seen_[r] && e.marker < last_marker_[r]) {
    markers_monotone_ = false;
  }
  rank_seen_[r] = true;
  last_marker_[r] = e.marker;
  prev_ = e;

  if (cur_.count == 0) {
    cur_.t_min = e.t_start;
    cur_.t_max = e.t_end;
  } else {
    cur_.t_min = std::min(cur_.t_min, e.t_start);
    cur_.t_max = std::max(cur_.t_max, e.t_end);
  }
  auto& rk = cur_.ranks[r];
  if (rk.count == 0) {
    rk.marker_lo = e.marker;
    rk.marker_hi = e.marker;
  } else {
    rk.marker_lo = std::min(rk.marker_lo, e.marker);
    rk.marker_hi = std::max(rk.marker_hi, e.marker);
  }
  ++rk.count;
  ++cur_.count;
  ++count_;
  if (cur_.count >= segment_events_) close_segment();
}

void TraceWriter::close_segment() {
  if (format_ == TraceFormat::kBinaryV3) {
    close_segment_v3();
    return;
  }
  if (cur_.count == 0) return;
  cur_.byte_len = cur_.count * wire::kEventRecordBytes;
  segments_.push_back(std::move(cur_));
  cur_ = wire::SegmentMeta{};
  cur_.offset = wire::kHeaderBytes + count_ * wire::kEventRecordBytes;
  cur_.ranks.assign(static_cast<std::size_t>(num_ranks_), {});
}

void TraceWriter::close_segment_v3() {
  if (seg_buf_.empty()) return;
  scratch_.clear();
  columnar::SegmentZoneInfo zones;
  columnar::encode_segment(seg_buf_, scratch_, &zones);
  cur_.byte_len = scratch_.size();
  cur_.kind_mask = zones.kind_mask;
  cur_.rank_mask = zones.rank_mask;
  cur_.zones.assign(zones.zones.begin(), zones.zones.end());
  out_.write(reinterpret_cast<const char*>(scratch_.bytes().data()),
             static_cast<std::streamsize>(scratch_.size()));
  check_stream("segment write");
  file_bytes_ += scratch_.size();
  segments_.push_back(std::move(cur_));
  cur_ = wire::SegmentMeta{};
  cur_.offset = file_bytes_;
  cur_.ranks.assign(static_cast<std::size_t>(num_ranks_), {});
  seg_buf_.clear();
}

void TraceWriter::write_event(const Event& event) {
  write_events({&event, 1});
}

void TraceWriter::write_events(std::span<const Event> events) {
  if (events.empty()) return;
  std::lock_guard lk(mu_);
  TDBG_CHECK(!finished_, "write_event after finish");
  if (format_ == TraceFormat::kText) {
    for (const Event& e : events) out_ << text_event_line(e) << '\n';
    count_ += events.size();
  } else if (format_ == TraceFormat::kBinaryV3) {
    // Columnar blocks are sealed a segment at a time: buffer the
    // events and let `note_event` close (encode + write) full
    // segments as they fill.
    for (const Event& e : events) {
      seg_buf_.push_back(e);
      note_event(e);
    }
  } else {
    scratch_.clear();
    for (const Event& e : events) {
      wire::encode_event(scratch_, e);
      if (format_ == TraceFormat::kBinary) {
        note_event(e);
      }
    }
    if (format_ != TraceFormat::kBinary) count_ += events.size();
    out_.write(reinterpret_cast<const char*>(scratch_.bytes().data()),
               static_cast<std::streamsize>(scratch_.size()));
  }
  check_stream("write");
}

void TraceWriter::finish() {
  std::lock_guard lk(mu_);
  if (finished_) return;
  finished_ = true;
  const auto table = constructs_->snapshot();
  if (format_ == TraceFormat::kText) {
    for (std::size_t id = 0; id < table.size(); ++id) {
      out_ << "C\t" << id << '\t' << table[id].line << '\t' << table[id].name
           << '\t' << table[id].file << '\n';
    }
  } else {
    // The v3 tail segment writes its own block (and uses scratch_), so
    // it must be sealed before the footer encoding starts.
    if (format_ == TraceFormat::kBinaryV3) close_segment();
    scratch_.clear();
    wire::encode_construct_table(scratch_, table);
    if (format_ == TraceFormat::kBinary) {
      close_segment();
      wire::Footer footer;
      footer.flags = (display_sorted_ ? wire::kFlagDisplaySorted : 0u) |
                     (markers_monotone_ ? wire::kFlagRankMarkersMonotone : 0u);
      footer.segment_events = segment_events_;
      footer.event_count = count_;
      footer.segments = std::move(segments_);
      wire::encode_directory(scratch_, footer);
      // Trailer: fixed-width records make the footer offset computable.
      scratch_.put<std::uint64_t>(wire::kHeaderBytes +
                                  count_ * wire::kEventRecordBytes);
      scratch_.put_raw(std::as_bytes(std::span(wire::kFooterMagic)));
    } else if (format_ == TraceFormat::kBinaryV3) {
      wire::Footer footer;
      footer.version = 3;
      footer.flags = (display_sorted_ ? wire::kFlagDisplaySorted : 0u) |
                     (markers_monotone_ ? wire::kFlagRankMarkersMonotone : 0u);
      footer.segment_events = segment_events_;
      footer.event_count = count_;
      footer.segments = std::move(segments_);
      wire::encode_directory_v3(scratch_, footer);
      // Trailer: v3 blocks are variable-width, so the footer offset is
      // the tracked running byte count.
      scratch_.put<std::uint64_t>(file_bytes_);
      scratch_.put_raw(std::as_bytes(std::span(wire::kFooterMagicV3)));
    }
    out_.write(reinterpret_cast<const char*>(scratch_.bytes().data()),
               static_cast<std::streamsize>(scratch_.size()));
  }
  out_.flush();
  check_stream("finish");
  out_.close();
}

namespace {

Trace read_binary(const std::vector<std::byte>& bytes,
                  const std::filesystem::path& path) {
  support::BinaryReader r(bytes);
  r.seek(sizeof wire::kMagicV1);
  const auto num_ranks = r.get<std::int32_t>();
  std::vector<Event> events;
  bool saw_end = false;
  while (!r.exhausted()) {
    const auto record_offset = r.position();
    const auto tag = r.get<std::uint8_t>();
    if (tag == wire::kRecordEnd) {
      saw_end = true;
      break;
    }
    if (tag != wire::kRecordEvent) {
      throw FormatError("unknown record tag in trace file " + path.string());
    }
    if (r.remaining() + 1 < wire::kEventRecordBytes) {
      throw FormatError("truncated event record in trace file " +
                        path.string() + " at offset " +
                        std::to_string(record_offset));
    }
    // The kind byte follows the record tag; validate it before the
    // decode so a corrupt byte can never masquerade as a real kind.
    const auto kind = std::to_integer<std::uint8_t>(bytes[r.position()]);
    if (!wire::valid_event_kind(kind)) {
      throw FormatError("unknown event kind " + std::to_string(kind) +
                        " in trace file " + path.string() + " at offset " +
                        std::to_string(record_offset + 1));
    }
    events.push_back(wire::decode_event(r));
  }
  auto registry = std::make_shared<ConstructRegistry>();
  if (saw_end) {
    try {
      registry->restore(wire::decode_construct_table(r));
    } catch (const FormatError& e) {
      throw FormatError("truncated construct table in trace file " +
                        path.string() + ": " + e.what());
    }
    // Anything after the construct table is the v2 directory +
    // trailer; the eager reader rebuilds its own indexes, so it is
    // skipped (and may be truncated) here.
  }
  return Trace(num_ranks, std::move(events), std::move(registry));
}

/// Eager v3 reader: walks the segment blocks sequentially.  A file cut
/// at a block boundary before the footer yields the segment-aligned
/// event prefix; a cut inside a block is corruption (`FormatError`
/// naming the segment and column, from the columnar decoder).
Trace read_binary_v3(const std::vector<std::byte>& bytes,
                     const std::filesystem::path& path) {
  support::BinaryReader r(bytes);
  r.seek(sizeof wire::kMagicV3);
  const auto num_ranks = r.get<std::int32_t>();
  std::vector<Event> events;
  std::vector<Event> seg_events;
  std::vector<std::uint64_t> scratch;
  bool saw_end = false;
  std::size_t seg = 0;
  while (!r.exhausted()) {
    const auto tag = std::to_integer<std::uint8_t>(bytes[r.position()]);
    if (tag == wire::kRecordEnd) {
      r.seek(r.position() + 1);
      saw_end = true;
      break;
    }
    if (tag != wire::kRecordSegment) {
      throw FormatError("unknown record tag in trace file " + path.string());
    }
    const auto res = columnar::decode_segment(
        std::span(bytes).subspan(r.position()), columnar::kAllColumns,
        num_ranks, seg_events, scratch, path, seg);
    events.insert(events.end(), seg_events.begin(), seg_events.end());
    r.seek(r.position() + static_cast<std::size_t>(res.block_len));
    ++seg;
  }
  auto registry = std::make_shared<ConstructRegistry>();
  if (saw_end) {
    try {
      registry->restore(wire::decode_construct_table(r));
    } catch (const FormatError& e) {
      throw FormatError("truncated construct table in trace file " +
                        path.string() + ": " + e.what());
    }
    // The v3 directory + trailer follow; the eager reader rebuilds its
    // own indexes, so they are skipped here.
  }
  return Trace(num_ranks, std::move(events), std::move(registry));
}

Trace read_text(const std::string& content) {
  int num_ranks = 0;
  std::vector<Event> events;
  std::vector<std::pair<std::size_t, ConstructInfo>> constructs;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = support::split(line, '\t');
    if (fields[0] == "R") {
      if (fields.size() != 2) throw FormatError("bad R line");
      num_ranks = std::stoi(fields[1]);
    } else if (fields[0] == "E") {
      if (fields.size() != 12) throw FormatError("bad E line: " + line);
      const int kind = std::stoi(fields[1]);
      if (kind < 0 || !wire::valid_event_kind(static_cast<std::uint8_t>(kind))) {
        throw FormatError("unknown event kind " + std::to_string(kind) +
                          " in trace line: " + line);
      }
      Event e;
      e.kind = static_cast<EventKind>(kind);
      e.rank = std::stoi(fields[2]);
      e.marker = std::stoull(fields[3]);
      e.construct = static_cast<ConstructId>(std::stoul(fields[4]));
      e.t_start = std::stoll(fields[5]);
      e.t_end = std::stoll(fields[6]);
      e.peer = std::stoi(fields[7]);
      e.tag = std::stoi(fields[8]);
      e.channel_seq = std::stoull(fields[9]);
      e.bytes = std::stoull(fields[10]);
      e.wildcard = std::stoi(fields[11]) != 0;
      events.push_back(e);
    } else if (fields[0] == "C") {
      if (fields.size() != 5) throw FormatError("bad C line: " + line);
      ConstructInfo c;
      c.line = std::stoi(fields[2]);
      c.name = fields[3];
      c.file = fields[4];
      constructs.emplace_back(std::stoul(fields[1]), std::move(c));
    } else {
      throw FormatError("unknown trace line type: " + fields[0]);
    }
  }
  if (num_ranks == 0) throw FormatError("text trace missing R line");
  std::vector<ConstructInfo> table;
  for (auto& [id, info] : constructs) {
    if (table.size() <= id) table.resize(id + 1);
    table[id] = std::move(info);
  }
  auto registry = std::make_shared<ConstructRegistry>();
  registry->restore(std::move(table));
  return Trace(num_ranks, std::move(events), std::move(registry));
}

bool has_magic(const std::string& content, const char (&magic)[8]) {
  return content.size() >= sizeof magic &&
         std::memcmp(content.data(), magic, sizeof magic) == 0;
}

}  // namespace

Trace read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (has_magic(content, wire::kMagicV1) || has_magic(content, wire::kMagicV2)) {
    std::vector<std::byte> bytes(content.size());
    std::memcpy(bytes.data(), content.data(), content.size());
    return read_binary(bytes, path);
  }
  if (has_magic(content, wire::kMagicV3)) {
    std::vector<std::byte> bytes(content.size());
    std::memcpy(bytes.data(), content.data(), content.size());
    return read_binary_v3(bytes, path);
  }
  return read_text(content);
}

std::optional<TraceFooter> try_read_footer(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path.string());
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < wire::kHeaderBytes + wire::kTrailerBytes) {
    return std::nullopt;
  }

  char header[wire::kHeaderBytes];
  in.seekg(0);
  in.read(header, sizeof header);
  if (!in) return std::nullopt;
  const bool v2 =
      std::memcmp(header, wire::kMagicV2, sizeof wire::kMagicV2) == 0;
  const bool v3 =
      std::memcmp(header, wire::kMagicV3, sizeof wire::kMagicV3) == 0;
  if (!v2 && !v3) return std::nullopt;
  std::int32_t num_ranks = 0;
  std::memcpy(&num_ranks, header + sizeof wire::kMagicV2, sizeof num_ranks);

  char trailer[wire::kTrailerBytes];
  in.seekg(static_cast<std::streamoff>(file_size - wire::kTrailerBytes));
  in.read(trailer, sizeof trailer);
  const char* footer_magic = v2 ? wire::kFooterMagic : wire::kFooterMagicV3;
  if (!in || std::memcmp(trailer + sizeof(std::uint64_t), footer_magic,
                         sizeof wire::kFooterMagic) != 0) {
    return std::nullopt;  // no trailer: flush-on-demand prefix or crash
  }
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, trailer, sizeof footer_offset);
  if (footer_offset < wire::kHeaderBytes ||
      footer_offset > file_size - wire::kTrailerBytes) {
    throw FormatError("trace footer offset out of range in " + path.string());
  }

  std::vector<std::byte> footer_bytes(
      static_cast<std::size_t>(file_size - wire::kTrailerBytes - footer_offset));
  in.seekg(static_cast<std::streamoff>(footer_offset));
  in.read(reinterpret_cast<char*>(footer_bytes.data()),
          static_cast<std::streamsize>(footer_bytes.size()));
  if (!in) throw IoError("trace footer read failed: " + path.string());

  try {
    support::BinaryReader r(footer_bytes);
    TraceFooter result;
    result.num_ranks = num_ranks;
    if (r.get<std::uint8_t>() != wire::kRecordEnd) {
      throw FormatError("footer does not start with the construct table");
    }
    result.footer.constructs = wire::decode_construct_table(r);
    const auto dir_tag = r.get<std::uint8_t>();
    if (v3) {
      if (dir_tag != wire::kRecordDirectoryV3) {
        throw FormatError("footer is missing the v3 segment directory");
      }
      wire::decode_directory_v3(r, num_ranks, &result.footer);
    } else {
      if (dir_tag != wire::kRecordDirectory) {
        throw FormatError("footer is missing the segment directory");
      }
      wire::decode_directory(r, num_ranks, &result.footer);
    }
    return result;
  } catch (const FormatError& e) {
    throw FormatError("corrupt trace footer in " + path.string() + ": " +
                      e.what());
  }
}

Trace open_trace(const std::filesystem::path& path,
                 const TraceOpenOptions& options) {
  auto footer = try_read_footer(path);
  if (footer && footer->footer.display_sorted() &&
      footer->footer.rank_markers_monotone()) {
    return Trace(std::make_shared<SegmentedTraceStore>(
        path, footer->num_ranks, std::move(footer->footer),
        options.cache_segments, options.prefetch));
  }
  // v1, text, footerless prefix, or an unsorted stream: the directory
  // binary searches would be wrong, so fall back to the eager store.
  return read_trace(path);
}

TraceFileInfo inspect_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path.string());
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  TraceFileInfo info;
  info.file_bytes = file_size;

  char magic[8] = {};
  if (file_size >= sizeof magic) {
    in.read(magic, sizeof magic);
  }
  const bool v1 = std::memcmp(magic, wire::kMagicV1, sizeof magic) == 0;
  const bool v2 = std::memcmp(magic, wire::kMagicV2, sizeof magic) == 0;
  const bool v3 = std::memcmp(magic, wire::kMagicV3, sizeof magic) == 0;

  if (v2 || v3) {
    info.format = v3 ? "binary-v3" : "binary-v2";
    if (auto footer = try_read_footer(path)) {
      info.has_footer = true;
      info.num_ranks = footer->num_ranks;
      info.event_count = footer->footer.event_count;
      info.segment_count = footer->footer.segments.size();
      info.segment_events = footer->footer.segment_events;
      info.display_sorted = footer->footer.display_sorted();
      info.rank_markers_monotone = footer->footer.rank_markers_monotone();
      info.construct_count = footer->footer.constructs.size();
      if (!footer->footer.segments.empty()) {
        info.has_time_span = true;
        info.t_min = footer->footer.segments.front().t_min;
        for (const auto& seg : footer->footer.segments) {
          info.t_max = std::max(info.t_max, seg.t_max);
        }
      }
      return info;
    }
  } else if (v1) {
    info.format = "binary-v1";
  } else {
    // Text traces have no magic; count record lines.
    info.format = "text";
    in.clear();
    in.seekg(0);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (line[0] == 'E') ++info.event_count;
      else if (line[0] == 'C') ++info.construct_count;
      else if (line[0] == 'R' && line.size() > 2) {
        info.num_ranks = std::atoi(line.c_str() + 2);
      }
    }
    return info;
  }

  // Binary stream without a usable footer: walk the records counting
  // tags (no event decode).
  std::string content;
  in.clear();
  in.seekg(0);
  content.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(content.size());
  std::memcpy(bytes.data(), content.data(), content.size());
  support::BinaryReader r(bytes);
  r.seek(sizeof magic);
  info.num_ranks = r.get<std::int32_t>();
  if (v3) {
    // v3: hop over the segment blocks via their headers.
    while (!r.exhausted()) {
      const auto tag = std::to_integer<std::uint8_t>(bytes[r.position()]);
      if (tag == wire::kRecordEnd) {
        r.seek(r.position() + 1);
        info.construct_count = r.get<std::uint32_t>();
        break;
      }
      if (tag != wire::kRecordSegment) break;
      columnar::SegmentHeader h;
      try {
        h = columnar::parse_segment_header(
            std::span(bytes).subspan(r.position()), path, info.segment_count);
      } catch (const FormatError&) {
        break;  // truncated header: report the prefix count
      }
      const auto block =
          columnar::kSegmentHeaderBytes + h.payload_bytes();
      if (block > r.remaining()) break;  // truncated mid-block
      r.seek(r.position() + static_cast<std::size_t>(block));
      info.event_count += h.count;
      ++info.segment_count;
    }
    return info;
  }
  while (!r.exhausted()) {
    const auto tag = r.get<std::uint8_t>();
    if (tag == wire::kRecordEnd) {
      info.construct_count = r.get<std::uint32_t>();
      break;
    }
    if (tag != wire::kRecordEvent ||
        r.remaining() + 1 < wire::kEventRecordBytes) {
      break;  // truncated or foreign record: report the prefix count
    }
    r.seek(r.position() + wire::kEventRecordBytes - 1);
    ++info.event_count;
  }
  return info;
}

std::vector<ColumnStorageInfo> inspect_columns(
    const std::filesystem::path& path, const TraceFooter& footer) {
  std::vector<ColumnStorageInfo> out;
  if (footer.footer.version != 3) return out;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path.string());

  out.resize(wire::kNumColumnsV3);
  std::vector<std::array<std::size_t, columnar::kNumEncodings>> used(
      wire::kNumColumnsV3);
  for (auto& u : used) u.fill(0);
  std::vector<std::byte> buf(columnar::kSegmentHeaderBytes);
  for (std::size_t s = 0; s < footer.footer.segments.size(); ++s) {
    const auto& meta = footer.footer.segments[s];
    in.seekg(static_cast<std::streamoff>(meta.offset));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (!in) throw IoError("trace segment header read failed: " + path.string());
    const auto h = columnar::parse_segment_header(buf, path, s);
    for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
      out[c].bytes += h.cols[c].byte_len;
      ++used[c][static_cast<std::size_t>(h.cols[c].encoding)];
    }
  }
  for (std::size_t c = 0; c < wire::kNumColumnsV3; ++c) {
    out[c].name = columnar::column_name(c);
    for (std::size_t e = 0; e < columnar::kNumEncodings; ++e) {
      if (used[c][e] == 0) continue;
      out[c].encodings.emplace_back(
          columnar::encoding_name(static_cast<columnar::Encoding>(e)),
          used[c][e]);
    }
    std::stable_sort(out[c].encodings.begin(), out[c].encodings.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
  }
  return out;
}

void write_trace(const std::filesystem::path& path, const Trace& trace,
                 TraceFormat format, std::uint32_t segment_events) {
  TraceWriter writer(path, trace.num_ranks(), trace.constructs_ptr(), format,
                     segment_events);
  // Stream in display order through a bounded batch buffer: a lazy
  // source trace is never fully materialized.
  std::vector<Event> batch;
  batch.reserve(8192);
  trace.for_each_event([&](std::size_t, const Event& e) {
    batch.push_back(e);
    if (batch.size() == batch.capacity()) {
      writer.write_events(batch);
      batch.clear();
    }
  });
  writer.write_events(batch);
  writer.finish();
}

}  // namespace tdbg::trace
