#include "trace/trace_io.hpp"

#include <cstring>
#include <sstream>

#include "support/error.hpp"
#include "support/serialize.hpp"
#include "support/strings.hpp"

namespace tdbg::trace {

namespace {

constexpr char kMagic[8] = {'T', 'D', 'B', 'G', 'T', 'R', 'C', '1'};
constexpr std::uint8_t kRecordEvent = 0;
constexpr std::uint8_t kRecordEnd = 1;

void encode_event(support::BinaryWriter& w, const Event& e) {
  w.put<std::uint8_t>(kRecordEvent);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(e.kind));
  w.put<std::int32_t>(e.rank);
  w.put<std::uint64_t>(e.marker);
  w.put<std::uint32_t>(e.construct);
  w.put<std::int64_t>(e.t_start);
  w.put<std::int64_t>(e.t_end);
  w.put<std::int32_t>(e.peer);
  w.put<std::int32_t>(e.tag);
  w.put<std::uint64_t>(e.channel_seq);
  w.put<std::uint64_t>(e.bytes);
  w.put<std::uint8_t>(e.wildcard ? 1 : 0);
}

Event decode_event(support::BinaryReader& r) {
  Event e;
  e.kind = static_cast<EventKind>(r.get<std::uint8_t>());
  e.rank = r.get<std::int32_t>();
  e.marker = r.get<std::uint64_t>();
  e.construct = r.get<std::uint32_t>();
  e.t_start = r.get<std::int64_t>();
  e.t_end = r.get<std::int64_t>();
  e.peer = r.get<std::int32_t>();
  e.tag = r.get<std::int32_t>();
  e.channel_seq = r.get<std::uint64_t>();
  e.bytes = r.get<std::uint64_t>();
  e.wildcard = r.get<std::uint8_t>() != 0;
  return e;
}

std::string text_event_line(const Event& e) {
  std::ostringstream os;
  os << "E\t" << static_cast<int>(e.kind) << '\t' << e.rank << '\t'
     << e.marker << '\t' << e.construct << '\t' << e.t_start << '\t'
     << e.t_end << '\t' << e.peer << '\t' << e.tag << '\t' << e.channel_seq
     << '\t' << e.bytes << '\t' << (e.wildcard ? 1 : 0);
  return os.str();
}

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path, int num_ranks,
                         std::shared_ptr<const ConstructRegistry> constructs,
                         TraceFormat format)
    : constructs_(std::move(constructs)), format_(format),
      out_(path, format == TraceFormat::kBinary
                     ? std::ios::binary | std::ios::trunc
                     : std::ios::trunc) {
  TDBG_CHECK(constructs_ != nullptr, "trace writer needs a construct table");
  if (!out_) {
    throw IoError("cannot open trace file for writing: " + path.string());
  }
  if (format_ == TraceFormat::kBinary) {
    out_.write(kMagic, sizeof kMagic);
    support::BinaryWriter w;
    w.put<std::int32_t>(num_ranks);
    out_.write(reinterpret_cast<const char*>(w.bytes().data()),
               static_cast<std::streamsize>(w.size()));
  } else {
    out_ << "#tdbg-trace v1\n";
    out_ << "R\t" << num_ranks << "\n";
  }
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; a failed footer leaves a truncated
    // but detectable file.
  }
}

void TraceWriter::write_event(const Event& event) {
  write_events({&event, 1});
}

void TraceWriter::write_events(std::span<const Event> events) {
  if (events.empty()) return;
  std::lock_guard lk(mu_);
  TDBG_CHECK(!finished_, "write_event after finish");
  if (format_ == TraceFormat::kBinary) {
    scratch_.clear();
    for (const Event& e : events) encode_event(scratch_, e);
    out_.write(reinterpret_cast<const char*>(scratch_.bytes().data()),
               static_cast<std::streamsize>(scratch_.size()));
  } else {
    for (const Event& e : events) out_ << text_event_line(e) << '\n';
  }
  count_ += events.size();
  if (!out_) throw IoError("trace write failed");
}

void TraceWriter::finish() {
  std::lock_guard lk(mu_);
  if (finished_) return;
  finished_ = true;
  const auto table = constructs_->snapshot();
  if (format_ == TraceFormat::kBinary) {
    support::BinaryWriter w;
    w.put<std::uint8_t>(kRecordEnd);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(table.size()));
    for (const auto& c : table) {
      w.put_string(c.name);
      w.put_string(c.file);
      w.put<std::int32_t>(c.line);
    }
    out_.write(reinterpret_cast<const char*>(w.bytes().data()),
               static_cast<std::streamsize>(w.size()));
  } else {
    for (std::size_t id = 0; id < table.size(); ++id) {
      out_ << "C\t" << id << '\t' << table[id].line << '\t' << table[id].name
           << '\t' << table[id].file << '\n';
    }
  }
  out_.flush();
  if (!out_) throw IoError("trace finish failed");
  out_.close();
}

namespace {

Trace read_binary(const std::vector<std::byte>& bytes) {
  support::BinaryReader r(bytes);
  r.seek(sizeof kMagic);
  const auto num_ranks = r.get<std::int32_t>();
  std::vector<Event> events;
  bool saw_end = false;
  while (!r.exhausted()) {
    const auto tag = r.get<std::uint8_t>();
    if (tag == kRecordEnd) {
      saw_end = true;
      break;
    }
    if (tag != kRecordEvent) {
      throw FormatError("unknown record tag in trace file");
    }
    events.push_back(decode_event(r));
  }
  auto registry = std::make_shared<ConstructRegistry>();
  if (saw_end) {
    const auto n = r.get<std::uint32_t>();
    std::vector<ConstructInfo> table;
    table.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ConstructInfo c;
      c.name = r.get_string();
      c.file = r.get_string();
      c.line = r.get<std::int32_t>();
      table.push_back(std::move(c));
    }
    registry->restore(std::move(table));
  }
  return Trace(num_ranks, std::move(events), std::move(registry));
}

Trace read_text(const std::string& content) {
  int num_ranks = 0;
  std::vector<Event> events;
  std::vector<std::pair<std::size_t, ConstructInfo>> constructs;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = support::split(line, '\t');
    if (fields[0] == "R") {
      if (fields.size() != 2) throw FormatError("bad R line");
      num_ranks = std::stoi(fields[1]);
    } else if (fields[0] == "E") {
      if (fields.size() != 12) throw FormatError("bad E line: " + line);
      Event e;
      e.kind = static_cast<EventKind>(std::stoi(fields[1]));
      e.rank = std::stoi(fields[2]);
      e.marker = std::stoull(fields[3]);
      e.construct = static_cast<ConstructId>(std::stoul(fields[4]));
      e.t_start = std::stoll(fields[5]);
      e.t_end = std::stoll(fields[6]);
      e.peer = std::stoi(fields[7]);
      e.tag = std::stoi(fields[8]);
      e.channel_seq = std::stoull(fields[9]);
      e.bytes = std::stoull(fields[10]);
      e.wildcard = std::stoi(fields[11]) != 0;
      events.push_back(e);
    } else if (fields[0] == "C") {
      if (fields.size() != 5) throw FormatError("bad C line: " + line);
      ConstructInfo c;
      c.line = std::stoi(fields[2]);
      c.name = fields[3];
      c.file = fields[4];
      constructs.emplace_back(std::stoul(fields[1]), std::move(c));
    } else {
      throw FormatError("unknown trace line type: " + fields[0]);
    }
  }
  if (num_ranks == 0) throw FormatError("text trace missing R line");
  std::vector<ConstructInfo> table;
  for (auto& [id, info] : constructs) {
    if (table.size() <= id) table.resize(id + 1);
    table[id] = std::move(info);
  }
  auto registry = std::make_shared<ConstructRegistry>();
  registry->restore(std::move(table));
  return Trace(num_ranks, std::move(events), std::move(registry));
}

}  // namespace

Trace read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.size() >= sizeof kMagic &&
      std::memcmp(content.data(), kMagic, sizeof kMagic) == 0) {
    std::vector<std::byte> bytes(content.size());
    std::memcpy(bytes.data(), content.data(), content.size());
    return read_binary(bytes);
  }
  return read_text(content);
}

void write_trace(const std::filesystem::path& path, const Trace& trace,
                 TraceFormat format) {
  TraceWriter writer(path, trace.num_ranks(), trace.constructs_ptr(), format);
  for (const Event& e : trace.events()) writer.write_event(e);
  writer.finish();
}

}  // namespace tdbg::trace
