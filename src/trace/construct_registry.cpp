#include "trace/construct_registry.hpp"

#include "support/error.hpp"

namespace tdbg::trace {

std::string ConstructRegistry::key(std::string_view name,
                                   std::string_view file, int line) {
  std::string k;
  k.reserve(name.size() + file.size() + 12);
  k.append(name);
  k.push_back('\x1f');
  k.append(file);
  k.push_back('\x1f');
  k.append(std::to_string(line));
  return k;
}

ConstructId ConstructRegistry::intern(std::string_view name,
                                      std::string_view file, int line) {
  std::lock_guard lk(mu_);
  auto [it, inserted] = index_.try_emplace(key(name, file, line),
                                           static_cast<ConstructId>(table_.size()));
  if (inserted) {
    table_.push_back(ConstructInfo{std::string(name), std::string(file), line});
  }
  return it->second;
}

ConstructInfo ConstructRegistry::info(ConstructId id) const {
  std::lock_guard lk(mu_);
  TDBG_CHECK(id < table_.size(), "unknown construct id");
  return table_[id];
}

std::size_t ConstructRegistry::size() const {
  std::lock_guard lk(mu_);
  return table_.size();
}

std::vector<ConstructInfo> ConstructRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  return table_;
}

void ConstructRegistry::restore(std::vector<ConstructInfo> table) {
  std::lock_guard lk(mu_);
  table_ = std::move(table);
  index_.clear();
  for (ConstructId id = 0; id < static_cast<ConstructId>(table_.size()); ++id) {
    const auto& c = table_[id];
    index_[key(c.name, c.file, c.line)] = id;
  }
}

}  // namespace tdbg::trace
