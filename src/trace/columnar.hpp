#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "support/serialize.hpp"
#include "trace/event.hpp"
#include "trace/wire.hpp"

/// \file columnar.hpp
/// TDBGTRC3 columnar segment codec (internal to `src/trace`).
///
/// A v3 segment block stores the segment's events field-by-field:
///
///   u8  kRecordSegment
///   u32 count
///   per column (kNumColumnsV3 = 11, fixed order):
///       u8 encoding | u8 width | u64 base | u32 byte_len
///   column payloads, concatenated in column order
///
/// Column order: kind, rank, marker, construct, t_start, t_end, peer,
/// tag, channel_seq, bytes, wildcard.  Each field is first mapped to a
/// u64 *storage value* by a bijective transform (zigzag for signed
/// fields, `t_end` as a delta from the same row's `t_start`,
/// `construct + 1` so the kNoConstruct sentinel packs as 0), then the
/// writer picks the cheapest of five encodings per column:
///
///   kConst        no payload; every row equals `base`
///   kBitPack      (v - base) packed LSB-first at `width` bits
///   kVarint       LEB128
///   kDeltaVarint  LEB128 of zigzag(v[i] - v[i-1]), v[-1] = 0
///   kRaw          fixed 8-byte little-endian
///
/// Decoding is column-at-a-time into reusable u64 scratch, then a
/// tight per-field scatter into `Event` rows — no per-record dispatch,
/// no per-field bounds checks.  A reader may decode any subset of
/// columns (`ColumnSet`); unselected fields are unspecified (the
/// output vector is reused unzeroed).  Any inconsistency — a payload that stops short, a
/// varint running past its block, an invalid kind or rank — raises
/// `FormatError` naming the segment and the column.

namespace tdbg::trace::columnar {

/// Column indices in storage order.  `1u << index` is the matching
/// `ColumnSet` bit (the bitmask constants live in store.hpp so query
/// layers can request column subsets without including this header).
enum Column : std::size_t {
  kColKind = 0,
  kColRank,
  kColMarker,
  kColConstruct,
  kColTStart,
  kColTEnd,
  kColPeer,
  kColTag,
  kColChannelSeq,
  kColBytes,
  kColWildcard,
};

static_assert(kColWildcard + 1 == wire::kNumColumnsV3);

/// Bitmask of columns to decode; bit c selects column index c.
using ColumnSet = std::uint32_t;
inline constexpr ColumnSet kAllColumns =
    (1u << wire::kNumColumnsV3) - 1;

/// Human-readable column name ("kind", "rank", ... ).
[[nodiscard]] const char* column_name(std::size_t col);

enum class Encoding : std::uint8_t {
  kConst = 0,
  kBitPack = 1,
  kVarint = 2,
  kDeltaVarint = 3,
  kRaw = 4,
};

/// Human-readable encoding name ("const", "bitpack", ...).
[[nodiscard]] const char* encoding_name(Encoding e);

inline constexpr std::size_t kNumEncodings = 5;

/// Per-column descriptor within one segment header.
struct ColumnMeta {
  Encoding encoding = Encoding::kConst;
  std::uint8_t width = 0;     ///< bits per value (kBitPack only)
  std::uint64_t base = 0;     ///< kConst value / kBitPack bias
  std::uint32_t byte_len = 0; ///< payload bytes of this column
};

/// Parsed segment header (everything between the record tag and the
/// first column payload).
struct SegmentHeader {
  std::uint32_t count = 0;
  std::array<ColumnMeta, wire::kNumColumnsV3> cols;

  /// Total payload bytes across all columns.
  [[nodiscard]] std::uint64_t payload_bytes() const {
    std::uint64_t n = 0;
    for (const auto& c : cols) n += c.byte_len;
    return n;
  }
};

/// On-disk bytes of tag + count + column descriptors.
inline constexpr std::uint64_t kSegmentHeaderBytes =
    1 + 4 + wire::kNumColumnsV3 * (1 + 1 + 8 + 4);

/// Zone/presence summary of one segment, computed while encoding and
/// stored in the directory footer.
struct SegmentZoneInfo {
  std::uint32_t kind_mask = 0;
  std::uint64_t rank_mask = 0;
  std::array<wire::ColumnZone, wire::kNumColumnsV3> zones{};
};

/// Encodes one segment block (tag byte included) for `events`,
/// appending to `w`.  Fills `zone_out` with the segment's presence
/// masks and per-column zone maps.
void encode_segment(std::span<const Event> events, support::BinaryWriter& w,
                    SegmentZoneInfo* zone_out);

/// Reusable per-thread decode buffers; keep one per call site (see
/// `thread_local` uses in store.cpp) so repeated segment decodes never
/// reallocate.
struct DecodeScratch {
  std::vector<std::uint64_t> vals;
  std::vector<std::byte> blob;
  std::vector<Event> events;
};

/// Result of decoding (part of) one segment block.
struct DecodeResult {
  SegmentHeader header;
  std::uint64_t block_len = 0;      ///< tag + header + all payloads
  std::uint64_t decoded_bytes = 0;  ///< payload bytes actually decoded
  std::uint32_t decoded_cols = 0;   ///< bitmask of columns decoded
};

/// Parses the header of the segment block starting at `blob[0]` (the
/// kRecordSegment tag).  Throws `FormatError` naming `seg` when the
/// header itself is cut short or malformed.
[[nodiscard]] SegmentHeader parse_segment_header(
    std::span<const std::byte> blob, const std::filesystem::path& path,
    std::size_t seg);

/// Decodes the columns selected by `cols` from the segment block
/// starting at `blob[0]` into `out` (resized to the segment's count;
/// unselected fields are unspecified).  `t_start` is decoded
/// implicitly whenever `t_end` is requested (its storage form is a
/// row-local delta).  Kind bytes and ranks are validated when their
/// columns are selected (`num_ranks` < 0 skips the rank-range check).
/// Throws `FormatError` naming the segment and column on truncation or
/// corruption.
DecodeResult decode_segment(std::span<const std::byte> blob, ColumnSet cols,
                            int num_ranks, std::vector<Event>& out,
                            std::vector<std::uint64_t>& scratch,
                            const std::filesystem::path& path,
                            std::size_t seg);

/// Streaming variant for full sweeps: decodes every column one tile at
/// a time into a stack buffer and calls `visit(base_index + i, event)`
/// for each row while the tile is still cache-hot — the segment's
/// events are never materialized as a whole.  Same validation and
/// error behavior as `decode_segment` with all columns selected.
DecodeResult decode_segment_visit(
    std::span<const std::byte> blob, int num_ranks, std::size_t base_index,
    const std::function<void(std::size_t, const Event&)>& visit,
    std::vector<std::uint64_t>& scratch, const std::filesystem::path& path,
    std::size_t seg);

}  // namespace tdbg::trace::columnar
